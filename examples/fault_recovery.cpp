// Example: the control plane reacting to a cable failure.
//
// Myrinet NICs continuously verify the network map and rebuild routes
// when it changes (§2 of the paper).  This example maps an 8x8 torus
// through probe packets, fails a fabric cable, lets the RouteManager
// detect the change, and shows that traffic keeps flowing on the rebuilt
// ITB tables — at slightly lower throughput, since a link is gone.
//
//   $ ./examples/fault_recovery
#include <cstdio>

#include "harness/testbed.hpp"
#include "mapper/route_manager.hpp"
#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace {

using namespace itb;

double run_uniform(const Topology& topo, const RouteSet& routes,
                   double load) {
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kRoundRobin, 7);
  MetricsCollector metrics(topo.num_switches());
  metrics.attach(net);
  UniformPattern pattern(topo.num_hosts());
  TrafficConfig cfg;
  cfg.load_flits_per_ns_per_switch = load;
  TrafficGenerator gen(sim, net, pattern, cfg);
  gen.start();
  sim.run_until(us(150));
  metrics.reset_window(sim.now());
  sim.run_until(us(550));
  return metrics.accepted_flits_per_ns_per_switch(sim.now());
}

}  // namespace

int main() {
  const Topology physical = make_torus_2d(8, 8, 8);
  TopologyProber prober(physical, /*mapping host=*/0);

  RouteManager mgr(prober, prober.host_signature(0));
  std::printf("initial map: %d switches, %d hosts, %d cables "
              "(%llu probes)\n",
              mgr.map().topo.num_switches(), mgr.map().topo.num_hosts(),
              mgr.map().topo.num_cables(),
              static_cast<unsigned long long>(mgr.map().probes_used));

  const double before = run_uniform(mgr.map().topo, mgr.itb_routes(), 0.02);
  std::printf("ITB-RR accepted traffic before failure: %.4f "
              "flits/ns/switch\n",
              before);

  // Cut the cable on switch 27's first fabric port.
  const PortPeer& victim = physical.peer(27, physical.switch_ports_of(27)[0]);
  prober.fail_cable(victim.cable);
  std::printf("\n*** cable between switch 27 and switch %d failed ***\n",
              victim.sw);

  const MapDiff diff = mgr.refresh();
  std::printf("mapper: %zu cable(s) vanished, %zu switch(es) lost, "
              "routes rebuilt (%d rebuild(s) so far)\n",
              diff.cables_removed.size(), diff.switches_removed.size(),
              mgr.rebuilds());

  const double after = run_uniform(mgr.map().topo, mgr.itb_routes(), 0.02);
  std::printf("ITB-RR accepted traffic after recovery: %.4f "
              "flits/ns/switch (%.0f%% of pre-failure)\n",
              after, 100.0 * after / before);
  return 0;
}
