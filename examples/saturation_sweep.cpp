// Example: generating a latency-vs-traffic curve (one panel of the
// paper's Figure 7) for a chosen network and routing scheme, with CSV
// output suitable for plotting.
//
//   $ ./examples/saturation_sweep torus ITB-RR /tmp/curve.csv
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  using namespace itb;
  const std::string topo_name = argc > 1 ? argv[1] : "torus";
  const std::string scheme_name = argc > 2 ? argv[2] : "ITB-RR";
  const std::string csv = argc > 3 ? argv[3] : "";

  Testbed tb = [&] {
    if (topo_name == "express") return Testbed(make_torus_2d_express(8, 8, 8));
    if (topo_name == "cplant") return Testbed(make_cplant());
    return Testbed(make_torus_2d(8, 8, 8));
  }();

  RoutingScheme scheme = RoutingScheme::kItbRr;
  for (const RoutingScheme s :
       {RoutingScheme::kUpDown, RoutingScheme::kItbSp, RoutingScheme::kItbRr,
        RoutingScheme::kItbRnd, RoutingScheme::kItbAdapt}) {
    if (scheme_name == to_string(s)) scheme = s;
  }

  UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.warmup = us(150);
  cfg.measure = us(400);
  const auto sat = find_saturation(tb, scheme, pattern, cfg, 0.006, 1.25, 18);
  print_series(std::cout, topo_name + " uniform", to_string(scheme),
               sat.trace);
  if (sat.saturated) {
    std::printf("\nsaturation throughput: %.4f flits/ns/switch "
                "(first saturating load %.4f)\n",
                sat.throughput, sat.saturating_load);
  } else {
    std::printf("\nladder exhausted without saturating; highest accepted "
                "%.4f flits/ns/switch at load %.4f\n",
                sat.throughput, sat.saturating_load);
  }
  if (!csv.empty()) {
    append_series_csv(csv, topo_name, to_string(scheme), sat.trace);
    std::printf("series appended to %s\n", csv.c_str());
  }
  return 0;
}
