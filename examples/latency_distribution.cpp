// Example: latency *distributions*, not just averages.
//
// The paper plots averages; the tails tell the congestion story —
// up*/down*'s root bottleneck shows up as a heavy P99 long before the
// mean moves.  Prints a percentile table and a coarse ASCII CCDF for the
// three schemes at a load near UP/DOWN saturation on the 8x8 torus.
//
//   $ ./examples/latency_distribution [load]
#include <cstdio>
#include <cstdlib>

#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  using namespace itb;
  const double load = argc > 1 ? std::atof(argv[1]) : 0.015;

  Testbed tb(make_torus_2d(8, 8, 8));
  UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = load;
  cfg.warmup = us(150);
  cfg.measure = us(500);

  std::printf("torus 8x8, uniform, load %.4f flits/ns/switch\n\n", load);
  std::printf("%-10s %10s %10s %10s %12s %10s\n", "scheme", "mean(ns)",
              "p50(ns)", "p99(ns)", "ci95(+-ns)", "itb/msg");
  for (const RoutingScheme s : {RoutingScheme::kUpDown, RoutingScheme::kItbSp,
                                RoutingScheme::kItbRr}) {
    const RunResult r = run_point(tb, s, pattern, cfg);
    std::printf("%-10s %10.1f %10.1f %10.1f %12.1f %10.2f%s\n", to_string(s),
                r.avg_latency_ns, r.p50_latency_ns, r.p99_latency_ns,
                r.latency_ci95_ns, r.avg_itbs,
                r.saturated ? "  (saturated)" : "");
  }
  std::printf(
      "\nExpect UP/DOWN's p99 to blow up first as the load approaches its\n"
      "saturation point (~0.02 here): the root switch area serialises a\n"
      "growing share of the packets while the median stays modest.\n");
  return 0;
}
