// Example: visualising where traffic concentrates (the paper's Figure 8).
// Runs the 8x8 torus at a chosen load under UP/DOWN and ITB-RR and prints
// ASCII utilization maps: watch the hot column near the root switch (top
// left) disappear when in-transit buffers spread the traffic.
//
//   $ ./examples/linkutil_map [load]
#include <cstdio>
#include <cstdlib>

#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "metrics/link_util.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  using namespace itb;
  const double load = argc > 1 ? std::atof(argv[1]) : 0.015;

  Testbed tb(make_torus_2d(8, 8, 8));
  UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = load;
  cfg.warmup = us(150);
  cfg.measure = us(400);
  cfg.collect_link_util = true;

  for (const RoutingScheme s : {RoutingScheme::kUpDown, RoutingScheme::kItbRr}) {
    const RunResult r = run_point(tb, s, pattern, cfg);
    std::printf("\n=== %s at %.4f flits/ns/switch (accepted %.4f) ===\n",
                to_string(s), load, r.accepted);
    std::printf("utilization of each switch's +x (\">\") and +y (\"v\") "
                "channels; root is switch 00 (top left):\n\n%s\n",
                render_grid_utilization(r.link_util, tb.topo()).c_str());
    const auto sum = summarize_link_utilization(r.link_util, tb.topo(), 0);
    std::printf("max %.0f%% | near root %.0f%% | elsewhere %.0f%% | "
                "links <10%%: %.0f%%\n",
                100 * sum.max_utilization, 100 * sum.max_near_root,
                100 * sum.max_far_from_root, 100 * sum.fraction_below_10pct);
  }
  return 0;
}
