# Empty compiler generated dependencies file for linkutil_map.
# This may be replaced when dependencies are built.
