file(REMOVE_RECURSE
  "CMakeFiles/linkutil_map.dir/linkutil_map.cpp.o"
  "CMakeFiles/linkutil_map.dir/linkutil_map.cpp.o.d"
  "linkutil_map"
  "linkutil_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkutil_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
