# Empty dependencies file for saturation_sweep.
# This may be replaced when dependencies are built.
