file(REMOVE_RECURSE
  "CMakeFiles/saturation_sweep.dir/saturation_sweep.cpp.o"
  "CMakeFiles/saturation_sweep.dir/saturation_sweep.cpp.o.d"
  "saturation_sweep"
  "saturation_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saturation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
