# Empty dependencies file for latency_distribution.
# This may be replaced when dependencies are built.
