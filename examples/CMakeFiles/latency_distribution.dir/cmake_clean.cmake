file(REMOVE_RECURSE
  "CMakeFiles/latency_distribution.dir/latency_distribution.cpp.o"
  "CMakeFiles/latency_distribution.dir/latency_distribution.cpp.o.d"
  "latency_distribution"
  "latency_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
