// Quickstart: build the paper's 8x8 torus, route it three ways (UP/DOWN,
// ITB-SP, ITB-RR), push uniform traffic at a moderate load, and print what
// the library measures.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

int main() {
  using namespace itb;

  // The paper's 2-D torus: 64 16-port switches, 8 hosts each (512 hosts).
  Testbed tb(make_torus_2d(8, 8, /*hosts_per_switch=*/8));
  std::printf("topology: %s — %d switches, %d hosts, %d cables\n",
              tb.topo().name().c_str(), tb.topo().num_switches(),
              tb.topo().num_hosts(), tb.topo().num_cables());

  UniformPattern uniform(tb.topo().num_hosts());

  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.012;  // just below UP/DOWN saturation
  cfg.payload_bytes = 512;
  cfg.warmup = us(100);
  cfg.measure = us(300);

  std::printf("\nload = %.4f flits/ns/switch, 512-byte messages, uniform\n\n",
              cfg.load_flits_per_ns_per_switch);
  std::printf("%-10s %10s %12s %10s %8s\n", "scheme", "accepted",
              "latency(ns)", "p99(ns)", "ITB/msg");
  for (const RoutingScheme s : {RoutingScheme::kUpDown, RoutingScheme::kItbSp,
                                RoutingScheme::kItbRr}) {
    const RunResult r = run_point(tb, s, uniform, cfg);
    std::printf("%-10s %10.4f %12.1f %10.1f %8.2f%s\n", to_string(s),
                r.accepted, r.avg_latency_ns, r.p99_latency_ns, r.avg_itbs,
                r.saturated ? "  (saturated)" : "");
  }
  return 0;
}
