// Example: using the library on a user-defined network.
//
// The ITB mechanism was originally proposed for irregular NOWs; this
// example builds a random irregular 16-switch network (the style of
// cluster the paper's introduction motivates), prints its up*/down*
// structure, and compares UP/DOWN with ITB-RR on it.
//
//   $ ./examples/custom_topology [seed]
#include <cstdio>
#include <cstdlib>

#include "core/route_stats.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/testbed.hpp"
#include "sim/rng.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

int main(int argc, char** argv) {
  using namespace itb;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  Rng rng(seed);
  // Sparse wiring (3 inter-switch ports per switch) gives the long,
  // constrained paths where up*/down* hurts and in-transit buffers help.
  Topology topo = make_irregular(/*num_switches=*/24, /*hosts_per_switch=*/4,
                                 /*max_switch_ports=*/3, rng);
  std::printf("irregular network (seed %llu): %d switches, %d hosts, "
              "%d cables\n",
              static_cast<unsigned long long>(seed), topo.num_switches(),
              topo.num_hosts(), topo.num_cables());

  Testbed tb(std::move(topo));
  std::printf("up*/down* root: switch %d\n", tb.updown().root());

  // Static route facts: how much does up*/down* restrict this network?
  const auto ud_stats = analyze_routes(tb.topo(), tb.routes(RoutingScheme::kUpDown));
  const auto itb_stats = analyze_routes(tb.topo(), tb.routes(RoutingScheme::kItbSp));
  std::printf("UP/DOWN: avg distance %.2f, %.0f%% of pairs minimal\n",
              ud_stats.avg_hops_sp, 100 * ud_stats.minimal_fraction_sp);
  std::printf("ITB:     avg distance %.2f (always minimal), "
              "%.2f in-transit hosts per route\n",
              itb_stats.avg_hops_sp, itb_stats.avg_itbs_sp);

  // Dynamic comparison: saturation throughput under uniform traffic.
  UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.warmup = us(100);
  cfg.measure = us(300);
  for (const RoutingScheme s : {RoutingScheme::kUpDown, RoutingScheme::kItbRr}) {
    const auto sat = find_saturation(tb, s, pattern, cfg, 0.01, 1.3, 14);
    std::printf("%-8s saturation throughput: %.4f flits/ns/switch\n",
                to_string(s), sat.throughput);
  }
  return 0;
}
