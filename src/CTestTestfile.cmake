# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("topo")
subdirs("route")
subdirs("core")
subdirs("mapper")
subdirs("analysis")
subdirs("net")
subdirs("check")
subdirs("traffic")
subdirs("metrics")
subdirs("obs")
subdirs("harness")
