// Two-level calendar queue for POD events.
//
// Near future: a ring of 2^10 buckets, each 2^10 ps wide (~1 us horizon —
// covers every network delay up to the host-memory penalty; the ring's
// header array is 24 KB, small enough to live in cache).  Buckets are
// UNSORTED: push is an O(1) append, pop linearly scans the first non-empty
// bucket for its (time, seq) minimum and swap-removes it.  Steady-state
// buckets hold only a handful of events, so the scan is a few comparisons
// over contiguous memory and beats the memmove a sorted insert would pay
// (new events usually carry the latest time, i.e. the far end of a sorted
// bucket).  Far future (beyond the horizon): a 4-ary POD min-heap.  The
// global minimum is the smaller of the bucket minimum and the heap top,
// compared by (time, seq), so the FIFO-stable ordering contract of the
// legacy EventQueue is preserved exactly; far events are never migrated
// into the ring.
//
// The window start (`base_`) only advances lazily, past buckets verified
// empty while locating the minimum.  A push whose bucket index falls behind
// `base_` (possible when the scan overshot the clock) is clamped into the
// base bucket: the clamped event is earlier than everything in later
// buckets and the min-scan orders it correctly within the bucket by its
// true (time, seq) key.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace itb {

class CalendarQueue {
 public:
  static constexpr int kWidthBits = 10;   // 1024 ps per bucket
  static constexpr int kBucketBits = 10;  // 1024 buckets
  static constexpr std::uint64_t kBuckets = std::uint64_t{1} << kBucketBits;
  static constexpr TimePs kHorizonPs = TimePs{1} << (kWidthBits + kBucketBits);

  CalendarQueue() : near_(kBuckets) { far_.reserve(1024); }

  /// Schedule an event at absolute time `at` (>= 0).  Events with equal
  /// timestamps pop in push order.
  void push(TimePs at, EventKind kind, std::int32_t ch, std::int32_t a,
            void* p) {
    insert(Event{at, next_seq_++, p, ch, a, kind});
  }

  /// Schedule an event with a caller-supplied (time, seq) key instead of
  /// the internal push counter.  The parallel engine orders every lane's
  /// events by a push-time-derived key (see Simulator::next_shard_key) so
  /// events merged in from other lanes slot into the same total order the
  /// serial engine would have produced.  A queue must be driven entirely
  /// by one key scheme: mixing push() and push_keyed() breaks ordering.
  void push_keyed(TimePs at, std::uint64_t key, EventKind kind,
                  std::int32_t ch, std::int32_t a, void* p) {
    insert(Event{at, key, p, ch, a, kind});
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t peak_size() const { return peak_; }

  /// Drop all pending events and restart the sequence counter and window,
  /// keeping every bucket's capacity and the far heap's reserve.  Leaves the
  /// queue indistinguishable from a freshly constructed one (workspace-reuse
  /// determinism contract).
  void clear() {
    for (Bucket& b : near_) b.clear();
    far_.clear();
    base_ = 0;
    near_size_ = 0;
    size_ = 0;
    peak_ = 0;
    next_seq_ = 0;
    min_idx_ = 0;
    min_in_far_ = false;
  }

  /// Timestamp of the earliest pending event; kTimeNever when empty.  May
  /// advance the window cursor past empty buckets.
  [[nodiscard]] TimePs next_time() {
    const Event* m = find_min();
    return m != nullptr ? m->at : kTimeNever;
  }

  /// Remove and return the earliest event.  Requires !empty().
  Event pop();

  /// Pop the earliest event into `out` if it exists and its time is
  /// <= `deadline`; otherwise leave the queue untouched.  One minimum
  /// search per executed event — the run loop's fast path.
  bool pop_if_at_most(TimePs deadline, Event& out);

 private:
  using Bucket = std::vector<Event>;

  void insert(const Event& e) {
    std::uint64_t idx = static_cast<std::uint64_t>(e.at) >> kWidthBits;
    if (idx < base_) idx = base_;
    if (idx - base_ >= kBuckets) {
      far_push(e);
    } else {
      near_[idx & (kBuckets - 1)].push_back(e);
      ++near_size_;
    }
    ++size_;
    if (size_ > peak_) peak_ = size_;
  }

  /// Locate the global minimum (nullptr when empty), advancing base_ past
  /// empty buckets (amortised O(1): every bucket skipped stays skipped)
  /// and recording where the minimum lives for removal.
  [[nodiscard]] const Event* find_min() {
    min_in_far_ = false;
    const Event* near_min = nullptr;
    if (near_size_ > 0) {
      std::uint64_t b = base_;
      while (near_[b & (kBuckets - 1)].empty()) ++b;
      base_ = b;
      const Bucket& bkt = near_[b & (kBuckets - 1)];
      std::size_t best = 0;
      for (std::size_t i = 1; i < bkt.size(); ++i) {
        if (event_before(bkt[i], bkt[best])) best = i;
      }
      min_idx_ = best;
      near_min = &bkt[best];
    }
    if (far_.empty()) return near_min;
    const Event* far_min = &far_.front();
    if (near_min == nullptr || event_before(*far_min, *near_min)) {
      min_in_far_ = true;
      return far_min;
    }
    return near_min;
  }

  void remove_min();
  void far_push(const Event& e);
  void far_pop();

  std::vector<Bucket> near_;
  std::vector<Event> far_;  // 4-ary min-heap on (at, seq)
  std::uint64_t base_ = 0;  // absolute index of the window-start bucket
  std::size_t near_size_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t next_seq_ = 0;
  // Where the last find_min located the minimum (valid until mutation).
  std::size_t min_idx_ = 0;
  bool min_in_far_ = false;
};

}  // namespace itb
