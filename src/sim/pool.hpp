// Fixed-size thread pool and deterministic parallel-for used by the
// experiment drivers (run_replicated, sweep_loads, bench grids).
//
// Determinism contract: parallel_for_n(n, jobs, fn) calls fn(i) exactly
// once for every i in [0, n).  Each fn(i) must be a pure function of i
// (all mutable state constructed inside the call), writing its result to
// an index-ordered slot owned by the caller.  Under that contract the
// slot contents are bit-identical for every jobs value, because which
// thread runs a point can never influence what the point computes.
// jobs <= 1 (or n <= 1) runs inline on the calling thread in index
// order — the exact serial code path, no pool spun up.
#pragma once

#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include <condition_variable>

namespace itb {

/// How many workers to use by default: ITB_BENCH_JOBS when set to a
/// positive integer, otherwise std::thread::hardware_concurrency()
/// (never less than 1).
[[nodiscard]] int default_jobs();

/// A small fixed-size worker pool.  Jobs are run in submission order by
/// whichever worker frees up first; wait_idle() blocks until the queue is
/// drained and every worker is idle.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  void submit(std::function<void()> job);
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  int busy_ = 0;
  bool stopping_ = false;
};

namespace detail {
/// Runs fn(0..n-1) on a pool of `threads` workers; rethrows the first
/// exception any job threw after all jobs finish.  Re-entrant: a call made
/// from inside a pooled job runs inline on that worker in index order
/// (fanning out again would deadlock wait_idle or recruit workers whose
/// thread_local workspaces are mid-point).
void pooled_for(int n, int threads, const std::function<void(int)>& fn);
}  // namespace detail

/// Deterministic parallel for over [0, n): see the contract at the top of
/// this header.  `jobs` is clamped to [1, n].
template <typename Fn>
void parallel_for_n(int n, int jobs, Fn&& fn) {
  if (n <= 0) return;
  if (jobs <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  detail::pooled_for(n, jobs < n ? jobs : n,
                     std::function<void(int)>(std::forward<Fn>(fn)));
}

/// Index-ordered map: out[i] = fn(i), computed across `jobs` workers.
/// R must be default-constructible (slot vector is pre-sized).
template <typename R, typename Fn>
[[nodiscard]] std::vector<R> parallel_map(int n, int jobs, Fn&& fn) {
  std::vector<R> out(static_cast<std::size_t>(n > 0 ? n : 0));
  parallel_for_n(n, jobs, [&out, &fn](int i) {
    out[static_cast<std::size_t>(i)] = fn(i);
  });
  return out;
}

}  // namespace itb
