#include "sim/partition.hpp"

#include <algorithm>
#include <cassert>

#include "net/params.hpp"
#include "topo/topology.hpp"

namespace itb {

PartitionPlan make_contiguous_plan(const Topology& topo,
                                   const MyrinetParams& params, int shards) {
  PartitionPlan plan;
  const int switches = topo.num_switches();
  plan.shards = std::clamp(shards, 1,
                           std::min(switches, PartitionPlan::kMaxLanes));

  plan.switch_lane.resize(static_cast<std::size_t>(switches));
  for (SwitchId s = 0; s < switches; ++s) {
    // Contiguous blocks, balanced to within one switch.
    plan.switch_lane[static_cast<std::size_t>(s)] = static_cast<std::int16_t>(
        static_cast<std::int64_t>(s) * plan.shards / switches);
  }
  plan.host_lane.resize(static_cast<std::size_t>(topo.num_hosts()));
  for (HostId h = 0; h < topo.num_hosts(); ++h) {
    plan.host_lane[static_cast<std::size_t>(h)] =
        plan.lane_of_switch(topo.host(h).sw);
  }

  plan.lane_switches.assign(static_cast<std::size_t>(plan.shards), 0);
  for (SwitchId s = 0; s < switches; ++s) {
    ++plan.lane_switches[static_cast<std::size_t>(plan.lane_of_switch(s))];
  }

  plan.ch_send_lane.assign(static_cast<std::size_t>(topo.num_channels()), 0);
  plan.ch_recv_lane.assign(static_cast<std::size_t>(topo.num_channels()), 0);
  plan.lane_cut_channels.assign(static_cast<std::size_t>(plan.shards), 0);
  TimePs min_cut = kTimeNever;   // over cut cables only
  TimePs min_all = kTimeNever;   // fallback when nothing is cut
  for (CableId c = 0; c < topo.num_cables(); ++c) {
    const Cable& cb = topo.cable(c);
    const std::int16_t a_lane = plan.lane_of_switch(cb.a.sw);
    // Host cables: the host rides its switch's lane, so both halves agree.
    const std::int16_t b_lane =
        cb.to_host() ? plan.lane_of_host(cb.host) : plan.lane_of_switch(cb.b.sw);
    const ChannelId fwd = topo.channel_from(c, true);   // A side -> B side
    const ChannelId rev = topo.channel_from(c, false);  // B side -> A side
    plan.ch_send_lane[static_cast<std::size_t>(fwd)] = a_lane;
    plan.ch_recv_lane[static_cast<std::size_t>(fwd)] = b_lane;
    plan.ch_send_lane[static_cast<std::size_t>(rev)] = b_lane;
    plan.ch_recv_lane[static_cast<std::size_t>(rev)] = a_lane;
    const TimePs prop = params.cable_prop_delay(cb.length_m);
    min_all = std::min(min_all, prop);
    if (a_lane != b_lane) {
      assert(!cb.to_host());
      plan.boundary_channels += 2;
      plan.lane_cut_channels[static_cast<std::size_t>(a_lane)] += 2;
      plan.lane_cut_channels[static_cast<std::size_t>(b_lane)] += 2;
      min_cut = std::min(min_cut, prop);
    }
  }

  const TimePs l = min_cut != kTimeNever ? min_cut : min_all;
  plan.lookahead = l != kTimeNever && l >= 1 ? l : 1;
  return plan;
}

}  // namespace itb
