file(REMOVE_RECURSE
  "CMakeFiles/itb_workspace.dir/workspace.cpp.o"
  "CMakeFiles/itb_workspace.dir/workspace.cpp.o.d"
  "libitb_workspace.a"
  "libitb_workspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_workspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
