# Empty dependencies file for itb_workspace.
# This may be replaced when dependencies are built.
