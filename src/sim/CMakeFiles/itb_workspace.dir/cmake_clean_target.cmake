file(REMOVE_RECURSE
  "libitb_workspace.a"
)
