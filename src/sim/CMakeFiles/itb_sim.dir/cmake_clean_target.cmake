file(REMOVE_RECURSE
  "libitb_sim.a"
)
