# Empty dependencies file for itb_sim.
# This may be replaced when dependencies are built.
