file(REMOVE_RECURSE
  "CMakeFiles/itb_sim.dir/calendar_queue.cpp.o"
  "CMakeFiles/itb_sim.dir/calendar_queue.cpp.o.d"
  "CMakeFiles/itb_sim.dir/event_queue.cpp.o"
  "CMakeFiles/itb_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/itb_sim.dir/parallel_engine.cpp.o"
  "CMakeFiles/itb_sim.dir/parallel_engine.cpp.o.d"
  "CMakeFiles/itb_sim.dir/partition.cpp.o"
  "CMakeFiles/itb_sim.dir/partition.cpp.o.d"
  "CMakeFiles/itb_sim.dir/pool.cpp.o"
  "CMakeFiles/itb_sim.dir/pool.cpp.o.d"
  "CMakeFiles/itb_sim.dir/rng.cpp.o"
  "CMakeFiles/itb_sim.dir/rng.cpp.o.d"
  "CMakeFiles/itb_sim.dir/simulator.cpp.o"
  "CMakeFiles/itb_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/itb_sim.dir/stats.cpp.o"
  "CMakeFiles/itb_sim.dir/stats.cpp.o.d"
  "libitb_sim.a"
  "libitb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
