#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace itb {

namespace shard {
thread_local std::int32_t tl_lane = -1;
thread_local Simulator* tl_sim = nullptr;
}  // namespace shard

ParallelEngine::~ParallelEngine() { shutdown_workers(); }

void ParallelEngine::shutdown_workers() {
  if (lanes_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(epoch_mu_);
    shutdown_ = true;
  }
  epoch_cv_.notify_all();
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
  lanes_.clear();
  mailboxes_.clear();
  shutdown_ = false;
  epoch_ = 0;
}

void ParallelEngine::configure(PartitionPlan plan) {
  const int k = plan.shards;
  if (k != static_cast<int>(lanes_.size())) {
    shutdown_workers();
    lanes_.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) lanes_.push_back(std::make_unique<Lane>());
    mailboxes_.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
    for (int i = 0; i < k * k; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
    barrier_count_.store(0, std::memory_order_relaxed);
    barrier_sense_.store(0, std::memory_order_relaxed);
    for (int i = 0; i < k; ++i) {
      lanes_[static_cast<std::size_t>(i)]->thread =
          std::thread([this, i] { worker_main(i); });
    }
  }
  plan_ = std::move(plan);
  for (int i = 0; i < k; ++i) {
    Lane& lane = *lanes_[static_cast<std::size_t>(i)];
    lane.sim.reset(EngineKind::kPod);
    lane.sim.enable_shard_keys(i);
    lane.drain_buf.clear();
    lane.posted = 0;
    lane.posted_credits = 0;
    lane.barrier_wall_ns = 0;
    lane.win_ring.clear();
    lane.win_ring.shrink_to_fit();
    lane.win_recorded = 0;
  }
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lk(mb->mu);
    mb->pending.clear();
    mb->depth_peak = 0;
  }
  win_stats_cap_ = 0;
  synced_ = 0;
  windows_executed_ = 0;
  events_prev_ = 0;
  first_error_ = nullptr;
  failed_.store(false, std::memory_order_relaxed);
}

void ParallelEngine::bind(PodHandler* handler, ShardHooks* hooks) {
  hooks_ = hooks;
  for (auto& lane : lanes_) lane->sim.set_pod_handler(handler);
}

void ParallelEngine::post(int to_lane, const BoundaryMsg& m) {
  assert(shard::tl_lane >= 0 && "post() is for lane workers");
  const std::size_t idx =
      static_cast<std::size_t>(shard::tl_lane) * lanes_.size() +
      static_cast<std::size_t>(to_lane);
  Mailbox& mb = *mailboxes_[idx];
  {
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.pending.push_back(m);
    if (mb.pending.size() > mb.depth_peak) mb.depth_peak = mb.pending.size();
  }
  Lane& from = *lanes_[static_cast<std::size_t>(shard::tl_lane)];
  ++from.posted;
  if (m.kind == EventKind::kStopArrived || m.kind == EventKind::kGoArrived) {
    ++from.posted_credits;
  }
}

std::uint64_t ParallelEngine::barrier_wait(Lane& lane) {
  // Returns (and accumulates) the wall time this lane idled: the releasing
  // lane — the slowest arrival — measures ~0, so the sum over lanes is the
  // pure synchronization overhead the health fields surface.
  const auto t0 = std::chrono::steady_clock::now();
  const int n = static_cast<int>(lanes_.size());
  const int s = barrier_sense_.load(std::memory_order_relaxed);
  if (barrier_count_.fetch_add(1, std::memory_order_acq_rel) == n - 1) {
    barrier_count_.store(0, std::memory_order_relaxed);
    barrier_sense_.store(s ^ 1, std::memory_order_release);
  } else {
    int spins = 0;
    while (barrier_sense_.load(std::memory_order_acquire) == s) {
      if (++spins > 4096) std::this_thread::yield();
    }
  }
  const auto waited = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  lane.barrier_wall_ns += waited;
  return waited;
}

void ParallelEngine::drain_into(Lane& lane, int my_lane, TimePs until) {
  // Take ONLY the messages due in the upcoming window (at <= until).  The
  // lookahead argument guarantees every such message was posted at least
  // one barrier ago, so the eligible set is deterministic; messages beyond
  // `until` may or may not be present yet (a fast lane can already be
  // posting from the next window), and taking them opportunistically would
  // make per-lane calendar residency — and the peak-queue telemetry —
  // depend on thread scheduling.  They stay pending, in the producer's
  // deterministic FIFO order (one producer per mailbox), until due.
  lane.drain_buf.clear();
  const std::size_t k = lanes_.size();
  for (std::size_t from = 0; from < k; ++from) {
    Mailbox& mb = *mailboxes_[from * k + static_cast<std::size_t>(my_lane)];
    std::lock_guard<std::mutex> lk(mb.mu);
    std::size_t keep = 0;
    for (std::size_t i = 0; i < mb.pending.size(); ++i) {
      if (mb.pending[i].at <= until) {
        lane.drain_buf.push_back(mb.pending[i]);
      } else {
        mb.pending[keep++] = mb.pending[i];
      }
    }
    mb.pending.resize(keep);  // keeps capacity: allocation-free steady state
  }
  // Keys are globally unique (push time | lane | count), so this sort is a
  // total order and the merged schedule is deterministic.
  std::sort(lane.drain_buf.begin(), lane.drain_buf.end(),
            [](const BoundaryMsg& a, const BoundaryMsg& b) {
              return a.at < b.at || (a.at == b.at && a.key < b.key);
            });
  for (const BoundaryMsg& m : lane.drain_buf) hooks_->shard_apply_boundary(m);
}

void ParallelEngine::run_windows(Lane& lane, int my_lane, TimePs from,
                                 TimePs deadline) {
  const TimePs l = plan_.lookahead;
  TimePs w = from;
  std::uint64_t windows = 0;
  auto step = [&](TimePs start, TimePs stop, std::uint64_t bar_ns) {
    // After a lane failed, the others keep attending barriers (the window
    // count is the same for every lane) but stop simulating, so the epoch
    // winds down without deadlock and the coordinator can rethrow.
    if (failed_.load(std::memory_order_acquire)) return;
    try {
      if (win_stats_cap_ == 0) {
        drain_into(lane, my_lane, stop);
        lane.sim.run_until(stop);
        return;
      }
      // Window-stat recording is a pure observer: the clock reads and ring
      // write sit outside the simulated path entirely.
      const std::uint64_t posted0 = lane.posted;
      const std::uint64_t ev0 = lane.sim.events_executed();
      const auto t0 = std::chrono::steady_clock::now();
      drain_into(lane, my_lane, stop);
      const auto drained = static_cast<std::uint32_t>(lane.drain_buf.size());
      lane.sim.run_until(stop);
      LaneWindowStat st;
      st.t_start = start;
      st.t_end = stop;
      st.events = lane.sim.events_executed() - ev0;
      st.run_wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      st.barrier_wall_ns = bar_ns;
      st.drained = drained;
      st.posted = static_cast<std::uint32_t>(lane.posted - posted0);
      if (lane.win_ring.size() < win_stats_cap_) {
        lane.win_ring.push_back(st);
      } else {
        lane.win_ring[static_cast<std::size_t>(lane.win_recorded %
                                               win_stats_cap_)] = st;
      }
      ++lane.win_recorded;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      failed_.store(true, std::memory_order_release);
    }
  };
  while (w < deadline) {
    const std::uint64_t bar_ns = barrier_wait(lane);
    step(w, std::min(w + l, deadline) - 1, bar_ns);
    w += l;
    ++windows;
  }
  // Closing pass: messages posted during the final window may target a time
  // up to and including `deadline` itself; run them now.
  const std::uint64_t bar_ns = barrier_wait(lane);
  step(deadline, deadline, bar_ns);
  if (my_lane == 0) windows_executed_ += windows + 1;
}

void ParallelEngine::worker_main(int my_lane) {
  Lane& lane = *lanes_[static_cast<std::size_t>(my_lane)];
  shard::tl_lane = my_lane;
  shard::tl_sim = &lane.sim;
  for (;;) {
    TimePs from;
    TimePs deadline;
    {
      std::unique_lock<std::mutex> lk(epoch_mu_);
      epoch_cv_.wait(lk, [&] { return shutdown_ || epoch_ != lane.epoch_seen; });
      if (shutdown_) return;
      lane.epoch_seen = epoch_;
      from = synced_;
      deadline = epoch_deadline_;
    }
    run_windows(lane, my_lane, from, deadline);
    {
      std::lock_guard<std::mutex> lk(epoch_mu_);
      if (++workers_done_ == static_cast<int>(lanes_.size())) {
        done_cv_.notify_one();
      }
    }
  }
}

std::uint64_t ParallelEngine::run_until(TimePs deadline) {
  assert(!lanes_.empty() && "configure() first");
  assert(deadline != kTimeNever && "the window loop needs a finite horizon");
  if (deadline <= synced_) return 0;
  {
    std::lock_guard<std::mutex> lk(epoch_mu_);
    epoch_deadline_ = deadline;
    workers_done_ = 0;
    ++epoch_;
  }
  epoch_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(epoch_mu_);
    done_cv_.wait(lk, [&] { return workers_done_ == static_cast<int>(lanes_.size()); });
  }
  synced_ = deadline;
  if (failed_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(error_mu_);
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
  const std::uint64_t total = events_executed();
  const std::uint64_t delta = total - events_prev_;
  events_prev_ = total;
  return delta;
}

std::uint64_t ParallelEngine::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->sim.events_executed();
  return n;
}

std::uint64_t ParallelEngine::causality_violations() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->sim.causality_violations();
  return n;
}

std::size_t ParallelEngine::queue_len() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane->sim.queue_len();
  for (const auto& mb : mailboxes_) n += mb->pending.size();
  return n;
}

std::size_t ParallelEngine::peak_queue_len() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane->sim.peak_queue_len();
  return n;
}

std::uint64_t ParallelEngine::boundary_events() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->posted;
  return n;
}

std::uint64_t ParallelEngine::order_ties() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->sim.order_ties();
  return n;
}

std::uint64_t ParallelEngine::barrier_wait_ns_total() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->barrier_wall_ns;
  return n;
}

std::uint64_t ParallelEngine::cross_lane_credits() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->posted_credits;
  return n;
}

std::size_t ParallelEngine::mailbox_depth_peak() const {
  std::size_t n = 0;
  for (const auto& mb : mailboxes_) n = std::max(n, mb->depth_peak);
  return n;
}

double ParallelEngine::lane_imbalance() const {
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (const auto& lane : lanes_) {
    const std::uint64_t e = lane->sim.events_executed();
    total += e;
    max = std::max(max, e);
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(lanes_.size());
  return static_cast<double>(max) / mean;
}

void ParallelEngine::enable_window_stats(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  win_stats_cap_ = capacity;
  for (auto& lane : lanes_) {
    lane->win_ring.clear();
    lane->win_ring.reserve(capacity);
    lane->win_recorded = 0;
  }
}

std::vector<LaneWindowStat> ParallelEngine::window_stats(int i) const {
  const Lane& lane = *lanes_[static_cast<std::size_t>(i)];
  std::vector<LaneWindowStat> out;
  const std::size_t n = lane.win_ring.size();
  out.reserve(n);
  // When wrapped, the oldest surviving window sits at the write head.
  const std::size_t head =
      n == 0 ? 0 : static_cast<std::size_t>(lane.win_recorded % n);
  for (std::size_t j = 0; j < n; ++j) {
    out.push_back(lane.win_ring[lane.win_recorded > n ? (head + j) % n : j]);
  }
  return out;
}

void ParallelEngine::for_each_pending(
    const std::function<void(const BoundaryMsg&)>& fn) const {
  for (const auto& mb : mailboxes_) {
    for (const BoundaryMsg& m : mb->pending) fn(m);
  }
}

}  // namespace itb
