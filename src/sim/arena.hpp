// Monotonic per-run arena for transient hot-path allocations.
//
// The simulation engine's small dynamic containers (buffer-entry FIFOs,
// output-request lists, wire-order chunk lists, NIC queues) spill here when
// they outgrow their inline storage (see short_queue.hpp).  Allocation is a
// bump of a cursor inside a chunked block list; nothing is ever freed
// individually.  rewind() recycles every block for the next run, so a
// workspace that is reused across simulation points performs ZERO global
// heap allocations once the block list has grown to the workload's
// high-water mark — the property RunResult::heap_allocs_steady_state
// reports and bench_parallel_scaling tracks.
//
// Single-threaded by design: each Network owns one arena and a Network is
// only ever driven by one thread (the per-worker workspace contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace itb {

class Arena {
 public:
  static constexpr std::size_t kMinBlockBytes = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` (16-byte aligned).  Falls through to a new heap
  /// block only when every retained block is exhausted.
  [[nodiscard]] void* allocate(std::size_t bytes) {
    bytes = (bytes + 15) & ~std::size_t{15};
    while (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      if (b.used + bytes <= b.size) {
        void* p = b.mem.get() + b.used;
        b.used += bytes;
        in_use_ += bytes;
        if (in_use_ > peak_) peak_ = in_use_;
        return p;
      }
      ++cur_;  // block exhausted for this run; try the next retained one
    }
    const std::size_t size = bytes > kMinBlockBytes ? bytes : kMinBlockBytes;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, bytes});
    ++heap_block_allocs_;
    in_use_ += bytes;
    if (in_use_ > peak_) peak_ = in_use_;
    return blocks_.back().mem.get();
  }

  /// Recycle every block for the next run.  Spilled container buffers become
  /// dangling — callers must drop them (ShortQueue::reset) before rewinding.
  void rewind() {
    for (Block& b : blocks_) b.used = 0;
    cur_ = 0;
    in_use_ = 0;
    peak_ = 0;
  }

  /// Bytes handed out since the last rewind (live + abandoned-by-growth).
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  /// High-water mark of bytes_in_use() since the last rewind.
  [[nodiscard]] std::size_t bytes_peak() const { return peak_; }
  /// Cumulative count of new blocks obtained from the global heap (never
  /// reset by rewind: a reused workspace should stop incrementing it).
  [[nodiscard]] std::uint64_t heap_block_allocs() const {
    return heap_block_allocs_;
  }
  [[nodiscard]] std::size_t blocks_retained() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;  // first block with free space
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t heap_block_allocs_ = 0;
};

}  // namespace itb
