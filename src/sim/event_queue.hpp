// Deterministic discrete-event queue.
//
// A 4-ary min-heap keyed on (time, sequence-number).  The sequence number
// makes simultaneous events fire in scheduling order, which in turn makes
// every simulation a pure function of its inputs — a property the test
// suite asserts and the experiment harness relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace itb {

/// Event payload.  Captures should stay within the small-buffer optimisation
/// of std::function (one pointer plus one word on libstdc++) to keep the hot
/// loop allocation-free; all engine call sites follow that rule.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  EventQueue() { heap_.reserve(1024); }

  /// Schedule `fn` at absolute time `at`.  Events with equal timestamps fire
  /// in the order they were pushed.
  void push(TimePs at, EventFn fn) {
    heap_.push_back(Node{at, next_seq_++, std::move(fn)});
    sift_up(heap_.size() - 1);
    if (heap_.size() > peak_) peak_ = heap_.size();
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Drop all pending events and restart the sequence counter, keeping the
  /// heap's capacity.  Leaves the queue indistinguishable from a freshly
  /// constructed one (workspace-reuse determinism contract).
  void clear() {
    heap_.clear();
    next_seq_ = 0;
    peak_ = 0;
  }

  /// High-water mark of size() since construction.
  [[nodiscard]] std::size_t peak_size() const { return peak_; }

  /// Timestamp of the earliest pending event; kTimeNever when empty.
  [[nodiscard]] TimePs next_time() const {
    return heap_.empty() ? kTimeNever : heap_.front().at;
  }

  /// Remove the earliest event and return (time, fn).  Requires !empty().
  /// Convenience wrapper over pop_into (one extra EventFn move).
  std::pair<TimePs, EventFn> pop();

  /// Remove the earliest event in place: move its callback into `fn` and its
  /// time into `at` without materialising a pair.  Requires !empty().
  void pop_into(TimePs& at, EventFn& fn);

 private:
  struct Node {
    TimePs at;
    std::uint64_t seq;
    EventFn fn;
  };

  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  [[nodiscard]] static bool less(const Node& a, const Node& b) {
    return a.at < b.at || (a.at == b.at && a.seq < b.seq);
  }

  std::vector<Node> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace itb
