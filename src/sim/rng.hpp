// Deterministic pseudo-random number generation.
//
// The whole evaluation must be a pure function of its seeds, so we carry our
// own generator instead of depending on the (implementation-defined)
// distributions of <random>.  The generator is xoshiro256** seeded through
// SplitMix64, following the reference construction by Blackman & Vigna.
#pragma once

#include <cstdint>

namespace itb {

/// SplitMix64 step; used to expand a single seed into generator state and to
/// derive independent per-stream seeds (e.g. one stream per host).
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds the four state words via SplitMix64 so that any seed (including
  /// zero) produces a valid, well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Bernoulli trial with probability p in [0, 1].
  bool next_bool(double p);

  /// Derive an independent child generator; deterministic in (state, salt).
  Rng fork(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
};

}  // namespace itb
