#include "sim/simulator.hpp"

#include <cassert>

namespace itb {

void Simulator::schedule_in(TimePs delay, EventFn fn) {
  assert(delay >= 0);
  queue_.push(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(TimePs at, EventFn fn) {
  assert(at >= now_);
  queue_.push(at, std::move(fn));
}

std::uint64_t Simulator::run_until(TimePs deadline) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) break;
    auto [at, fn] = queue_.pop();
    now_ = at;
    fn();
    ++n;
  }
  executed_ += n;
  // Advance the clock to the deadline even if the queue drained early, so
  // that rate computations over [0, deadline] are well defined.
  if (deadline != kTimeNever && now_ < deadline && queue_.next_time() > deadline) {
    now_ = deadline;
  }
  return n;
}

std::uint64_t Simulator::run_while(const std::function<bool()>& keep_going) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_ && keep_going()) {
    auto [at, fn] = queue_.pop();
    now_ = at;
    fn();
    ++n;
  }
  executed_ += n;
  return n;
}

}  // namespace itb
