#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace itb {

void Simulator::schedule_fn(TimePs at, EventFn fn) {
  if (engine_ == EngineKind::kLegacy) {
    queue_.push(at, std::move(fn));
    return;
  }
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[static_cast<std::size_t>(slot)] = std::move(fn);
  } else {
    slot = static_cast<std::int32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  if (shard_lane_ >= 0) {
    calendar_.push_keyed(at, next_shard_key(), EventKind::kCallback,
                         /*ch=*/-1, /*a=*/slot, /*p=*/nullptr);
  } else {
    calendar_.push(at, EventKind::kCallback, /*ch=*/-1, /*a=*/slot,
                   /*p=*/nullptr);
  }
}

void Simulator::run_callback_slot(std::int32_t slot) {
  // Move the callback out before running it: the callback may schedule more
  // events and grow/reuse the slab.
  EventFn fn = std::move(slots_[static_cast<std::size_t>(slot)]);
  slots_[static_cast<std::size_t>(slot)] = nullptr;
  free_slots_.push_back(slot);
  fn();
}

std::uint64_t Simulator::run_until(TimePs deadline) {
  return engine_ == EngineKind::kPod ? run_until_pod(deadline)
                                     : run_until_legacy(deadline);
}

std::uint64_t Simulator::run_while(const std::function<bool()>& keep_going) {
  return engine_ == EngineKind::kPod ? run_while_pod(keep_going)
                                     : run_while_legacy(keep_going);
}

std::uint64_t Simulator::run_until_legacy(TimePs deadline) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  TimePs at;
  EventFn fn;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) break;
    queue_.pop_into(at, fn);
    if (at < now_) ++causality_violations_;
    now_ = at;
    fn();
    ++n;
  }
  executed_ += n;
  // Advance the clock to the deadline even if the queue drained early, so
  // that rate computations over [0, deadline] are well defined.
  if (deadline != kTimeNever && now_ < deadline && queue_.next_time() > deadline) {
    now_ = deadline;
  }
  return n;
}

std::uint64_t Simulator::run_until_pod(TimePs deadline) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  Event e;
  while (!stop_requested_ && calendar_.pop_if_at_most(deadline, e)) {
    if (e.at < now_) ++causality_violations_;
    now_ = e.at;
    if (shard_lane_ >= 0) {
      // Order-tie detection: adjacent events with equal (time, push time)
      // minted by different lanes are the one place the shard-key order is
      // free to differ from the serial push order (see next_shard_key).
      if (e.at == tie_at_ &&
          (e.seq >> kShardTimeShift) == (tie_key_ >> kShardTimeShift) &&
          (e.seq >> kShardCountBits) != (tie_key_ >> kShardCountBits)) {
        ++order_ties_;
      }
      tie_at_ = e.at;
      tie_key_ = e.seq;
    }
    if (e.kind == EventKind::kCallback) {
      run_callback_slot(e.a);
    } else {
      handler_->handle_event(e);
    }
    ++n;
  }
  executed_ += n;
  if (deadline != kTimeNever && now_ < deadline &&
      calendar_.next_time() > deadline) {
    now_ = deadline;
  }
  return n;
}

std::uint64_t Simulator::run_while_legacy(
    const std::function<bool()>& keep_going) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  TimePs at;
  EventFn fn;
  while (!queue_.empty() && !stop_requested_ && keep_going()) {
    queue_.pop_into(at, fn);
    if (at < now_) ++causality_violations_;
    now_ = at;
    fn();
    ++n;
  }
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_while_pod(const std::function<bool()>& keep_going) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!calendar_.empty() && !stop_requested_ && keep_going()) {
    const Event e = calendar_.pop();
    if (e.at < now_) ++causality_violations_;
    now_ = e.at;
    if (e.kind == EventKind::kCallback) {
      run_callback_slot(e.a);
    } else {
      handler_->handle_event(e);
    }
    ++n;
  }
  executed_ += n;
  return n;
}

}  // namespace itb
