#include "sim/calendar_queue.hpp"

#include <cassert>

namespace itb {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

void CalendarQueue::remove_min() {
  if (min_in_far_) {
    far_pop();
  } else {
    Bucket& bkt = near_[base_ & (kBuckets - 1)];
    bkt[min_idx_] = bkt.back();  // order within a bucket is irrelevant
    bkt.pop_back();
    --near_size_;
  }
  --size_;
}

Event CalendarQueue::pop() {
  assert(size_ > 0);
  const Event e = *find_min();
  remove_min();
  return e;
}

bool CalendarQueue::pop_if_at_most(TimePs deadline, Event& out) {
  if (size_ == 0) return false;
  const Event* m = find_min();
  if (m->at > deadline) return false;
  out = *m;
  remove_min();
  return true;
}

void CalendarQueue::far_push(const Event& e) {
  far_.push_back(e);
  std::size_t i = far_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!event_before(far_[i], far_[parent])) break;
    std::swap(far_[i], far_[parent]);
    i = parent;
  }
}

void CalendarQueue::far_pop() {
  far_.front() = far_.back();
  far_.pop_back();
  const std::size_t n = far_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        (first_child + kArity < n) ? first_child + kArity : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (event_before(far_[c], far_[best])) best = c;
    }
    if (!event_before(far_[best], far_[i])) break;
    std::swap(far_[i], far_[best]);
    i = best;
  }
}

}  // namespace itb
