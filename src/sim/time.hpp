// Simulation time base.
//
// All simulated time is kept in signed 64-bit *picoseconds* so that every
// Myrinet constant used by the paper (6.25 ns/flit, 49.2 ns of wire,
// 150 ns routing, 275 ns ITB detection, 200 ns DMA setup) is representable
// exactly.  An int64 picosecond clock overflows after ~106 days of
// simulated time; the longest run in this repository is a few milliseconds.
#pragma once

#include <cstdint>

namespace itb {

/// Simulated time in picoseconds.
using TimePs = std::int64_t;

/// Sentinel for "no deadline" / "never".
inline constexpr TimePs kTimeNever = INT64_MAX;

/// Convert nanoseconds (possibly fractional constants written as double
/// literals in configuration code) to picoseconds.  Only used on
/// configuration paths, never in the hot simulation loop.
constexpr TimePs ns(double v) { return static_cast<TimePs>(v * 1000.0 + 0.5); }

/// Convert integral nanoseconds to picoseconds exactly.
constexpr TimePs ns(std::int64_t v) { return v * 1000; }

/// Convert integral microseconds to picoseconds exactly.
constexpr TimePs us(std::int64_t v) { return v * 1'000'000; }

/// Convert integral milliseconds to picoseconds exactly.
constexpr TimePs ms(std::int64_t v) { return v * 1'000'000'000; }

/// Picoseconds back to (double) nanoseconds, for reporting only.
constexpr double to_ns(TimePs t) { return static_cast<double>(t) / 1000.0; }

}  // namespace itb
