// ShortQueue<T, N>: contiguous FIFO/vector hybrid with inline storage for
// the N-element common case and arena spill beyond it.
//
// The engine's per-channel lists (buffer entries, wire-order chunk lists,
// output requests) and per-NIC queues hold 1-4 elements almost always, so
// std::deque/std::vector paid a heap allocation (or a deque block walk) for
// state that fits in the parent struct.  This container keeps those
// elements inline, and when a queue does grow past N (deep backlogs past
// saturation) the buffer comes from the owning Network's monotonic Arena —
// never the global heap — so steady-state simulation performs no malloc at
// all (see arena.hpp).
//
// Contract:
//  * T must be trivially copyable (elements move by memcpy, no destructors).
//  * The queue itself is trivially copyable: relocating the parent struct
//    (vector resize during Network::reset) carries inline elements along
//    and spilled buffers by pointer.  Callers never copy a live queue into
//    a second live owner.
//  * reset(arena) drops any spilled buffer WITHOUT freeing (the arena owns
//    the memory) — call it before Arena::rewind, never after.
//  * pop_front is O(1) (a cursor bump); the buffer is compacted or grown
//    only when push_back hits the physical end.  Growth policy is a pure
//    function of the element counts, so reused and fresh containers behave
//    identically — part of the workspace determinism contract.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "sim/arena.hpp"

namespace itb {

template <typename T, int N>
class ShortQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "ShortQueue elements relocate by memcpy");
  static_assert(N >= 1);

 public:
  /// Drop every element and any spilled buffer and (re)bind the arena used
  /// for future spills.  The spilled buffer is abandoned to the arena.
  void reset(Arena* arena) {
    arena_ = arena;
    heap_ = nullptr;
    cap_ = N;
    begin_ = 0;
    end_ = 0;
  }

  [[nodiscard]] bool empty() const { return begin_ == end_; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(end_ - begin_);
  }

  [[nodiscard]] T* begin() { return data() + begin_; }
  [[nodiscard]] T* end() { return data() + end_; }
  [[nodiscard]] const T* begin() const { return data() + begin_; }
  [[nodiscard]] const T* end() const { return data() + end_; }

  [[nodiscard]] T& front() {
    assert(!empty());
    return data()[begin_];
  }
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return data()[begin_];
  }
  [[nodiscard]] T& back() {
    assert(!empty());
    return data()[end_ - 1];
  }
  [[nodiscard]] const T& back() const {
    assert(!empty());
    return data()[end_ - 1];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size());
    return data()[begin_ + static_cast<std::int32_t>(i)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size());
    return data()[begin_ + static_cast<std::int32_t>(i)];
  }

  void push_back(const T& v) {
    if (end_ == cap_) make_room();
    data()[end_++] = v;
  }

  void pop_front() {
    assert(!empty());
    ++begin_;
    if (begin_ == end_) begin_ = end_ = 0;  // empty: reclaim the whole buffer
  }

  /// Remove the element `it` points at (shifts the tail left one slot).
  /// Iterators/references past `it` are invalidated.
  void erase(T* it) {
    assert(it >= begin() && it < end());
    std::memmove(it, it + 1,
                 static_cast<std::size_t>(end() - it - 1) * sizeof(T));
    --end_;
    if (begin_ == end_) begin_ = end_ = 0;
  }

 private:
  [[nodiscard]] T* data() {
    return heap_ != nullptr ? heap_ : reinterpret_cast<T*>(inline_);
  }
  [[nodiscard]] const T* data() const {
    return heap_ != nullptr ? heap_ : reinterpret_cast<const T*>(inline_);
  }

  /// Out of physical room at the back: slide the live range to the front
  /// when at most half the buffer is occupied, otherwise double into the
  /// arena.  Pure function of (begin_, end_, cap_) — deterministic.
  void make_room() {
    const std::int32_t live = end_ - begin_;
    if (begin_ > 0 && live * 2 <= cap_) {
      std::memmove(data(), data() + begin_,
                   static_cast<std::size_t>(live) * sizeof(T));
    } else {
      assert(arena_ != nullptr && "ShortQueue spilled before reset(arena)");
      const std::int32_t new_cap = cap_ * 2;
      T* nb = static_cast<T*>(
          arena_->allocate(static_cast<std::size_t>(new_cap) * sizeof(T)));
      std::memcpy(nb, data() + begin_,
                  static_cast<std::size_t>(live) * sizeof(T));
      heap_ = nb;  // the previous spill (if any) is abandoned to the arena
      cap_ = new_cap;
    }
    begin_ = 0;
    end_ = live;
  }

  T* heap_ = nullptr;        // nullptr: elements live in inline_
  Arena* arena_ = nullptr;   // spill source; bound by reset()
  std::int32_t cap_ = N;     // physical slots in the active buffer
  std::int32_t begin_ = 0;   // first live slot
  std::int32_t end_ = 0;     // one past the last live slot
  alignas(T) std::byte inline_[static_cast<std::size_t>(N) * sizeof(T)];
};

}  // namespace itb
