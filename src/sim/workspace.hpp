// Per-worker simulation workspace: the component stack one thread needs to
// run simulation points (Simulator, Network, MetricsCollector,
// TrafficGenerator), RESET between points instead of reconstructed.
//
// Why: the parallel drivers used to construct and tear down the whole stack
// for every point.  Construction is hundreds of container allocations
// (channels, buffers, calendar buckets, packet storage), so replicated
// sweeps hammered the global allocator from every worker at once and
// per-worker throughput *fell* as jobs rose.  A workspace keeps all of that
// capacity alive: prepare() rewinds the arena, clears the queues, rewires
// the network in place, and the next point runs with zero steady-state heap
// allocations (see sim/arena.hpp).
//
// Determinism contract: a point run in a reused workspace is bit-identical
// to the same point run in a freshly constructed one — same RNG streams,
// same (time, seq) event order, same RunResult — in both engines and in
// checked mode.  Every component's reset() is written against that contract
// and test_workspace enforces it, including across different topologies in
// one workspace.  Host-side observability (workspace_reuses,
// heap_allocs_steady_state) legitimately differs and is excluded from
// same_simulated_metrics.
//
// Threading: a workspace belongs to ONE thread; this_thread_workspace()
// hands each worker its own thread_local instance, which survives across
// driver calls because the harness keeps its worker pools alive (see
// harness/pool.cpp).
#pragma once

#include <cstdint>
#include <optional>

#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace itb {

class SimWorkspace {
 public:
  SimWorkspace() = default;
  SimWorkspace(const SimWorkspace&) = delete;
  SimWorkspace& operator=(const SimWorkspace&) = delete;

  /// Reset (or first-construct) the simulator, network and metrics
  /// collector for one simulation point.  After this call the stack is
  /// indistinguishable from freshly constructed objects: clock at zero,
  /// queues empty, ledgers clean, callbacks cleared.
  ///
  /// With engine == kPodParallel the simulation is sharded across `shards`
  /// lanes (clamped by the partition plan): sim() becomes the coordinator
  /// clock (watchdog ticks, empty-queue time pinning) and the lanes live in
  /// engine(); drive both through the window protocol (see
  /// harness/runner.cpp).  `shards` is ignored by the serial engines.
  void prepare(EngineKind engine, const Topology& topo, const RouteSet& routes,
               const MyrinetParams& params, PathPolicy policy,
               std::uint64_t net_seed, int shards = 1);

  /// Reset (or first-construct) the traffic generator against the prepared
  /// network.  Call after prepare().
  TrafficGenerator& generator(const DestinationPattern& pattern,
                              TrafficConfig cfg);

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Network& net() { return *net_; }
  [[nodiscard]] MetricsCollector& metrics() { return *metrics_; }
  /// The conservative parallel engine (valid after a kPodParallel
  /// prepare()).  Worker threads persist across points like every other
  /// warmed resource in this workspace.
  [[nodiscard]] ParallelEngine& engine() { return par_; }
  /// Did the last prepare() shard the simulation?
  [[nodiscard]] bool parallel() const { return parallel_; }

  /// Per-workspace telemetry buffers (src/obs/).  Owned here so traced runs
  /// honor the reuse contract: the tracer ring and profiler table keep
  /// their storage across points.  prepare() does NOT attach them — the
  /// harness does, only for runs that asked for tracing/profiling.
  [[nodiscard]] PacketTracer& tracer() { return tracer_; }
  [[nodiscard]] PhaseProfiler& profiler() { return profiler_; }

  /// Per-lane telemetry for sharded runs: one tracer ring / profiler per
  /// lane, written lock-free by the owning worker.  lane_tracers(k) returns
  /// the base of a k-element array (Network::set_tracer's sharded form);
  /// storage above k survives so alternating shard counts do not thrash.
  /// Same reuse contract as the serial buffers: the harness configures each
  /// element per point, and capacity persists across points.
  [[nodiscard]] PacketTracer* lane_tracers(int k) {
    if (static_cast<int>(lane_tracers_.size()) < k) lane_tracers_.resize(
        static_cast<std::size_t>(k));
    return lane_tracers_.data();
  }
  [[nodiscard]] std::vector<PacketTracer>& lane_tracer_vec() {
    return lane_tracers_;
  }
  [[nodiscard]] PhaseProfiler* lane_profilers(int k) {
    if (static_cast<int>(lane_profilers_.size()) < k) lane_profilers_.resize(
        static_cast<std::size_t>(k));
    return lane_profilers_.data();
  }
  [[nodiscard]] std::vector<PhaseProfiler>& lane_profiler_vec() {
    return lane_profilers_;
  }

  /// How many prepare() calls reused existing storage instead of
  /// constructing it (0 through a fresh workspace's first point).
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

 private:
  Simulator sim_;  // declared first: Network/generator hold its address
  ParallelEngine par_;  // idle (no threads) until a kPodParallel prepare()
  std::optional<Network> net_;
  std::optional<MetricsCollector> metrics_;
  std::optional<TrafficGenerator> gen_;
  PacketTracer tracer_;
  PhaseProfiler profiler_;
  std::vector<PacketTracer> lane_tracers_;      // sharded traced runs
  std::vector<PhaseProfiler> lane_profilers_;   // sharded profiled runs
  std::uint64_t reuses_ = 0;
  bool parallel_ = false;
};

/// The calling thread's own workspace.  Worker threads are persistent, so
/// the instance — and all its warmed capacity — survives across driver
/// calls for the lifetime of the thread.
[[nodiscard]] SimWorkspace& this_thread_workspace();

}  // namespace itb
