// POD event record for the hot simulation path.
//
// The legacy engine schedules type-erased std::function callbacks; the POD
// engine schedules trivially-copyable Event records that the network model
// dispatches through one switch.  Both engines share the same ordering
// contract: events fire by (time, seq), where seq is the scheduling order,
// so simultaneous events fire FIFO and every run is a pure function of its
// inputs.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace itb {

/// Which engine a Simulator runs.  kLegacy is the original
/// std::function-over-4-ary-heap loop (kept for A/B benchmarking and the
/// golden differential tests); kPod is the POD-event calendar-queue engine
/// with chunk-flow coalescing.  kPodParallel is a harness-level selector
/// (RunConfig::engine): one simulation sharded across RunConfig::shards
/// lanes, each lane an ordinary kPod Simulator driven by the conservative
/// window scheduler in sim/parallel_engine.hpp — a Simulator itself is
/// never constructed with kPodParallel.
enum class EngineKind : std::uint8_t { kLegacy, kPod, kPodParallel };

[[nodiscard]] inline const char* to_string(EngineKind e) {
  switch (e) {
    case EngineKind::kLegacy: return "legacy";
    case EngineKind::kPod: return "pod";
    case EngineKind::kPodParallel: return "pod_parallel";
  }
  return "?";
}

/// Compile-time default engine.  The ITB_LEGACY_EVENTS CMake option flips
/// the default back to the legacy engine for A/B measurements without
/// touching call sites.
#ifdef ITB_LEGACY_EVENTS
inline constexpr EngineKind kDefaultEngine = EngineKind::kLegacy;
#else
inline constexpr EngineKind kDefaultEngine = EngineKind::kPod;
#endif

/// Event taxonomy of the POD engine (dispatched in Network::handle_event,
/// except kCallback which the Simulator runs itself).
enum class EventKind : std::uint8_t {
  kCallback,      // generic std::function slot (traffic gen, tests, ...)
  kChunkSent,     // chunk left the sender (ch, a = flits)
  kChunkArrived,  // chunk landed in the receiver buffer (ch, a = flits)
  kBurstArrived,  // coalesced delivery tail: all suppressed flits land (ch, a)
  kStopArrived,   // stop control flit reached the sender (ch)
  kGoArrived,     // go control flit reached the sender (ch)
  kGrantDone,     // routing delay elapsed on an output channel (ch)
  kItbReady,      // detection + DMA programming finished (p = Packet*)
};

/// Trivially-copyable event record.  `seq` is assigned by the queue at push
/// time and makes the (at, seq) order total; `ch`/`a`/`p` are payload whose
/// meaning depends on `kind`.
struct Event {
  TimePs at;
  std::uint64_t seq;
  void* p;
  std::int32_t ch;
  std::int32_t a;
  EventKind kind;
};

static_assert(sizeof(Event) <= 40, "keep the hot event record compact");

/// Receiver of non-callback POD events (implemented by Network).
class PodHandler {
 public:
  virtual void handle_event(const Event& e) = 0;

 protected:
  ~PodHandler() = default;
};

/// (time, seq) strict weak order shared by both engine queues.
[[nodiscard]] inline bool event_before(const Event& a, const Event& b) {
  return a.at < b.at || (a.at == b.at && a.seq < b.seq);
}

}  // namespace itb
