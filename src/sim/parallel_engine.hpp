// Conservative (lookahead/window) parallel driver for one sharded
// simulation.
//
// The simulation's element graph is split into K lanes by a PartitionPlan;
// each lane is an ordinary kPod Simulator (calendar queue, arena, POD
// handler) running in shard-key mode, pinned to one persistent worker
// thread.  Time advances in windows of width `lookahead` — the minimum
// propagation delay over cut cables — under a barrier scheme:
//
//   w = synced
//   while (w < deadline):
//     barrier                     # all lanes quiescent at their window end
//     drain my mailboxes          # apply cross-lane events, sorted by key
//     run_until(min(w+L, deadline) - 1)
//     w += L
//   barrier; drain; run_until(deadline)   # closing pass: events AT deadline
//
// Any event crossing a cut cable is delayed by >= L, so a message posted
// during window [w, w+L) targets a time >= w+L and is drained before the
// receiving lane enters that window: no lane ever receives an event in its
// past (Simulator::schedule_event_keyed_at counts any such occurrence as a
// causality violation, surfaced by the harness).  One barrier per window;
// mailboxes are quiescent during drains because posts only happen inside
// run_until, which every lane has left.
//
// Determinism: every event carries a key derived from its push time and
// pushing lane (Simulator::next_shard_key), minted by the pushing lane and
// carried through the mailbox, so local and remote events merge into the
// same total order the serial engine's global push counter encodes — up to
// pushes from different lanes at the exact same picosecond, which the lanes
// count (order_ties) so a differential test can assert the sharded schedule
// was bit-identical to the serial one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event.hpp"
#include "sim/partition.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace itb {

/// A cross-lane event in flight: the POD event payload plus the key minted
/// by the pushing lane, plus an optional piggybacked flow announcement (the
/// receiver-half `incoming` entry a cross-lane grant_done could not write
/// directly; applied just before the first chunk's arrival is scheduled).
struct BoundaryMsg {
  TimePs at;
  std::uint64_t key;
  void* announce_pkt;  // nullptr: no announcement rides along
  std::int32_t announce_len;
  std::int32_t ch;
  std::int32_t a;
  EventKind kind;
};

/// Receiver of drained boundary messages (implemented by Network): applies
/// any piggybacked announcement to lane-owned state, then schedules the
/// event on the current lane's Simulator with the carried key.
class ShardHooks {
 public:
  virtual void shard_apply_boundary(const BoundaryMsg& m) = 0;

 protected:
  ~ShardHooks() = default;
};

namespace shard {
/// Lane identity of the current thread (-1 on the coordinator).  The
/// Network's hot path reads these instead of taking a lane parameter:
/// cursim() is `tl_lane >= 0 ? *tl_sim : *serial_sim`.
extern thread_local std::int32_t tl_lane;
extern thread_local Simulator* tl_sim;
}  // namespace shard

/// One lookahead window as one lane experienced it (engine health layer;
/// recorded only while enable_window_stats() is on).  Simulated bounds plus
/// host-side wall clocks: `barrier_wall_ns` is the wait that preceded this
/// window (how long this lane idled for the slowest lane), `run_wall_ns`
/// the drain + run_until work itself — the per-window load-imbalance and
/// lookahead-slack signals the Perfetto health tracks render.
struct LaneWindowStat {
  TimePs t_start = 0;
  TimePs t_end = 0;                  // inclusive (run_until's contract)
  std::uint64_t events = 0;          // events this lane executed in-window
  std::uint64_t run_wall_ns = 0;
  std::uint64_t barrier_wall_ns = 0;
  std::uint32_t drained = 0;         // mailbox messages applied at entry
  std::uint32_t posted = 0;          // cross-lane messages sent in-window
};

class ParallelEngine {
 public:
  ParallelEngine() = default;
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  /// Adopt a partition plan for the next run: (re)create lanes and worker
  /// threads if the lane count changed (threads persist across runs
  /// otherwise — the workspace-reuse contract), reset every lane Simulator
  /// into shard-key mode, and clear all mailboxes and counters.
  void configure(PartitionPlan plan);

  /// Register the POD event receiver and boundary hook (the Network) on
  /// every lane.  Call after configure() and after the Network is reset.
  void bind(PodHandler* handler, ShardHooks* hooks);

  [[nodiscard]] const PartitionPlan& plan() const { return plan_; }
  [[nodiscard]] int lanes() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] Simulator& lane(int i) { return lanes_[static_cast<std::size_t>(i)]->sim; }
  [[nodiscard]] const Simulator& lane(int i) const {
    return lanes_[static_cast<std::size_t>(i)]->sim;
  }

  /// Advance every lane to `deadline` (events at exactly `deadline` still
  /// execute) through the window protocol above.  Blocks the calling thread
  /// until all lanes are synced at `deadline`.  Returns events executed
  /// across all lanes by this call.  Rethrows the first exception any lane
  /// worker raised.
  std::uint64_t run_until(TimePs deadline);

  /// Post a boundary message to `to_lane`'s mailbox (worker threads only;
  /// the sending lane is the calling thread's shard::tl_lane).
  void post(int to_lane, const BoundaryMsg& m);

  // --- aggregates over all lanes (coordinator thread, lanes quiescent) ---
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::uint64_t causality_violations() const;
  /// Pending events: lane calendars plus undrained mailbox messages — with
  /// the coordinator Simulator's own queue this equals the serial pending
  /// set exactly.
  [[nodiscard]] std::size_t queue_len() const;
  /// Sum of lane peaks: an upper bound, NOT comparable to the serial peak
  /// (lanes peak at different times).
  [[nodiscard]] std::size_t peak_queue_len() const;
  [[nodiscard]] std::uint64_t windows_executed() const { return windows_executed_; }
  /// Messages posted across lane boundaries.
  [[nodiscard]] std::uint64_t boundary_events() const;
  /// Same-picosecond cross-lane ordering ties (see header comment).
  [[nodiscard]] std::uint64_t order_ties() const;

  // --- engine health layer ----------------------------------------------
  // Cheap scalar counters below are always collected (O(1) per barrier /
  // post); the per-window ring is opt-in via enable_window_stats().

  /// Wall time lanes spent waiting at window barriers, summed over lanes —
  /// the sharding overhead that is NOT simulation work.
  [[nodiscard]] std::uint64_t barrier_wait_ns_total() const;
  /// Cross-lane stop/go credit messages (subset of boundary_events()).
  [[nodiscard]] std::uint64_t cross_lane_credits() const;
  /// Deepest any (from, to) mailbox ever got — backlog high-water mark.
  [[nodiscard]] std::size_t mailbox_depth_peak() const;
  /// Events executed by one lane (load-balance signal).
  [[nodiscard]] std::uint64_t lane_events(int i) const {
    return lanes_[static_cast<std::size_t>(i)]->sim.events_executed();
  }
  /// max / mean of per-lane event counts (1.0 = perfectly balanced; 0 when
  /// nothing ran).
  [[nodiscard]] double lane_imbalance() const;

  /// Start recording per-window LaneWindowStat rings (bounded: each lane
  /// keeps its most recent `capacity` windows, like the trace ring).  Call
  /// after configure(), before run_until(); configure() disables again.
  void enable_window_stats(std::size_t capacity);
  /// Lane `i`'s recorded windows in chronological order (coordinator
  /// thread, lanes quiescent).
  [[nodiscard]] std::vector<LaneWindowStat> window_stats(int i) const;

  /// Walk every undrained mailbox message (coordinator thread, lanes
  /// quiescent).  The Network's liveness census uses this: a packet's only
  /// live reference may be a piggybacked announcement still in flight.
  void for_each_pending(const std::function<void(const BoundaryMsg&)>& fn) const;

 private:
  struct Mailbox {
    std::mutex mu;
    std::vector<BoundaryMsg> pending;
    std::size_t depth_peak = 0;  // guarded by mu; read quiescent
  };

  struct alignas(64) Lane {
    Simulator sim{EngineKind::kPod};
    std::thread thread;
    std::vector<BoundaryMsg> drain_buf;  // reused across drains
    std::uint64_t posted = 0;            // messages this lane sent
    std::uint64_t posted_credits = 0;    // ... of which stop/go credits
    std::uint64_t barrier_wall_ns = 0;   // wall time idling at barriers
    std::uint64_t epoch_seen = 0;
    // Per-window stat ring (enable_window_stats): written by the owning
    // worker between barriers, read by the coordinator when quiescent (the
    // epoch handoff's mutex orders both).
    std::vector<LaneWindowStat> win_ring;
    std::uint64_t win_recorded = 0;
  };

  void worker_main(int my_lane);
  void run_windows(Lane& lane, int my_lane, TimePs from, TimePs deadline);
  void drain_into(Lane& lane, int my_lane, TimePs until);
  std::uint64_t barrier_wait(Lane& lane);
  void shutdown_workers();

  PartitionPlan plan_;
  ShardHooks* hooks_ = nullptr;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // [from * K + to]

  // Epoch handoff coordinator <-> workers (workers sleep between calls).
  std::mutex epoch_mu_;
  std::condition_variable epoch_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  int workers_done_ = 0;
  bool shutdown_ = false;
  TimePs epoch_deadline_ = 0;
  TimePs synced_ = 0;  // time every lane has reached

  // Sense-reversing spin barrier (workers only; bounded spin then yield).
  std::atomic<int> barrier_count_{0};
  std::atomic<int> barrier_sense_{0};

  std::uint64_t windows_executed_ = 0;
  std::uint64_t events_prev_ = 0;  // events_executed() at last run_until exit
  std::size_t win_stats_cap_ = 0;  // 0 = per-window rings disabled

  std::mutex error_mu_;
  std::exception_ptr first_error_;       // guarded by error_mu_
  std::atomic<bool> failed_{false};      // advisory fast flag for workers
};

}  // namespace itb
