// Static partition plan for the conservative parallel engine: which lane
// (shard) owns each switch, host and channel half of one simulation.
//
// The Network's mutable state decomposes cleanly by graph element: a
// channel's sender half (owner/flow/credit state) lives with the element
// the channel leaves, its receiver half (slack buffer, entries, stop/go
// emission) with the element it enters.  Hosts are pinned to their
// attachment switch's lane, so host<->switch channels never cross a lane
// boundary; only switch<->switch cables can be cut.  Every event that
// crosses a cut cable (a chunk arrival toward the receiver, a stop/go
// credit back toward the sender) is delayed by at least that cable's
// propagation delay, which is what makes the window scheme in
// sim/parallel_engine.hpp conservative: `lookahead` is the minimum
// propagation delay over the cut cables.
//
// The plan is partition-strategy-agnostic: the engine and the Network only
// consume the per-element lane tables below.  make_contiguous_plan is the
// first (and currently only) strategy — contiguous switch-index blocks,
// which on the paper's regular topologies (torus rows, express rings) cuts
// few cables and keeps neighbours together.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace itb {

class Topology;
struct MyrinetParams;

struct PartitionPlan {
  /// Number of lanes (>= 1).  Clamped by the builder to [1, min(switches,
  /// kMaxLanes)] — the event-key layout reserves 6 bits for the lane id.
  int shards = 1;
  static constexpr int kMaxLanes = 64;

  /// Conservative window width: minimum propagation delay over cut cables
  /// (with one lane, over all cables), always >= 1 ps.
  TimePs lookahead = 1;

  std::vector<std::int16_t> switch_lane;   // by SwitchId
  std::vector<std::int16_t> host_lane;     // by HostId (== its switch's lane)
  std::vector<std::int16_t> ch_send_lane;  // by ChannelId: sender-half owner
  std::vector<std::int16_t> ch_recv_lane;  // by ChannelId: receiver-half owner

  /// Channels whose two halves live on different lanes (both directions of
  /// every cut cable).
  int boundary_channels = 0;

  /// Per-lane observability, sized `shards`.  Dense low-diameter graphs cut
  /// most cables (a full mesh cuts all but the intra-block ones), so cut
  /// degree varies wildly between lanes; nothing in the engine is sized by
  /// these counts — mailboxes are per lane *pair* — but plan tests assert
  /// their consistency and the bench reports them.
  std::vector<int> lane_switches;      // switches owned by each lane
  std::vector<int> lane_cut_channels;  // boundary halves incident to each lane

  [[nodiscard]] std::int16_t lane_of_switch(std::int32_t s) const {
    return switch_lane[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::int16_t lane_of_host(std::int32_t h) const {
    return host_lane[static_cast<std::size_t>(h)];
  }
};

/// Contiguous block partition: switch s goes to lane s*shards/num_switches,
/// hosts follow their switch, channel halves follow their endpoints.
/// `shards` is clamped to [1, min(num_switches, PartitionPlan::kMaxLanes)].
[[nodiscard]] PartitionPlan make_contiguous_plan(const Topology& topo,
                                                 const MyrinetParams& params,
                                                 int shards);

}  // namespace itb
