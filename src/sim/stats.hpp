// Streaming statistics used by the metric collectors.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace itb {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset() { *this = RunningStats{}; }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram with overflow bucket; supports approximate
/// quantiles.  Used for latency distributions (bucket width in ns chosen by
/// the collector).
class Histogram {
 public:
  /// `bucket_width` > 0; values >= bucket_width*num_buckets land in the
  /// overflow bucket (counted, and quantiles saturate at the top edge).
  Histogram(double bucket_width, std::size_t num_buckets);

  void add(double x);
  /// Zero every bucket in place (no reallocation — reset_window and
  /// workspace reuse call this once per measurement window).
  void clear() {
    buckets_.assign(buckets_.size(), 0);
    overflow_ = 0;
    total_ = 0;
  }
  [[nodiscard]] std::uint64_t count() const { return total_; }
  /// q in [0,1]; returns the upper edge of the bucket containing the
  /// q-quantile.  Requires count() > 0.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  [[nodiscard]] double bucket_width() const { return width_; }

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace itb
