// Discrete-event simulator core loop.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace itb {

/// Owns the clock and the event queue and drives the run loop.  Components
/// hold a reference to the Simulator and schedule callbacks on it; they must
/// outlive the run.
///
/// Two engines share this interface (selected at construction):
///  - kLegacy: std::function callbacks over the 4-ary EventQueue heap.
///  - kPod: trivially-copyable Event records over the CalendarQueue,
///    dispatched to the registered PodHandler (the Network).  schedule_in /
///    schedule_at still work — the callback is parked in a slot slab and
///    fired through a kCallback event — so generators, detectors and tests
///    are engine-agnostic.
/// Both engines uphold the same contract: events fire by (time, seq), equal
/// timestamps in scheduling order.
class Simulator {
 public:
  explicit Simulator(EngineKind engine = kDefaultEngine) : engine_(engine) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] EngineKind engine() const { return engine_; }

  /// Return the simulator to its just-constructed state (clock at 0, empty
  /// queues, counters zeroed, no pod handler), keeping queue/slab capacity.
  /// The next run is bit-identical to one on a fresh Simulator — the
  /// workspace-reuse determinism contract (see sim/workspace.hpp).
  void reset(EngineKind engine) {
    assert(engine != EngineKind::kPodParallel &&
           "lanes of a sharded run are plain kPod Simulators");
    engine_ = engine;
    queue_.clear();
    calendar_.clear();
    handler_ = nullptr;
    for (EventFn& fn : slots_) fn = nullptr;  // release captures, keep slab
    slots_.clear();
    free_slots_.clear();
    now_ = 0;
    executed_ = 0;
    causality_violations_ = 0;
    stop_requested_ = false;
    shard_lane_ = -1;
    key_t_ = -1;
    key_n_ = 0;
    tie_at_ = -1;
    tie_key_ = 0;
    order_ties_ = 0;
  }

  /// Current simulated time.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Total events executed so far (monotone; useful as a progress measure
  /// and as a runaway guard in tests).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Events that would have run before the current clock (always-on
  /// causality ledger; any non-zero value is a queue-ordering bug and is
  /// surfaced as an InvariantViolation by the harness).
  [[nodiscard]] std::uint64_t causality_violations() const {
    return causality_violations_;
  }

  /// Events pending right now (time-series sampler: queue-depth signal).
  [[nodiscard]] std::size_t queue_len() const {
    return engine_ == EngineKind::kPod ? calendar_.size() : queue_.size();
  }

  /// High-water mark of pending events across the run.
  [[nodiscard]] std::size_t peak_queue_len() const {
    return engine_ == EngineKind::kPod ? calendar_.peak_size()
                                       : queue_.peak_size();
  }

  /// Register the receiver of non-callback POD events (the Network).  Must
  /// be set before any schedule_event_* call; ignored on the legacy engine.
  void set_pod_handler(PodHandler* h) { handler_ = h; }

  // --- shard mode (one lane of a conservative parallel run) -------------
  //
  // In shard mode every push is ordered by an explicit key instead of the
  // internal push counter:
  //
  //   key = push_time << 20 | pushing_lane << 14 | per-instant push count
  //
  // For events pushed and executed inside one lane this reproduces the
  // serial engine's (time, push order) contract exactly, because a lane's
  // push times are non-decreasing.  For events merged in from another lane
  // (sim/parallel_engine.hpp mailboxes) the key was computed by the
  // *pushing* lane, so the merged calendar orders local and remote events
  // by push time — the same comparison the serial global sequence number
  // encodes — and the only ordering freedom left is two pushes from
  // different lanes at the exact same picosecond (counted by order_ties()
  // and surfaced as RunResult::boundary_ties; zero means the sharded
  // schedule is bit-identical to the serial one).

  static constexpr int kShardCountBits = 14;  // pushes per lane per instant
  static constexpr int kShardLaneBits = 6;    // PartitionPlan::kMaxLanes = 64
  static constexpr int kShardTimeShift = kShardCountBits + kShardLaneBits;

  /// Enter shard mode as lane `lane` (call right after reset(kPod)).
  void enable_shard_keys(std::int32_t lane) {
    assert(engine_ == EngineKind::kPod);
    assert(lane >= 0 && lane < (1 << kShardLaneBits));
    shard_lane_ = lane;
  }
  [[nodiscard]] bool shard_keys_enabled() const { return shard_lane_ >= 0; }

  /// Key for an event being pushed right now by this lane.
  [[nodiscard]] std::uint64_t next_shard_key() {
    if (now_ != key_t_) {
      key_t_ = now_;
      key_n_ = 0;
    }
    assert(now_ >= 0 && now_ < (TimePs{1} << (62 - kShardTimeShift)));
    assert(key_n_ < (std::uint64_t{1} << kShardCountBits));
    return (static_cast<std::uint64_t>(now_) << kShardTimeShift) |
           (static_cast<std::uint64_t>(shard_lane_) << kShardCountBits) |
           key_n_++;
  }

  /// Schedule a POD event carrying a key minted by another lane (mailbox
  /// drain).  An `at` before this lane's clock would mean the conservative
  /// window was too wide; it is counted as a causality violation.
  void schedule_event_keyed_at(TimePs at, std::uint64_t key, EventKind kind,
                               std::int32_t ch, std::int32_t a = 0,
                               void* p = nullptr) {
    assert(engine_ == EngineKind::kPod && shard_lane_ >= 0);
    if (at < now_) ++causality_violations_;
    calendar_.push_keyed(at, key, kind, ch, a, p);
  }

  /// Adjacent executed events with equal (time, push time) but different
  /// pushing lanes — the only schedule freedom the shard keys leave open.
  [[nodiscard]] std::uint64_t order_ties() const { return order_ties_; }

  /// Shard key of the event currently being dispatched (valid inside a
  /// handler while in shard mode; run_until_pod records it before the
  /// dispatch).  This is what makes per-lane telemetry mergeable: every
  /// trace record stamped with (now, current_key) sorts into the exact
  /// serial total order, because keys are globally unique across lanes.
  [[nodiscard]] std::uint64_t current_key() const { return tie_key_; }

  /// Schedule `fn` `delay` picoseconds from now (delay >= 0).
  void schedule_in(TimePs delay, EventFn fn) {
    assert(delay >= 0);
    schedule_fn(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `at` (at >= now()).
  void schedule_at(TimePs at, EventFn fn) {
    assert(at >= now_);
    schedule_fn(at, std::move(fn));
  }

  /// Schedule a POD event (pod engine only) at absolute time `at`.
  void schedule_event_at(TimePs at, EventKind kind, std::int32_t ch,
                         std::int32_t a = 0, void* p = nullptr) {
    assert(engine_ == EngineKind::kPod);
    assert(at >= now_);
    if (shard_lane_ >= 0) {
      calendar_.push_keyed(at, next_shard_key(), kind, ch, a, p);
    } else {
      calendar_.push(at, kind, ch, a, p);
    }
  }

  /// Schedule a POD event (pod engine only) `delay` picoseconds from now.
  void schedule_event_in(TimePs delay, EventKind kind, std::int32_t ch,
                         std::int32_t a = 0, void* p = nullptr) {
    assert(delay >= 0);
    schedule_event_at(now_ + delay, kind, ch, a, p);
  }

  /// Run until the queue drains or `deadline` is passed (events at exactly
  /// `deadline` still execute).  Returns the number of events executed by
  /// this call.
  std::uint64_t run_until(TimePs deadline = kTimeNever);

  /// Run while `keep_going()` is true (checked between events) and the queue
  /// is non-empty.  Used by the harness to stop after N measured messages.
  std::uint64_t run_while(const std::function<bool()>& keep_going);

  /// Ask a running run_* loop to stop after the current event.
  void request_stop() { stop_requested_ = true; }

 private:
  void schedule_fn(TimePs at, EventFn fn);
  void run_callback_slot(std::int32_t slot);

  std::uint64_t run_until_legacy(TimePs deadline);
  std::uint64_t run_until_pod(TimePs deadline);
  std::uint64_t run_while_legacy(const std::function<bool()>& keep_going);
  std::uint64_t run_while_pod(const std::function<bool()>& keep_going);

  EngineKind engine_;
  EventQueue queue_;        // legacy engine
  CalendarQueue calendar_;  // pod engine
  PodHandler* handler_ = nullptr;
  // Parked callbacks for kCallback events (pod engine): slot slab + free
  // list, so steady-state scheduling never allocates.
  std::vector<EventFn> slots_;
  std::vector<std::int32_t> free_slots_;
  TimePs now_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t causality_violations_ = 0;
  bool stop_requested_ = false;
  // Shard mode (lane of a parallel run; -1 = normal serial operation).
  std::int32_t shard_lane_ = -1;
  TimePs key_t_ = -1;          // instant next_shard_key last reset for
  std::uint64_t key_n_ = 0;    // pushes at key_t_ so far
  TimePs tie_at_ = -1;         // (time, key) of the last popped event,
  std::uint64_t tie_key_ = 0;  // for order-tie detection in run_until_pod
  std::uint64_t order_ties_ = 0;
};

}  // namespace itb
