// Discrete-event simulator core loop.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace itb {

/// Owns the clock and the event queue and drives the run loop.  Components
/// hold a reference to the Simulator and schedule callbacks on it; they must
/// outlive the run.
///
/// Two engines share this interface (selected at construction):
///  - kLegacy: std::function callbacks over the 4-ary EventQueue heap.
///  - kPod: trivially-copyable Event records over the CalendarQueue,
///    dispatched to the registered PodHandler (the Network).  schedule_in /
///    schedule_at still work — the callback is parked in a slot slab and
///    fired through a kCallback event — so generators, detectors and tests
///    are engine-agnostic.
/// Both engines uphold the same contract: events fire by (time, seq), equal
/// timestamps in scheduling order.
class Simulator {
 public:
  explicit Simulator(EngineKind engine = kDefaultEngine) : engine_(engine) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] EngineKind engine() const { return engine_; }

  /// Return the simulator to its just-constructed state (clock at 0, empty
  /// queues, counters zeroed, no pod handler), keeping queue/slab capacity.
  /// The next run is bit-identical to one on a fresh Simulator — the
  /// workspace-reuse determinism contract (see sim/workspace.hpp).
  void reset(EngineKind engine) {
    engine_ = engine;
    queue_.clear();
    calendar_.clear();
    handler_ = nullptr;
    for (EventFn& fn : slots_) fn = nullptr;  // release captures, keep slab
    slots_.clear();
    free_slots_.clear();
    now_ = 0;
    executed_ = 0;
    causality_violations_ = 0;
    stop_requested_ = false;
  }

  /// Current simulated time.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Total events executed so far (monotone; useful as a progress measure
  /// and as a runaway guard in tests).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Events that would have run before the current clock (always-on
  /// causality ledger; any non-zero value is a queue-ordering bug and is
  /// surfaced as an InvariantViolation by the harness).
  [[nodiscard]] std::uint64_t causality_violations() const {
    return causality_violations_;
  }

  /// Events pending right now (time-series sampler: queue-depth signal).
  [[nodiscard]] std::size_t queue_len() const {
    return engine_ == EngineKind::kPod ? calendar_.size() : queue_.size();
  }

  /// High-water mark of pending events across the run.
  [[nodiscard]] std::size_t peak_queue_len() const {
    return engine_ == EngineKind::kPod ? calendar_.peak_size()
                                       : queue_.peak_size();
  }

  /// Register the receiver of non-callback POD events (the Network).  Must
  /// be set before any schedule_event_* call; ignored on the legacy engine.
  void set_pod_handler(PodHandler* h) { handler_ = h; }

  /// Schedule `fn` `delay` picoseconds from now (delay >= 0).
  void schedule_in(TimePs delay, EventFn fn) {
    assert(delay >= 0);
    schedule_fn(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `at` (at >= now()).
  void schedule_at(TimePs at, EventFn fn) {
    assert(at >= now_);
    schedule_fn(at, std::move(fn));
  }

  /// Schedule a POD event (pod engine only) at absolute time `at`.
  void schedule_event_at(TimePs at, EventKind kind, std::int32_t ch,
                         std::int32_t a = 0, void* p = nullptr) {
    assert(engine_ == EngineKind::kPod);
    assert(at >= now_);
    calendar_.push(at, kind, ch, a, p);
  }

  /// Schedule a POD event (pod engine only) `delay` picoseconds from now.
  void schedule_event_in(TimePs delay, EventKind kind, std::int32_t ch,
                         std::int32_t a = 0, void* p = nullptr) {
    assert(delay >= 0);
    schedule_event_at(now_ + delay, kind, ch, a, p);
  }

  /// Run until the queue drains or `deadline` is passed (events at exactly
  /// `deadline` still execute).  Returns the number of events executed by
  /// this call.
  std::uint64_t run_until(TimePs deadline = kTimeNever);

  /// Run while `keep_going()` is true (checked between events) and the queue
  /// is non-empty.  Used by the harness to stop after N measured messages.
  std::uint64_t run_while(const std::function<bool()>& keep_going);

  /// Ask a running run_* loop to stop after the current event.
  void request_stop() { stop_requested_ = true; }

 private:
  void schedule_fn(TimePs at, EventFn fn);
  void run_callback_slot(std::int32_t slot);

  std::uint64_t run_until_legacy(TimePs deadline);
  std::uint64_t run_until_pod(TimePs deadline);
  std::uint64_t run_while_legacy(const std::function<bool()>& keep_going);
  std::uint64_t run_while_pod(const std::function<bool()>& keep_going);

  EngineKind engine_;
  EventQueue queue_;        // legacy engine
  CalendarQueue calendar_;  // pod engine
  PodHandler* handler_ = nullptr;
  // Parked callbacks for kCallback events (pod engine): slot slab + free
  // list, so steady-state scheduling never allocates.
  std::vector<EventFn> slots_;
  std::vector<std::int32_t> free_slots_;
  TimePs now_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t causality_violations_ = 0;
  bool stop_requested_ = false;
};

}  // namespace itb
