// Discrete-event simulator core loop.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace itb {

/// Owns the clock and the event queue and drives the run loop.  Components
/// hold a reference to the Simulator and schedule callbacks on it; they must
/// outlive the run.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Total events executed so far (monotone; useful as a progress measure
  /// and as a runaway guard in tests).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Schedule `fn` `delay` picoseconds from now (delay >= 0).
  void schedule_in(TimePs delay, EventFn fn);

  /// Schedule `fn` at absolute time `at` (at >= now()).
  void schedule_at(TimePs at, EventFn fn);

  /// Run until the queue drains or `deadline` is passed (events at exactly
  /// `deadline` still execute).  Returns the number of events executed by
  /// this call.
  std::uint64_t run_until(TimePs deadline = kTimeNever);

  /// Run while `keep_going()` is true (checked between events) and the queue
  /// is non-empty.  Used by the harness to stop after N measured messages.
  std::uint64_t run_while(const std::function<bool()>& keep_going);

  /// Ask a running run_* loop to stop after the current event.
  void request_stop() { stop_requested_ = true; }

 private:
  EventQueue queue_;
  TimePs now_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace itb
