#include "sim/stats.hpp"

#include <cassert>
#include <cmath>

namespace itb {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets, 0) {
  assert(bucket_width > 0.0 && num_buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0) x = 0;
  const auto idx = static_cast<std::size_t>(x / width_);
  if (idx >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[idx];
  }
}

double Histogram::quantile(double q) const {
  assert(total_ > 0);
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return width_ * static_cast<double>(i + 1);
  }
  return width_ * static_cast<double>(buckets_.size());
}

}  // namespace itb
