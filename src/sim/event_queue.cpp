#include "sim/event_queue.hpp"

#include <cassert>

namespace itb {

std::pair<TimePs, EventFn> EventQueue::pop() {
  std::pair<TimePs, EventFn> out;
  pop_into(out.first, out.second);
  return out;
}

void EventQueue::pop_into(TimePs& at, EventFn& fn) {
  assert(!heap_.empty());
  at = heap_.front().at;
  fn = std::move(heap_.front().fn);
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        (first_child + kArity < n) ? first_child + kArity : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (less(heap_[c], heap_[best])) best = c;
    }
    if (!less(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace itb
