#include "sim/workspace.hpp"

namespace itb {

void SimWorkspace::prepare(EngineKind engine, const Topology& topo,
                           const RouteSet& routes, const MyrinetParams& params,
                           PathPolicy policy, std::uint64_t net_seed) {
  sim_.reset(engine);
  if (net_) {
    net_->reset(topo, routes, params, policy, net_seed);
    metrics_->configure(topo.num_switches());
    ++reuses_;
  } else {
    net_.emplace(sim_, topo, routes, params, policy, net_seed);
    metrics_.emplace(topo.num_switches());
  }
}

TrafficGenerator& SimWorkspace::generator(const DestinationPattern& pattern,
                                          TrafficConfig cfg) {
  if (gen_) {
    gen_->reset(pattern, cfg);
  } else {
    gen_.emplace(sim_, *net_, pattern, cfg);
  }
  return *gen_;
}

SimWorkspace& this_thread_workspace() {
  thread_local SimWorkspace ws;
  return ws;
}

}  // namespace itb
