#include "sim/workspace.hpp"

#include "sim/partition.hpp"

namespace itb {

void SimWorkspace::prepare(EngineKind engine, const Topology& topo,
                           const RouteSet& routes, const MyrinetParams& params,
                           PathPolicy policy, std::uint64_t net_seed,
                           int shards) {
  parallel_ = (engine == EngineKind::kPodParallel);
  // kPodParallel is a harness-level selector: the coordinator clock (like
  // every lane) runs the plain POD engine.
  sim_.reset(parallel_ ? EngineKind::kPod : engine);
  ParallelEngine* par = nullptr;
  if (parallel_) {
    // configure() keeps the worker threads (and each lane's warmed calendar
    // and arena) when the shard count is unchanged, so reused workspaces
    // stay allocation-free in parallel mode too.
    par_.configure(make_contiguous_plan(topo, params, shards));
    par = &par_;
  }
  if (net_) {
    net_->reset(topo, routes, params, policy, net_seed, par);
    metrics_->configure(topo.num_switches());
    ++reuses_;
  } else {
    net_.emplace(sim_, topo, routes, params, policy, net_seed);
    // The constructor wires the serial path; rebind to the lanes when this
    // first point is sharded.
    if (par != nullptr) {
      net_->reset(topo, routes, params, policy, net_seed, par);
    }
    metrics_.emplace(topo.num_switches());
  }
}

TrafficGenerator& SimWorkspace::generator(const DestinationPattern& pattern,
                                          TrafficConfig cfg) {
  if (gen_) {
    gen_->reset(pattern, cfg);
  } else {
    gen_.emplace(sim_, *net_, pattern, cfg);
  }
  return *gen_;
}

SimWorkspace& this_thread_workspace() {
  thread_local SimWorkspace ws;
  return ws;
}

}  // namespace itb
