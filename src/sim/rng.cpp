#include "sim/rng.hpp"

#include <cassert>
#include <cmath>

namespace itb {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_exponential(double mean) {
  assert(mean > 0.0);
  // 1 - u is in (0, 1], so the log argument is never zero.
  return -mean * std::log(1.0 - next_double());
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::fork(std::uint64_t salt) {
  return Rng(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL));
}

}  // namespace itb
