#include "sim/pool.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

namespace itb {

int default_jobs() {
  if (const char* env = std::getenv("ITB_BENCH_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop();
      ++busy_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      if (queue_.empty() && busy_ == 0) idle_.notify_all();
    }
  }
}

namespace detail {

namespace {

/// Persistent worker pools, one per requested size, kept alive for the
/// process (joined at static destruction).  Keeping workers alive is what
/// lets their thread_local SimWorkspaces — and all the simulation capacity
/// those hold — survive across driver calls; tearing a pool down per call
/// would throw that warmed state away and reconstruct it every time.
ThreadPool& shared_pool(int threads) {
  static std::mutex mu;
  static std::map<int, std::unique_ptr<ThreadPool>> pools;
  const std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& p = pools[threads];
  if (!p) p = std::make_unique<ThreadPool>(threads);
  return *p;
}

/// True while the current thread is inside a pooled_for job.  Nested
/// pooled_for calls run inline on the caller: a worker blocking in
/// wait_idle() on its own pool would deadlock, and even on a *different*
/// pool the nested fan-out could recruit workers whose thread_local
/// workspaces are mid-point.  First hit in practice by a cold
/// Testbed::routes() build triggered from inside a parallel driver.
thread_local bool in_pooled_job = false;

}  // namespace

void pooled_for(int n, int threads, const std::function<void(int)>& fn) {
  if (in_pooled_job) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = shared_pool(threads);
  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  // One self-scheduling job per worker: each pulls the next index until
  // the range is exhausted, so imbalanced points don't idle a worker.
  for (int w = 0; w < threads; ++w) {
    pool.submit([&] {
      in_pooled_job = true;
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
      in_pooled_job = false;
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail
}  // namespace itb
