#include "check/route_verify.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "core/itb_split.hpp"
#include "route/topo_minimal.hpp"

namespace itb {

namespace {

std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }

struct PairContext {
  const Topology* topo;
  const UpDown* ud;
  SwitchId s, d;
  std::int64_t pair_key;
  RouteVerifyReport* report;

  void fail(int alt, const std::string& why) const {
    report->violations.push_back(InvariantViolation{
        InvariantKind::kIllegalRoute, 0, pair_key,
        "pair " + std::to_string(s) + "->" + std::to_string(d) + " alt " +
            std::to_string(alt) + ": " + why});
  }
};

/// Re-trace the route's port bytes through the topology.  Returns false
/// (after reporting) when the walk is structurally broken; on success fills
/// `path` and `splits` (leg boundaries as indices into the switch walk).
bool retrace_route(const PairContext& ctx, const RouteView& r, int alt,
                   SwitchPath& path, std::vector<int>& splits) {
  const Topology& topo = *ctx.topo;
  SwitchId cur = r.src_switch;
  path.sw.assign(1, cur);
  path.cable.clear();
  splits.clear();
  for (std::size_t li = 0; li < r.legs.size(); ++li) {
    const LegView leg = r.legs[li];
    const bool final_leg = li + 1 == r.legs.size();
    // Intermediate legs carry one trailing port to the in-transit host; the
    // final leg's delivery port is appended per packet, not stored here.
    const int switch_ports =
        static_cast<int>(leg.ports.size()) - (final_leg ? 0 : 1);
    if (switch_ports != leg.switch_hops) {
      ctx.fail(alt, "leg " + std::to_string(li) + " has " +
                        std::to_string(switch_ports) +
                        " switch ports but switch_hops=" +
                        std::to_string(leg.switch_hops));
      return false;
    }
    for (int i = 0; i < switch_ports; ++i) {
      const PortPeer& pp = topo.peer(cur, leg.ports[idx(i)]);
      if (pp.kind != PeerKind::kSwitch) {
        ctx.fail(alt, "leg " + std::to_string(li) + " port byte " +
                          std::to_string(leg.ports[idx(i)]) + " at switch " +
                          std::to_string(cur) +
                          " does not lead to a switch");
        return false;
      }
      path.cable.push_back(pp.cable);
      path.sw.push_back(pp.sw);
      cur = pp.sw;
    }
    if (final_leg) {
      if (leg.end_host != kNoHost) {
        ctx.fail(alt, "final leg names an in-transit host");
        return false;
      }
    } else {
      if (leg.end_host == kNoHost) {
        ctx.fail(alt, "intermediate leg has no in-transit host");
        return false;
      }
      const PortPeer& hp = topo.peer(cur, leg.ports.back());
      if (hp.kind != PeerKind::kHost || hp.host != leg.end_host) {
        ctx.fail(alt, "leg " + std::to_string(li) +
                          " eject port does not reach host " +
                          std::to_string(leg.end_host));
        return false;
      }
      if (topo.host(leg.end_host).sw != cur) {
        ctx.fail(alt, "in-transit host " + std::to_string(leg.end_host) +
                          " is not attached to split switch " +
                          std::to_string(cur));
        return false;
      }
      splits.push_back(path.hops());
    }
  }
  return true;
}

/// Stable identity of an alternative for pairwise-distinctness: the port
/// walk plus the in-transit hosts.  From a fixed source switch the port
/// bytes determine the switch walk, so this distinguishes exactly the
/// routes that behave differently on the wire (two alternatives over the
/// same switches but different ITB hosts are genuinely different routes).
std::string route_identity(const RouteView& r) {
  std::string id;
  for (const LegView l : r.legs) {
    for (const PortId p : l.ports) id += std::to_string(p) + ",";
    id += "@" + std::to_string(l.end_host) + ";";
  }
  return id;
}

}  // namespace

RouteVerifyReport verify_route_set(const Topology& topo, const UpDown& ud,
                                   const RouteSet& routes,
                                   const RouteVerifyOptions& opts) {
  RouteVerifyReport report;
  const int n = routes.num_switches();
  const RoutingAlgorithm algo = routes.algorithm();
  const bool itb_table = algo == RoutingAlgorithm::kItb;
  const bool minimal_table = algo == RoutingAlgorithm::kMinimal;
  // Structured-minimal tables are checked against the oracle's canonical
  // length, not the BFS distance: the canonical Dragonfly l-g-l path (at
  // most 3 hops via the direct group-pair cable) can be longer than a
  // two-global BFS shortcut through a third group, and that is the length
  // the table is specified to install.
  std::optional<StructuredMinimal> oracle;
  if (minimal_table && has_structured_minimal(topo)) {
    oracle.emplace(topo);
  }
  for (SwitchId s = 0; s < n; ++s) {
    const std::vector<int> dist = topo.switch_distances_from(s);
    for (SwitchId d = 0; d < n; ++d) {
      if (s == d) continue;
      PairContext ctx{&topo, &ud, s, d,
                      static_cast<std::int64_t>(s) * n + d, &report};
      const AltsView alts = routes.alternatives(s, d);
      ++report.pairs_checked;
      if (alts.empty()) {
        ctx.fail(-1, "no route installed");
        continue;
      }
      if (static_cast<int>(alts.size()) > opts.max_alternatives) {
        ctx.fail(-1, "table holds " + std::to_string(alts.size()) +
                         " alternatives, cap is " +
                         std::to_string(opts.max_alternatives));
      }
      std::vector<std::string> seen;
      for (std::size_t a = 0; a < alts.size(); ++a) {
        const RouteView r = alts[a];
        const int alt = static_cast<int>(a);
        ++report.routes_checked;

        const std::string ident = route_identity(r);
        for (const std::string& prev : seen) {
          if (prev == ident) {
            ctx.fail(alt, "duplicate of an earlier alternative");
            break;
          }
        }
        seen.push_back(ident);

        if (r.src_switch != s || r.dst_switch != d) {
          ctx.fail(alt, "endpoints disagree with the table slot");
          continue;
        }
        SwitchPath path;
        std::vector<int> leg_splits;
        if (!retrace_route(ctx, r, alt, path, leg_splits)) continue;
        if (path.dst() != d) {
          ctx.fail(alt, "port walk ends at switch " +
                            std::to_string(path.dst()) + ", not " +
                            std::to_string(d));
          continue;
        }
        // Cross-check the store's own reconstruction (explicit tier: the
        // stored switch walk; factorized tier: the composition tables)
        // against the topology re-trace above.
        const Route full = materialize_route(r);
        if (!std::equal(path.sw.begin(), path.sw.end(),
                        full.switches.begin(), full.switches.end())) {
          ctx.fail(alt, "materialized switch sequence disagrees with port walk");
        }
        if (path.hops() != r.total_switch_hops) {
          ctx.fail(alt, "total_switch_hops=" +
                            std::to_string(r.total_switch_hops) +
                            " but walk has " + std::to_string(path.hops()));
        }

        // Legality of each leg: the segments between splits must each obey
        // up*/down*.  Structured-minimal tables are exempt — their routes
        // are deliberately unrestricted (that freedom is what the ITB
        // schemes are being compared against) and their deadlock story is
        // per topology, not per leg.
        const auto segments = split_path(path, leg_splits);
        bool legs_legal = true;
        if (!minimal_table) {
          for (std::size_t seg = 0; seg < segments.size(); ++seg) {
            if (!ud.legal(segments[seg])) {
              legs_legal = false;
              ctx.fail(alt, "leg " + std::to_string(seg) +
                                " violates up*/down* (down->up inside a leg)");
            }
          }
        }

        // Splits must sit exactly at the violating switches of the full
        // path: the greedy itb_split mapping is the paper's placement rule.
        const std::vector<int> expected = itb_split_points(*ctx.ud, path);
        const bool minimal = path.hops() == dist[idx(d)];
        if (itb_table) {
          if (minimal) {
            if (leg_splits != expected) {
              ctx.fail(alt,
                       "in-transit stops are not exactly at the violating "
                       "switches (expected " +
                           std::to_string(expected.size()) + " splits, got " +
                           std::to_string(leg_splits.size()) + ")");
            }
          } else {
            // Documented fallback: the single legal-shortest route of a pair
            // whose every minimal path splits at a host-less switch.
            const bool fallback_shaped = alts.size() == 1 &&
                                         leg_splits.empty() && legs_legal &&
                                         path.hops() == ud.legal_distance(s, d);
            if (!opts.allow_legal_fallback || !fallback_shaped) {
              ctx.fail(alt, "path has " + std::to_string(path.hops()) +
                                " hops, minimal distance is " +
                                std::to_string(dist[idx(d)]));
            }
          }
        } else if (minimal_table) {
          // Structured-minimal tables: single-leg minimal routes, never
          // split, exactly one alternative per pair.
          if (r.num_itbs() != 0) {
            ctx.fail(alt, "minimal table route uses in-transit buffers");
          }
          if (oracle) {
            const int want = oracle->path(s, d).hops();
            if (path.hops() != want) {
              ctx.fail(alt, "path has " + std::to_string(path.hops()) +
                                " hops, canonical minimal length is " +
                                std::to_string(want) + " (BFS distance " +
                                std::to_string(dist[idx(d)]) + ")");
            }
          } else if (!minimal) {
            ctx.fail(alt, "path has " + std::to_string(path.hops()) +
                              " hops, minimal distance is " +
                              std::to_string(dist[idx(d)]));
          }
          if (alts.size() != 1) {
            ctx.fail(alt, "minimal table pair holds " +
                              std::to_string(alts.size()) +
                              " alternatives, expected exactly 1");
          }
        } else {
          // UP/DOWN tables: single-leg legal routes, never split.
          if (r.num_itbs() != 0) {
            ctx.fail(alt, "up*/down* table route uses in-transit buffers");
          }
        }
      }
    }
  }
  return report;
}

}  // namespace itb
