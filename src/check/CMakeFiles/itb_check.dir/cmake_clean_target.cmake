file(REMOVE_RECURSE
  "libitb_check.a"
)
