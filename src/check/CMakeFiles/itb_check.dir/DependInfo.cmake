
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/route_verify.cpp" "src/check/CMakeFiles/itb_check.dir/route_verify.cpp.o" "gcc" "src/check/CMakeFiles/itb_check.dir/route_verify.cpp.o.d"
  "/root/repo/src/check/watchdog.cpp" "src/check/CMakeFiles/itb_check.dir/watchdog.cpp.o" "gcc" "src/check/CMakeFiles/itb_check.dir/watchdog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/net/CMakeFiles/itb_net.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/itb_core.dir/DependInfo.cmake"
  "/root/repo/src/route/CMakeFiles/itb_route.dir/DependInfo.cmake"
  "/root/repo/src/topo/CMakeFiles/itb_topo.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/itb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
