# Empty dependencies file for itb_check.
# This may be replaced when dependencies are built.
