file(REMOVE_RECURSE
  "CMakeFiles/itb_check.dir/route_verify.cpp.o"
  "CMakeFiles/itb_check.dir/route_verify.cpp.o.d"
  "CMakeFiles/itb_check.dir/watchdog.cpp.o"
  "CMakeFiles/itb_check.dir/watchdog.cpp.o.d"
  "libitb_check.a"
  "libitb_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
