// Route-legality verifier: re-derives, from first principles, the properties
// the paper's routing tables must satisfy, and reports every deviation as a
// structured InvariantViolation.
//
// For every alternative of every (source switch, destination switch) pair:
//  * structure: the leg ports trace a real switch walk in the topology, the
//    recorded switch sequence/hop counts match, every intermediate leg ends
//    at a host attached to that leg's last switch;
//  * legality: each leg obeys the up*/down* rule (no "up" cable after a
//    "down" cable within a leg);
//  * splits: the leg boundaries are exactly itb_split_points() of the full
//    path — in-transit buffers sit at precisely the violating switches,
//    never anywhere else;
//  * minimality (ITB tables): the path length equals the unrestricted BFS
//    distance.  A pair may instead carry one legal non-minimal route — the
//    documented build_itb_routes fallback when every minimal path would
//    split at a host-less switch — accepted only when
//    `allow_legal_fallback` is set;
//  * table shape: 1..max_alternatives alternatives per pair, pairwise
//    distinct (by switch sequence and in-transit hosts).
//
// UP/DOWN tables are checked for structure + legality + zero ITBs; their
// paths are legal-shortest, not minimal, so minimality is skipped.
// Structured-minimal tables (RoutingAlgorithm::kMinimal) are checked for
// structure + minimality + zero ITBs + exactly one alternative; up*/down*
// legality is skipped by design — their routes are unrestricted.
#pragma once

#include <cstdint>

#include "check/invariants.hpp"
#include "core/route_set.hpp"
#include "route/updown.hpp"
#include "topo/topology.hpp"

namespace itb {

struct RouteVerifyOptions {
  /// Paper cap on alternatives per pair (§2: "up to 10 routes").
  int max_alternatives = 10;
  /// Accept the build_itb_routes legal-shortest fallback for pairs with no
  /// feasible minimal path.  Strict property tests turn this off.
  bool allow_legal_fallback = true;
};

struct RouteVerifyReport {
  std::uint64_t routes_checked = 0;
  std::uint64_t pairs_checked = 0;
  std::vector<InvariantViolation> violations;  // all kIllegalRoute
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Verify every installed route of `routes` against `topo`/`ud`.
/// Violations carry id = s * num_switches + d and a human-readable detail.
[[nodiscard]] RouteVerifyReport verify_route_set(
    const Topology& topo, const UpDown& ud, const RouteSet& routes,
    const RouteVerifyOptions& opts = {});

}  // namespace itb
