#include "check/watchdog.hpp"

#include <string>

namespace itb {

namespace {

/// Iterative three-colour DFS over an adjacency list; fills `cycle` with
/// the first back-edge cycle found and returns true.
bool find_cycle(const std::vector<std::vector<ChannelId>>& adj,
                std::vector<ChannelId>& cycle) {
  const std::size_t n = adj.size();
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> colour(n, kWhite);
  std::vector<ChannelId> stack;          // current DFS path (grey nodes)
  std::vector<std::size_t> next_child;   // per stack frame
  for (std::size_t root = 0; root < n; ++root) {
    if (colour[root] != kWhite) continue;
    stack.assign(1, static_cast<ChannelId>(root));
    next_child.assign(1, 0);
    colour[root] = kGrey;
    while (!stack.empty()) {
      const auto u = static_cast<std::size_t>(stack.back());
      if (next_child.back() < adj[u].size()) {
        const ChannelId v = adj[u][next_child.back()++];
        const auto vi = static_cast<std::size_t>(v);
        if (colour[vi] == kGrey) {
          // Back edge: the cycle is the stack suffix starting at v.
          auto it = stack.begin();
          while (*it != v) ++it;
          cycle.assign(it, stack.end());
          return true;
        }
        if (colour[vi] == kWhite) {
          colour[vi] = kGrey;
          stack.push_back(v);
          next_child.push_back(0);
        }
      } else {
        colour[u] = kBlack;
        stack.pop_back();
        next_child.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

DeadlockWatchdog::DeadlockWatchdog(Simulator& sim, Network& net, TimePs period)
    : sim_(&sim), net_(&net), period_(period) {
  sim_->schedule_in(period_, [this] { tick(); });
}

void DeadlockWatchdog::tick() {
  if (!armed_) return;
  sample();
  sim_->schedule_in(period_, [this] { tick(); });
}

bool DeadlockWatchdog::sample() {
  const auto edges = net_->wait_graph_edges();
  if (edges.empty()) return false;
  std::vector<std::vector<ChannelId>> adj(
      static_cast<std::size_t>(net_->topology().num_channels()));
  for (const auto& [from, to] : edges) {
    adj[static_cast<std::size_t>(from)].push_back(to);
  }
  std::vector<ChannelId> cycle;
  if (!find_cycle(adj, cycle)) return false;
  ++cycles_found_;
  last_cycle_ = cycle;
  if (!reported_) {
    reported_ = true;
    std::string detail = "wait-graph cycle:";
    for (const ChannelId c : cycle) {
      detail += ' ';
      detail += net_->channel_label(c);
      detail += " ->";
    }
    detail += ' ';
    detail += net_->channel_label(cycle.front());
    net_->invariants().record(InvariantKind::kDeadlockCycle, sim_->now(),
                              cycle.front(), std::move(detail));
  }
  return true;
}

}  // namespace itb
