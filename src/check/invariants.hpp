// Checked-simulation invariant layer: structured violation records that the
// Network/Simulator hot path reports into.
//
// Two tiers of checking feed this recorder:
//  * Always-on ledgers (cheap integer comparisons inlined into the engine
//    steps): flit/credit conservation per channel, slack-buffer occupancy
//    bounds, ITB pool capacity, and source->sink packet-count conservation.
//    Gated at runtime by MyrinetParams::ledger_checks so the overhead can be
//    A/B-measured (bench_micro_kernel records it in BENCH_pr3.json).
//  * Deep checks (the route-legality verifier in check/route_verify.hpp and
//    the wait-graph deadlock watchdog in check/watchdog.hpp) attached by the
//    harness when RunConfig::checked is set; the ITB_CHECKED build flips
//    that default on and additionally compiles paranoid per-event assertions
//    into the Network hot path (see ITB_DEEP_CHECK in network.cpp).
//
// This header is intentionally dependency-light (sim/time only) and fully
// inline, so itb_net can report into a recorder without linking against the
// deep-check library (itb_check), which itself links itb_net.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace itb {

/// Catalogue of checked invariants (docs/TESTING.md documents each one).
enum class InvariantKind : std::uint8_t {
  kFlitConservation,    // per-channel flit ledger out of balance
  kCreditConservation,  // stop/go protocol violated or a credit lost
  kBufferOverflow,      // slack-buffer occupancy above capacity
  kItbPoolOverflow,     // NIC in-transit pool over capacity / mis-accounted
  kPacketConservation,  // injected != delivered + in-flight census
  kDeadlockCycle,       // wait-graph watchdog found a cycle of blocked flows
  kIllegalRoute,        // installed route fails legality/minimality/split
  kCausality,           // an event executed before the simulator clock
};

inline constexpr int kNumInvariantKinds = 8;

[[nodiscard]] inline const char* to_string(InvariantKind k) {
  switch (k) {
    case InvariantKind::kFlitConservation: return "flit_conservation";
    case InvariantKind::kCreditConservation: return "credit_conservation";
    case InvariantKind::kBufferOverflow: return "buffer_overflow";
    case InvariantKind::kItbPoolOverflow: return "itb_pool_overflow";
    case InvariantKind::kPacketConservation: return "packet_conservation";
    case InvariantKind::kDeadlockCycle: return "deadlock_cycle";
    case InvariantKind::kIllegalRoute: return "illegal_route";
    case InvariantKind::kCausality: return "causality";
  }
  return "?";
}

/// One detected violation.  `id` identifies the offending object in the
/// kind's own namespace (channel id, host id, packet id, s*N+d pair key).
struct InvariantViolation {
  InvariantKind kind = InvariantKind::kFlitConservation;
  TimePs time = 0;
  std::int64_t id = -1;
  std::string detail;
};

/// Append-only violation sink.  Every violation is *counted*; only the
/// first kMaxStored carry their detail strings, so a pathological run
/// cannot exhaust memory while still reporting exact totals.
class InvariantRecorder {
 public:
  static constexpr std::size_t kMaxStored = 32;

  void record(InvariantKind kind, TimePs time, std::int64_t id,
              std::string detail) {
    ++counts_[static_cast<std::size_t>(kind)];
    ++total_;
    if (stored_.size() < kMaxStored) {
      stored_.push_back(InvariantViolation{kind, time, id, std::move(detail)});
    }
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count(InvariantKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  /// The stored (first kMaxStored) violations, in detection order.
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return stored_;
  }

  /// Merge (and drain) another recorder into this one.  The parallel
  /// engine's per-lane recorders are absorbed into the Network's primary
  /// recorder at every sync point, in lane order — deterministic because
  /// each lane's own record order is.
  void absorb(InvariantRecorder& other) {
    for (std::size_t k = 0; k < static_cast<std::size_t>(kNumInvariantKinds);
         ++k) {
      counts_[k] += other.counts_[k];
    }
    total_ += other.total_;
    for (InvariantViolation& v : other.stored_) {
      if (stored_.size() < kMaxStored) stored_.push_back(std::move(v));
    }
    other.clear();
  }

  void clear() {
    total_ = 0;
    for (auto& c : counts_) c = 0;
    stored_.clear();
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t counts_[kNumInvariantKinds] = {};
  std::vector<InvariantViolation> stored_;
};

}  // namespace itb
