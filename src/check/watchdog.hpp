// Channel-wait-graph deadlock watchdog (deep check).
//
// The up*/down* theorem the paper leans on is that legal routes induce an
// acyclic channel-dependency graph, and the ITB mechanism restores that
// acyclicity for minimal routes by ejecting packets at every down->up
// violation.  This watchdog checks the conclusion directly at runtime: it
// periodically snapshots the *wait* graph — which channels are blocked
// waiting on which — and searches it for cycles.
//
// Nodes are directed channels.  Edges exist only for blocking waits:
//  * the packet at the head of an input buffer holds a granted output
//    channel and can make no progress until that output drains
//    (in_ch -> out_ch);
//  * a queued output request blocks its input buffer the same way.
// Channels draining into a NIC have no outgoing edges: ejection and
// delivery sink unconditionally (a full ITB pool spills to host memory, it
// never blocks) — exactly the property that makes the ITB mechanism
// deadlock-free.  Transient waits (in-flight chunks, routing delays) are
// not edges, so a cycle is a genuine deadlock, not a busy moment.
//
// On detection the cycle is recorded once per watchdog into the Network's
// InvariantRecorder as kDeadlockCycle, with the full channel cycle dumped
// into the detail string; sampling continues so tests can also observe
// persistence via cycles_found().
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace itb {

class DeadlockWatchdog {
 public:
  /// Starts sampling immediately, every `period` of simulated time, until
  /// disarm() or the simulator stops running events.
  DeadlockWatchdog(Simulator& sim, Network& net, TimePs period = us(10));

  DeadlockWatchdog(const DeadlockWatchdog&) = delete;
  DeadlockWatchdog& operator=(const DeadlockWatchdog&) = delete;
  ~DeadlockWatchdog() { disarm(); }

  /// Stop sampling (already-scheduled ticks become no-ops).
  void disarm() { armed_ = false; }

  /// Samples in which a cycle was present.
  [[nodiscard]] std::uint64_t cycles_found() const { return cycles_found_; }
  /// The most recent cycle, as a channel sequence (c0 waits on c1, ...,
  /// ck waits on c0).  Empty when no cycle has been seen.
  [[nodiscard]] const std::vector<ChannelId>& last_cycle() const {
    return last_cycle_;
  }

  /// One sample: build the wait graph and search for a cycle.  Returns
  /// true when a cycle is present.  Exposed for direct use in tests.
  bool sample();

 private:
  void tick();

  Simulator* sim_;
  Network* net_;
  TimePs period_;
  bool armed_ = true;
  bool reported_ = false;
  std::uint64_t cycles_found_ = 0;
  std::vector<ChannelId> last_cycle_;
};

}  // namespace itb
