// Message destination distributions (§4.2 of the paper).
//
// A DestinationPattern maps (source host, RNG) to a destination host; every
// pattern guarantees dst != src.  Patterns that cannot serve a given source
// (e.g. bit-reversal fixed points, or a hotspot host with hotspot traffic
// disabled for itself) fall back as documented per pattern.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace itb {

class DestinationPattern {
 public:
  virtual ~DestinationPattern() = default;

  /// Destination for a message from `src`, or kNoHost when this source
  /// generates no traffic under the pattern (bit-reversal fixed points).
  [[nodiscard]] virtual HostId pick(HostId src, Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Uniform: any host but the source, equiprobable.
class UniformPattern final : public DestinationPattern {
 public:
  explicit UniformPattern(int num_hosts) : num_hosts_(num_hosts) {}
  [[nodiscard]] HostId pick(HostId src, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  int num_hosts_;
};

/// Bit-reversal: dst = reverse of src's bits.  Requires a power-of-two host
/// count (the paper excludes CPLANT for this reason); sources whose
/// reversal equals themselves generate no traffic.
class BitReversalPattern final : public DestinationPattern {
 public:
  explicit BitReversalPattern(int num_hosts);
  [[nodiscard]] HostId pick(HostId src, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "bit-reversal"; }

 private:
  int num_hosts_;
  int bits_;
};

/// Hotspot: with probability `fraction`, the destination is the hotspot
/// host; otherwise uniform.  The hotspot itself, and traffic that would be
/// self-addressed, use the uniform fallback.
class HotspotPattern final : public DestinationPattern {
 public:
  HotspotPattern(int num_hosts, HostId hotspot, double fraction);
  [[nodiscard]] HostId pick(HostId src, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "hotspot"; }
  [[nodiscard]] HostId hotspot() const { return hotspot_; }

 private:
  int num_hosts_;
  HostId hotspot_;
  double fraction_;
};

/// Local: destinations uniformly among hosts whose switch is at most
/// `max_switch_distance` switch-graph hops from the source's switch
/// (paper: 3, with a 4-hop variant), excluding the source itself.
class LocalPattern final : public DestinationPattern {
 public:
  LocalPattern(const Topology& topo, int max_switch_distance);
  [[nodiscard]] HostId pick(HostId src, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "local"; }

 private:
  std::vector<std::vector<HostId>> candidates_;  // per source switch
  std::vector<SwitchId> src_switch_;             // host -> its switch
};

/// Fixed permutation built from any pairing function; used by tests and as
/// an extension point (e.g. transpose / complement permutations).
class PermutationPattern final : public DestinationPattern {
 public:
  explicit PermutationPattern(std::vector<HostId> dest_of_src,
                              std::string label);
  [[nodiscard]] HostId pick(HostId src, Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return label_; }

 private:
  std::vector<HostId> dest_;
  std::string label_;
};

}  // namespace itb
