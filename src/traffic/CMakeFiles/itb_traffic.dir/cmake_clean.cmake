file(REMOVE_RECURSE
  "CMakeFiles/itb_traffic.dir/generator.cpp.o"
  "CMakeFiles/itb_traffic.dir/generator.cpp.o.d"
  "CMakeFiles/itb_traffic.dir/patterns.cpp.o"
  "CMakeFiles/itb_traffic.dir/patterns.cpp.o.d"
  "CMakeFiles/itb_traffic.dir/trace.cpp.o"
  "CMakeFiles/itb_traffic.dir/trace.cpp.o.d"
  "libitb_traffic.a"
  "libitb_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
