# Empty dependencies file for itb_traffic.
# This may be replaced when dependencies are built.
