file(REMOVE_RECURSE
  "libitb_traffic.a"
)
