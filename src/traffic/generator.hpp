// Open-loop message generation (§4.2): every host generates fixed-size
// messages at a constant rate; the aggregate offered load is expressed in
// the paper's unit, flits per nanosecond per switch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "traffic/patterns.hpp"

namespace itb {

struct TrafficConfig {
  /// Offered load in flits/ns/switch across the whole network (payload
  /// flits; header overhead rides on top, as in the paper's accounting).
  double load_flits_per_ns_per_switch = 0.01;
  int payload_bytes = 512;
  /// false = constant inter-arrival (paper); true = Poisson arrivals.
  bool poisson = false;
  std::uint64_t seed = 42;
};

/// Observer invoked for every generated message (used to capture traces;
/// see traffic/trace.hpp).
using MessageTap = std::function<void(TimePs, HostId src, HostId dst,
                                      int payload_bytes)>;

class TrafficGenerator {
 public:
  TrafficGenerator(Simulator& sim, Network& net,
                   const DestinationPattern& pattern, TrafficConfig cfg);

  /// Return the generator to the exact state the constructor would produce
  /// for (pattern, cfg) — same per-host RNG streams, counters zeroed, tap
  /// cleared — reusing the RNG vector's capacity.  The simulator and
  /// network bindings are kept (both are reset in place by the owning
  /// workspace).
  void reset(const DestinationPattern& pattern, TrafficConfig cfg);

  /// Install a tap that sees every injected message.
  void set_tap(MessageTap tap) { tap_ = std::move(tap); }

  /// Schedule the first generation event of every host (random phase within
  /// one interval, so hosts do not fire in lockstep).
  void start();

  /// Stop generating; already-queued packets drain normally.  In a sharded
  /// run, call only at a window-sync point (lanes quiescent).
  void stop() { stopped_ = true; }

  /// Sum of the per-host counters (kept per host so sharded lanes never
  /// write a shared counter; cold accessor, read at sync points).
  [[nodiscard]] std::uint64_t messages_generated() const {
    std::uint64_t n = 0;
    for (const std::uint64_t g : host_generated_) n += g;
    return n;
  }
  [[nodiscard]] std::uint64_t flits_generated() const {
    return messages_generated() * static_cast<std::uint64_t>(cfg_.payload_bytes);
  }
  /// Per-host inter-arrival time implied by the configured load.
  [[nodiscard]] TimePs interval() const { return interval_; }

 private:
  void host_tick(HostId h);
  void schedule_next(HostId h);

  Simulator* sim_;
  Network* net_;
  const DestinationPattern* pattern_;
  TrafficConfig cfg_;
  TimePs interval_;
  bool stopped_ = false;
  std::vector<std::uint64_t> host_generated_;
  std::vector<Rng> host_rng_;
  MessageTap tap_;
};

}  // namespace itb
