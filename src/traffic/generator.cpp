#include "traffic/generator.hpp"

#include <cassert>
#include <stdexcept>

namespace itb {

TrafficGenerator::TrafficGenerator(Simulator& sim, Network& net,
                                   const DestinationPattern& pattern,
                                   TrafficConfig cfg)
    : sim_(&sim), net_(&net) {
  reset(pattern, cfg);
}

void TrafficGenerator::reset(const DestinationPattern& pattern,
                             TrafficConfig cfg) {
  pattern_ = &pattern;
  cfg_ = cfg;
  if (cfg_.load_flits_per_ns_per_switch <= 0.0 || cfg_.payload_bytes <= 0) {
    throw std::invalid_argument("TrafficGenerator: bad load/payload");
  }
  const auto& topo = net_->topology();
  // load [flits/ns/switch] * switches = network flits/ns; divide across
  // hosts; a host then emits payload_bytes flits every `interval`.
  const double per_host_flits_per_ns =
      cfg_.load_flits_per_ns_per_switch *
      static_cast<double>(topo.num_switches()) /
      static_cast<double>(topo.num_hosts());
  interval_ = static_cast<TimePs>(
      static_cast<double>(cfg_.payload_bytes) / per_host_flits_per_ns *
          1000.0 +
      0.5);
  assert(interval_ > 0);
  stopped_ = false;
  host_generated_.assign(static_cast<std::size_t>(topo.num_hosts()), 0);
  tap_ = nullptr;

  Rng seeder(cfg_.seed);
  host_rng_.clear();
  host_rng_.reserve(static_cast<std::size_t>(topo.num_hosts()));
  for (HostId h = 0; h < topo.num_hosts(); ++h) {
    host_rng_.push_back(seeder.fork(static_cast<std::uint64_t>(h)));
  }
}

void TrafficGenerator::start() {
  // Each host's tick train runs on the simulator owning that host — the
  // serial Simulator normally, the host's lane in a sharded run, so every
  // injection happens on the thread that owns the source NIC.
  const auto& topo = net_->topology();
  for (HostId h = 0; h < topo.num_hosts(); ++h) {
    const auto phase = static_cast<TimePs>(host_rng_[static_cast<std::size_t>(h)]
                                               .next_below(static_cast<std::uint64_t>(interval_)));
    net_->host_sim(h).schedule_in(phase, [this, h] { host_tick(h); });
  }
}

void TrafficGenerator::host_tick(HostId h) {
  if (stopped_) return;
  Rng& rng = host_rng_[static_cast<std::size_t>(h)];
  const HostId dst = pattern_->pick(h, rng);
  if (dst != kNoHost) {
    net_->inject(h, dst, cfg_.payload_bytes);
    ++host_generated_[static_cast<std::size_t>(h)];
    if (tap_) tap_(net_->host_sim(h).now(), h, dst, cfg_.payload_bytes);
  }
  schedule_next(h);
}

void TrafficGenerator::schedule_next(HostId h) {
  TimePs delay = interval_;
  if (cfg_.poisson) {
    delay = static_cast<TimePs>(host_rng_[static_cast<std::size_t>(h)]
                                    .next_exponential(static_cast<double>(interval_)));
    if (delay < 1) delay = 1;
  }
  net_->host_sim(h).schedule_in(delay, [this, h] { host_tick(h); });
}

}  // namespace itb
