#include "traffic/patterns.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }

bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2_exact(int v) {
  int b = 0;
  while ((1 << b) < v) ++b;
  return b;
}
}  // namespace

HostId UniformPattern::pick(HostId src, Rng& rng) const {
  assert(num_hosts_ >= 2);
  // Draw from the other N-1 hosts without rejection.
  const auto r = static_cast<HostId>(
      rng.next_below(static_cast<std::uint64_t>(num_hosts_ - 1)));
  return r >= src ? r + 1 : r;
}

BitReversalPattern::BitReversalPattern(int num_hosts)
    : num_hosts_(num_hosts), bits_(log2_exact(num_hosts)) {
  if (!is_power_of_two(num_hosts)) {
    throw std::invalid_argument(
        "BitReversalPattern: host count must be a power of two");
  }
}

HostId BitReversalPattern::pick(HostId src, Rng& /*rng*/) const {
  unsigned v = static_cast<unsigned>(src);
  unsigned out = 0;
  for (int b = 0; b < bits_; ++b) {
    out = (out << 1) | (v & 1u);
    v >>= 1;
  }
  const auto dst = static_cast<HostId>(out);
  return dst == src ? kNoHost : dst;  // fixed points generate no traffic
}

HotspotPattern::HotspotPattern(int num_hosts, HostId hotspot, double fraction)
    : num_hosts_(num_hosts), hotspot_(hotspot), fraction_(fraction) {
  if (hotspot < 0 || hotspot >= num_hosts) {
    throw std::invalid_argument("HotspotPattern: hotspot out of range");
  }
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("HotspotPattern: fraction out of range");
  }
}

HostId HotspotPattern::pick(HostId src, Rng& rng) const {
  if (src != hotspot_ && rng.next_bool(fraction_)) return hotspot_;
  const auto r = static_cast<HostId>(
      rng.next_below(static_cast<std::uint64_t>(num_hosts_ - 1)));
  return r >= src ? r + 1 : r;
}

LocalPattern::LocalPattern(const Topology& topo, int max_switch_distance) {
  candidates_.resize(idx(topo.num_switches()));
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    const auto dist = topo.switch_distances_from(s);
    for (SwitchId d = 0; d < topo.num_switches(); ++d) {
      if (dist[idx(d)] < 0 || dist[idx(d)] > max_switch_distance) continue;
      for (const HostId h : topo.hosts_of_switch(d)) {
        candidates_[idx(s)].push_back(h);
      }
    }
  }
  // Remember host attachments so pick() can exclude the source.
  src_switch_.resize(idx(topo.num_hosts()));
  for (HostId h = 0; h < topo.num_hosts(); ++h) {
    src_switch_[idx(h)] = topo.host(h).sw;
  }
}

HostId LocalPattern::pick(HostId src, Rng& rng) const {
  const auto& cands = candidates_[idx(src_switch_[idx(src)])];
  assert(cands.size() >= 2);
  for (;;) {
    const HostId h =
        cands[rng.next_below(static_cast<std::uint64_t>(cands.size()))];
    if (h != src) return h;
  }
}

PermutationPattern::PermutationPattern(std::vector<HostId> dest_of_src,
                                       std::string label)
    : dest_(std::move(dest_of_src)), label_(std::move(label)) {}

HostId PermutationPattern::pick(HostId src, Rng& /*rng*/) const {
  const HostId d = dest_[idx(src)];
  return d == src ? kNoHost : d;
}

}  // namespace itb
