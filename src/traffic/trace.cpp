#include "traffic/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace itb {

void MessageTrace::add(TraceRecord rec) {
  if (!records_.empty() && rec.time < records_.back().time) {
    throw std::invalid_argument("MessageTrace: records must be time-ordered");
  }
  records_.push_back(rec);
}

MessageTrace MessageTrace::window(TimePs from, TimePs to) const {
  MessageTrace out;
  for (const TraceRecord& r : records_) {
    if (r.time >= from && r.time < to) out.add(r);
  }
  return out;
}

void MessageTrace::write(std::ostream& os) const {
  for (const TraceRecord& r : records_) {
    os << r.time << ' ' << r.src << ' ' << r.dst << ' ' << r.payload_bytes
       << '\n';
  }
}

MessageTrace MessageTrace::read(std::istream& is) {
  MessageTrace out;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceRecord r;
    if (!(ls >> r.time >> r.src >> r.dst >> r.payload_bytes)) {
      throw std::runtime_error("MessageTrace: malformed line " +
                               std::to_string(lineno));
    }
    out.add(r);
  }
  return out;
}

void MessageTrace::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os.good()) {
    throw std::runtime_error("MessageTrace: cannot write " + path);
  }
  write(os);
}

MessageTrace MessageTrace::load(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    throw std::runtime_error("MessageTrace: cannot read " + path);
  }
  return read(is);
}

TraceReplayer::TraceReplayer(Simulator& sim, Network& net, MessageTrace trace)
    : sim_(&sim), net_(&net), trace_(std::move(trace)) {}

void TraceReplayer::start() {
  if (started_) throw std::logic_error("TraceReplayer: started twice");
  started_ = true;
  if (!trace_.empty()) inject_next();
}

void TraceReplayer::inject_next() {
  // One pending event at a time keeps the event queue small for large
  // traces; records sharing a timestamp are injected back to back.
  const auto& recs = trace_.records();
  const TimePs due = recs[next_].time;
  sim_->schedule_at(sim_->now() > due ? sim_->now() : due, [this] {
    const auto& rs = trace_.records();
    const TimePs now_due = rs[next_].time;
    while (next_ < rs.size() && rs[next_].time == now_due) {
      const TraceRecord& r = rs[next_];
      if (r.src != r.dst && r.payload_bytes > 0) {
        net_->inject(r.src, r.dst, r.payload_bytes);
        ++replayed_;
      }
      ++next_;
    }
    if (next_ < rs.size()) inject_next();
  });
}

}  // namespace itb
