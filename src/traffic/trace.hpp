// Trace-driven workloads.
//
// A MessageTrace is a time-ordered list of (time, source, destination,
// bytes) records.  Traces can be captured from any synthetic run (the
// TrafficGenerator gets a tap), written to / read from a simple text
// format, filtered, and replayed into a Network — which makes scheme
// comparisons *paired*: UP/DOWN and ITB replay the identical message
// sequence instead of merely statistically equal ones.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "topo/types.hpp"

namespace itb {

struct TraceRecord {
  TimePs time = 0;
  HostId src = kNoHost;
  HostId dst = kNoHost;
  int payload_bytes = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class MessageTrace {
 public:
  void add(TraceRecord rec);
  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  /// Records must be appended in nondecreasing time order; add() enforces
  /// this (throws std::invalid_argument).
  [[nodiscard]] TimePs duration() const {
    return records_.empty() ? 0 : records_.back().time;
  }

  /// Keep only records in [from, to).
  [[nodiscard]] MessageTrace window(TimePs from, TimePs to) const;

  // --- text format: one "time_ps src dst bytes" line per record ---
  void write(std::ostream& os) const;
  [[nodiscard]] static MessageTrace read(std::istream& is);
  void save(const std::string& path) const;
  [[nodiscard]] static MessageTrace load(const std::string& path);

  friend bool operator==(const MessageTrace&, const MessageTrace&) = default;

 private:
  std::vector<TraceRecord> records_;
};

/// Replays a trace into a network: each record becomes an inject() at its
/// timestamp (relative to the replayer's start time).
class TraceReplayer {
 public:
  TraceReplayer(Simulator& sim, Network& net, MessageTrace trace);

  /// Schedule every record; call once.
  void start();

  [[nodiscard]] std::uint64_t messages_replayed() const { return replayed_; }

 private:
  Simulator* sim_;
  Network* net_;
  MessageTrace trace_;
  std::size_t next_ = 0;
  std::uint64_t replayed_ = 0;
  bool started_ = false;

  void inject_next();
};

}  // namespace itb
