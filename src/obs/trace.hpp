// Packet-lifecycle tracer: a bounded ring buffer of POD trace records.
//
// The Network carries a `PacketTracer*` that is null unless a run asked for
// tracing (RunConfig::trace), so every hot-path hook compiles to a single
// predictable null test when tracing is disabled — the ≤2% overhead budget
// enforced by bench_micro_kernel's tracing A/B and tools/perf_check.py.
//
// The buffer is bounded: once `capacity` records have been written the ring
// wraps and the oldest records are overwritten, keeping the most recent
// window of activity (the interesting part of a stall or saturation event)
// and counting every overwritten record in dropped().  Records are pure
// observers — recording never schedules events or perturbs the engine, so a
// traced run is bit-identical to an untraced one (asserted by test_obs and
// the golden fixtures).
//
// Workspace-reuse contract: configure() keeps the ring's storage when the
// capacity is unchanged, so repeated traced points in one workspace do not
// re-allocate, and a reused workspace produces a byte-identical trace to a
// fresh one (test_obs.TraceDeterministicAcrossWorkspaceReuse).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "topo/types.hpp"

namespace itb {

/// Milestones recorded by the tracer.  Channel acquire/release bracket the
/// time a packet owns a (unidirectional) channel — the per-hop occupancy
/// spans that the Perfetto exporter renders as one track per channel.
enum class TraceKind : std::uint8_t {
  kInject,       // packet enqueued at the source NIC (host = src)
  kChanAcquire,  // packet granted / started streaming on channel `ch`
  kChanRelease,  // packet's tail left channel `ch`
  kHeader,       // routing byte consumed at switch `sw`
  kEject,        // recognised as in-transit at host `host` (route split)
  kSpill,        // ITB pool exhausted: staged through host memory instead
  kReinject,     // detection + DMA done, queued for re-injection at `host`
  kDeliver,      // tail arrived at the destination NIC (host = dst)
};

[[nodiscard]] inline const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kInject: return "inject";
    case TraceKind::kChanAcquire: return "chan_acquire";
    case TraceKind::kChanRelease: return "chan_release";
    case TraceKind::kHeader: return "header";
    case TraceKind::kEject: return "eject";
    case TraceKind::kSpill: return "spill";
    case TraceKind::kReinject: return "reinject";
    case TraceKind::kDeliver: return "deliver";
  }
  return "?";
}

/// One trace record.  `ch` / `sw` / `host` are -1 when not applicable to
/// the kind.  `lane` is the parallel-engine lane that executed the event
/// (0 in serial runs — the byte lives in what used to be padding, so the
/// record format and size are unchanged).  Trivially copyable: the ring is
/// a flat array and snapshots are memcpy-clean.
struct PacketTraceRecord {
  TimePs t = 0;
  std::uint64_t packet = 0;
  ChannelId ch = -1;
  SwitchId sw = kNoSwitch;
  HostId host = kNoHost;
  TraceKind kind = TraceKind::kInject;
  std::uint8_t lane = 0;
};
static_assert(sizeof(PacketTraceRecord) <= 32, "keep trace records compact");

class PacketTracer {
 public:
  /// Enable tracing into a ring of `capacity` records, discarding any
  /// previous content.  Storage is reused when the capacity is unchanged
  /// (no steady-state allocation across reused workspaces).
  void configure(std::size_t capacity) {
    if (capacity == 0) capacity = 1;
    if (ring_.size() != capacity) {
      ring_.assign(capacity, PacketTraceRecord{});
    }
    keys_.clear();
    keys_.shrink_to_fit();
    lane_ = 0;
    recorded_ = 0;
    enabled_ = true;
  }

  /// Enable keyed (shard) mode: this tracer is written by exactly one
  /// parallel-engine lane, and every record additionally remembers the
  /// shard key of the event that produced it (a parallel ring of
  /// std::uint64_t, so the 32-byte record format is untouched).  Keys are
  /// globally unique across lanes and encode (push_time, lane, count) —
  /// merge_lane_traces() sorts on them to reproduce the serial record
  /// order.  Same storage-reuse contract as configure().
  void configure_lane(std::size_t capacity, std::uint8_t lane) {
    if (capacity == 0) capacity = 1;
    if (ring_.size() != capacity) {
      ring_.assign(capacity, PacketTraceRecord{});
    }
    if (keys_.size() != capacity) {
      keys_.assign(capacity, 0);
    }
    lane_ = lane;
    recorded_ = 0;
    enabled_ = true;
  }

  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Total records observed since configure(), including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Records overwritten by ring wrap (recorded() - stored()).
  [[nodiscard]] std::uint64_t dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  /// Records currently held in the ring.
  [[nodiscard]] std::size_t stored() const {
    return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                    : ring_.size();
  }

  /// Hot-path append (call only while enabled; the Network guards with its
  /// null tracer pointer, so the disabled cost is that single branch).
  void record(TimePs t, TraceKind kind, std::uint64_t packet, ChannelId ch,
              SwitchId sw, HostId host) {
    PacketTraceRecord& r = ring_[static_cast<std::size_t>(recorded_ % ring_.size())];
    r.t = t;
    r.packet = packet;
    r.ch = ch;
    r.sw = sw;
    r.host = host;
    r.kind = kind;
    r.lane = lane_;
    ++recorded_;
  }

  /// Keyed-mode append: record() plus the shard key of the executing event
  /// (Simulator::current_key()).  Lock-free — only the owning lane writes.
  void record_keyed(TimePs t, std::uint64_t key, TraceKind kind,
                    std::uint64_t packet, ChannelId ch, SwitchId sw,
                    HostId host) {
    const std::size_t at = static_cast<std::size_t>(recorded_ % ring_.size());
    keys_[at] = key;
    record(t, kind, packet, ch, sw, host);
  }

  /// Stored records in chronological order (oldest surviving record first).
  [[nodiscard]] std::vector<PacketTraceRecord> snapshot() const {
    std::vector<PacketTraceRecord> out;
    const std::size_t n = stored();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[slot(i)]);
    return out;
  }

  /// Keyed-mode companion to snapshot(): the shard keys aligned with the
  /// records, same chronological order.  Empty unless configure_lane() ran.
  [[nodiscard]] std::vector<std::uint64_t> snapshot_keys() const {
    std::vector<std::uint64_t> out;
    if (keys_.empty()) return out;
    const std::size_t n = stored();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(keys_[slot(i)]);
    return out;
  }

 private:
  /// Ring index of the i-th stored record (oldest surviving first).  When
  /// wrapped, the oldest record sits at the write head.
  [[nodiscard]] std::size_t slot(std::size_t i) const {
    const std::size_t head = static_cast<std::size_t>(recorded_ % ring_.size());
    return recorded_ > ring_.size() ? (head + i) % ring_.size() : i;
  }

  std::vector<PacketTraceRecord> ring_;
  std::vector<std::uint64_t> keys_;  // keyed (shard) mode only
  std::uint8_t lane_ = 0;
  std::uint64_t recorded_ = 0;
  bool enabled_ = false;
};

/// Merge the per-lane rings of a sharded traced run into one stream in the
/// serial total order.  Each lane's stream is already sorted by the shard
/// key of its executing event (lanes execute events in (time, key) order
/// and keys encode push time), and keys are globally unique across lanes,
/// so a cursor-per-lane K-way merge on (t, key) is total and reproduces
/// the exact interleaving a serial traced run records.
///
/// Sharded packet ids carry the minting lane in their top bits
/// (lane << 48 | per-lane counter) while serial ids are one dense global
/// counter; the merge renumbers ids densely by first appearance in the
/// merged stream — which is the serial injection order — so the output is
/// record-identical to the serial trace (asserted by test_obs_parallel on
/// the paper testbeds).  Two caveats, both inherited from the engine
/// rather than introduced by the merge: same-picosecond cross-lane pushes
/// (RunResult::boundary_ties) can permute records WITHIN that picosecond
/// relative to serial — identity is exact whenever boundary_ties is zero —
/// and ring-wrap drops can eat a packet's first record, after which its
/// renumbered id is no longer the serial one; the full guarantee holds for
/// unwrapped rings.
[[nodiscard]] std::vector<PacketTraceRecord> merge_lane_traces(
    const PacketTracer* lanes, std::size_t count);

}  // namespace itb
