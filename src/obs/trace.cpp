#include "obs/trace.hpp"

#include <cstddef>
#include <unordered_map>

namespace itb {

std::vector<PacketTraceRecord> merge_lane_traces(const PacketTracer* lanes,
                                                 std::size_t count) {
  // Cursor-per-lane K-way merge.  Each lane's snapshot is non-decreasing in
  // (t, key) — a lane executes its events in exactly that order and every
  // record is stamped with its executing event's key — and keys are
  // globally unique across lanes (they encode the minting lane), so the
  // strict (t, key) minimum below is unambiguous: two lanes can never tie.
  // Records of one event share its (t, key) and drain consecutively from
  // their lane in program order, which is also the serial program order.
  struct Cursor {
    std::vector<PacketTraceRecord> recs;
    std::vector<std::uint64_t> keys;
    std::size_t i = 0;
  };
  std::vector<Cursor> cur;
  cur.reserve(count);
  std::size_t total = 0;
  for (std::size_t li = 0; li < count; ++li) {
    Cursor c;
    c.recs = lanes[li].snapshot();
    c.keys = lanes[li].snapshot_keys();
    total += c.recs.size();
    cur.push_back(std::move(c));
  }
  std::vector<PacketTraceRecord> out;
  out.reserve(total);
  for (;;) {
    std::size_t best = cur.size();
    TimePs bt = 0;
    std::uint64_t bk = 0;
    for (std::size_t li = 0; li < cur.size(); ++li) {
      const Cursor& c = cur[li];
      if (c.i >= c.recs.size()) continue;
      const TimePs t = c.recs[c.i].t;
      const std::uint64_t k = c.keys.empty() ? 0 : c.keys[c.i];
      if (best == cur.size() || t < bt || (t == bt && k < bk)) {
        best = li;
        bt = t;
        bk = k;
      }
    }
    if (best == cur.size()) break;
    out.push_back(cur[best].recs[cur[best].i++]);
  }

  // Sharded packet ids are lane << 48 | per-lane counter; serial ids are
  // one dense counter starting at 1, assigned in injection order.  The
  // merged stream visits kInject records in exactly that order, so a dense
  // renumber by first appearance reproduces the serial ids (records keep
  // their lane byte — that is the per-lane Perfetto track signal).
  std::unordered_map<std::uint64_t, std::uint64_t> remap;
  remap.reserve(out.size() / 4 + 1);
  std::uint64_t next = 1;
  for (PacketTraceRecord& r : out) {
    const auto [it, fresh] = remap.try_emplace(r.packet, next);
    if (fresh) ++next;
    r.packet = it->second;
  }
  return out;
}

}  // namespace itb
