#include "obs/perfetto.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "net/network.hpp"
#include "obs/trace.hpp"
#include "sim/parallel_engine.hpp"

namespace itb {
namespace {

// obs cannot use harness/json.hpp (the harness links obs), so the exporter
// carries its own minimal emission helpers.
void append_ts_us(std::string& out, TimePs ps) {
  char buf[40];
  // 1 ps == 1e-6 us: six decimals are exact, no rounding.
  std::snprintf(buf, sizeof(buf), "%lld.%06lld",
                static_cast<long long>(ps / 1'000'000),
                static_cast<long long>(ps % 1'000'000));
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_meta(std::string& out, const char* name, int pid, int tid,
                 const std::string& value) {
  out += R"({"name":")";
  out += name;
  out += R"(","ph":"M","pid":)";
  out += std::to_string(pid);
  if (tid >= 0) {
    out += ",\"tid\":";
    out += std::to_string(tid);
  }
  out += R"(,"args":{"name":)";
  append_quoted(out, value);
  out += "}},";
}

/// Engine health track group: one pid per lane (see the header comment).
/// Reads the per-window stat rings, so it emits nothing unless the run
/// enabled them (the harness does for traced/profiled sharded points).
void append_health_tracks(std::string& out, const ParallelEngine& eng) {
  for (int li = 0; li < eng.lanes(); ++li) {
    const std::vector<LaneWindowStat> wins = eng.window_stats(li);
    if (wins.empty()) continue;
    const int pid = 100 + li;
    const std::string spid = std::to_string(pid);
    append_meta(out, "process_name", pid, -1,
                "lane " + std::to_string(li) + " health");
    append_meta(out, "thread_name", pid, 0, "windows");
    append_meta(out, "thread_name", pid, 1, "barrier wait");
    for (const LaneWindowStat& w : wins) {
      out += R"({"name":"window","cat":"health","ph":"X","pid":)";
      out += spid;
      out += R"(,"tid":0,"ts":)";
      append_ts_us(out, w.t_start);
      out += ",\"dur\":";
      append_ts_us(out, w.t_end - w.t_start + 1);  // t_end is inclusive
      out += R"(,"args":{"events":)";
      out += std::to_string(w.events);
      out += ",\"drained\":";
      out += std::to_string(w.drained);
      out += ",\"posted\":";
      out += std::to_string(w.posted);
      out += ",\"run_wall_ns\":";
      out += std::to_string(w.run_wall_ns);
      out += "}},";
      if (w.barrier_wall_ns > 0) {
        // Wall nanoseconds drawn on the simulated axis (1 wall ns = 1 axis
        // ns): the visual gap a slow sibling lane cost this one.
        out += R"({"name":"barrier","cat":"health","ph":"X","pid":)";
        out += spid;
        out += R"(,"tid":1,"ts":)";
        append_ts_us(out, w.t_start);
        out += ",\"dur\":";
        append_ts_us(out, static_cast<TimePs>(w.barrier_wall_ns) * 1000);
        out += R"(,"args":{"wall_ns":)";
        out += std::to_string(w.barrier_wall_ns);
        out += "}},";
      }
      out += R"({"name":"mailbox","ph":"C","pid":)";
      out += spid;
      out += R"(,"tid":0,"ts":)";
      append_ts_us(out, w.t_start);
      out += R"(,"args":{"drained":)";
      out += std::to_string(w.drained);
      out += ",\"posted\":";
      out += std::to_string(w.posted);
      out += "}},";
    }
  }
}

}  // namespace

std::string trace_to_chrome_json(const std::vector<PacketTraceRecord>& records,
                                 const Network& net, std::uint64_t dropped,
                                 const ParallelEngine* engine) {
  std::string out;
  out.reserve(records.size() * 96 + 4096);
  out += R"({"displayTimeUnit":"ns","otherData":{"dropped_records":)";
  out += std::to_string(dropped);
  out += R"(,"records":)";
  out += std::to_string(records.size());
  out += R"(},"traceEvents":[)";

  append_meta(out, "process_name", 1, -1, "channels");
  append_meta(out, "process_name", 2, -1, "packets");
  const int num_channels = net.topology().num_channels();
  for (ChannelId ch = 0; ch < num_channels; ++ch) {
    append_meta(out, "thread_name", 1, ch, net.channel_label(ch));
  }
  // Sharded traces: name the per-lane packet tids.  A serial trace (every
  // record lane 0) emits no extra metas, keeping its export byte-identical.
  int max_lane = 0;
  for (const PacketTraceRecord& r : records) {
    max_lane = std::max(max_lane, static_cast<int>(r.lane));
  }
  if (max_lane > 0) {
    for (int li = 0; li <= max_lane; ++li) {
      append_meta(out, "thread_name", 2, li, "lane " + std::to_string(li));
    }
  }
  if (engine != nullptr) append_health_tracks(out, *engine);

  // Track the open acquire on each channel so acquire/release pairs become
  // one complete slice.  A release whose acquire was overwritten by ring
  // wrap has no open slice and is skipped; an acquire still open at the end
  // of the trace is closed at the last record's timestamp.
  std::unordered_map<ChannelId, PacketTraceRecord> open;
  const TimePs t_last = records.empty() ? 0 : records.back().t;

  auto emit_slice = [&out](const PacketTraceRecord& acq, TimePs t_end) {
    out += R"({"name":"pkt )";
    out += std::to_string(acq.packet);
    out += R"(","cat":"channel","ph":"X","pid":1,"tid":)";
    out += std::to_string(acq.ch);
    out += ",\"ts\":";
    append_ts_us(out, acq.t);
    out += ",\"dur\":";
    append_ts_us(out, t_end - acq.t);
    out += R"(,"args":{"packet":)";
    out += std::to_string(acq.packet);
    out += "}},";
  };

  for (const PacketTraceRecord& r : records) {
    switch (r.kind) {
      case TraceKind::kChanAcquire:
        open[r.ch] = r;
        continue;
      case TraceKind::kChanRelease: {
        auto it = open.find(r.ch);
        if (it != open.end()) {
          emit_slice(it->second, r.t);
          open.erase(it);
        }
        continue;
      }
      default:
        break;
    }
    // Packet-lifecycle milestone -> async event keyed by packet id.
    const char* ph = r.kind == TraceKind::kInject   ? "b"
                     : r.kind == TraceKind::kDeliver ? "e"
                                                     : "n";
    out += R"({"name":")";
    out += to_string(r.kind);
    out += R"(","cat":"packet","ph":")";
    out += ph;
    out += R"(","id":)";
    out += std::to_string(r.packet);
    out += R"(,"pid":2,"tid":)";
    out += std::to_string(r.lane);
    out += R"(,"ts":)";
    append_ts_us(out, r.t);
    if (r.kind != TraceKind::kDeliver) {
      out += R"(,"args":{"sw":)";
      out += std::to_string(r.sw);
      out += ",\"host\":";
      out += std::to_string(r.host);
      out += "}";
    }
    out += "},";
  }
  // Close still-open slices in channel order so the export is byte-stable.
  std::vector<PacketTraceRecord> leftovers;
  leftovers.reserve(open.size());
  for (const auto& [ch, acq] : open) leftovers.push_back(acq);
  std::sort(leftovers.begin(), leftovers.end(),
            [](const PacketTraceRecord& a, const PacketTraceRecord& b) { return a.ch < b.ch; });
  for (const PacketTraceRecord& acq : leftovers) emit_slice(acq, t_last);

  if (out.back() == ',') out.pop_back();
  out += "]}";
  return out;
}

std::string trace_to_csv(const std::vector<PacketTraceRecord>& records) {
  // The lane column appears only when some record actually carries a lane,
  // so single-lane (serial) dumps — and every consumer of the historical
  // six-column format — are byte-for-byte unchanged.
  bool multi_lane = false;
  for (const PacketTraceRecord& r : records) {
    if (r.lane != 0) {
      multi_lane = true;
      break;
    }
  }
  std::string out = multi_lane ? "t_ps,kind,packet,channel,switch,host,lane\n"
                               : "t_ps,kind,packet,channel,switch,host\n";
  out.reserve(out.size() + records.size() * 40);
  for (const PacketTraceRecord& r : records) {
    out += std::to_string(r.t);
    out += ',';
    out += to_string(r.kind);
    out += ',';
    out += std::to_string(r.packet);
    out += ',';
    out += std::to_string(r.ch);
    out += ',';
    out += std::to_string(r.sw);
    out += ',';
    out += std::to_string(r.host);
    if (multi_lane) {
      out += ',';
      out += std::to_string(static_cast<int>(r.lane));
    }
    out += '\n';
  }
  return out;
}

}  // namespace itb
