// Trace export: PacketTracer ring -> Chrome trace-event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Mapping (see docs/OBSERVABILITY.md):
//  * pid 1 "channels": one thread per directed channel (named with
//    Network::channel_label).  Each acquire/release pair becomes a complete
//    ("X") slice — the per-hop occupancy timeline that makes congested
//    links visually obvious.
//  * pid 2 "packets": one async ("b"/"n"/"e") track per packet id carrying
//    the lifecycle milestones (inject, header, eject, spill, reinject,
//    deliver).
// Timestamps are simulated picoseconds converted to the trace format's
// microseconds (exact: 1 ps = 1e-6 us, six decimals).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace itb {

class Network;
struct PacketTraceRecord;

/// Render trace records (chronological, e.g. PacketTracer::snapshot()) as a
/// Chrome trace-event JSON document.  `dropped` (ring overwrites) is
/// recorded in otherData so a truncated trace is self-describing.
[[nodiscard]] std::string trace_to_chrome_json(
    const std::vector<PacketTraceRecord>& records, const Network& net,
    std::uint64_t dropped);

/// Raw dump, one record per row (t_ps,kind,packet,channel,switch,host) —
/// the input format tools/trace2perfetto.py converts, for workflows that
/// post-process traces without re-running the simulator.
[[nodiscard]] std::string trace_to_csv(const std::vector<PacketTraceRecord>& records);

}  // namespace itb
