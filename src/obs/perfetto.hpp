// Trace export: PacketTracer ring -> Chrome trace-event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Mapping (see docs/OBSERVABILITY.md):
//  * pid 1 "channels": one thread per directed channel (named with
//    Network::channel_label).  Each acquire/release pair becomes a complete
//    ("X") slice — the per-hop occupancy timeline that makes congested
//    links visually obvious.
//  * pid 2 "packets": one async ("b"/"n"/"e") track per packet id carrying
//    the lifecycle milestones (inject, header, eject, spill, reinject,
//    deliver).  Sharded traces place each milestone on the tid of the lane
//    that executed it (serial records carry lane 0, so the serial export is
//    byte-identical to before the lane byte existed).
//  * pid 100+lane "lane N health" (sharded runs, when an engine is passed):
//    tid 0 carries one "window" X slice per barrier window at simulated
//    time (args: events, drained, posted, run_wall_ns) plus a "mailbox"
//    counter of cross-lane traffic; tid 1 renders that window's preceding
//    barrier wait as a slice whose duration is WALL nanoseconds drawn on
//    the simulated axis (1 wall ns = 1 axis ns — the imbalance signal, not
//    a simulated quantity; args carry the raw ns).
// Timestamps are simulated picoseconds converted to the trace format's
// microseconds (exact: 1 ps = 1e-6 us, six decimals).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace itb {

class Network;
class ParallelEngine;
struct PacketTraceRecord;

/// Render trace records (chronological, e.g. PacketTracer::snapshot() or
/// merge_lane_traces()) as a Chrome trace-event JSON document.  `dropped`
/// (ring overwrites) is recorded in otherData so a truncated trace is
/// self-describing.  Pass the run's ParallelEngine to additionally emit the
/// per-lane health track group above (null or lane-less engines emit
/// exactly the serial document).
[[nodiscard]] std::string trace_to_chrome_json(
    const std::vector<PacketTraceRecord>& records, const Network& net,
    std::uint64_t dropped, const ParallelEngine* engine = nullptr);

/// Raw dump, one record per row (t_ps,kind,packet,channel,switch,host) —
/// the input format tools/trace2perfetto.py converts, for workflows that
/// post-process traces without re-running the simulator.  Multi-lane
/// records gain a trailing `lane` column; single-lane traces keep the
/// historical six-column format byte-for-byte.
[[nodiscard]] std::string trace_to_csv(const std::vector<PacketTraceRecord>& records);

}  // namespace itb
