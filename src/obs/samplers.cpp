#include "obs/samplers.hpp"

#include <filesystem>
#include <fstream>

#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace itb {

void TimeSeriesSampler::begin(TimePs now, bool link_util, const Simulator& sim,
                              const Network& net,
                              const MetricsCollector& metrics, bool itb_pool) {
  begin(now, link_util, EngineCounters{sim.events_executed(), sim.queue_len()},
        net, metrics, itb_pool);
}

void TimeSeriesSampler::begin(TimePs now, bool link_util, EngineCounters eng,
                              const Network& net,
                              const MetricsCollector& metrics, bool itb_pool) {
  samples_.clear();
  link_util_ = link_util;
  itb_pool_ = itb_pool;
  last_t_ = now;
  last_delivered_ = metrics.delivered();
  last_flits_ = metrics.delivered_flits();
  last_latency_sum_ = metrics.net_latency().sum();
  last_latency_count_ = metrics.net_latency().count();
  last_events_ = eng.events_executed;
  const int channels = net.topology().num_channels();
  prev_busy_.assign(static_cast<std::size_t>(link_util_ ? channels : 0), 0);
  for (std::size_t ch = 0; ch < prev_busy_.size(); ++ch) {
    prev_busy_[ch] = net.channel_busy_time(static_cast<ChannelId>(ch));
  }
}

void TimeSeriesSampler::sample(TimePs now, const Simulator& sim,
                               const Network& net,
                               const MetricsCollector& metrics) {
  sample(now, EngineCounters{sim.events_executed(), sim.queue_len()}, net,
         metrics);
}

void TimeSeriesSampler::sample(TimePs now, EngineCounters eng,
                               const Network& net,
                               const MetricsCollector& metrics) {
  TimeSeriesSample s;
  s.t_start = last_t_;
  s.t_end = now;
  const double window_ns = static_cast<double>(now - last_t_) / 1000.0;

  const std::uint64_t delivered = metrics.delivered();
  const std::uint64_t flits = metrics.delivered_flits();
  s.delivered = delivered - last_delivered_;
  if (window_ns > 0.0) {
    s.accepted_flits_per_ns_per_switch =
        static_cast<double>(flits - last_flits_) / window_ns /
        static_cast<double>(net.topology().num_switches());
  }

  const double lat_sum = metrics.net_latency().sum();
  const std::uint64_t lat_count = metrics.net_latency().count();
  if (lat_count > last_latency_count_) {
    s.avg_latency_ns = (lat_sum - last_latency_sum_) /
                       static_cast<double>(lat_count - last_latency_count_);
  }

  const std::uint64_t events = eng.events_executed;
  s.events = events - last_events_;
  s.queue_len = eng.queue_len;

  const std::int64_t pool_capacity =
      net.params().itb_pool_bytes *
      static_cast<std::int64_t>(net.topology().num_hosts());
  s.itb_pool_frac = pool_capacity > 0
                        ? static_cast<double>(net.itb_pool_used_total()) /
                              static_cast<double>(pool_capacity)
                        : 0.0;

  if (itb_pool_) {
    const auto hosts = static_cast<std::size_t>(net.topology().num_hosts());
    const std::int64_t per_host = net.params().itb_pool_bytes;
    s.itb_pool.resize(hosts);
    for (std::size_t h = 0; h < hosts; ++h) {
      s.itb_pool[h] =
          per_host > 0
              ? static_cast<float>(
                    static_cast<double>(net.itb_pool_used(
                        static_cast<HostId>(h))) /
                    static_cast<double>(per_host))
              : 0.0f;
    }
  }

  if (link_util_ && now > last_t_) {
    s.link_util.resize(prev_busy_.size());
    for (std::size_t ch = 0; ch < prev_busy_.size(); ++ch) {
      const TimePs busy = net.channel_busy_time(static_cast<ChannelId>(ch));
      s.link_util[ch] = static_cast<float>(
          static_cast<double>(busy - prev_busy_[ch]) /
          static_cast<double>(now - last_t_));
      prev_busy_[ch] = busy;
    }
  }

  last_t_ = now;
  last_delivered_ = delivered;
  last_flits_ = flits;
  last_latency_sum_ = lat_sum;
  last_latency_count_ = lat_count;
  last_events_ = events;
  samples_.push_back(std::move(s));
}

void append_samples_csv(const std::string& path, const std::string& experiment,
                        const std::string& scheme,
                        const std::vector<TimeSeriesSample>& samples) {
  const bool fresh =
      !std::filesystem::exists(path) || std::filesystem::file_size(path) == 0;
  std::ofstream os(path, std::ios::app);
  if (fresh) {
    os << "experiment,scheme,window,t_start_ps,t_end_ps,delivered,"
          "accepted,avg_latency_ns,events,queue_len,itb_pool_frac,"
          "mean_link_util,max_link_util\n";
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const TimeSeriesSample& s = samples[i];
    double mean_util = 0.0;
    double max_util = 0.0;
    if (!s.link_util.empty()) {
      for (const float u : s.link_util) {
        mean_util += u;
        if (u > max_util) max_util = u;
      }
      mean_util /= static_cast<double>(s.link_util.size());
    }
    os << experiment << ',' << scheme << ',' << i << ',' << s.t_start << ','
       << s.t_end << ',' << s.delivered << ','
       << s.accepted_flits_per_ns_per_switch << ',' << s.avg_latency_ns << ','
       << s.events << ',' << s.queue_len << ',' << s.itb_pool_frac << ','
       << mean_util << ',' << max_util << '\n';
  }
}

void write_heatmap_csv(const std::string& path,
                       const std::vector<TimeSeriesSample>& samples) {
  std::ofstream os(path, std::ios::trunc);
  os << "metric,id,window,t_start_ps,t_end_ps,value\n";
  for (std::size_t w = 0; w < samples.size(); ++w) {
    const TimeSeriesSample& s = samples[w];
    for (std::size_t ch = 0; ch < s.link_util.size(); ++ch) {
      os << "link_util," << ch << ',' << w << ',' << s.t_start << ','
         << s.t_end << ',' << s.link_util[ch] << '\n';
    }
    for (std::size_t h = 0; h < s.itb_pool.size(); ++h) {
      os << "itb_pool," << h << ',' << w << ',' << s.t_start << ',' << s.t_end
         << ',' << s.itb_pool[h] << '\n';
    }
  }
}

}  // namespace itb
