// Phase profiler: scoped wall-clock timers over engine stages, aggregated
// per run.
//
// The Network (and the harness run loop) hold a `PhaseProfiler*` that is
// null unless the run asked for profiling (RunConfig::profile), so every
// scope compiles to a single null test when disabled.  When enabled, each
// scope costs two steady_clock reads — a real observer effect on the
// per-event phases (documented in docs/OBSERVABILITY.md), which is why the
// profiler reports wall time per phase rather than pretending to be free.
//
// Phase times are INCLUSIVE: kEventDispatch brackets the whole POD dispatch
// and therefore contains kRouteLookup / kMetrics time spent inside it.
// Wall-clock totals are host-side observability and never feed back into
// the simulation, so profiling cannot change simulated results.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace itb {

enum class Phase : std::uint8_t {
  kWarmup,         // harness: warm-up run_until
  kMeasure,        // harness: measurement-window run_until
  kEventDispatch,  // Network::handle_event (POD engine dispatch)
  kRouteLookup,    // header consumption + output-port lookup + arbitration
  kLedgerChecks,   // end-of-window conservation audit
  kMetrics,        // delivery callback into the metrics collector
  kCount,
};

[[nodiscard]] inline const char* to_string(Phase p) {
  switch (p) {
    case Phase::kWarmup: return "warmup";
    case Phase::kMeasure: return "measure";
    case Phase::kEventDispatch: return "event_dispatch";
    case Phase::kRouteLookup: return "route_lookup";
    case Phase::kLedgerChecks: return "ledger_checks";
    case Phase::kMetrics: return "metrics";
    case Phase::kCount: break;
  }
  return "?";
}

/// Aggregated wall time and entry count for one phase.
struct PhaseAgg {
  std::int64_t wall_ns = 0;
  std::uint64_t calls = 0;
};

class PhaseProfiler {
 public:
  static constexpr std::size_t kPhases = static_cast<std::size_t>(Phase::kCount);

  void clear() { agg_ = {}; }

  void add(Phase p, std::int64_t wall_ns) {
    PhaseAgg& a = agg_[static_cast<std::size_t>(p)];
    a.wall_ns += wall_ns;
    ++a.calls;
  }

  [[nodiscard]] const PhaseAgg& agg(Phase p) const {
    return agg_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const std::array<PhaseAgg, kPhases>& totals() const {
    return agg_;
  }

 private:
  std::array<PhaseAgg, kPhases> agg_{};
};

/// RAII scope: times its lifetime into `profiler` (no-op when null).
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (profiler_ != nullptr) {
      const auto wall = std::chrono::steady_clock::now() - start_;
      profiler_->add(
          phase_,
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace itb
