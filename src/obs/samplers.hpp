// Time-series samplers: windowed metrics over simulated-time windows.
//
// The harness drives sampling by slicing the measurement window into
// `RunConfig::sample_period` chunks of run_until() calls and capturing one
// TimeSeriesSample between slices.  Slicing executes the exact same event
// sequence as one long run_until (run_until only advances the clock past a
// boundary when no earlier event remains), so a sampled run is bit-identical
// to an unsampled one in every simulated metric — asserted by
// test_obs_samplers.SamplingDoesNotPerturbTheSimulation.  No sampling
// events are ever scheduled.
//
// Per-window quantities are deltas of the engine's cumulative counters
// (delivered flits, latency sums, busy accumulators), so the windowed
// series always re-aggregates to the steady-state numbers: summing
// accepted-traffic windows reproduces RunResult::accepted, and the
// busy-time-weighted mean of a link's windowed utilization reproduces its
// ChannelUtil::utilization within rounding (the Fig. 8/9/11 acceptance
// check).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace itb {

class MetricsCollector;
class Network;
class Simulator;

/// One simulated-time window of telemetry.
struct TimeSeriesSample {
  TimePs t_start = 0;  // window bounds (absolute simulated time)
  TimePs t_end = 0;
  std::uint64_t delivered = 0;  // packets delivered in this window
  double accepted_flits_per_ns_per_switch = 0.0;
  /// Mean network latency (ns) of deliveries in this window; 0 when none.
  double avg_latency_ns = 0.0;
  std::uint64_t events = 0;     // simulator events executed in this window
  std::uint64_t queue_len = 0;  // pending events at the window's end
  /// Mean ITB-pool occupancy across NICs at the window's end (fraction of
  /// MyrinetParams::itb_pool_bytes).
  double itb_pool_frac = 0.0;
  /// Per-channel busy fraction over this window (indexed by ChannelId);
  /// empty unless link sampling was requested.
  std::vector<float> link_util;
  /// Per-host ITB-pool occupancy (fraction of itb_pool_bytes) at the
  /// window's end (indexed by HostId); empty unless heatmap sampling was
  /// requested.  Read at sync points, so it works identically under
  /// sharding — the lanes are quiescent whenever a window closes.
  std::vector<float> itb_pool;
};

/// Engine-level counters a sample reads.  The serial overloads fill this
/// from one Simulator; sharded runs pass lane-aggregated totals (lanes +
/// coordinator + undrained mailbox messages) so the windowed event series
/// still re-aggregates to RunResult::events.
struct EngineCounters {
  std::uint64_t events_executed = 0;
  std::uint64_t queue_len = 0;
};

/// Captures windowed samples from the live component stack.  begin() at the
/// start of the measurement window, then sample() at each window boundary.
class TimeSeriesSampler {
 public:
  /// Arm the sampler at simulated time `now` (the start of the measurement
  /// window, after MetricsCollector::reset_window and
  /// Network::reset_channel_stats).  `link_util` additionally records
  /// per-channel busy fractions each window.
  void begin(TimePs now, bool link_util, const Simulator& sim,
             const Network& net, const MetricsCollector& metrics,
             bool itb_pool = false);
  void begin(TimePs now, bool link_util, EngineCounters eng,
             const Network& net, const MetricsCollector& metrics,
             bool itb_pool = false);

  /// Close the current window at simulated time `now` and append a sample.
  void sample(TimePs now, const Simulator& sim, const Network& net,
              const MetricsCollector& metrics);
  void sample(TimePs now, EngineCounters eng, const Network& net,
              const MetricsCollector& metrics);

  [[nodiscard]] const std::vector<TimeSeriesSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::vector<TimeSeriesSample> take() {
    return std::move(samples_);
  }

 private:
  std::vector<TimeSeriesSample> samples_;
  std::vector<TimePs> prev_busy_;  // per-channel busy_accum at window start
  TimePs last_t_ = 0;
  std::uint64_t last_delivered_ = 0;
  std::uint64_t last_flits_ = 0;
  double last_latency_sum_ = 0.0;
  std::uint64_t last_latency_count_ = 0;
  std::uint64_t last_events_ = 0;
  bool link_util_ = false;
  bool itb_pool_ = false;
};

/// Append `samples` to a CSV file (header written when the file is empty),
/// one row per window, with per-link columns elided (the raw trace and the
/// JSON form carry those).  Mirrors append_series_csv's append semantics.
void append_samples_csv(const std::string& path, const std::string& experiment,
                        const std::string& scheme,
                        const std::vector<TimeSeriesSample>& samples);

/// Write the congestion heatmap: one long-format CSV row per (metric, id,
/// window) — `link_util` keyed by ChannelId and `itb_pool` keyed by HostId —
/// sized for the dragonfly16-class beds (rows scale as windows x (channels
/// + hosts), not switches^2).  Windows lacking a metric (sampling off) emit
/// no rows.  Overwrites `path`.
void write_heatmap_csv(const std::string& path,
                       const std::vector<TimeSeriesSample>& samples);

}  // namespace itb
