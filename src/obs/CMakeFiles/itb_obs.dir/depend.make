# Empty dependencies file for itb_obs.
# This may be replaced when dependencies are built.
