file(REMOVE_RECURSE
  "CMakeFiles/itb_obs.dir/perfetto.cpp.o"
  "CMakeFiles/itb_obs.dir/perfetto.cpp.o.d"
  "CMakeFiles/itb_obs.dir/samplers.cpp.o"
  "CMakeFiles/itb_obs.dir/samplers.cpp.o.d"
  "CMakeFiles/itb_obs.dir/trace.cpp.o"
  "CMakeFiles/itb_obs.dir/trace.cpp.o.d"
  "libitb_obs.a"
  "libitb_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
