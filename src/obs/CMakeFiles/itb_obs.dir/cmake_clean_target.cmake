file(REMOVE_RECURSE
  "libitb_obs.a"
)
