// Ready-to-simulate bundle: a topology plus its up*/down* orientation and
// lazily built routing tables for every scheme the paper compares.
//
// Thread-safety: table construction is guarded by an internal mutex, so
// concurrent routes()/warm() calls from the parallel drivers are safe.
// Once built, a table is never modified and the returned reference stays
// valid for the Testbed's lifetime, so workers share it without locking.
// Call warm() before fanning out to pre-build tables off the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/path_policy.hpp"
#include "core/route_set.hpp"
#include "route/simple_routes.hpp"
#include "route/updown.hpp"
#include "sim/pool.hpp"
#include "topo/topology.hpp"

namespace itb {

/// The routing schemes of the evaluation (§4.7) plus the future-work
/// extensions.
enum class RoutingScheme {
  kUpDown,    // "UP/DOWN": simple_routes-selected up*/down*, single path
  kItbSp,     // "ITB-SP": minimal paths + in-transit buffers, single path
  kItbRr,     // "ITB-RR": same table, round-robin over alternatives
  kItbRnd,    // extension: random alternative per packet
  kItbAdapt,  // extension: latency-feedback adaptive selection
  kMinimal,   // "MIN": structured minimal baseline (dimension-order /
              // l-g-l / direct); only on structured topologies
};

[[nodiscard]] const char* to_string(RoutingScheme s);
[[nodiscard]] PathPolicy policy_of(RoutingScheme s);

class Testbed {
 public:
  /// Takes ownership of the topology; `root` is the up*/down* root switch
  /// (the paper's torus uses the top-left switch, id 0).  Pass kAutoRoot
  /// (route/updown.hpp) to let select_updown_root pick a pseudo-center —
  /// the right default for the dense low-diameter topologies, where a
  /// corner root needlessly deepens the tree.
  explicit Testbed(Topology topo, SwitchId root = 0);

  // Movable (fresh mutex on the destination); moving is only safe before
  // the Testbed is shared with workers, like any other non-atomic handoff.
  Testbed(Testbed&& other) noexcept;
  Testbed& operator=(Testbed&& other) noexcept;
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] const Topology& topo() const { return *topo_; }
  [[nodiscard]] const UpDown& updown() const { return *updown_; }

  /// Routing table for a scheme (built on first use, then cached).  All ITB
  /// schemes share one table and differ only in path policy.  A cold call
  /// fans the row build out across default_jobs() workers; when the caller
  /// is itself a pool worker the build runs inline on it instead
  /// (pooled_for is re-entrancy-guarded; see sim/pool.hpp), so the old
  /// cold-from-a-worker serial penalty is gone without risking a nested
  /// fan-out.
  [[nodiscard]] const RouteSet& routes(RoutingScheme s) const {
    return routes_with_jobs(s, default_jobs());
  }

  /// Pre-build the table for `s` (idempotent).  Parallel drivers warm the
  /// schemes they will run before fan-out so workers only ever read;
  /// because warm() runs on the main thread, it may fan the row build out
  /// across `jobs` workers (bit-identical to the serial build).
  void warm(RoutingScheme s, int jobs = 1) const {
    (void)routes_with_jobs(s, jobs);
  }

  /// Pre-build every table this topology supports: up*/down*, the shared
  /// ITB table, and — on structured topologies only — the MIN table.
  void warm_all(int jobs = 1) const;

  /// Process-unique, monotonically assigned id of the table `routes(s)`
  /// returns (building it if needed).  Unlike the table's address, a
  /// generation id is never reused, so caches of per-table facts (e.g. the
  /// checked-mode "verified clean" set) stay valid after a Testbed dies
  /// and a later table lands at the same address.
  [[nodiscard]] std::uint64_t table_generation(RoutingScheme s) const;

 private:
  [[nodiscard]] const RouteSet& routes_with_jobs(RoutingScheme s,
                                                 int jobs) const;

  std::unique_ptr<Topology> topo_;
  std::unique_ptr<UpDown> updown_;
  mutable std::mutex build_mu_;
  mutable std::optional<RouteSet> updown_routes_;
  mutable std::optional<RouteSet> itb_routes_;
  mutable std::optional<RouteSet> minimal_routes_;
  mutable std::uint64_t updown_gen_ = 0;  // assigned when the table is built
  mutable std::uint64_t itb_gen_ = 0;
  mutable std::uint64_t minimal_gen_ = 0;
};

}  // namespace itb
