#include "harness/sweep.hpp"

#include <algorithm>
#include <cmath>

namespace itb {

std::vector<SweepPoint> sweep_loads(Testbed& tb, RoutingScheme scheme,
                                    const DestinationPattern& pattern,
                                    RunConfig cfg,
                                    const std::vector<double>& loads) {
  std::vector<SweepPoint> out;
  for (const double load : loads) {
    cfg.load_flits_per_ns_per_switch = load;
    out.push_back(SweepPoint{load, run_point(tb, scheme, pattern, cfg)});
    if (out.back().result.saturated) break;
  }
  return out;
}

std::vector<double> geometric_loads(double lo, double hi, int points) {
  std::vector<double> out;
  if (points <= 1) {
    out.push_back(lo);
    return out;
  }
  const double ratio = std::pow(hi / lo, 1.0 / (points - 1));
  double v = lo;
  for (int i = 0; i < points; ++i) {
    out.push_back(v);
    v *= ratio;
  }
  return out;
}

std::vector<double> linear_loads(double lo, double hi, int points) {
  std::vector<double> out;
  if (points <= 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / (points - 1);
  for (int i = 0; i < points; ++i) out.push_back(lo + step * i);
  return out;
}

SaturationResult find_saturation(Testbed& tb, RoutingScheme scheme,
                                 const DestinationPattern& pattern,
                                 RunConfig cfg, double start_load,
                                 double growth, int max_points) {
  SaturationResult res;
  double load = start_load;
  for (int i = 0; i < max_points; ++i) {
    cfg.load_flits_per_ns_per_switch = load;
    RunResult r = run_point(tb, scheme, pattern, cfg);
    res.trace.push_back(SweepPoint{load, r});
    res.throughput = std::max(res.throughput, r.accepted);
    if (r.saturated) {
      res.saturating_load = load;
      // Confirm the plateau with one clearly overloaded probe.
      cfg.load_flits_per_ns_per_switch = load * 1.5;
      RunResult over = run_point(tb, scheme, pattern, cfg);
      res.trace.push_back(SweepPoint{load * 1.5, over});
      res.throughput = std::max(res.throughput, over.accepted);
      return res;
    }
    load *= growth;
  }
  res.saturating_load = load;
  return res;
}

}  // namespace itb
