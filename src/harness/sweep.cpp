#include "harness/sweep.hpp"

#include <algorithm>
#include <cmath>

#include "sim/pool.hpp"

namespace itb {

std::vector<SweepPoint> sweep_loads(const Testbed& tb, RoutingScheme scheme,
                                    const DestinationPattern& pattern,
                                    RunConfig cfg,
                                    const std::vector<double>& loads,
                                    int jobs) {
  if (jobs <= 1 || loads.size() <= 1) {
    std::vector<SweepPoint> out;
    for (const double load : loads) {
      cfg.load_flits_per_ns_per_switch = load;
      out.push_back(SweepPoint{load, run_point(tb, scheme, pattern, cfg)});
      if (out.back().result.saturated) break;
    }
    return out;
  }
  // Speculative: run every ladder point concurrently, then trim to the
  // serial early-stop shape (keep exactly one saturated point).  Points
  // past the knee are wasted work, but the ladder is short and the win
  // from running the pre-knee points in parallel dominates.
  tb.warm(scheme, jobs);
  std::vector<SweepPoint> all =
      parallel_map<SweepPoint>(static_cast<int>(loads.size()), jobs, [&](int i) {
        RunConfig point_cfg = cfg;
        point_cfg.load_flits_per_ns_per_switch = loads[static_cast<std::size_t>(i)];
        return SweepPoint{loads[static_cast<std::size_t>(i)],
                          run_point(tb, scheme, pattern, point_cfg)};
      });
  std::size_t keep = all.size();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].result.saturated) {
      keep = i + 1;
      break;
    }
  }
  all.resize(keep);
  return all;
}

std::vector<double> geometric_loads(double lo, double hi, int points) {
  std::vector<double> out;
  if (points <= 1) {
    out.push_back(lo);
    return out;
  }
  const double ratio = std::pow(hi / lo, 1.0 / (points - 1));
  double v = lo;
  for (int i = 0; i < points; ++i) {
    out.push_back(v);
    v *= ratio;
  }
  return out;
}

std::vector<double> linear_loads(double lo, double hi, int points) {
  std::vector<double> out;
  if (points <= 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / (points - 1);
  for (int i = 0; i < points; ++i) out.push_back(lo + step * i);
  return out;
}

SaturationResult find_saturation(const Testbed& tb, RoutingScheme scheme,
                                 const DestinationPattern& pattern,
                                 RunConfig cfg, double start_load,
                                 double growth, int max_points) {
  SaturationResult res;
  double load = start_load;
  for (int i = 0; i < max_points; ++i) {
    cfg.load_flits_per_ns_per_switch = load;
    RunResult r = run_point(tb, scheme, pattern, cfg);
    res.trace.push_back(SweepPoint{load, r});
    res.throughput = std::max(res.throughput, r.accepted);
    res.saturating_load = load;  // last load actually simulated
    if (r.saturated) {
      res.saturated = true;
      // Confirm the plateau with one clearly overloaded probe.
      cfg.load_flits_per_ns_per_switch = load * 1.5;
      RunResult over = run_point(tb, scheme, pattern, cfg);
      res.trace.push_back(SweepPoint{load * 1.5, over});
      res.throughput = std::max(res.throughput, over.accepted);
      return res;
    }
    load *= growth;
  }
  // Ladder exhausted without saturating: saturating_load holds the last
  // load run (not the never-simulated next rung) and `saturated` is false.
  if (res.trace.empty()) res.saturating_load = 0.0;
  return res;
}

}  // namespace itb
