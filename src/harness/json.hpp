// Minimal JSON emission for machine consumption of results.
//
// Deliberately tiny: an append-only writer for objects/arrays of numbers,
// strings and booleans — everything a RunResult needs.  No parsing, no
// DOM; downstream tooling (plots, dashboards) consumes the output.
#pragma once

#include <string>
#include <vector>

#include "harness/sweep.hpp"

namespace itb {

/// Escapes and quotes a string for JSON.
[[nodiscard]] std::string json_quote(const std::string& s);

/// Streaming writer producing compact, valid JSON.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key for the next value (objects only).
  JsonWriter& key(const std::string& k);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void separator();
  std::string out_;
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// One RunResult as a JSON object.
[[nodiscard]] std::string run_result_to_json(const RunResult& r);

/// Deterministic subset of run_result_to_json: identical except wall_ms
/// and events_per_sec (host-side, noisy by construction) are omitted, so
/// the string is bit-stable across runs for a fixed engine/config — the
/// representation the committed golden fixtures compare against.
[[nodiscard]] std::string run_result_to_canonical_json(const RunResult& r);

/// A sweep series as a JSON document with metadata.
[[nodiscard]] std::string series_to_json(const std::string& experiment,
                                         const std::string& scheme,
                                         const std::vector<SweepPoint>& series);

}  // namespace itb
