#include "harness/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>

namespace itb {

namespace {
std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}
}  // namespace

std::string fmt_load(double v) { return fmt("%.4f", v); }
std::string fmt_ns(double v) { return fmt("%.1f", v); }
std::string fmt_ratio(double v) { return fmt("%.2f", v); }
std::string fmt_pct(double v) { return fmt("%.1f%%", v * 100.0); }

void print_series(std::ostream& os, const std::string& title,
                  const std::string& scheme,
                  const std::vector<SweepPoint>& series) {
  os << "# " << title << " — " << scheme << "\n";
  os << "  offered    accepted   latency(ns)  lat-gen(ns)   p99(ns)  itb/msg"
     << "  sat\n";
  for (const SweepPoint& p : series) {
    const RunResult& r = p.result;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  %8.4f   %8.4f   %10.1f   %10.1f  %8.1f   %6.2f  %s\n",
                  r.offered, r.accepted, r.avg_latency_ns, r.avg_latency_gen_ns,
                  r.p99_latency_ns, r.avg_itbs, r.saturated ? "yes" : "no");
    os << buf;
  }
}

void append_series_csv(const std::string& path, const std::string& experiment,
                       const std::string& scheme,
                       const std::vector<SweepPoint>& series) {
  if (path.empty()) return;
  std::ifstream probe(path);
  const bool empty = !probe.good() || probe.peek() == std::ifstream::traits_type::eof();
  probe.close();
  std::ofstream os(path, std::ios::app);
  if (empty) {
    os << "experiment,scheme,offered,accepted,lat_net_ns,lat_gen_ns,p99_ns,"
          "itbs_per_msg,saturated\n";
  }
  for (const SweepPoint& p : series) {
    const RunResult& r = p.result;
    os << experiment << ',' << scheme << ',' << r.offered << ',' << r.accepted
       << ',' << r.avg_latency_ns << ',' << r.avg_latency_gen_ns << ','
       << r.p99_latency_ns << ',' << r.avg_itbs << ','
       << (r.saturated ? 1 : 0) << '\n';
  }
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto pad = [&](const std::string& s, std::size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  os << "  ";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << pad(headers_[i], width[i]) << "  ";
  }
  os << "\n";
  for (const auto& row : rows_) {
    os << "  ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << pad(row[i], width[i]) << "  ";
    }
    os << "\n";
  }
}

BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opts;
  const char* env = std::getenv("ITB_BENCH_FAST");
  if (env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    opts.fast = true;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      opts.fast = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      opts.fast = false;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      opts.csv = argv[++i];
    } else {
      std::cerr << "unknown argument: " << argv[i]
                << " (supported: --fast, --full, --csv FILE)\n";
    }
  }
  return opts;
}

}  // namespace itb
