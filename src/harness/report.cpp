#include "harness/report.hpp"

#include "sim/pool.hpp"
#include "harness/result_fields.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

namespace itb {

namespace {
std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}
}  // namespace

std::string fmt_load(double v) { return fmt("%.4f", v); }
std::string fmt_ns(double v) { return fmt("%.1f", v); }
std::string fmt_ratio(double v) { return fmt("%.2f", v); }
std::string fmt_pct(double v) { return fmt("%.1f%%", v * 100.0); }

void print_series(std::ostream& os, const std::string& title,
                  const std::string& scheme,
                  const std::vector<SweepPoint>& series) {
  os << "# " << title << " — " << scheme << "\n";
  os << "  offered    accepted   latency(ns)  lat-gen(ns)   p99(ns)  itb/msg"
     << "  sat   wall(ms)   Mev/s\n";
  for (const SweepPoint& p : series) {
    const RunResult& r = p.result;
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "  %8.4f   %8.4f   %10.1f   %10.1f  %8.1f   %6.2f  %s "
                  "%9.1f  %6.2f\n",
                  r.offered, r.accepted, r.avg_latency_ns, r.avg_latency_gen_ns,
                  r.p99_latency_ns, r.avg_itbs, r.saturated ? "yes" : "no ",
                  r.wall_ms, r.events_per_sec / 1e6);
    os << buf;
  }
}

void append_series_csv(const std::string& path, const std::string& experiment,
                       const std::string& scheme,
                       const std::vector<SweepPoint>& series) {
  if (path.empty()) return;
  std::ifstream probe(path);
  const bool empty = !probe.good() || probe.peek() == std::ifstream::traits_type::eof();
  probe.close();
  std::ofstream os(path, std::ios::app);
  // Columns come from the same registry that drives JSON emission, under
  // the same names, so the surfaces cannot drift (test_result_fields).
  if (empty) {
    os << "experiment,scheme";
    for (const ResultField& f : result_fields()) os << ',' << f.json_key;
    os << '\n';
  }
  for (const SweepPoint& p : series) {
    os << experiment << ',' << scheme;
    for (const ResultField& f : result_fields()) {
      const FieldValue v = f.get(p.result);
      os << ',';
      switch (v.type) {
        case FieldType::kF64: os << v.f64; break;
        case FieldType::kU64: os << v.u64; break;
        case FieldType::kI64: os << v.i64; break;
        case FieldType::kBool: os << (v.b ? 1 : 0); break;
      }
    }
    os << '\n';
  }
}

void write_json_section(const std::string& path, const std::string& key,
                        const std::string& object_text) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in.good()) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' ')) {
    existing.pop_back();
  }
  std::ofstream os(path, std::ios::trunc);
  if (existing.empty() || existing.back() != '}') {
    os << "{\n  \"" << key << "\": " << object_text << "\n}\n";
    return;
  }
  existing.pop_back();  // reopen the top-level object
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' ')) {
    existing.pop_back();
  }
  os << existing << ",\n  \"" << key << "\": " << object_text << "\n}\n";
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto pad = [&](const std::string& s, std::size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  os << "  ";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << pad(headers_[i], width[i]) << "  ";
  }
  os << "\n";
  for (const auto& row : rows_) {
    os << "  ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << pad(row[i], width[i]) << "  ";
    }
    os << "\n";
  }
}

namespace {
[[noreturn]] void bench_usage(const char* argv0, const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: " << (argv0 != nullptr ? argv0 : "bench")
            << " [options]\n"
               "  --fast       smoke-speed windows (also ITB_BENCH_FAST=1)\n"
               "  --full       full-length windows (the default)\n"
               "  --csv FILE   append every measured point as CSV\n"
               "  --json FILE  write/merge a machine-readable perf section\n"
               "  --jobs N     worker threads for the parallel drivers\n"
               "               (also ITB_BENCH_JOBS; default: hardware "
               "concurrency)\n";
  std::exit(2);
}
}  // namespace

BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opts;
  opts.jobs = default_jobs();
  const char* env = std::getenv("ITB_BENCH_FAST");
  if (env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    opts.fast = true;
  }
  const char* argv0 = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      opts.fast = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      opts.fast = false;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      if (i + 1 >= argc) bench_usage(argv0, "--csv needs a file path");
      opts.csv = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) bench_usage(argv0, "--json needs a file path");
      opts.json = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) bench_usage(argv0, "--jobs needs a count");
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < 1) {
        bench_usage(argv0, std::string("bad --jobs value '") + argv[i] + "'");
      }
      opts.jobs = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      bench_usage(argv0, "");
    } else {
      bench_usage(argv0, std::string("unknown argument '") + argv[i] + "'");
    }
  }
  return opts;
}

}  // namespace itb
