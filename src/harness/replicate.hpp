// Independent replications: the same experiment under different seeds.
//
// A single simulation gives a point estimate; R independent replications
// give a mean and a proper confidence interval over the seed ensemble —
// the methodology behind error bars on simulation studies (the paper ran
// 10 hotspot locations in exactly this spirit).
//
// `jobs` > 1 fans the replications across a worker pool.  Each
// replication's seed is derived from its index alone (base_seed + k), the
// results land in index-ordered slots, and the aggregation loop runs over
// those slots in index order afterwards — so the aggregate statistics are
// bit-identical to a serial run (asserted by test_parallel).
#pragma once

#include <vector>

#include "harness/runner.hpp"
#include "sim/stats.hpp"

namespace itb {

struct ReplicatedResult {
  std::vector<RunResult> runs;
  RunningStats accepted;       // flits/ns/switch over replications
  RunningStats latency_ns;     // injection->delivery mean per replication
  int saturated_count = 0;

  /// ~95% half-width on the mean accepted traffic across replications
  /// (normal approximation; replications are independent by seeding).
  [[nodiscard]] double accepted_ci95() const;
  [[nodiscard]] double latency_ci95_ns() const;
};

/// Run `replications` copies of the experiment with derived seeds
/// (base_seed + k) and aggregate; `jobs` workers run them concurrently.
[[nodiscard]] ReplicatedResult run_replicated(
    const Testbed& tb, RoutingScheme scheme, const DestinationPattern& pattern,
    RunConfig cfg, int replications, int jobs = 1);

}  // namespace itb
