#include "harness/json.hpp"

#include <cmath>
#include <cstdio>

namespace itb {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::separator() {
  if (!needs_comma_.empty() && needs_comma_.back() && !pending_key_) {
    out_ += ',';
  }
  if (!needs_comma_.empty() && !pending_key_) needs_comma_.back() = true;
  pending_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separator();
  out_ += json_quote(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (std::isfinite(v)) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out_ += buf;
  } else {
    out_ += "null";
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separator();
  out_ += json_quote(v);
  return *this;
}

namespace {
void emit_result(JsonWriter& w, const RunResult& r, bool host_metrics) {
  w.begin_object();
  w.key("offered").value(r.offered);
  w.key("accepted").value(r.accepted);
  w.key("latency_ns").value(r.avg_latency_ns);
  w.key("latency_gen_ns").value(r.avg_latency_gen_ns);
  w.key("latency_p50_ns").value(r.p50_latency_ns);
  w.key("latency_p99_ns").value(r.p99_latency_ns);
  w.key("latency_ci95_ns").value(r.latency_ci95_ns);
  w.key("itbs_per_msg").value(r.avg_itbs);
  w.key("delivered").value(r.delivered);
  w.key("spills").value(r.spills);
  w.key("fc_violations").value(r.fc_violations);
  w.key("max_buffer_occupancy").value(r.max_buffer_occupancy);
  w.key("saturated").value(r.saturated);
  if (host_metrics) {
    w.key("wall_ms").value(r.wall_ms);
  }
  w.key("events").value(r.events);
  if (host_metrics) {
    w.key("events_per_sec").value(r.events_per_sec);
  }
  w.key("peak_event_queue_len").value(r.peak_event_queue_len);
  w.key("events_coalesced").value(r.events_coalesced);
  if (host_metrics) {
    // Allocation observability is host-side: a reused workspace reports
    // different values than a fresh one for the same simulated point, so
    // these stay out of the canonical (golden-fixture) form.
    w.key("workspace_reuses").value(r.workspace_reuses);
    w.key("arena_bytes_peak").value(r.arena_bytes_peak);
    w.key("heap_allocs_steady_state").value(r.heap_allocs_steady_state);
  }
  w.key("checked").value(r.checked);
  w.key("invariant_violations").value(r.invariant_violations);
  w.key("violations").begin_array();
  for (const InvariantViolation& v : r.violations) {
    w.begin_object();
    w.key("kind").value(to_string(v.kind));
    w.key("time_ps").value(static_cast<std::int64_t>(v.time));
    w.key("id").value(v.id);
    w.key("detail").value(v.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}
}  // namespace

std::string run_result_to_json(const RunResult& r) {
  JsonWriter w;
  emit_result(w, r, /*host_metrics=*/true);
  return w.str();
}

std::string run_result_to_canonical_json(const RunResult& r) {
  JsonWriter w;
  emit_result(w, r, /*host_metrics=*/false);
  return w.str();
}

std::string series_to_json(const std::string& experiment,
                           const std::string& scheme,
                           const std::vector<SweepPoint>& series) {
  JsonWriter w;
  w.begin_object();
  w.key("experiment").value(experiment);
  w.key("scheme").value(scheme);
  w.key("points").begin_array();
  for (const SweepPoint& p : series) emit_result(w, p.result, true);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace itb
