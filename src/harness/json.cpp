#include "harness/json.hpp"

#include <cmath>
#include <cstdio>

#include "harness/result_fields.hpp"

namespace itb {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::separator() {
  if (!needs_comma_.empty() && needs_comma_.back() && !pending_key_) {
    out_ += ',';
  }
  if (!needs_comma_.empty() && !pending_key_) needs_comma_.back() = true;
  pending_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separator();
  out_ += json_quote(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (std::isfinite(v)) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    out_ += buf;
  } else {
    out_ += "null";
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separator();
  out_ += json_quote(v);
  return *this;
}

namespace {
void emit_field(JsonWriter& w, const ResultField& f, const RunResult& r) {
  const FieldValue v = f.get(r);
  w.key(f.json_key);
  switch (v.type) {
    case FieldType::kF64: w.value(v.f64); break;
    case FieldType::kU64: w.value(v.u64); break;
    case FieldType::kI64: w.value(v.i64); break;
    case FieldType::kBool: w.value(v.b); break;
  }
}

void emit_result(JsonWriter& w, const RunResult& r, bool host_metrics) {
  w.begin_object();
  // Every scalar field comes from the registry (harness/result_fields.cpp);
  // the canonical (golden-fixture) form skips host-side observability — a
  // reused workspace or a traced run legitimately reports different values
  // than a plain run of the same simulated point.
  for (const ResultField& f : result_fields()) {
    if (!host_metrics && f.cls == FieldClass::kHost) continue;
    emit_field(w, f, r);
  }
  w.key("violations").begin_array();
  for (const InvariantViolation& v : r.violations) {
    w.begin_object();
    w.key("kind").value(to_string(v.kind));
    w.key("time_ps").value(static_cast<std::int64_t>(v.time));
    w.key("id").value(v.id);
    w.key("detail").value(v.detail);
    w.end_object();
  }
  w.end_array();
  // Telemetry series are emitted only when captured, so untraced/unsampled
  // output — including every committed golden — is byte-identical to the
  // pre-telemetry format.
  if (!r.samples.empty()) {
    w.key("samples").begin_array();
    for (const TimeSeriesSample& s : r.samples) {
      w.begin_object();
      w.key("t_start_ps").value(static_cast<std::int64_t>(s.t_start));
      w.key("t_end_ps").value(static_cast<std::int64_t>(s.t_end));
      w.key("delivered").value(s.delivered);
      w.key("accepted").value(s.accepted_flits_per_ns_per_switch);
      w.key("avg_latency_ns").value(s.avg_latency_ns);
      w.key("events").value(s.events);
      w.key("queue_len").value(s.queue_len);
      w.key("itb_pool_frac").value(s.itb_pool_frac);
      if (!s.link_util.empty()) {
        w.key("link_util").begin_array();
        for (const float u : s.link_util) {
          w.value(static_cast<double>(u));
        }
        w.end_array();
      }
      w.end_object();
    }
    w.end_array();
  }
  if (host_metrics && !r.profile.empty()) {
    w.key("profile").begin_object();
    for (std::size_t i = 0; i < r.profile.size(); ++i) {
      const PhaseAgg& a = r.profile[i];
      w.key(to_string(static_cast<Phase>(i))).begin_object();
      w.key("wall_ns").value(a.wall_ns);
      w.key("calls").value(a.calls);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
}
}  // namespace

std::string run_result_to_json(const RunResult& r) {
  JsonWriter w;
  emit_result(w, r, /*host_metrics=*/true);
  return w.str();
}

std::string run_result_to_canonical_json(const RunResult& r) {
  JsonWriter w;
  emit_result(w, r, /*host_metrics=*/false);
  return w.str();
}

std::string series_to_json(const std::string& experiment,
                           const std::string& scheme,
                           const std::vector<SweepPoint>& series) {
  JsonWriter w;
  w.begin_object();
  w.key("experiment").value(experiment);
  w.key("scheme").value(scheme);
  w.key("points").begin_array();
  for (const SweepPoint& p : series) emit_result(w, p.result, true);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace itb
