file(REMOVE_RECURSE
  "libitb_harness.a"
)
