
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/json.cpp" "src/harness/CMakeFiles/itb_harness.dir/json.cpp.o" "gcc" "src/harness/CMakeFiles/itb_harness.dir/json.cpp.o.d"
  "/root/repo/src/harness/replicate.cpp" "src/harness/CMakeFiles/itb_harness.dir/replicate.cpp.o" "gcc" "src/harness/CMakeFiles/itb_harness.dir/replicate.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/itb_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/itb_harness.dir/report.cpp.o.d"
  "/root/repo/src/harness/result_fields.cpp" "src/harness/CMakeFiles/itb_harness.dir/result_fields.cpp.o" "gcc" "src/harness/CMakeFiles/itb_harness.dir/result_fields.cpp.o.d"
  "/root/repo/src/harness/runner.cpp" "src/harness/CMakeFiles/itb_harness.dir/runner.cpp.o" "gcc" "src/harness/CMakeFiles/itb_harness.dir/runner.cpp.o.d"
  "/root/repo/src/harness/sweep.cpp" "src/harness/CMakeFiles/itb_harness.dir/sweep.cpp.o" "gcc" "src/harness/CMakeFiles/itb_harness.dir/sweep.cpp.o.d"
  "/root/repo/src/harness/testbed.cpp" "src/harness/CMakeFiles/itb_harness.dir/testbed.cpp.o" "gcc" "src/harness/CMakeFiles/itb_harness.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/sim/CMakeFiles/itb_workspace.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/itb_obs.dir/DependInfo.cmake"
  "/root/repo/src/metrics/CMakeFiles/itb_metrics.dir/DependInfo.cmake"
  "/root/repo/src/traffic/CMakeFiles/itb_traffic.dir/DependInfo.cmake"
  "/root/repo/src/check/CMakeFiles/itb_check.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/itb_net.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/itb_core.dir/DependInfo.cmake"
  "/root/repo/src/route/CMakeFiles/itb_route.dir/DependInfo.cmake"
  "/root/repo/src/topo/CMakeFiles/itb_topo.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/itb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
