# Empty dependencies file for itb_harness.
# This may be replaced when dependencies are built.
