file(REMOVE_RECURSE
  "CMakeFiles/itb_harness.dir/json.cpp.o"
  "CMakeFiles/itb_harness.dir/json.cpp.o.d"
  "CMakeFiles/itb_harness.dir/replicate.cpp.o"
  "CMakeFiles/itb_harness.dir/replicate.cpp.o.d"
  "CMakeFiles/itb_harness.dir/report.cpp.o"
  "CMakeFiles/itb_harness.dir/report.cpp.o.d"
  "CMakeFiles/itb_harness.dir/result_fields.cpp.o"
  "CMakeFiles/itb_harness.dir/result_fields.cpp.o.d"
  "CMakeFiles/itb_harness.dir/runner.cpp.o"
  "CMakeFiles/itb_harness.dir/runner.cpp.o.d"
  "CMakeFiles/itb_harness.dir/sweep.cpp.o"
  "CMakeFiles/itb_harness.dir/sweep.cpp.o.d"
  "CMakeFiles/itb_harness.dir/testbed.cpp.o"
  "CMakeFiles/itb_harness.dir/testbed.cpp.o.d"
  "libitb_harness.a"
  "libitb_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
