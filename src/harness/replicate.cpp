#include "harness/replicate.hpp"

#include <cmath>

namespace itb {

namespace {
double ci95(const RunningStats& s) {
  if (s.count() < 2) return 0.0;
  // Sample variance from the population variance RunningStats keeps.
  const double n = static_cast<double>(s.count());
  const double sample_var = s.variance() * n / (n - 1.0);
  return 1.96 * std::sqrt(sample_var / n);
}
}  // namespace

double ReplicatedResult::accepted_ci95() const { return ci95(accepted); }
double ReplicatedResult::latency_ci95_ns() const { return ci95(latency_ns); }

ReplicatedResult run_replicated(Testbed& tb, RoutingScheme scheme,
                                const DestinationPattern& pattern,
                                RunConfig cfg, int replications) {
  ReplicatedResult out;
  const std::uint64_t base_seed = cfg.seed;
  for (int k = 0; k < replications; ++k) {
    cfg.seed = base_seed + static_cast<std::uint64_t>(k) * 0x9e3779b9ULL + 1;
    RunResult r = run_point(tb, scheme, pattern, cfg);
    out.accepted.add(r.accepted);
    out.latency_ns.add(r.avg_latency_ns);
    if (r.saturated) ++out.saturated_count;
    out.runs.push_back(std::move(r));
  }
  return out;
}

}  // namespace itb
