#include "harness/replicate.hpp"

#include <cmath>

#include "sim/pool.hpp"

namespace itb {

namespace {
double ci95(const RunningStats& s) {
  if (s.count() < 2) return 0.0;
  // Sample variance from the population variance RunningStats keeps.
  const double n = static_cast<double>(s.count());
  const double sample_var = s.variance() * n / (n - 1.0);
  return 1.96 * std::sqrt(sample_var / n);
}
}  // namespace

double ReplicatedResult::accepted_ci95() const { return ci95(accepted); }
double ReplicatedResult::latency_ci95_ns() const { return ci95(latency_ns); }

ReplicatedResult run_replicated(const Testbed& tb, RoutingScheme scheme,
                                const DestinationPattern& pattern,
                                RunConfig cfg, int replications, int jobs) {
  ReplicatedResult out;
  const std::uint64_t base_seed = cfg.seed;
  if (jobs > 1 && replications > 1) tb.warm(scheme, jobs);
  // Index-ordered slots: replication k's seed depends only on k, so which
  // worker runs it cannot change the result.
  out.runs = parallel_map<RunResult>(replications, jobs, [&](int k) {
    RunConfig rep_cfg = cfg;
    rep_cfg.seed =
        base_seed + static_cast<std::uint64_t>(k) * 0x9e3779b9ULL + 1;
    return run_point(tb, scheme, pattern, rep_cfg);
  });
  // Aggregate in index order — the same accumulation sequence as a serial
  // run, so means/variances match bit-for-bit.
  for (const RunResult& r : out.runs) {
    out.accepted.add(r.accepted);
    out.latency_ns.add(r.avg_latency_ns);
    if (r.saturated) ++out.saturated_count;
  }
  return out;
}

}  // namespace itb
