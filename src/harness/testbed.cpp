#include "harness/testbed.hpp"

#include "core/route_builder.hpp"

namespace itb {

const char* to_string(RoutingScheme s) {
  switch (s) {
    case RoutingScheme::kUpDown: return "UP/DOWN";
    case RoutingScheme::kItbSp: return "ITB-SP";
    case RoutingScheme::kItbRr: return "ITB-RR";
    case RoutingScheme::kItbRnd: return "ITB-RND";
    case RoutingScheme::kItbAdapt: return "ITB-ADAPT";
  }
  return "?";
}

PathPolicy policy_of(RoutingScheme s) {
  switch (s) {
    case RoutingScheme::kUpDown:
    case RoutingScheme::kItbSp: return PathPolicy::kSingle;
    case RoutingScheme::kItbRr: return PathPolicy::kRoundRobin;
    case RoutingScheme::kItbRnd: return PathPolicy::kRandom;
    case RoutingScheme::kItbAdapt: return PathPolicy::kAdaptive;
  }
  return PathPolicy::kSingle;
}

Testbed::Testbed(Topology topo, SwitchId root)
    : topo_(std::make_unique<Topology>(std::move(topo))),
      updown_(std::make_unique<UpDown>(*topo_, root)) {}

const RouteSet& Testbed::routes(RoutingScheme s) {
  if (s == RoutingScheme::kUpDown) {
    if (!updown_routes_) {
      const SimpleRoutes sr(*topo_, *updown_);
      updown_routes_.emplace(build_updown_routes(*topo_, sr));
    }
    return *updown_routes_;
  }
  if (!itb_routes_) {
    itb_routes_.emplace(build_itb_routes(*topo_, *updown_));
  }
  return *itb_routes_;
}

}  // namespace itb
