#include "harness/testbed.hpp"

#include <atomic>

#include "core/route_builder.hpp"
#include "route/topo_minimal.hpp"

namespace itb {

namespace {
/// Source of table generation ids; 0 is reserved for "not built yet".
std::atomic<std::uint64_t> g_table_generation{0};
}  // namespace

const char* to_string(RoutingScheme s) {
  switch (s) {
    case RoutingScheme::kUpDown: return "UP/DOWN";
    case RoutingScheme::kItbSp: return "ITB-SP";
    case RoutingScheme::kItbRr: return "ITB-RR";
    case RoutingScheme::kItbRnd: return "ITB-RND";
    case RoutingScheme::kItbAdapt: return "ITB-ADAPT";
    case RoutingScheme::kMinimal: return "MIN";
  }
  return "?";
}

PathPolicy policy_of(RoutingScheme s) {
  switch (s) {
    case RoutingScheme::kUpDown:
    case RoutingScheme::kMinimal:
    case RoutingScheme::kItbSp: return PathPolicy::kSingle;
    case RoutingScheme::kItbRr: return PathPolicy::kRoundRobin;
    case RoutingScheme::kItbRnd: return PathPolicy::kRandom;
    case RoutingScheme::kItbAdapt: return PathPolicy::kAdaptive;
  }
  return PathPolicy::kSingle;
}

Testbed::Testbed(Topology topo, SwitchId root)
    : topo_(std::make_unique<Topology>(std::move(topo))),
      updown_(std::make_unique<UpDown>(
          *topo_, root == kAutoRoot ? select_updown_root(*topo_) : root)) {}

Testbed::Testbed(Testbed&& other) noexcept
    : topo_(std::move(other.topo_)),
      updown_(std::move(other.updown_)),
      updown_routes_(std::move(other.updown_routes_)),
      itb_routes_(std::move(other.itb_routes_)),
      minimal_routes_(std::move(other.minimal_routes_)),
      updown_gen_(other.updown_gen_),
      itb_gen_(other.itb_gen_),
      minimal_gen_(other.minimal_gen_) {}

Testbed& Testbed::operator=(Testbed&& other) noexcept {
  if (this != &other) {
    topo_ = std::move(other.topo_);
    updown_ = std::move(other.updown_);
    updown_routes_ = std::move(other.updown_routes_);
    itb_routes_ = std::move(other.itb_routes_);
    minimal_routes_ = std::move(other.minimal_routes_);
    updown_gen_ = other.updown_gen_;
    itb_gen_ = other.itb_gen_;
    minimal_gen_ = other.minimal_gen_;
  }
  return *this;
}

const RouteSet& Testbed::routes_with_jobs(RoutingScheme s, int jobs) const {
  std::lock_guard<std::mutex> lock(build_mu_);
  if (s == RoutingScheme::kUpDown) {
    if (!updown_routes_) {
      const SimpleRoutes sr(*topo_, *updown_);
      updown_routes_.emplace(build_updown_routes(*topo_, sr, jobs));
      updown_gen_ = ++g_table_generation;
    }
    return *updown_routes_;
  }
  if (s == RoutingScheme::kMinimal) {
    if (!minimal_routes_) {
      // Throws on generic topologies: MIN needs a structured shape.
      minimal_routes_.emplace(build_minimal_routes(*topo_, jobs));
      minimal_gen_ = ++g_table_generation;
    }
    return *minimal_routes_;
  }
  if (!itb_routes_) {
    itb_routes_.emplace(build_itb_routes(*topo_, *updown_, {}, jobs));
    itb_gen_ = ++g_table_generation;
  }
  return *itb_routes_;
}

std::uint64_t Testbed::table_generation(RoutingScheme s) const {
  (void)routes(s);  // ensure the table (and its id) exists
  std::lock_guard<std::mutex> lock(build_mu_);
  if (s == RoutingScheme::kUpDown) return updown_gen_;
  if (s == RoutingScheme::kMinimal) return minimal_gen_;
  return itb_gen_;
}

void Testbed::warm_all(int jobs) const {
  warm(RoutingScheme::kUpDown, jobs);
  warm(RoutingScheme::kItbSp, jobs);  // shared by all ITB schemes
  if (has_structured_minimal(topo())) warm(RoutingScheme::kMinimal, jobs);
}

}  // namespace itb
