// Load sweeps (latency/throughput curves) and saturation-point search.
#pragma once

#include <vector>

#include "harness/runner.hpp"

namespace itb {

struct SweepPoint {
  double load;
  RunResult result;
};

/// Run `cfg` at each load in `loads`, stopping early once a point
/// saturates (one saturated point is kept so curves show the knee).
[[nodiscard]] std::vector<SweepPoint> sweep_loads(
    Testbed& tb, RoutingScheme scheme, const DestinationPattern& pattern,
    RunConfig cfg, const std::vector<double>& loads);

/// Geometric load ladder from `lo` to `hi` with `points` entries.
[[nodiscard]] std::vector<double> geometric_loads(double lo, double hi,
                                                  int points);
/// Linear load ladder.
[[nodiscard]] std::vector<double> linear_loads(double lo, double hi,
                                               int points);

struct SaturationResult {
  /// Saturation throughput: the highest accepted traffic observed
  /// (flits/ns/switch) — the number the paper's tables report.
  double throughput = 0.0;
  /// Offered load at which saturation was first detected.
  double saturating_load = 0.0;
  std::vector<SweepPoint> trace;
};

/// Find the saturation throughput by walking a geometric ladder from
/// `start_load` (factor `growth`) until a saturated point is seen, then
/// probing one overloaded point to confirm the plateau.
[[nodiscard]] SaturationResult find_saturation(
    Testbed& tb, RoutingScheme scheme, const DestinationPattern& pattern,
    RunConfig cfg, double start_load, double growth = 1.25,
    int max_points = 24);

}  // namespace itb
