// Load sweeps (latency/throughput curves) and saturation-point search.
//
// sweep_loads accepts a `jobs` worker count: with jobs > 1 the whole
// ladder runs speculatively in parallel and the result is trimmed to the
// serial early-stop semantics (everything up to and including the first
// saturated point).  Every point is an independent simulation with the
// same per-point config either way, so the kept points are bit-identical
// to a serial run — asserted by test_parallel.
#pragma once

#include <vector>

#include "harness/runner.hpp"

namespace itb {

struct SweepPoint {
  double load;
  RunResult result;
};

/// Run `cfg` at each load in `loads`, stopping early once a point
/// saturates (one saturated point is kept so curves show the knee).
/// `jobs` > 1 runs the ladder speculatively across that many workers.
[[nodiscard]] std::vector<SweepPoint> sweep_loads(
    const Testbed& tb, RoutingScheme scheme, const DestinationPattern& pattern,
    RunConfig cfg, const std::vector<double>& loads, int jobs = 1);

/// Geometric load ladder from `lo` to `hi` with `points` entries.
[[nodiscard]] std::vector<double> geometric_loads(double lo, double hi,
                                                  int points);
/// Linear load ladder.
[[nodiscard]] std::vector<double> linear_loads(double lo, double hi,
                                               int points);

struct SaturationResult {
  /// Saturation throughput: the highest accepted traffic observed
  /// (flits/ns/switch) — the number the paper's tables report.
  double throughput = 0.0;
  /// Offered load at which saturation was first detected; when the ladder
  /// exhausted without saturating, the last load actually simulated.
  double saturating_load = 0.0;
  /// Whether a saturated point was seen before the ladder ran out.
  bool saturated = false;
  std::vector<SweepPoint> trace;
};

/// Find the saturation throughput by walking a geometric ladder from
/// `start_load` (factor `growth`) until a saturated point is seen, then
/// probing one overloaded point to confirm the plateau.
[[nodiscard]] SaturationResult find_saturation(
    const Testbed& tb, RoutingScheme scheme, const DestinationPattern& pattern,
    RunConfig cfg, double start_load, double growth = 1.25,
    int max_points = 24);

}  // namespace itb
