#include "harness/result_fields.hpp"

namespace itb {

namespace {

constexpr FieldValue f64(double v) {
  FieldValue out;
  out.type = FieldType::kF64;
  out.f64 = v;
  return out;
}
constexpr FieldValue u64(std::uint64_t v) {
  FieldValue out;
  out.type = FieldType::kU64;
  out.u64 = v;
  return out;
}
constexpr FieldValue i64(std::int64_t v) {
  FieldValue out;
  out.type = FieldType::kI64;
  out.i64 = v;
  return out;
}
constexpr FieldValue boolean(bool v) {
  FieldValue out;
  out.type = FieldType::kBool;
  out.b = v;
  return out;
}

constexpr FieldClass kSim = FieldClass::kSimulated;
constexpr FieldClass kHost = FieldClass::kHost;

// Serialization order — the canonical (golden) JSON is this walk minus the
// kHost rows, so the relative order of kSim rows is pinned by the committed
// fixtures in tests/golden/.
constexpr ResultField kFields[] = {
    {"offered", FieldType::kF64, kSim,
     [](const RunResult& r) { return f64(r.offered); }},
    {"accepted", FieldType::kF64, kSim,
     [](const RunResult& r) { return f64(r.accepted); }},
    {"latency_ns", FieldType::kF64, kSim,
     [](const RunResult& r) { return f64(r.avg_latency_ns); }},
    {"latency_gen_ns", FieldType::kF64, kSim,
     [](const RunResult& r) { return f64(r.avg_latency_gen_ns); }},
    {"latency_p50_ns", FieldType::kF64, kSim,
     [](const RunResult& r) { return f64(r.p50_latency_ns); }},
    {"latency_p99_ns", FieldType::kF64, kSim,
     [](const RunResult& r) { return f64(r.p99_latency_ns); }},
    {"latency_ci95_ns", FieldType::kF64, kSim,
     [](const RunResult& r) { return f64(r.latency_ci95_ns); }},
    {"itbs_per_msg", FieldType::kF64, kSim,
     [](const RunResult& r) { return f64(r.avg_itbs); }},
    {"delivered", FieldType::kU64, kSim,
     [](const RunResult& r) { return u64(r.delivered); }},
    {"spills", FieldType::kU64, kSim,
     [](const RunResult& r) { return u64(r.spills); }},
    {"fc_violations", FieldType::kU64, kSim,
     [](const RunResult& r) { return u64(r.fc_violations); }},
    {"max_buffer_occupancy", FieldType::kI64, kSim,
     [](const RunResult& r) { return i64(r.max_buffer_occupancy); }},
    {"saturated", FieldType::kBool, kSim,
     [](const RunResult& r) { return boolean(r.saturated); }},
    {"wall_ms", FieldType::kF64, kHost,
     [](const RunResult& r) { return f64(r.wall_ms); }},
    {"events", FieldType::kU64, kSim,
     [](const RunResult& r) { return u64(r.events); }},
    {"events_per_sec", FieldType::kF64, kHost,
     [](const RunResult& r) { return f64(r.events_per_sec); }},
    {"peak_event_queue_len", FieldType::kU64, kSim,
     [](const RunResult& r) { return u64(r.peak_event_queue_len); }},
    {"events_coalesced", FieldType::kU64, kSim,
     [](const RunResult& r) { return u64(r.events_coalesced); }},
    // Parallel-engine observability: kHost because they describe how the
    // point was executed (lane count, barrier windows, mailbox traffic),
    // not what it simulated — a sharded run must equal the serial run on
    // every kSim row above, which is exactly what test_parallel_engine
    // asserts.
    {"shards", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.shards); }},
    {"window_ns", FieldType::kF64, kHost,
     [](const RunResult& r) { return f64(r.window_ns); }},
    {"windows_executed", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.windows_executed); }},
    {"boundary_events", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.boundary_events); }},
    {"boundary_ties", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.boundary_ties); }},
    {"workspace_reuses", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.workspace_reuses); }},
    {"arena_bytes_peak", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.arena_bytes_peak); }},
    {"heap_allocs_steady_state", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.heap_allocs_steady_state); }},
    {"trace_records", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.trace_records); }},
    {"trace_dropped", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.trace_dropped); }},
    // Route-store observability: host-side like trace_records, so runs
    // compare equal across store implementations and build modes.
    {"route_table_bytes", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.route_table_bytes); }},
    {"route_build_ms", FieldType::kF64, kHost,
     [](const RunResult& r) { return f64(r.route_build_ms); }},
    {"route_segments_shared", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.route_segments_shared); }},
    {"route_core_pairs", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.route_core_pairs); }},
    {"route_core_bytes", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.route_core_bytes); }},
    {"route_compose_ns_avg", FieldType::kF64, kHost,
     [](const RunResult& r) { return f64(r.route_compose_ns_avg); }},
    {"checked", FieldType::kBool, kSim,
     [](const RunResult& r) { return boolean(r.checked); }},
    {"invariant_violations", FieldType::kU64, kSim,
     [](const RunResult& r) { return u64(r.invariant_violations); }},
    // Engine health layer (kHost like the parallel-engine block above:
    // barrier waits and mailbox depths are execution artefacts, not
    // simulated outcomes).  Appended after the pinned kSim rows so the
    // canonical JSON order — and the committed goldens — are untouched.
    {"barrier_wait_ms", FieldType::kF64, kHost,
     [](const RunResult& r) { return f64(r.barrier_wait_ms); }},
    {"lane_imbalance", FieldType::kF64, kHost,
     [](const RunResult& r) { return f64(r.lane_imbalance); }},
    {"mailbox_depth_peak", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.mailbox_depth_peak); }},
    {"cross_lane_credits", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.cross_lane_credits); }},
    {"trace_dropped_max_lane", FieldType::kU64, kHost,
     [](const RunResult& r) { return u64(r.trace_dropped_max_lane); }},
};

}  // namespace

std::span<const ResultField> result_fields() { return kFields; }

}  // namespace itb
