#include "harness/runner.hpp"

#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace itb {

RunResult run_point(Testbed& tb, RoutingScheme scheme,
                    const DestinationPattern& pattern, const RunConfig& cfg) {
  Simulator sim;
  const RouteSet& routes = tb.routes(scheme);
  Network net(sim, tb.topo(), routes, cfg.params, policy_of(scheme),
              cfg.seed ^ 0x9e37u);
  MetricsCollector metrics(tb.topo().num_switches());
  metrics.attach(net);

  TrafficConfig tcfg;
  tcfg.load_flits_per_ns_per_switch = cfg.load_flits_per_ns_per_switch;
  tcfg.payload_bytes = cfg.payload_bytes;
  tcfg.poisson = cfg.poisson;
  tcfg.seed = cfg.seed;
  TrafficGenerator gen(sim, net, pattern, tcfg);
  gen.start();

  sim.run_until(cfg.warmup);
  metrics.reset_window(sim.now());
  net.reset_channel_stats();
  const std::uint64_t gen_before = gen.messages_generated();
  const std::uint64_t backlog_before = net.source_backlog_packets();

  const TimePs window_end = cfg.warmup + cfg.measure;
  sim.run_until(window_end);
  const TimePs window = sim.now() - cfg.warmup;

  RunResult r;
  const double window_ns = to_ns(window);
  const auto switches = static_cast<double>(tb.topo().num_switches());
  const std::uint64_t gen_count = gen.messages_generated() - gen_before;
  r.offered = static_cast<double>(gen_count) *
              static_cast<double>(cfg.payload_bytes) / window_ns / switches;
  r.accepted = metrics.accepted_flits_per_ns_per_switch(sim.now());
  r.avg_latency_ns = metrics.avg_latency_ns();
  r.avg_latency_gen_ns = metrics.avg_latency_from_generation_ns();
  r.p50_latency_ns = metrics.p50_latency_ns();
  r.p99_latency_ns = metrics.p99_latency_ns();
  r.latency_ci95_ns = metrics.latency_ci95_ns();
  r.avg_itbs = metrics.avg_itbs_per_message();
  r.delivered = metrics.delivered();
  r.spills = net.itb_spills();
  r.fc_violations = net.flow_control_violations();
  r.max_buffer_occupancy = net.max_buffer_occupancy();

  const std::uint64_t backlog_after = net.source_backlog_packets();
  const bool backlog_grew =
      backlog_after > backlog_before &&
      (backlog_after - backlog_before) * 10 > metrics.delivered();
  r.saturated = (r.accepted < 0.95 * r.offered) || backlog_grew;

  if (cfg.collect_link_util) {
    r.link_util = measure_channel_utilization(net, window);
  }
  // The generator stops here; outstanding packets are abandoned with the
  // simulator (single-run scope), which is fine for open-loop measurement.
  gen.stop();
  return r;
}

}  // namespace itb
