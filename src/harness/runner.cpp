#include "harness/runner.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <set>

#include "check/route_verify.hpp"
#include "check/watchdog.hpp"
#include "harness/result_fields.hpp"
#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "obs/samplers.hpp"
#include "sim/simulator.hpp"
#include "sim/workspace.hpp"
#include "traffic/generator.hpp"

namespace itb {

namespace {

/// Checked mode verifies the whole routing table before a point runs.
/// Tables are immutable once built and shared across points, so a table
/// that verified clean is remembered — by its generation id, not its
/// address: a freed RouteSet's address can be reused by a later table,
/// which would then be falsely skipped, while generation ids are assigned
/// monotonically and never recycled.  Safe under the parallel drivers; a
/// dirty table is re-verified — and re-reported — every time.
void verify_routes_checked(const Testbed& tb, RoutingScheme scheme,
                           const RouteSet& routes, Network& net) {
  static std::mutex mu;
  static std::set<std::uint64_t> clean;
  const std::uint64_t generation = tb.table_generation(scheme);
  {
    const std::lock_guard<std::mutex> lock(mu);
    if (clean.count(generation) != 0) return;
  }
  const RouteVerifyReport rep = verify_route_set(tb.topo(), tb.updown(),
                                                 routes);
  if (rep.ok()) {
    const std::lock_guard<std::mutex> lock(mu);
    clean.insert(generation);
    return;
  }
  for (const InvariantViolation& v : rep.violations) {
    net.invariants().record(v.kind, v.time, v.id, v.detail);
  }
}

/// Average wall time of one pair lookup + view composition over a small
/// deterministic LCG pair sample — host-side observability of the
/// factorized store's on-the-fly host-leg derivation cost (~0.1 ms per
/// point; never part of the simulated outcome).  The checksum folds into
/// the result at sub-femtosecond scale so the loop cannot be elided.
double sampled_compose_ns(const RouteSet& routes) {
  constexpr int kSamples = 1024;
  const auto n = static_cast<std::uint64_t>(routes.num_switches());
  std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSamples; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto s = static_cast<SwitchId>((lcg >> 33) % n);
    const auto d = static_cast<SwitchId>((lcg >> 13) % n);
    const AltsView alts = routes.alternatives(s, d);
    const RouteView v = alts[(lcg >> 3) % alts.size()];
    sink += static_cast<std::uint64_t>(v.total_switch_hops) +
            v.legs.back().ports.size();
  }
  const std::chrono::duration<double, std::nano> dt =
      std::chrono::steady_clock::now() - t0;
  return (dt.count() + static_cast<double>(sink & 1) * 1e-15) / kSamples;
}

}  // namespace

RunResult run_point(const Testbed& tb, RoutingScheme scheme,
                    const DestinationPattern& pattern, const RunConfig& cfg) {
  return run_point_in(this_thread_workspace(), tb, scheme, pattern, cfg);
}

RunResult run_point_in(SimWorkspace& ws, const Testbed& tb,
                       RoutingScheme scheme, const DestinationPattern& pattern,
                       const RunConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();
  const RouteSet& routes = tb.routes(scheme);
  // Serial fallback for the one run kind that still needs serial-only
  // machinery: the adaptive selector feeds delivered-latency back into
  // route choice through one shared feedback table.  Tracing and profiling
  // run sharded — each lane writes its own ring/profiler, merged at
  // harvest.  RunResult::shards reports what actually ran.
  EngineKind engine = cfg.engine;
  if (engine == EngineKind::kPodParallel &&
      policy_of(scheme) == PathPolicy::kAdaptive) {
    engine = EngineKind::kPod;
  }
  ws.prepare(engine, tb.topo(), routes, cfg.params, policy_of(scheme),
             cfg.seed ^ 0x9e37u, cfg.shards);
  Simulator& sim = ws.sim();
  Network& net = ws.net();
  MetricsCollector& metrics = ws.metrics();
  metrics.attach(net);
  const bool par = ws.parallel();
  ParallelEngine& eng = ws.engine();

  // One step of simulated time, engine-agnostic.  Sharded: run the lanes'
  // window protocol to t, let the coordinator clock (watchdog ticks) catch
  // up, then merge the lanes' buffered deliveries into the metrics stream —
  // every observer below reads at these sync points only.
  const auto advance = [&](TimePs t) {
    if (par) {
      eng.run_until(t);
      sim.run_until(t);
      net.flush_deliveries();
    } else {
      sim.run_until(t);
    }
  };
  const auto engine_counters = [&] {
    EngineCounters c{sim.events_executed(), sim.queue_len()};
    if (par) {
      c.events_executed += eng.events_executed();
      c.queue_len += eng.queue_len();
    }
    return c;
  };

  // Telemetry attachments: the workspace owns the buffers (so their storage
  // survives reuse); the network only sees non-null pointers when this run
  // asked for them — disabled runs pay one untaken branch per hook.
  // Sharded runs get one ring/profiler per lane, written lock-free by the
  // owning worker and merged at harvest (see obs/trace.hpp).
  const int k = par ? eng.lanes() : 0;
  if (cfg.trace) {
    if (par) {
      PacketTracer* lt = ws.lane_tracers(k);
      for (int i = 0; i < k; ++i) {
        lt[i].configure_lane(cfg.trace_capacity,
                             static_cast<std::uint8_t>(i));
      }
      net.set_tracer(lt);
    } else {
      ws.tracer().configure(cfg.trace_capacity);
      net.set_tracer(&ws.tracer());
    }
  }
  PhaseProfiler* prof = nullptr;
  if (cfg.profile) {
    ws.profiler().clear();
    prof = &ws.profiler();
    net.set_profiler(prof);
    if (par) {
      PhaseProfiler* lp = ws.lane_profilers(k);
      for (int i = 0; i < k; ++i) lp[i].clear();
      net.set_lane_profilers(lp);
    }
  }
  // Per-window health rings feed the Perfetto lane tracks; only worth the
  // per-window bookkeeping when something will export them.
  if (par && (cfg.trace || cfg.profile)) {
    eng.enable_window_stats(4096);
  }

  std::optional<DeadlockWatchdog> watchdog;
  if (cfg.checked) {
    verify_routes_checked(tb, scheme, routes, net);
    watchdog.emplace(sim, net);
  }

  TrafficConfig tcfg;
  tcfg.load_flits_per_ns_per_switch = cfg.load_flits_per_ns_per_switch;
  tcfg.payload_bytes = cfg.payload_bytes;
  tcfg.poisson = cfg.poisson;
  tcfg.seed = cfg.seed;
  TrafficGenerator& gen = ws.generator(pattern, tcfg);
  gen.start();

  {
    ScopedPhase phase(prof, Phase::kWarmup);
    advance(cfg.warmup);
  }
  metrics.reset_window(sim.now());
  net.reset_channel_stats();
  const std::uint64_t gen_before = gen.messages_generated();
  const std::uint64_t backlog_before = net.source_backlog_packets();

  const TimePs window_end = cfg.warmup + cfg.measure;
  TimeSeriesSampler sampler;
  {
    ScopedPhase phase(prof, Phase::kMeasure);
    if (cfg.sample_period > 0) {
      // Slice the window at sample boundaries.  run_until executes events
      // by their own timestamps and pins the clock to each boundary, so
      // the sliced run is event-for-event identical to the single
      // run_until below — sampling never perturbs the simulation.  (The
      // sharded engine re-anchors its window grid at each boundary, which
      // changes how work packs into barrier windows but never the per-lane
      // (time, key) event order, so the same holds there.)
      sampler.begin(sim.now(), cfg.sample_link_util, engine_counters(), net,
                    metrics, cfg.sample_itb_pool);
      for (TimePs b = cfg.warmup + cfg.sample_period; b < window_end;
           b += cfg.sample_period) {
        advance(b);
        sampler.sample(sim.now(), engine_counters(), net, metrics);
      }
      advance(window_end);
      sampler.sample(sim.now(), engine_counters(), net, metrics);
    } else {
      advance(window_end);
    }
  }
  const TimePs window = sim.now() - cfg.warmup;

  RunResult r;
  r.samples = sampler.take();
  const double window_ns = to_ns(window);
  const auto switches = static_cast<double>(tb.topo().num_switches());
  const std::uint64_t gen_count = gen.messages_generated() - gen_before;
  r.offered = static_cast<double>(gen_count) *
              static_cast<double>(cfg.payload_bytes) / window_ns / switches;
  r.accepted = metrics.accepted_flits_per_ns_per_switch(sim.now());
  r.avg_latency_ns = metrics.avg_latency_ns();
  r.avg_latency_gen_ns = metrics.avg_latency_from_generation_ns();
  r.p50_latency_ns = metrics.p50_latency_ns();
  r.p99_latency_ns = metrics.p99_latency_ns();
  r.latency_ci95_ns = metrics.latency_ci95_ns();
  r.avg_itbs = metrics.avg_itbs_per_message();
  r.delivered = metrics.delivered();
  r.spills = net.itb_spills();
  r.fc_violations = net.flow_control_violations();
  r.max_buffer_occupancy = net.max_buffer_occupancy();

  const std::uint64_t backlog_after = net.source_backlog_packets();
  const bool backlog_grew =
      backlog_after > backlog_before &&
      (backlog_after - backlog_before) * 10 > metrics.delivered();
  r.saturated = (r.accepted < 0.95 * r.offered) || backlog_grew;

  if (cfg.collect_link_util) {
    r.link_util = measure_channel_utilization(net, window);
  }
  // The generator stops here; outstanding packets sit in the workspace
  // until the next prepare() discards them, which is fine for open-loop
  // measurement.
  gen.stop();
  if (watchdog) watchdog->disarm();

  // Harvest the invariant layer: end-of-window conservation audit (packets
  // are still in flight, so not quiescent), the simulator's causality
  // ledger, then everything the ledgers/checkers recorded during the run.
  net.audit_invariants(/*quiescent=*/false);
  const std::uint64_t causality =
      sim.causality_violations() + (par ? eng.causality_violations() : 0);
  if (causality > 0) {
    net.invariants().record(
        InvariantKind::kCausality, sim.now(),
        static_cast<std::int64_t>(causality),
        std::to_string(causality) +
            " event(s) executed before the simulator clock");
  }
  r.checked = cfg.checked;
  r.invariant_violations = net.invariants().total();
  r.violations = net.invariants().violations();

  r.events = sim.events_executed();
  r.peak_event_queue_len = sim.peak_queue_len();
  if (par) {
    // Lane events + coordinator events reproduce the serial total exactly
    // (every serial event executes on exactly one lane or the coordinator);
    // summed per-lane peaks only bound the serial high-water mark.
    r.events += eng.events_executed();
    r.peak_event_queue_len += eng.peak_queue_len();
    r.shards = static_cast<std::uint64_t>(eng.lanes());
    r.window_ns = to_ns(eng.plan().lookahead);
    r.windows_executed = eng.windows_executed();
    r.boundary_events = eng.boundary_events();
    r.boundary_ties = eng.order_ties() + net.delivery_ties();
    r.barrier_wait_ms =
        static_cast<double>(eng.barrier_wait_ns_total()) / 1e6;
    r.lane_imbalance = eng.lane_imbalance();
    r.mailbox_depth_peak = eng.mailbox_depth_peak();
    r.cross_lane_credits = eng.cross_lane_credits();
  }
  r.events_coalesced = net.chunk_events_coalesced();
  r.route_table_bytes = routes.table_bytes();
  r.route_build_ms = routes.build_ms();
  r.route_segments_shared = routes.segments_shared();
  r.route_core_pairs = routes.store().num_pairs();
  r.route_core_bytes = routes.store().core_bytes();
  r.route_compose_ns_avg = sampled_compose_ns(routes);
  r.workspace_reuses = ws.reuses();
  r.arena_bytes_peak = net.arena_bytes_peak();
  r.heap_allocs_steady_state = net.heap_allocs_this_run();
  if (cfg.trace) {
    if (par) {
      // Per-lane rings: sum the bookkeeping, then merge into the serial
      // record order (dense packet-id renumber included).
      PacketTracer* lt = ws.lane_tracers(k);
      for (int i = 0; i < k; ++i) {
        r.trace_records += lt[i].recorded();
        r.trace_dropped += lt[i].dropped();
        r.trace_dropped_max_lane =
            std::max(r.trace_dropped_max_lane, lt[i].dropped());
        lt[i].disable();
      }
      r.trace = merge_lane_traces(lt, static_cast<std::size_t>(k));
    } else {
      r.trace_records = ws.tracer().recorded();
      r.trace_dropped = ws.tracer().dropped();
      r.trace = ws.tracer().snapshot();
      ws.tracer().disable();
    }
    net.set_tracer(nullptr);
  }
  if (cfg.profile) {
    const auto& totals = ws.profiler().totals();
    r.profile.assign(totals.begin(), totals.end());
    if (par) {
      // Element-wise sum of the lane profilers into the coordinator's
      // aggregate: per-event phases accrue on lanes, harness phases on the
      // coordinator, so the union is the whole run.
      PhaseProfiler* lp = ws.lane_profilers(k);
      for (int i = 0; i < k; ++i) {
        const auto& lane_totals = lp[i].totals();
        for (std::size_t p = 0; p < r.profile.size(); ++p) {
          r.profile[p].wall_ns += lane_totals[p].wall_ns;
          r.profile[p].calls += lane_totals[p].calls;
        }
      }
      net.set_lane_profilers(nullptr);
    }
    net.set_profiler(nullptr);
  }
  const auto wall = std::chrono::steady_clock::now() - wall_start;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(wall).count();
  r.events_per_sec =
      r.wall_ms > 0.0 ? static_cast<double>(r.events) / (r.wall_ms / 1e3) : 0.0;
  return r;
}

bool same_simulated_metrics(const RunResult& a, const RunResult& b) {
  if (a.link_util.size() != b.link_util.size()) return false;
  for (std::size_t i = 0; i < a.link_util.size(); ++i) {
    const ChannelUtil& u = a.link_util[i];
    const ChannelUtil& v = b.link_util[i];
    if (u.channel != v.channel || u.cable != v.cable ||
        u.to_host != v.to_host || u.from_sw != v.from_sw ||
        u.to_sw != v.to_sw || u.utilization != v.utilization ||
        u.stopped_fraction != v.stopped_fraction) {
      return false;
    }
  }
  // Windowed samples are simulated-deterministic, so two sampled runs must
  // match bit-for-bit (a sampled vs. unsampled pair differs in size and is
  // legitimately unequal — clear one side's samples to compare the rest).
  if (a.samples.size() != b.samples.size()) return false;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const TimeSeriesSample& s = a.samples[i];
    const TimeSeriesSample& t = b.samples[i];
    if (s.t_start != t.t_start || s.t_end != t.t_end ||
        s.delivered != t.delivered ||
        s.accepted_flits_per_ns_per_switch !=
            t.accepted_flits_per_ns_per_switch ||
        s.avg_latency_ns != t.avg_latency_ns || s.events != t.events ||
        s.queue_len != t.queue_len || s.itb_pool_frac != t.itb_pool_frac ||
        s.link_util != t.link_util || s.itb_pool != t.itb_pool) {
      return false;
    }
  }
  // Scalars come from the registry: every kSimulated field participates,
  // kHost fields (wall clock, allocation and trace bookkeeping) never do.
  for (const ResultField& f : result_fields()) {
    if (f.cls != FieldClass::kSimulated) continue;
    if (f.get(a) != f.get(b)) return false;
  }
  return true;
}

}  // namespace itb
