// Human-readable tables / CSV emission for the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/sweep.hpp"

namespace itb {

/// Print a latency-vs-traffic series (one paper figure panel) as a table:
/// offered, accepted, average latency, ITBs/message.
void print_series(std::ostream& os, const std::string& title,
                  const std::string& scheme,
                  const std::vector<SweepPoint>& series);

/// Append a series to a CSV file (header written when the file is empty):
/// experiment,scheme,load,accepted,lat_net_ns,lat_gen_ns,p99_ns,itbs,saturated
void append_series_csv(const std::string& path, const std::string& experiment,
                       const std::string& scheme,
                       const std::vector<SweepPoint>& series);

/// Simple fixed-width table builder for the hotspot throughput tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
[[nodiscard]] std::string fmt_load(double v);      // 0.0123
[[nodiscard]] std::string fmt_ns(double v);        // 1234.5
[[nodiscard]] std::string fmt_ratio(double v);     // 2.13
[[nodiscard]] std::string fmt_pct(double v);       // 12.3%

/// Options shared by all bench binaries: ITB_BENCH_FAST=1 or --fast shrink
/// simulated windows; --csv FILE dumps raw points; --jobs N (or
/// ITB_BENCH_JOBS) sets the worker count for the parallel drivers
/// (default: hardware concurrency).  Unknown flags abort with a usage
/// message (exit code 2).
struct BenchOptions {
  bool fast = false;
  std::string csv;
  std::string json;  // machine-readable perf record (BENCH_*.json sections)
  int jobs = 1;  // parse_bench_args fills in the real default
};
[[nodiscard]] BenchOptions parse_bench_args(int argc, char** argv);

/// Write `object_text` (a complete JSON object) as the value of top-level
/// key `key` in the JSON object stored at `path`.  A missing or empty file
/// becomes `{"<key>": <object>}`; an existing object gains the key by text
/// splice.  Keys are not deduplicated — delete the file before regenerating
/// a perf record (the BENCH_*.json workflow always starts fresh).
void write_json_section(const std::string& path, const std::string& key,
                        const std::string& object_text);

}  // namespace itb
