// RunResult scalar-field registry: ONE table driving JSON emission, CSV
// emission and the determinism comparison.
//
// Before this registry, json.cpp, report.cpp and same_simulated_metrics
// each kept their own hand-written field list, and a new RunResult field
// had to be added to all three (and historically wasn't — CSV silently
// lagged JSON).  Now each emitter iterates result_fields() and
// test_result_fields fails the build-out if a scalar field exists in one
// surface but not another.
//
// Field classes:
//  * kSimulated — deterministic for a fixed config/engine: part of the
//    canonical (golden-fixture) JSON and compared bit-exactly by
//    same_simulated_metrics.
//  * kHost — wall-clock or allocation observability that legitimately
//    varies between identical simulated runs (wall_ms, workspace reuse
//    counters, trace bookkeeping): full JSON and CSV only.
//
// Table order IS the emission order; the canonical JSON is the same walk
// with kHost entries skipped.  The committed goldens pin that byte order,
// so append new fields in the position they should serialize, and keep
// simulated fields out of existing canonical positions unless you are
// deliberately regenerating goldens (ITB_UPDATE_GOLDEN).
#pragma once

#include <cstdint>
#include <span>

#include "harness/runner.hpp"

namespace itb {

enum class FieldType : std::uint8_t { kF64, kU64, kI64, kBool };
enum class FieldClass : std::uint8_t { kSimulated, kHost };

/// Typed value of one scalar field, preserving the exact JsonWriter
/// overload (and therefore formatting) the historical emitters used.
struct FieldValue {
  FieldType type = FieldType::kF64;
  double f64 = 0.0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  bool b = false;

  friend bool operator==(const FieldValue&, const FieldValue&) = default;
};

struct ResultField {
  const char* json_key;  // doubles as the CSV column name
  FieldType type;
  FieldClass cls;
  FieldValue (*get)(const RunResult&);
};

/// Every scalar RunResult field, in serialization order.  Non-scalar
/// members (link_util, violations, samples, profile) are emitted and
/// compared structurally by their owners.
[[nodiscard]] std::span<const ResultField> result_fields();

}  // namespace itb
