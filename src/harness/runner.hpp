// Single simulation point: build a network, warm it up, measure a window,
// and return the paper's metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harness/testbed.hpp"
#include "metrics/link_util.hpp"
#include "net/params.hpp"
#include "traffic/patterns.hpp"

namespace itb {

struct RunConfig {
  double load_flits_per_ns_per_switch = 0.01;
  int payload_bytes = 512;
  TimePs warmup = us(200);
  TimePs measure = us(600);
  std::uint64_t seed = 42;
  MyrinetParams params;
  bool poisson = false;
  /// Also collect per-channel utilization over the measurement window.
  bool collect_link_util = false;
};

struct RunResult {
  double offered = 0.0;        // generated payload flits/ns/switch (window)
  double accepted = 0.0;       // delivered payload flits/ns/switch (window)
  double avg_latency_ns = 0.0; // injection -> delivery (paper definition)
  double avg_latency_gen_ns = 0.0;  // generation -> delivery
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  /// ~95% batch-means confidence half-width on avg_latency_ns.
  double latency_ci95_ns = 0.0;
  double avg_itbs = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t spills = 0;
  std::uint64_t fc_violations = 0;
  int max_buffer_occupancy = 0;
  bool saturated = false;
  std::vector<ChannelUtil> link_util;  // when collect_link_util
};

/// Run one (testbed, scheme, pattern, load) point.
[[nodiscard]] RunResult run_point(Testbed& tb, RoutingScheme scheme,
                                  const DestinationPattern& pattern,
                                  const RunConfig& cfg);

}  // namespace itb
