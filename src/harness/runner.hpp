// Single simulation point: prepare a per-thread workspace, warm it up,
// measure a window, and return the paper's metrics.
//
// Thread-safety: run_point keeps every piece of mutable state (Simulator,
// Network, RNGs, collectors) in the calling thread's own SimWorkspace and
// only reads the shared Testbed/pattern, so independent points may run
// concurrently — the contract the parallel drivers in replicate.hpp /
// sweep.hpp rely on.  The workspace is RESET between points, not
// reconstructed; a reused run is bit-identical to a fresh one (see
// sim/workspace.hpp, enforced by test_workspace).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "check/invariants.hpp"
#include "harness/testbed.hpp"
#include "metrics/link_util.hpp"
#include "net/params.hpp"
#include "obs/profiler.hpp"
#include "obs/samplers.hpp"
#include "obs/trace.hpp"
#include "sim/event.hpp"
#include "traffic/patterns.hpp"

namespace itb {

/// True in ITB_CHECKED builds: RunConfig::checked defaults on and the
/// Network hot path carries deep per-event assertions.
[[nodiscard]] consteval bool checked_build() {
#ifdef ITB_CHECKED
  return true;
#else
  return false;
#endif
}

struct RunConfig {
  double load_flits_per_ns_per_switch = 0.01;
  int payload_bytes = 512;
  TimePs warmup = us(200);
  TimePs measure = us(600);
  std::uint64_t seed = 42;
  MyrinetParams params;
  bool poisson = false;
  /// Also collect per-channel utilization over the measurement window.
  bool collect_link_util = false;
  /// Event engine for this point (A/B benchmarking and the golden
  /// cross-engine determinism tests; normally leave the default).
  /// kPodParallel shards one simulation across `shards` worker threads with
  /// the conservative window engine (sim/parallel_engine.hpp) and produces
  /// identical simulated metrics to kPod.  Tracing and profiling run
  /// sharded (per-lane rings, merged at harvest); only the adaptive path
  /// selector's feedback loop still falls back to kPod.  RunResult::shards
  /// reports what actually ran.
  EngineKind engine = kDefaultEngine;
  /// Worker-lane count for kPodParallel (clamped to the topology's switch
  /// count and the engine's lane cap; ignored by the serial engines).
  int shards = 1;
  /// Checked-simulation mode: verify the scheme's routing table (legality,
  /// minimality, split placement) before the run and sample a wait-graph
  /// deadlock watchdog during it.  Honoured in every build; the
  /// ITB_CHECKED build flips this default to true so an entire suite or
  /// grid runs checked.  The watchdog's sampling callbacks add events, so
  /// `events`-bearing results are only comparable at equal `checked`.
  bool checked = checked_build();

  // --- telemetry (src/obs/; all default-off, see docs/OBSERVABILITY.md).
  // None of these perturb the simulation: a traced/sampled/profiled run is
  // bit-identical in every simulated metric to a plain one.

  /// Record the packet-lifecycle trace into the workspace's ring buffer
  /// and snapshot it into RunResult::trace.
  bool trace = false;
  /// Ring capacity in records when tracing; the ring keeps the most recent
  /// records and counts overwrites in RunResult::trace_dropped.
  std::size_t trace_capacity = std::size_t{1} << 16;
  /// Simulated-time width of one time-series window; 0 disables sampling.
  /// The measurement window is sliced at these boundaries (identical event
  /// sequence — run_until executes events by their own timestamps).
  TimePs sample_period = 0;
  /// Also capture per-channel busy fractions in each window's sample.
  bool sample_link_util = false;
  /// Also capture per-host ITB-pool occupancy fractions in each window's
  /// sample — the congestion heatmap's second axis (see
  /// write_heatmap_csv in obs/samplers.hpp).  Works under sharding: the
  /// sampler reads at window-sync points only.
  bool sample_itb_pool = false;
  /// Run the phase profiler (wall-clock, host-side) over this point.
  bool profile = false;
};

struct RunResult {
  double offered = 0.0;        // generated payload flits/ns/switch (window)
  double accepted = 0.0;       // delivered payload flits/ns/switch (window)
  double avg_latency_ns = 0.0; // injection -> delivery (paper definition)
  double avg_latency_gen_ns = 0.0;  // generation -> delivery
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  /// ~95% batch-means confidence half-width on avg_latency_ns.
  double latency_ci95_ns = 0.0;
  double avg_itbs = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t spills = 0;
  std::uint64_t fc_violations = 0;
  int max_buffer_occupancy = 0;
  bool saturated = false;
  std::vector<ChannelUtil> link_util;  // when collect_link_util

  /// Invariant layer: total violations seen by the always-on ledgers, the
  /// end-of-window audit, the causality ledger, and (when cfg.checked) the
  /// route verifier and deadlock watchdog.  Zero on every healthy run; the
  /// checked grid asserts exactly that.  `violations` carries the first
  /// InvariantRecorder::kMaxStored records with details.
  std::uint64_t invariant_violations = 0;
  std::vector<InvariantViolation> violations;
  bool checked = false;  // deep checks ran for this point

  // Engine observability.  events / peak_event_queue_len / events_coalesced
  // are deterministic for a fixed engine (and compared as such); wall_ms and
  // events_per_sec are host-side and excluded from determinism comparisons.
  double wall_ms = 0.0;
  std::uint64_t events = 0;      // simulator events executed by this point
  double events_per_sec = 0.0;
  std::uint64_t peak_event_queue_len = 0;  // pending-event high-water mark
  std::uint64_t events_coalesced = 0;      // chunk arrivals elided (POD)

  // Parallel-engine observability (host-side: how the point was executed,
  // never what it simulated — a K-sharded run matches the serial run on
  // every kSimulated field above, except peak_event_queue_len, which in a
  // sharded run is a sum of per-lane peaks and additionally depends on the
  // barrier-window grid (sample slicing re-anchors it); see
  // tests/test_parallel_engine.cpp).  All zero for serial points.
  std::uint64_t shards = 0;            // lanes that executed this point
  double window_ns = 0.0;              // conservative lookahead window
  std::uint64_t windows_executed = 0;  // barrier windows run
  std::uint64_t boundary_events = 0;   // cross-lane mailbox messages
  /// Same-picosecond event pairs whose relative order the shard key left to
  /// the merge (cross-lane pushes at one instant) plus cross-lane delivery
  /// ties at flush.  Zero means the run was order-deterministic end to end.
  std::uint64_t boundary_ties = 0;

  // Engine health layer (host-side; all zero for serial points).  How well
  // the sharding performed: time lost at barriers, how evenly work spread
  // over lanes, and how deep the cross-lane mailboxes backed up.
  double barrier_wait_ms = 0.0;         // summed lane wall-time at barriers
  double lane_imbalance = 0.0;          // max/mean of per-lane event counts
  std::uint64_t mailbox_depth_peak = 0; // deepest (from,to) mailbox backlog
  std::uint64_t cross_lane_credits = 0; // stop/go credits among boundary msgs
  /// Worst per-lane ring-wrap drop count of a sharded traced run (serial
  /// traced runs report 0 here; total drops stay in trace_dropped).
  std::uint64_t trace_dropped_max_lane = 0;

  // Allocation observability (host-side, excluded from determinism
  // comparisons: a reused workspace legitimately reports different values
  // than a fresh one for the same simulated point).
  std::uint64_t workspace_reuses = 0;   // prior points run in this workspace
  std::uint64_t arena_bytes_peak = 0;   // transient-arena high-water (bytes)
  // Heap allocations the engine performed during this point (arena blocks +
  // packet-storage growth).  Zero once a reused workspace has warmed to the
  // workload's high-water mark — the arena layer's headline property.
  std::uint64_t heap_allocs_steady_state = 0;

  // Telemetry (cfg.trace / cfg.sample_period / cfg.profile; empty/zero when
  // off).  trace_records/trace_dropped are classed host-side in the field
  // registry: the counts themselves replay deterministically, but they
  // differ between a traced and an untraced run of the same point, and
  // same_simulated_metrics must hold across exactly that pair.
  std::uint64_t trace_records = 0;  // observed, including overwritten
  std::uint64_t trace_dropped = 0;  // overwritten by ring wrap

  // Route-store observability (host-side like trace_records: the table
  // this point ran against is a property of the store implementation and
  // of who built it first, never of the simulated outcome).
  std::uint64_t route_table_bytes = 0;     // flat-store footprint
  double route_build_ms = 0.0;             // wall-clock table build time
  std::uint64_t route_segments_shared = 0; // dedup'd leg port sequences
  std::uint64_t route_core_pairs = 0;      // switch pairs the core indexes
  std::uint64_t route_core_bytes = 0;      // S^2 core (excl. compose tables)
  double route_compose_ns_avg = 0.0;       // sampled pair-lookup latency
  std::vector<PacketTraceRecord> trace;   // chronological ring snapshot
  /// Windowed time series (simulated-deterministic, compared by
  /// same_simulated_metrics when both runs sampled).
  std::vector<TimeSeriesSample> samples;
  /// Per-phase wall-clock aggregates, indexed by Phase; empty unless
  /// cfg.profile (host-side).
  std::vector<PhaseAgg> profile;
};

class SimWorkspace;

/// Run one (testbed, scheme, pattern, load) point in the calling thread's
/// workspace (this_thread_workspace()).
[[nodiscard]] RunResult run_point(const Testbed& tb, RoutingScheme scheme,
                                  const DestinationPattern& pattern,
                                  const RunConfig& cfg);

/// Run one point in an explicit workspace — the primitive behind run_point,
/// exposed so tests can pit fresh and reused workspaces against each other.
[[nodiscard]] RunResult run_point_in(SimWorkspace& ws, const Testbed& tb,
                                     RoutingScheme scheme,
                                     const DestinationPattern& pattern,
                                     const RunConfig& cfg);

/// True when every simulated metric of `a` and `b` is bit-identical.
/// Wall-clock fields (wall_ms, events_per_sec) are ignored — they vary
/// between runs by construction.  This is the determinism predicate the
/// serial-vs-parallel tests assert.
[[nodiscard]] bool same_simulated_metrics(const RunResult& a,
                                          const RunResult& b);

}  // namespace itb
