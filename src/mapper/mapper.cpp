#include "mapper/mapper.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>

namespace itb {

namespace {

std::string cable_key(std::uint64_t sig_a, PortId pa, std::uint64_t sig_b,
                      PortId pb) {
  // Canonical ordering so both discovery directions agree.
  if (sig_b < sig_a || (sig_a == sig_b && pb < pa)) {
    std::swap(sig_a, sig_b);
    std::swap(pa, pb);
  }
  return std::to_string(sig_a) + ":" + std::to_string(pa) + "-" +
         std::to_string(sig_b) + ":" + std::to_string(pb);
}

std::string host_cable_key(std::uint64_t sw_sig, PortId port,
                           std::uint64_t host_sig) {
  return std::to_string(sw_sig) + ":" + std::to_string(port) + "-h" +
         std::to_string(host_sig);
}

}  // namespace

std::optional<SwitchId> NetworkMap::switch_by_signature(
    std::uint64_t sig) const {
  for (std::size_t i = 0; i < switch_sig.size(); ++i) {
    if (switch_sig[i] == sig) return static_cast<SwitchId>(i);
  }
  return std::nullopt;
}

std::optional<HostId> NetworkMap::host_by_signature(std::uint64_t sig) const {
  for (std::size_t i = 0; i < host_sig.size(); ++i) {
    if (host_sig[i] == sig) return static_cast<HostId>(i);
  }
  return std::nullopt;
}

NetworkMap map_network(const ProbeInterface& probe,
                       std::uint64_t origin_signature) {
  const std::uint64_t probes_before = probe.probes_sent();

  // Discover the local switch.
  const ProbeResult local = probe.probe({});
  if (local.target != ProbeTarget::kSwitch) {
    throw std::runtime_error("map_network: local switch unreachable");
  }
  const int ports = local.num_ports;

  struct DiscoveredSwitch {
    std::uint64_t sig;
    std::vector<PortId> route;  // from the origin's switch
  };
  struct DiscoveredCable {
    SwitchId a;
    PortId pa;
    SwitchId b;
    PortId pb;
  };
  struct DiscoveredHost {
    std::uint64_t sig;
    SwitchId sw;
    PortId port;
  };

  std::vector<DiscoveredSwitch> switches;
  std::map<std::uint64_t, SwitchId> by_sig;
  std::vector<DiscoveredCable> cables;
  std::set<std::string> cable_seen;
  std::vector<DiscoveredHost> hosts;
  std::set<std::uint64_t> host_seen;

  switches.push_back(DiscoveredSwitch{local.signature, {}});
  by_sig[local.signature] = 0;

  std::deque<SwitchId> frontier{0};
  while (!frontier.empty()) {
    const SwitchId s = frontier.front();
    frontier.pop_front();
    // Copy: `switches` may reallocate while we scan.
    const DiscoveredSwitch here = switches[static_cast<std::size_t>(s)];
    for (PortId p = 0; p < ports; ++p) {
      std::vector<PortId> route = here.route;
      route.push_back(p);
      const ProbeResult r = probe.probe(route);
      switch (r.target) {
        case ProbeTarget::kNothing:
          break;
        case ProbeTarget::kHost: {
          if (host_seen.insert(r.signature).second) {
            hosts.push_back(DiscoveredHost{r.signature, s, p});
          }
          break;
        }
        case ProbeTarget::kSwitch: {
          SwitchId t;
          const auto it = by_sig.find(r.signature);
          if (it == by_sig.end()) {
            t = static_cast<SwitchId>(switches.size());
            by_sig.emplace(r.signature, t);
            switches.push_back(DiscoveredSwitch{r.signature, route});
            frontier.push_back(t);
          } else {
            t = it->second;
          }
          const std::string key = cable_key(here.sig, p, r.signature,
                                            r.entry_port);
          if (cable_seen.insert(key).second) {
            cables.push_back(DiscoveredCable{s, p, t, r.entry_port});
          }
          break;
        }
      }
    }
  }

  // Materialise the discovered network.
  Topology topo(static_cast<int>(switches.size()), ports, "discovered");
  for (const DiscoveredCable& c : cables) {
    topo.connect(c.a, c.pa, c.b, c.pb);
  }
  NetworkMap map{std::move(topo), {}, {}, kNoHost, 0};
  for (const DiscoveredSwitch& s : switches) map.switch_sig.push_back(s.sig);
  for (const DiscoveredHost& h : hosts) {
    const HostId id = map.topo.attach_host(h.sw, h.port);
    map.host_sig.push_back(h.sig);
    if (h.sig == origin_signature) map.origin = id;
  }
  map.probes_used = probe.probes_sent() - probes_before;
  return map;
}

MapDiff diff_maps(const NetworkMap& before, const NetworkMap& after) {
  MapDiff d;
  auto set_difference_u64 = [](const std::vector<std::uint64_t>& a,
                               const std::vector<std::uint64_t>& b) {
    std::vector<std::uint64_t> sa = a, sb = b, out;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(out));
    return out;
  };
  d.switches_added = set_difference_u64(after.switch_sig, before.switch_sig);
  d.switches_removed = set_difference_u64(before.switch_sig, after.switch_sig);
  d.hosts_added = set_difference_u64(after.host_sig, before.host_sig);
  d.hosts_removed = set_difference_u64(before.host_sig, after.host_sig);

  auto cable_keys = [](const NetworkMap& m) {
    std::vector<std::string> keys;
    for (CableId c = 0; c < m.topo.num_cables(); ++c) {
      const Cable& cb = m.topo.cable(c);
      if (cb.to_host()) {
        keys.push_back(host_cable_key(
            m.switch_sig[static_cast<std::size_t>(cb.a.sw)], cb.a.port,
            m.host_sig[static_cast<std::size_t>(cb.host)]));
      } else {
        keys.push_back(
            cable_key(m.switch_sig[static_cast<std::size_t>(cb.a.sw)],
                      cb.a.port,
                      m.switch_sig[static_cast<std::size_t>(cb.b.sw)],
                      cb.b.port));
      }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  const auto kb = cable_keys(before);
  const auto ka = cable_keys(after);
  std::set_difference(ka.begin(), ka.end(), kb.begin(), kb.end(),
                      std::back_inserter(d.cables_added));
  std::set_difference(kb.begin(), kb.end(), ka.begin(), ka.end(),
                      std::back_inserter(d.cables_removed));
  return d;
}

}  // namespace itb
