#include "mapper/route_manager.hpp"

#include "core/route_builder.hpp"

namespace itb {

RouteManager::RouteManager(const ProbeInterface& probe,
                           std::uint64_t origin_signature)
    : probe_(&probe), origin_signature_(origin_signature) {
  map_ = std::make_unique<NetworkMap>(map_network(probe, origin_signature_));
}

MapDiff RouteManager::refresh() {
  auto next = std::make_unique<NetworkMap>(
      map_network(*probe_, origin_signature_));
  MapDiff diff = diff_maps(*map_, *next);
  map_ = std::move(next);
  if (!diff.empty()) invalidate();
  return diff;
}

void RouteManager::invalidate() {
  updown_.reset();
  updown_routes_.reset();
  itb_routes_.reset();
  ++rebuilds_;
}

const UpDown& RouteManager::updown() {
  if (!updown_) updown_ = std::make_unique<UpDown>(map_->topo, 0);
  return *updown_;
}

const RouteSet& RouteManager::updown_routes() {
  if (!updown_routes_) {
    const SimpleRoutes sr(map_->topo, updown());
    updown_routes_.emplace(build_updown_routes(map_->topo, sr));
  }
  return *updown_routes_;
}

const RouteSet& RouteManager::itb_routes() {
  if (!itb_routes_) {
    itb_routes_.emplace(build_itb_routes(map_->topo, updown()));
  }
  return *itb_routes_;
}

}  // namespace itb
