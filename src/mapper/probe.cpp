#include "mapper/probe.hpp"

namespace itb {

namespace {
std::uint64_t mix(std::uint64_t v) {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ULL;
  v ^= v >> 33;
  return v;
}
}  // namespace

TopologyProber::TopologyProber(const Topology& topo, HostId origin,
                               std::uint64_t signature_seed)
    : topo_(&topo), origin_(origin), seed_(signature_seed),
      failed_(static_cast<std::size_t>(topo.num_cables()), false) {}

std::uint64_t TopologyProber::switch_signature(SwitchId s) const {
  return mix(seed_ ^ (0x5157ULL << 32) ^ static_cast<std::uint64_t>(s));
}

std::uint64_t TopologyProber::host_signature(HostId h) const {
  return mix(seed_ ^ (0x4057ULL << 32) ^ static_cast<std::uint64_t>(h));
}

ProbeResult TopologyProber::probe(const std::vector<PortId>& route) const {
  ++probes_;
  // The probe first crosses the origin host's access cable.
  const HostAttachment& at = topo_->host(origin_);
  if (failed_[static_cast<std::size_t>(at.cable)]) return {};
  SwitchId at_switch = at.sw;
  PortId entered_through = at.port;

  for (std::size_t i = 0; i < route.size(); ++i) {
    const PortId port = route[i];
    if (port < 0 || port >= topo_->ports_per_switch()) return {};
    const PortPeer& peer = topo_->peer(at_switch, port);
    if (peer.kind == PeerKind::kNone) return {};
    if (failed_[static_cast<std::size_t>(peer.cable)]) return {};
    if (peer.kind == PeerKind::kHost) {
      // A probe terminating at a NIC mid-route is consumed there; only a
      // probe whose *last* hop lands on the host reports it.
      if (i + 1 != route.size()) return {};
      ProbeResult r;
      r.target = ProbeTarget::kHost;
      r.signature = host_signature(peer.host);
      return r;
    }
    at_switch = peer.sw;
    entered_through = peer.port;
  }

  ProbeResult r;
  r.target = ProbeTarget::kSwitch;
  r.signature = switch_signature(at_switch);
  r.num_ports = topo_->ports_per_switch();
  r.entry_port = entered_through;
  return r;
}

}  // namespace itb
