// Control-plane glue: keep routing tables in sync with the discovered
// topology.
//
// A RouteManager owns the current NetworkMap and lazily rebuilt routing
// tables.  `refresh()` re-runs the mapper and, when anything changed,
// invalidates the tables — the Myrinet workflow where every NIC rebuilds
// routes after the mapper announces a new map.  Hosts are addressed by
// signature so callers survive renumbering across remaps.
#pragma once

#include <memory>
#include <optional>

#include "core/route_set.hpp"
#include "mapper/mapper.hpp"
#include "route/simple_routes.hpp"
#include "route/updown.hpp"

namespace itb {

class RouteManager {
 public:
  /// Performs the initial mapping; throws if the local switch is dead.
  RouteManager(const ProbeInterface& probe, std::uint64_t origin_signature);

  [[nodiscard]] const NetworkMap& map() const { return *map_; }

  /// Re-map and report what changed; routing tables are rebuilt on next
  /// access if the diff is non-empty.
  MapDiff refresh();

  /// Number of times the tables were invalidated by a refresh.
  [[nodiscard]] int rebuilds() const { return rebuilds_; }

  /// Routing tables over the *discovered* topology (discovery ids).
  [[nodiscard]] const RouteSet& updown_routes();
  [[nodiscard]] const RouteSet& itb_routes();
  [[nodiscard]] const UpDown& updown();

  /// Stable addressing across remaps.
  [[nodiscard]] std::optional<HostId> host_by_signature(
      std::uint64_t sig) const {
    return map_->host_by_signature(sig);
  }

 private:
  void invalidate();

  const ProbeInterface* probe_;
  std::uint64_t origin_signature_;
  std::unique_ptr<NetworkMap> map_;
  std::unique_ptr<UpDown> updown_;
  std::optional<RouteSet> updown_routes_;
  std::optional<RouteSet> itb_routes_;
  int rebuilds_ = 0;
};

}  // namespace itb
