file(REMOVE_RECURSE
  "libitb_mapper.a"
)
