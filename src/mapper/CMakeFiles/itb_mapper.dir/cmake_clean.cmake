file(REMOVE_RECURSE
  "CMakeFiles/itb_mapper.dir/mapper.cpp.o"
  "CMakeFiles/itb_mapper.dir/mapper.cpp.o.d"
  "CMakeFiles/itb_mapper.dir/probe.cpp.o"
  "CMakeFiles/itb_mapper.dir/probe.cpp.o.d"
  "CMakeFiles/itb_mapper.dir/route_manager.cpp.o"
  "CMakeFiles/itb_mapper.dir/route_manager.cpp.o.d"
  "libitb_mapper.a"
  "libitb_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
