# Empty dependencies file for itb_mapper.
# This may be replaced when dependencies are built.
