
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapper/mapper.cpp" "src/mapper/CMakeFiles/itb_mapper.dir/mapper.cpp.o" "gcc" "src/mapper/CMakeFiles/itb_mapper.dir/mapper.cpp.o.d"
  "/root/repo/src/mapper/probe.cpp" "src/mapper/CMakeFiles/itb_mapper.dir/probe.cpp.o" "gcc" "src/mapper/CMakeFiles/itb_mapper.dir/probe.cpp.o.d"
  "/root/repo/src/mapper/route_manager.cpp" "src/mapper/CMakeFiles/itb_mapper.dir/route_manager.cpp.o" "gcc" "src/mapper/CMakeFiles/itb_mapper.dir/route_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/itb_core.dir/DependInfo.cmake"
  "/root/repo/src/route/CMakeFiles/itb_route.dir/DependInfo.cmake"
  "/root/repo/src/topo/CMakeFiles/itb_topo.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/itb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
