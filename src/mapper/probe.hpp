// Probe abstraction for topology discovery.
//
// Myrinet NICs map the network by sending probe packets along explicit
// source routes and examining what answers: a switch (which reports an
// opaque unique identifier and its port count), a host NIC (which reports
// its address), or nothing (unplugged port, dead cable).  The mapper
// (§2 of the paper: the MCP "performs the network configuration
// automatically" and "checks for changes in the network topology") only
// sees the network through this interface, which keeps it honest: it can
// never peek at global state.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"
#include "topo/types.hpp"

namespace itb {

/// What a probe found at the end of its route.
enum class ProbeTarget : std::uint8_t {
  kNothing,  // unplugged port / failed cable
  kSwitch,
  kHost,
};

struct ProbeResult {
  ProbeTarget target = ProbeTarget::kNothing;
  /// Opaque, stable, unique id of the device (think MAC address).  Only
  /// meaningful for kSwitch / kHost.
  std::uint64_t signature = 0;
  /// Port count of the switch (kSwitch only).
  int num_ports = 0;
  /// The switch port the probe *entered* through (kSwitch only) — Myrinet
  /// switches report the input port so the mapper learns both endpoints
  /// of a cable from one probe.
  PortId entry_port = kNoPort;
};

/// Interface the mapper drives.  `probe(route)` sends a probe from the
/// mapping host's switch along `route` (a list of output ports consumed
/// one per switch, exactly like a data header) and reports what sits
/// after the last hop.  An empty route inspects the mapping host's own
/// switch.  Returns kNothing if any hop crosses a dead cable or names an
/// unplugged port.
class ProbeInterface {
 public:
  virtual ~ProbeInterface() = default;
  [[nodiscard]] virtual ProbeResult probe(
      const std::vector<PortId>& route) const = 0;
  /// Number of probes issued so far (cost metric; the real MCP cares).
  [[nodiscard]] virtual std::uint64_t probes_sent() const = 0;
};

/// Probe implementation over a concrete Topology, with optional failure
/// injection: cables present in `failed` behave as unplugged.
class TopologyProber final : public ProbeInterface {
 public:
  /// `origin` is the mapping host.  Signatures are derived from a seed so
  /// two different networks produce disjoint signature spaces.
  TopologyProber(const Topology& topo, HostId origin,
                 std::uint64_t signature_seed = 0x51bd1ab);

  [[nodiscard]] ProbeResult probe(
      const std::vector<PortId>& route) const override;
  [[nodiscard]] std::uint64_t probes_sent() const override { return probes_; }

  /// Failure injection: mark/unmark a cable as dead.
  void fail_cable(CableId c) { failed_[static_cast<std::size_t>(c)] = true; }
  void restore_cable(CableId c) { failed_[static_cast<std::size_t>(c)] = false; }

  [[nodiscard]] std::uint64_t switch_signature(SwitchId s) const;
  [[nodiscard]] std::uint64_t host_signature(HostId h) const;

 private:
  const Topology* topo_;
  HostId origin_;
  std::uint64_t seed_;
  std::vector<bool> failed_;
  mutable std::uint64_t probes_ = 0;
};

}  // namespace itb
