// Automatic topology discovery (the Myrinet "mapper").
//
// Starting from the mapping host's own switch, the mapper breadth-first
// scans every port of every reachable switch with probe packets,
// de-duplicates switches by their opaque signatures, and reconstructs a
// Topology object isomorphic to the physical network.  Switch and host
// numbering is discovery order, so the result is stable for a given
// network and origin.  Re-running the mapper after cable failures and
// diffing the maps is how the control plane notices topology changes and
// triggers route recomputation (paper §2: NICs "check for changes in the
// network topology ... in order to maintain the routing tables").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mapper/probe.hpp"
#include "topo/topology.hpp"

namespace itb {

/// A discovered network: a freshly numbered Topology plus the signature
/// of every discovered switch and host (index = discovered id).
struct NetworkMap {
  Topology topo;
  std::vector<std::uint64_t> switch_sig;
  std::vector<std::uint64_t> host_sig;
  /// The mapping host's id within the discovered numbering.
  HostId origin = kNoHost;
  /// Probes consumed by this discovery (control-plane cost).
  std::uint64_t probes_used = 0;

  [[nodiscard]] std::optional<SwitchId> switch_by_signature(
      std::uint64_t sig) const;
  [[nodiscard]] std::optional<HostId> host_by_signature(
      std::uint64_t sig) const;
};

/// Explore the network visible through `probe`, starting at the mapping
/// host.  `origin_signature` is the mapping host's own signature (a NIC
/// knows its address).  Throws std::runtime_error if even the local
/// switch is unreachable (dead access cable).
[[nodiscard]] NetworkMap map_network(const ProbeInterface& probe,
                                     std::uint64_t origin_signature);

/// Differences between two maps, in terms of device signatures (stable
/// across renumbering).
struct MapDiff {
  std::vector<std::uint64_t> switches_added;
  std::vector<std::uint64_t> switches_removed;
  std::vector<std::uint64_t> hosts_added;
  std::vector<std::uint64_t> hosts_removed;
  /// Cables keyed by a canonical endpoint string (see cable_key).
  std::vector<std::string> cables_added;
  std::vector<std::string> cables_removed;

  [[nodiscard]] bool empty() const {
    return switches_added.empty() && switches_removed.empty() &&
           hosts_added.empty() && hosts_removed.empty() &&
           cables_added.empty() && cables_removed.empty();
  }
};

[[nodiscard]] MapDiff diff_maps(const NetworkMap& before,
                                const NetworkMap& after);

}  // namespace itb
