// Batch-means confidence intervals.
//
// Latency samples from a single simulation are autocorrelated (consecutive
// packets share queues), so the naive s/sqrt(n) interval is far too
// optimistic.  The standard remedy groups the ordered sample stream into a
// moderate number of contiguous batches and treats the batch means as
// (approximately) independent observations.  This estimator backs the
// latency_ci95 field the harness reports.
#pragma once

#include <cstddef>
#include <vector>

namespace itb {

class BatchMeans {
 public:
  /// `target_batches` contiguous batches are formed at query time (fewer
  /// when there are not enough samples; at least 2 samples per batch).
  explicit BatchMeans(std::size_t target_batches = 20)
      : target_batches_(target_batches) {}

  void add(double x) { samples_.push_back(x); }
  void reset() { samples_.clear(); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;

  /// Half-width of the ~95% confidence interval on the mean, from the
  /// batch-means standard error (z = 1.96; batch counts are large enough
  /// that the normal approximation is fine for reporting purposes).
  /// Returns 0 when fewer than 4 samples exist.
  [[nodiscard]] double ci95_halfwidth() const;

  /// The batch means themselves (for tests/diagnostics).
  [[nodiscard]] std::vector<double> batch_means() const;

 private:
  std::size_t target_batches_;
  std::vector<double> samples_;
};

}  // namespace itb
