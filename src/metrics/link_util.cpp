#include "metrics/link_util.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

std::vector<ChannelUtil> measure_channel_utilization(const Network& net,
                                                     TimePs window,
                                                     bool include_host_links) {
  std::vector<ChannelUtil> out;
  const Topology& topo = net.topology();
  if (window <= 0) return out;
  for (CableId c = 0; c < topo.num_cables(); ++c) {
    const Cable& cb = topo.cable(c);
    if (cb.to_host() && !include_host_links) continue;
    for (const bool from_a : {true, false}) {
      const ChannelId ch = topo.channel_from(c, from_a);
      ChannelUtil u;
      u.channel = ch;
      u.cable = c;
      u.to_host = cb.to_host();
      if (cb.to_host()) {
        u.from_sw = from_a ? cb.a.sw : kNoSwitch;
        u.to_sw = from_a ? kNoSwitch : cb.a.sw;
      } else {
        u.from_sw = from_a ? cb.a.sw : cb.b.sw;
        u.to_sw = from_a ? cb.b.sw : cb.a.sw;
      }
      u.utilization = static_cast<double>(net.channel_busy_time(ch)) /
                      static_cast<double>(window);
      u.stopped_fraction = static_cast<double>(net.channel_stopped_time(ch)) /
                           static_cast<double>(window);
      out.push_back(u);
    }
  }
  return out;
}

LinkUtilSummary summarize_link_utilization(const std::vector<ChannelUtil>& utils,
                                           const Topology& topo,
                                           SwitchId root) {
  LinkUtilSummary s;
  if (utils.empty()) return s;
  // "Near the root": channels with an endpoint at the root or one of its
  // switch neighbours.
  std::vector<bool> near_root(idx(topo.num_switches()), false);
  near_root[idx(root)] = true;
  for (const SwitchId n : topo.switch_neighbors(root)) near_root[idx(n)] = true;

  double sum = 0.0;
  s.min_utilization = 1.0;
  std::size_t below10 = 0, stopped10 = 0, fabric = 0;
  for (const ChannelUtil& u : utils) {
    sum += u.utilization;
    s.max_utilization = std::max(s.max_utilization, u.utilization);
    s.min_utilization = std::min(s.min_utilization, u.utilization);
    if (!u.to_host) {
      ++fabric;
      if (u.utilization < 0.10) ++below10;
      if (u.stopped_fraction > 0.10) ++stopped10;
      const bool near = (u.from_sw != kNoSwitch && near_root[idx(u.from_sw)]) ||
                        (u.to_sw != kNoSwitch && near_root[idx(u.to_sw)]);
      if (near) {
        s.max_near_root = std::max(s.max_near_root, u.utilization);
      } else {
        s.max_far_from_root = std::max(s.max_far_from_root, u.utilization);
      }
    }
  }
  s.avg_utilization = sum / static_cast<double>(utils.size());
  if (fabric > 0) {
    s.fraction_below_10pct =
        static_cast<double>(below10) / static_cast<double>(fabric);
    s.fraction_stopped_over_10pct =
        static_cast<double>(stopped10) / static_cast<double>(fabric);
  }
  return s;
}

std::string render_grid_utilization(const std::vector<ChannelUtil>& utils,
                                    const Topology& topo) {
  // Aggregate per (switch, direction): keep the larger of the two channel
  // directions of the first cable found toward the +x / +y neighbour.
  int max_x = 0, max_y = 0;
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    max_x = std::max(max_x, topo.pos(s).x);
    max_y = std::max(max_y, topo.pos(s).y);
  }
  std::map<std::pair<SwitchId, SwitchId>, double> pair_util;
  for (const ChannelUtil& u : utils) {
    if (u.to_host || u.from_sw == kNoSwitch || u.to_sw == kNoSwitch) continue;
    auto key = std::make_pair(u.from_sw, u.to_sw);
    auto [it, inserted] = pair_util.try_emplace(key, u.utilization);
    if (!inserted) it->second = std::max(it->second, u.utilization);
  }
  auto find_by_pos = [&](int x, int y) -> SwitchId {
    for (SwitchId s = 0; s < topo.num_switches(); ++s) {
      if (topo.pos(s).x == x && topo.pos(s).y == y) return s;
    }
    return kNoSwitch;
  };
  std::string out;
  char buf[64];
  for (int y = 0; y <= max_y; ++y) {
    std::string row1, row2;
    for (int x = 0; x <= max_x; ++x) {
      const SwitchId s = find_by_pos(x, y);
      if (s == kNoSwitch) {
        row1 += "        ";
        row2 += "        ";
        continue;
      }
      const SwitchId east = find_by_pos((x + 1) % (max_x + 1), y);
      const SwitchId south = find_by_pos(x, (y + 1) % (max_y + 1));
      const auto it_e = east == kNoSwitch
                            ? pair_util.end()
                            : pair_util.find(std::make_pair(s, east));
      const auto it_s = south == kNoSwitch
                            ? pair_util.end()
                            : pair_util.find(std::make_pair(s, south));
      std::snprintf(buf, sizeof buf, "%02d>%3.0f%% ", s,
                    it_e == pair_util.end() ? 0.0 : it_e->second * 100.0);
      row1 += buf;
      std::snprintf(buf, sizeof buf, "  v%3.0f%% ",
                    it_s == pair_util.end() ? 0.0 : it_s->second * 100.0);
      row2 += buf;
    }
    out += row1 + "\n" + row2 + "\n";
  }
  return out;
}

}  // namespace itb
