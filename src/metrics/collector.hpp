// Measurement-window metric collection.
//
// Latency follows the paper's definition (footnote 4): time from injection
// of a message into the network at the source host until delivery at the
// destination host.  Time spent queued in the source NIC before the first
// flit enters the link is recorded separately (latency_from_generation),
// because past saturation it grows without bound while network latency
// stays finite.
// Accepted traffic follows footnote 5: information (payload flits)
// delivered per nanosecond, normalised per switch.
#pragma once

#include <cstdint>

#include "metrics/batch_means.hpp"
#include "net/network.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace itb {

class MetricsCollector {
 public:
  explicit MetricsCollector(int num_switches);

  /// Install this collector as the network's delivery callback.
  void attach(Network& net);

  /// Re-target the collector at a (possibly different) topology size and
  /// discard all recorded state, keeping histogram/batch capacity.  A
  /// configured collector is indistinguishable from a fresh one (workspace
  /// reuse).
  void configure(int num_switches);

  /// Begin a measurement window at `now`, discarding everything recorded
  /// so far (used after warm-up).
  void reset_window(TimePs now);

  // --- queries (valid any time; rates need `now`) ---
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t delivered_flits() const { return flits_; }

  /// Average latency in ns, network part only (injection -> delivery).
  [[nodiscard]] double avg_latency_ns() const { return net_latency_.mean(); }
  /// Average latency in ns including source-queue time (generation ->
  /// delivery).
  [[nodiscard]] double avg_latency_from_generation_ns() const {
    return total_latency_.mean();
  }
  [[nodiscard]] const RunningStats& net_latency() const { return net_latency_; }
  [[nodiscard]] const RunningStats& total_latency() const {
    return total_latency_;
  }
  [[nodiscard]] double p50_latency_ns() const { return hist_.count() ? hist_.quantile(0.50) : 0.0; }
  [[nodiscard]] double p99_latency_ns() const { return hist_.count() ? hist_.quantile(0.99) : 0.0; }

  /// ~95% confidence half-width on the mean network latency, via batch
  /// means (autocorrelation-aware; see metrics/batch_means.hpp).
  [[nodiscard]] double latency_ci95_ns() const {
    return batches_.ci95_halfwidth();
  }

  /// Accepted traffic in flits/ns/switch over the current window.
  [[nodiscard]] double accepted_flits_per_ns_per_switch(TimePs now) const;

  /// Average in-transit buffers used per delivered message (paper §4.7.1:
  /// 0.43 for ITB-SP, 0.54 for ITB-RR on the uniform 8x8 torus).
  [[nodiscard]] double avg_itbs_per_message() const {
    return delivered_ ? static_cast<double>(itbs_) /
                            static_cast<double>(delivered_)
                      : 0.0;
  }
  [[nodiscard]] std::uint64_t spilled_deliveries() const { return spills_; }

 private:
  void on_delivery(const DeliveryRecord& rec);

  int num_switches_;
  TimePs window_start_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t flits_ = 0;
  std::uint64_t itbs_ = 0;
  std::uint64_t spills_ = 0;
  RunningStats net_latency_;    // ns
  RunningStats total_latency_;  // ns
  Histogram hist_;              // ns buckets over network latency
  BatchMeans batches_;          // over network latency, delivery order
};

}  // namespace itb
