
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/batch_means.cpp" "src/metrics/CMakeFiles/itb_metrics.dir/batch_means.cpp.o" "gcc" "src/metrics/CMakeFiles/itb_metrics.dir/batch_means.cpp.o.d"
  "/root/repo/src/metrics/collector.cpp" "src/metrics/CMakeFiles/itb_metrics.dir/collector.cpp.o" "gcc" "src/metrics/CMakeFiles/itb_metrics.dir/collector.cpp.o.d"
  "/root/repo/src/metrics/link_util.cpp" "src/metrics/CMakeFiles/itb_metrics.dir/link_util.cpp.o" "gcc" "src/metrics/CMakeFiles/itb_metrics.dir/link_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/net/CMakeFiles/itb_net.dir/DependInfo.cmake"
  "/root/repo/src/route/CMakeFiles/itb_route.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/itb_sim.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/itb_core.dir/DependInfo.cmake"
  "/root/repo/src/topo/CMakeFiles/itb_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
