# Empty dependencies file for itb_metrics.
# This may be replaced when dependencies are built.
