file(REMOVE_RECURSE
  "libitb_metrics.a"
)
