file(REMOVE_RECURSE
  "CMakeFiles/itb_metrics.dir/batch_means.cpp.o"
  "CMakeFiles/itb_metrics.dir/batch_means.cpp.o.d"
  "CMakeFiles/itb_metrics.dir/collector.cpp.o"
  "CMakeFiles/itb_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/itb_metrics.dir/link_util.cpp.o"
  "CMakeFiles/itb_metrics.dir/link_util.cpp.o.d"
  "libitb_metrics.a"
  "libitb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
