#include "metrics/batch_means.hpp"

#include <cmath>

namespace itb {

double BatchMeans::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

std::vector<double> BatchMeans::batch_means() const {
  std::vector<double> out;
  const std::size_t n = samples_.size();
  if (n < 4) return out;
  std::size_t batches = target_batches_;
  if (batches < 2) batches = 2;
  if (n / batches < 2) batches = n / 2;
  const std::size_t per = n / batches;  // trailing remainder is dropped
  out.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = b * per; i < (b + 1) * per; ++i) sum += samples_[i];
    out.push_back(sum / static_cast<double>(per));
  }
  return out;
}

double BatchMeans::ci95_halfwidth() const {
  const auto means = batch_means();
  if (means.size() < 2) return 0.0;
  double m = 0.0;
  for (const double v : means) m += v;
  m /= static_cast<double>(means.size());
  double var = 0.0;
  for (const double v : means) var += (v - m) * (v - m);
  var /= static_cast<double>(means.size() - 1);
  return 1.96 * std::sqrt(var / static_cast<double>(means.size()));
}

}  // namespace itb
