#include "metrics/collector.hpp"

namespace itb {

namespace {
// 100 ns buckets up to 1 ms cover every latency this study produces; the
// overflow bucket catches pathological stragglers.
constexpr double kBucketNs = 100.0;
constexpr std::size_t kBuckets = 10000;
}  // namespace

MetricsCollector::MetricsCollector(int num_switches)
    : num_switches_(num_switches), hist_(kBucketNs, kBuckets) {}

void MetricsCollector::attach(Network& net) {
  net.set_delivery_callback(
      [this](const DeliveryRecord& rec) { on_delivery(rec); });
}

void MetricsCollector::configure(int num_switches) {
  num_switches_ = num_switches;
  reset_window(0);
}

void MetricsCollector::reset_window(TimePs now) {
  window_start_ = now;
  delivered_ = 0;
  flits_ = 0;
  itbs_ = 0;
  spills_ = 0;
  net_latency_.reset();
  total_latency_.reset();
  hist_.clear();
  batches_.reset();
}

void MetricsCollector::on_delivery(const DeliveryRecord& rec) {
  ++delivered_;
  flits_ += static_cast<std::uint64_t>(rec.payload_flits);
  itbs_ += static_cast<std::uint64_t>(rec.itbs_used);
  if (rec.spilled) ++spills_;
  const double net_ns = to_ns(rec.deliver_time - rec.inject_time);
  const double tot_ns = to_ns(rec.deliver_time - rec.gen_time);
  net_latency_.add(net_ns);
  total_latency_.add(tot_ns);
  hist_.add(net_ns);
  batches_.add(net_ns);
}

double MetricsCollector::accepted_flits_per_ns_per_switch(TimePs now) const {
  const TimePs span = now - window_start_;
  if (span <= 0) return 0.0;
  return static_cast<double>(flits_) / to_ns(span) /
         static_cast<double>(num_switches_);
}

}  // namespace itb
