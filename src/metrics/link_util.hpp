// Per-link utilization measurement and the summary statistics the paper
// reads off its utilization maps (Figures 8, 9 and 11).
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "route/updown.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace itb {

struct ChannelUtil {
  ChannelId channel;
  CableId cable;
  bool to_host;
  SwitchId from_sw;  // kNoSwitch when the sender is a host
  SwitchId to_sw;    // kNoSwitch when the receiver is a host
  double utilization;        // busy fraction of the window
  double stopped_fraction;   // fraction of the window stopped with data
};

struct LinkUtilSummary {
  double max_utilization = 0.0;
  double min_utilization = 0.0;
  double avg_utilization = 0.0;
  /// Fraction of switch-to-switch channels under 10% utilization (paper:
  /// 65% for UP/DOWN at its saturation point on the torus).
  double fraction_below_10pct = 0.0;
  /// Highest utilization among channels touching the root switch or its
  /// direct neighbours ("links near the root switch": ~50% for UP/DOWN).
  double max_near_root = 0.0;
  /// Highest utilization among the remaining channels.
  double max_far_from_root = 0.0;
  /// Fraction of channels stopped by flow control more than 10% of the
  /// time (paper: 20% of links at ITB-RR saturation).
  double fraction_stopped_over_10pct = 0.0;
};

/// Utilization of every switch-to-switch channel over [window_start, now]
/// (host channels excluded unless `include_host_links`).
[[nodiscard]] std::vector<ChannelUtil> measure_channel_utilization(
    const Network& net, TimePs window, bool include_host_links = false);

[[nodiscard]] LinkUtilSummary summarize_link_utilization(
    const std::vector<ChannelUtil>& utils, const Topology& topo,
    SwitchId root);

/// ASCII rendering of a 2-D grid topology's link utilization: one cell per
/// switch (by its position) showing the utilization of its +x and +y
/// outgoing channels in percent — a textual stand-in for the paper's
/// shaded map figures.
[[nodiscard]] std::string render_grid_utilization(
    const std::vector<ChannelUtil>& utils, const Topology& topo);

}  // namespace itb
