#include "core/route_builder.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/itb_split.hpp"
#include "route/minimal_paths.hpp"
#include "route/topo_minimal.hpp"
#include "sim/pool.hpp"

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

Route compile_route(const Topology& topo, const SwitchPath& path,
                    const std::vector<int>& split_points, int alt_index,
                    std::uint64_t itb_host_salt) {
  Route r;
  r.src_switch = path.src();
  r.dst_switch = path.dst();
  r.switches = path.sw;
  r.total_switch_hops = path.hops();

  const auto segments = split_path(path, split_points);
  r.legs.reserve(segments.size());
  for (std::size_t seg_i = 0; seg_i < segments.size(); ++seg_i) {
    const SwitchPath& seg = segments[seg_i];
    const bool is_final = seg_i + 1 == segments.size();
    RouteLeg leg;
    leg.switch_hops = seg.hops();
    leg.ports.reserve(seg.cable.size() + 1);
    for (std::size_t h = 0; h < seg.cable.size(); ++h) {
      // Output port of the switch we are leaving, for the cable we cross.
      const Cable& cb = topo.cable(seg.cable[h]);
      const SwitchId from = seg.sw[h];
      leg.ports.push_back(cb.a.sw == from ? cb.a.port : cb.b.port);
    }
    if (!is_final) {
      // Choose the in-transit host on the segment's last switch, spreading
      // the load over that switch's hosts deterministically.  The
      // factorized store recomputes this exact mix at composition time
      // (RouteStore::compose_factorized) — keep the two in lockstep.
      const SwitchId itb_sw = seg.dst();
      const auto hosts = topo.hosts_of_switch(itb_sw);
      if (hosts.empty()) {
        throw std::invalid_argument(
            "compile_route: split switch has no attached host");
      }
      const std::uint64_t mix =
          static_cast<std::uint64_t>(path.src()) * 1315423911ULL +
          static_cast<std::uint64_t>(path.dst()) * 2654435761ULL +
          static_cast<std::uint64_t>(alt_index) * 40503ULL +
          static_cast<std::uint64_t>(seg_i) * 97ULL + itb_host_salt;
      const HostId h = hosts[mix % hosts.size()];
      leg.end_host = h;
      leg.ports.push_back(topo.host(h).port);
    }
    r.legs.push_back(std::move(leg));
  }
  return r;
}

namespace {

/// One staged row: the alternatives of every destination for one source
/// switch — the materialized form the *_nested builders return for the
/// differential harness and hand-inspection.
using Row = std::vector<std::vector<Route>>;

Row updown_row(const Topology& topo, const SimpleRoutes& sr, SwitchId s) {
  Row row(static_cast<std::size_t>(topo.num_switches()));
  for (SwitchId d = 0; d < topo.num_switches(); ++d) {
    const SwitchPath& p = sr.route(s, d);
    row[idx(d)].push_back(compile_route(topo, p, {}, 0, 0));
  }
  return row;
}

Row minimal_row(const Topology& topo, const StructuredMinimal& sm,
                SwitchId s) {
  Row row(static_cast<std::size_t>(topo.num_switches()));
  for (SwitchId d = 0; d < topo.num_switches(); ++d) {
    row[idx(d)].push_back(compile_route(topo, sm.path(s, d), {}, 0, 0));
  }
  return row;
}

/// All-pairs BFS distance matrix (row-major, row = source switch), staged
/// once per table build so the per-pair enumeration reuses rows instead of
/// re-running a BFS per pair — the difference between minutes and seconds
/// on dense low-diameter graphs.  Distances are canonical values, so any
/// jobs value yields the same matrix.
std::vector<int> all_pairs_distances(const Topology& topo, int jobs) {
  const int n = topo.num_switches();
  std::vector<std::vector<int>> rows = parallel_map<std::vector<int>>(
      n, jobs,
      [&](int s) { return topo.switch_distances_from(static_cast<SwitchId>(s)); });
  std::vector<int> flat(idx(n) * idx(n));
  for (int s = 0; s < n; ++s) {
    std::copy(rows[idx(s)].begin(), rows[idx(s)].end(),
              flat.begin() + idx(s) * idx(n));
  }
  return flat;
}

Row itb_row(const Topology& topo, const UpDown& ud,
            const ItbBuildOptions& opts, SwitchId s,
            const std::vector<int>& all_dist) {
  const auto n = idx(topo.num_switches());
  Row row(n);
  for (SwitchId d = 0; d < topo.num_switches(); ++d) {
    std::vector<Route>& alts = row[idx(d)];
    // Per-pair rotation of the DFS direction order: ITB-SP's pinned
    // "first minimal path" is then spread across directions network-wide
    // (see enumerate_minimal_paths).
    const auto rotation = static_cast<unsigned>(
        (static_cast<std::uint64_t>(s) * 0x9e3779b9u +
         static_cast<std::uint64_t>(d) * 0x85ebca6bu) >>
        16);
    // Row d of the matrix = distances from d = distances to d (undirected).
    const auto paths = enumerate_minimal_paths(
        topo, s, d, opts.max_alternatives, rotation,
        std::span<const int>(all_dist.data() + idx(d) * n, n));
    int alt_index = 0;
    for (const SwitchPath& p : paths) {
      const auto splits = itb_split_points(ud, p);
      // Skip candidates whose split switch has no host to eject into.
      bool feasible = true;
      for (const int sp : splits) {
        if (topo.hosts_of_switch(p.sw[idx(sp)]).empty()) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      alts.push_back(
          compile_route(topo, p, splits, alt_index, opts.itb_host_salt));
      ++alt_index;
    }
    if (alts.empty()) {
      // No usable minimal path (can only happen on host-less split
      // switches); fall back to a shortest legal route.
      const auto legal = ud.shortest_legal_paths(s, d, 1);
      if (legal.empty()) {
        throw std::runtime_error("build_itb_routes: pair unreachable");
      }
      alts.push_back(compile_route(topo, legal.front(), {}, 0, 0));
    }
    if (opts.prefer_fewest_itbs) {
      // ITB-SP uses alternative 0: prefer routes with fewer in-transit
      // stops; the sort is stable so the DFS order breaks ties.
      std::stable_sort(alts.begin(), alts.end(),
                       [](const Route& a, const Route& b) {
                         return a.num_itbs() < b.num_itbs();
                       });
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// Factorized staging: the flat builders stage switch-pair rows directly
// into the factorized block format (core/route_store.hpp) — no Route is
// ever materialized, no per-route temporaries are allocated.  Scratch
// buffers are reused across every source a task stages.

struct StageScratch {
  std::vector<PortId> ports;
  std::vector<int> splits;
  std::vector<std::uint32_t> walk_ids;
  std::vector<std::uint32_t> route_ids;
  MinimalPathScratch path;
  PrunedDag dag;
};

/// Output port of `p.sw[i]` for cable `p.cable[i]`.
PortId out_port(const Topology& topo, const SwitchPath& p, std::size_t i) {
  const Cable& cb = topo.cable(p.cable[i]);
  return cb.a.sw == p.sw[i] ? cb.a.port : cb.b.port;
}

void path_ports(const Topology& topo, const SwitchPath& p,
                std::vector<PortId>& out) {
  out.clear();
  for (std::size_t i = 0; i < p.cable.size(); ++i) {
    out.push_back(out_port(topo, p, i));
  }
}

/// Stages one route given its full port walk and ITB split indices;
/// returns the block-local route id.
std::uint32_t stage_ported_route(FactorizedBlockStager& st,
                                 const PortId* ports, int hops,
                                 const int* splits, std::size_t n_splits,
                                 std::uint16_t tag, StageScratch& sc) {
  sc.walk_ids.clear();
  int prev = 0;
  for (std::size_t i = 0; i < n_splits; ++i) {
    const int sp = splits[i];
    sc.walk_ids.push_back(st.stage_walk(ports + prev, idx(sp - prev)));
    prev = sp;
  }
  sc.walk_ids.push_back(st.stage_walk(ports + prev, idx(hops - prev)));
  return st.stage_route(sc.walk_ids.data(), sc.walk_ids.size(), tag);
}

void stage_updown_row(const Topology& topo, const SimpleRoutes& sr,
                      SwitchId s, FactorizedBlockStager& st,
                      StageScratch& sc) {
  for (SwitchId d = 0; d < topo.num_switches(); ++d) {
    const SwitchPath& p = sr.route(s, d);
    path_ports(topo, p, sc.ports);
    const std::uint32_t rid =
        stage_ported_route(st, sc.ports.data(), p.hops(), nullptr, 0, 0, sc);
    st.commit_pair(&rid, 1);
  }
}

void stage_minimal_row(const Topology& topo, const StructuredMinimal& sm,
                       SwitchId s, FactorizedBlockStager& st,
                       StageScratch& sc) {
  for (SwitchId d = 0; d < topo.num_switches(); ++d) {
    const SwitchPath p = sm.path(s, d);
    path_ports(topo, p, sc.ports);
    const std::uint32_t rid =
        stage_ported_route(st, sc.ports.data(), p.hops(), nullptr, 0, 0, sc);
    st.commit_pair(&rid, 1);
  }
}

/// Stages the column of one *destination*: all sources, in source order.
/// Iterating destination-major lets the (cache-hostile) distance-matrix row
/// and the pruned minimal-step DAG derived from it be built once per
/// destination and shared by every source's DFS — the enumeration inner
/// loop then touches only edges known to lie on a minimal path.  Per-pair
/// values (rotation, split scan, host-feasibility, tags) are untouched, so
/// the emitted routes are identical to a source-major build; only the pair
/// stream order — and hence intern-id assignment — changes, canonically.
void stage_itb_dest_row(const Topology& topo, const UpDown& ud,
                        const ItbBuildOptions& opts,
                        const std::vector<std::uint32_t>& host_count,
                        SwitchId d, FactorizedBlockStager& st,
                        StageScratch& sc) {
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    sc.route_ids.clear();
    const auto rotation = static_cast<unsigned>(
        (static_cast<std::uint64_t>(s) * 0x9e3779b9u +
         static_cast<std::uint64_t>(d) * 0x85ebca6bu) >>
        16);
    for_each_minimal_path_dag(
        sc.dag, s, d, opts.max_alternatives, rotation, sc.path,
        [&](const SwitchId* sw, const CableId* cable, const PortId* port,
            int hops) {
          // itb_split_points over the scratch spans, allocation-free.
          sc.splits.clear();
          bool gone_down = false;
          for (int i = 0; i < hops; ++i) {
            const bool up = ud.is_up(cable[idx(i)], sw[idx(i)]);
            if (up && gone_down) {
              sc.splits.push_back(i);
              gone_down = false;
            }
            if (!up) gone_down = true;
          }
          for (const int sp : sc.splits) {
            if (host_count[idx(sw[idx(sp)])] == 0) return;
          }
          const auto tag = static_cast<std::uint16_t>(sc.route_ids.size());
          sc.route_ids.push_back(stage_ported_route(
              st, port, hops, sc.splits.data(), sc.splits.size(), tag, sc));
        });
    if (sc.route_ids.empty()) {
      const auto legal = ud.shortest_legal_paths(s, d, 1);
      if (legal.empty()) {
        throw std::runtime_error("build_itb_routes: pair unreachable");
      }
      path_ports(topo, legal.front(), sc.ports);
      sc.route_ids.push_back(stage_ported_route(
          st, sc.ports.data(), legal.front().hops(), nullptr, 0, 0, sc));
    }
    if (opts.prefer_fewest_itbs) {
      std::stable_sort(sc.route_ids.begin(), sc.route_ids.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return st.route_leg_count(a) < st.route_leg_count(b);
                       });
    }
    st.commit_pair(sc.route_ids.data(), sc.route_ids.size());
  }
}

/// Stage blocks of rows (in parallel when jobs > 1) and merge them in row
/// order.  A "row" is one source switch for the UP/DOWN and MIN builders
/// and one *destination* for the ITB builder (pair_transposed = true; the
/// store builder transposes the pair index back).  Global intern ids are
/// assigned in first-appearance order over the canonical row-major pair
/// stream, which is independent of how rows are blocked across workers —
/// the store is bit-identical for every jobs value.
template <typename StageRow>
RouteSet build_factorized(const Topology& topo, RoutingAlgorithm algo,
                          std::uint64_t itb_host_salt, int jobs,
                          bool pair_transposed, StageRow&& stage_row) {
  const auto t0 = std::chrono::steady_clock::now();
  const int n = topo.num_switches();
  FactorizedStoreBuilder b(topo, itb_host_salt);
  b.set_pair_transposed(pair_transposed);
  if (jobs <= 1) {
    // Serial: one block, one stager, one scratch — cleared (capacity
    // retained) between rows.
    FactorizedBlock block;
    FactorizedBlockStager stager;
    StageScratch sc;
    for (SwitchId r = 0; r < n; ++r) {
      stager.begin_block(&block);
      stage_row(stager, sc, r);
      b.append_block(block);
    }
  } else {
    // Chunked fan-out: a few blocks per worker keeps per-task overhead
    // bounded while the ordered serial merge stays O(distinct shapes).
    // NOTE: callers on pool worker threads must pass jobs == 1
    // (pooled_for must not nest; see sim/pool.hpp).
    const int chunk = std::max(1, (n + jobs * 4 - 1) / (jobs * 4));
    const int num_blocks = (n + chunk - 1) / chunk;
    std::vector<FactorizedBlock> blocks = parallel_map<FactorizedBlock>(
        num_blocks, jobs, [&](int bi) {
          FactorizedBlock block;
          FactorizedBlockStager stager;
          StageScratch sc;
          stager.begin_block(&block);
          const int r0 = bi * chunk;
          const int r1 = std::min(n, r0 + chunk);
          for (SwitchId r = r0; r < r1; ++r) stage_row(stager, sc, r);
          return block;
        });
    for (FactorizedBlock& blk : blocks) {
      b.append_block(blk);
      blk = FactorizedBlock{};  // free staging as soon as it is merged
    }
  }
  RouteSet rs(n, algo, b.finish());
  rs.set_build_ms(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
  return rs;
}

std::vector<std::uint32_t> hosts_per_switch(const Topology& topo) {
  std::vector<std::uint32_t> count(idx(topo.num_switches()), 0);
  for (HostId h = 0; h < topo.num_hosts(); ++h) {
    ++count[idx(topo.host(h).sw)];
  }
  return count;
}

}  // namespace

RouteSet build_updown_routes(const Topology& topo, const SimpleRoutes& sr,
                             int jobs) {
  return build_factorized(
      topo, RoutingAlgorithm::kUpDown, 0, jobs, /*pair_transposed=*/false,
      [&](FactorizedBlockStager& st, StageScratch& sc, SwitchId s) {
        stage_updown_row(topo, sr, s, st, sc);
      });
}

RouteSet build_itb_routes(const Topology& topo, const UpDown& ud,
                          ItbBuildOptions opts, int jobs) {
  const std::vector<int> all_dist = all_pairs_distances(topo, jobs);
  const SwitchAdjacency adj(topo);
  const std::vector<std::uint32_t> host_count = hosts_per_switch(topo);
  const auto n = idx(topo.num_switches());
  return build_factorized(
      topo, RoutingAlgorithm::kItb, opts.itb_host_salt, jobs,
      /*pair_transposed=*/true,
      [&](FactorizedBlockStager& st, StageScratch& sc, SwitchId d) {
        // Row d of the matrix = distances from d = distances to d
        // (undirected); the pruned DAG is rebuilt in place per destination.
        sc.dag.build(adj,
                     std::span<const int>(all_dist.data() + idx(d) * n, n));
        stage_itb_dest_row(topo, ud, opts, host_count, d, st, sc);
      });
}

RouteSet build_minimal_routes(const Topology& topo, int jobs) {
  const StructuredMinimal sm(topo);
  return build_factorized(
      topo, RoutingAlgorithm::kMinimal, 0, jobs, /*pair_transposed=*/false,
      [&](FactorizedBlockStager& st, StageScratch& sc, SwitchId s) {
        stage_minimal_row(topo, sm, s, st, sc);
      });
}

NestedRouteTable build_updown_routes_nested(const Topology& topo,
                                            const SimpleRoutes& sr) {
  NestedRouteTable rs(topo.num_switches(), RoutingAlgorithm::kUpDown);
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    Row row = updown_row(topo, sr, s);
    for (SwitchId d = 0; d < topo.num_switches(); ++d) {
      rs.mutable_alternatives(s, d) = std::move(row[idx(d)]);
    }
  }
  return rs;
}

NestedRouteTable build_itb_routes_nested(const Topology& topo,
                                         const UpDown& ud,
                                         ItbBuildOptions opts) {
  const std::vector<int> all_dist = all_pairs_distances(topo, 1);
  NestedRouteTable rs(topo.num_switches(), RoutingAlgorithm::kItb);
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    Row row = itb_row(topo, ud, opts, s, all_dist);
    for (SwitchId d = 0; d < topo.num_switches(); ++d) {
      rs.mutable_alternatives(s, d) = std::move(row[idx(d)]);
    }
  }
  return rs;
}

NestedRouteTable build_minimal_routes_nested(const Topology& topo) {
  const StructuredMinimal sm(topo);
  NestedRouteTable rs(topo.num_switches(), RoutingAlgorithm::kMinimal);
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    Row row = minimal_row(topo, sm, s);
    for (SwitchId d = 0; d < topo.num_switches(); ++d) {
      rs.mutable_alternatives(s, d) = std::move(row[idx(d)]);
    }
  }
  return rs;
}

}  // namespace itb
