#include "core/route_builder.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

#include <span>

#include "core/itb_split.hpp"
#include "route/minimal_paths.hpp"
#include "route/topo_minimal.hpp"
#include "sim/pool.hpp"

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

Route compile_route(const Topology& topo, const SwitchPath& path,
                    const std::vector<int>& split_points, int alt_index,
                    std::uint64_t itb_host_salt) {
  Route r;
  r.src_switch = path.src();
  r.dst_switch = path.dst();
  r.switches = path.sw;
  r.total_switch_hops = path.hops();

  const auto segments = split_path(path, split_points);
  r.legs.reserve(segments.size());
  for (std::size_t seg_i = 0; seg_i < segments.size(); ++seg_i) {
    const SwitchPath& seg = segments[seg_i];
    const bool is_final = seg_i + 1 == segments.size();
    RouteLeg leg;
    leg.switch_hops = seg.hops();
    leg.ports.reserve(seg.cable.size() + 1);
    for (std::size_t h = 0; h < seg.cable.size(); ++h) {
      // Output port of the switch we are leaving, for the cable we cross.
      const Cable& cb = topo.cable(seg.cable[h]);
      const SwitchId from = seg.sw[h];
      leg.ports.push_back(cb.a.sw == from ? cb.a.port : cb.b.port);
    }
    if (!is_final) {
      // Choose the in-transit host on the segment's last switch, spreading
      // the load over that switch's hosts deterministically.
      const SwitchId itb_sw = seg.dst();
      const auto hosts = topo.hosts_of_switch(itb_sw);
      if (hosts.empty()) {
        throw std::invalid_argument(
            "compile_route: split switch has no attached host");
      }
      const std::uint64_t mix =
          static_cast<std::uint64_t>(path.src()) * 1315423911ULL +
          static_cast<std::uint64_t>(path.dst()) * 2654435761ULL +
          static_cast<std::uint64_t>(alt_index) * 40503ULL +
          static_cast<std::uint64_t>(seg_i) * 97ULL + itb_host_salt;
      const HostId h = hosts[mix % hosts.size()];
      leg.end_host = h;
      leg.ports.push_back(topo.host(h).port);
    }
    r.legs.push_back(std::move(leg));
  }
  return r;
}

namespace {

/// One staged row: the alternatives of every destination for one source
/// switch.  Row construction is a pure function of (topo, inputs, s) —
/// the determinism contract parallel_for_n requires.
using Row = std::vector<std::vector<Route>>;

Row updown_row(const Topology& topo, const SimpleRoutes& sr, SwitchId s) {
  Row row(static_cast<std::size_t>(topo.num_switches()));
  for (SwitchId d = 0; d < topo.num_switches(); ++d) {
    const SwitchPath& p = sr.route(s, d);
    row[idx(d)].push_back(compile_route(topo, p, {}, 0, 0));
  }
  return row;
}

Row minimal_row(const Topology& topo, const StructuredMinimal& sm,
                SwitchId s) {
  Row row(static_cast<std::size_t>(topo.num_switches()));
  for (SwitchId d = 0; d < topo.num_switches(); ++d) {
    row[idx(d)].push_back(compile_route(topo, sm.path(s, d), {}, 0, 0));
  }
  return row;
}

/// All-pairs BFS distance matrix (row-major, row = source switch), staged
/// once per table build so the per-pair enumeration reuses rows instead of
/// re-running a BFS per pair — the difference between minutes and seconds
/// on dense low-diameter graphs.  Distances are canonical values, so any
/// jobs value yields the same matrix.
std::vector<int> all_pairs_distances(const Topology& topo, int jobs) {
  const int n = topo.num_switches();
  std::vector<std::vector<int>> rows = parallel_map<std::vector<int>>(
      n, jobs,
      [&](int s) { return topo.switch_distances_from(static_cast<SwitchId>(s)); });
  std::vector<int> flat(idx(n) * idx(n));
  for (int s = 0; s < n; ++s) {
    std::copy(rows[idx(s)].begin(), rows[idx(s)].end(),
              flat.begin() + idx(s) * idx(n));
  }
  return flat;
}

Row itb_row(const Topology& topo, const UpDown& ud,
            const ItbBuildOptions& opts, SwitchId s,
            const std::vector<int>& all_dist) {
  const auto n = idx(topo.num_switches());
  Row row(n);
  for (SwitchId d = 0; d < topo.num_switches(); ++d) {
    std::vector<Route>& alts = row[idx(d)];
    // Per-pair rotation of the DFS direction order: ITB-SP's pinned
    // "first minimal path" is then spread across directions network-wide
    // (see enumerate_minimal_paths).
    const auto rotation = static_cast<unsigned>(
        (static_cast<std::uint64_t>(s) * 0x9e3779b9u +
         static_cast<std::uint64_t>(d) * 0x85ebca6bu) >>
        16);
    // Row d of the matrix = distances from d = distances to d (undirected).
    const auto paths = enumerate_minimal_paths(
        topo, s, d, opts.max_alternatives, rotation,
        std::span<const int>(all_dist.data() + idx(d) * n, n));
    int alt_index = 0;
    for (const SwitchPath& p : paths) {
      const auto splits = itb_split_points(ud, p);
      // Skip candidates whose split switch has no host to eject into.
      bool feasible = true;
      for (const int sp : splits) {
        if (topo.hosts_of_switch(p.sw[idx(sp)]).empty()) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      alts.push_back(
          compile_route(topo, p, splits, alt_index, opts.itb_host_salt));
      ++alt_index;
    }
    if (alts.empty()) {
      // No usable minimal path (can only happen on host-less split
      // switches); fall back to a shortest legal route.
      const auto legal = ud.shortest_legal_paths(s, d, 1);
      if (legal.empty()) {
        throw std::runtime_error("build_itb_routes: pair unreachable");
      }
      alts.push_back(compile_route(topo, legal.front(), {}, 0, 0));
    }
    if (opts.prefer_fewest_itbs) {
      // ITB-SP uses alternative 0: prefer routes with fewer in-transit
      // stops; the sort is stable so the DFS order breaks ties.
      std::stable_sort(alts.begin(), alts.end(),
                       [](const Route& a, const Route& b) {
                         return a.num_itbs() < b.num_itbs();
                       });
    }
  }
  return row;
}

/// Stage rows (in parallel when jobs > 1) and compress them in (s,d)
/// order.  The merge is serial and ordered, so the flat arrays are a pure
/// function of the row values: bit-identical for every jobs value.
template <typename RowFn>
RouteSet build_flat(int n, RoutingAlgorithm algo, int jobs, RowFn&& row_fn) {
  const auto t0 = std::chrono::steady_clock::now();
  RouteStoreBuilder b(static_cast<std::size_t>(n) *
                      static_cast<std::size_t>(n));
  if (jobs <= 1) {
    for (SwitchId s = 0; s < n; ++s) {
      const Row row = row_fn(s);
      for (SwitchId d = 0; d < n; ++d) b.append_pair(row[idx(d)]);
    }
  } else {
    // Per-worker staging: each row is an index-ordered slot, built by
    // whichever worker picks it up.  NOTE: callers on pool worker threads
    // must pass jobs == 1 (pooled_for must not nest; see sim/pool.hpp).
    std::vector<Row> rows = parallel_map<Row>(
        n, jobs, [&](int s) { return row_fn(static_cast<SwitchId>(s)); });
    for (SwitchId s = 0; s < n; ++s) {
      for (SwitchId d = 0; d < n; ++d) b.append_pair(rows[idx(s)][idx(d)]);
      Row().swap(rows[idx(s)]);  // free staging as soon as it is merged
    }
  }
  RouteSet rs(n, algo, b.finish());
  rs.set_build_ms(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
  return rs;
}

}  // namespace

RouteSet build_updown_routes(const Topology& topo, const SimpleRoutes& sr,
                             int jobs) {
  return build_flat(topo.num_switches(), RoutingAlgorithm::kUpDown, jobs,
                    [&](SwitchId s) { return updown_row(topo, sr, s); });
}

RouteSet build_itb_routes(const Topology& topo, const UpDown& ud,
                          ItbBuildOptions opts, int jobs) {
  const std::vector<int> all_dist = all_pairs_distances(topo, jobs);
  return build_flat(
      topo.num_switches(), RoutingAlgorithm::kItb, jobs,
      [&](SwitchId s) { return itb_row(topo, ud, opts, s, all_dist); });
}

RouteSet build_minimal_routes(const Topology& topo, int jobs) {
  const StructuredMinimal sm(topo);
  return build_flat(topo.num_switches(), RoutingAlgorithm::kMinimal, jobs,
                    [&](SwitchId s) { return minimal_row(topo, sm, s); });
}

NestedRouteTable build_updown_routes_nested(const Topology& topo,
                                            const SimpleRoutes& sr) {
  NestedRouteTable rs(topo.num_switches(), RoutingAlgorithm::kUpDown);
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    Row row = updown_row(topo, sr, s);
    for (SwitchId d = 0; d < topo.num_switches(); ++d) {
      rs.mutable_alternatives(s, d) = std::move(row[idx(d)]);
    }
  }
  return rs;
}

NestedRouteTable build_itb_routes_nested(const Topology& topo,
                                         const UpDown& ud,
                                         ItbBuildOptions opts) {
  const std::vector<int> all_dist = all_pairs_distances(topo, 1);
  NestedRouteTable rs(topo.num_switches(), RoutingAlgorithm::kItb);
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    Row row = itb_row(topo, ud, opts, s, all_dist);
    for (SwitchId d = 0; d < topo.num_switches(); ++d) {
      rs.mutable_alternatives(s, d) = std::move(row[idx(d)]);
    }
  }
  return rs;
}

NestedRouteTable build_minimal_routes_nested(const Topology& topo) {
  const StructuredMinimal sm(topo);
  NestedRouteTable rs(topo.num_switches(), RoutingAlgorithm::kMinimal);
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    Row row = minimal_row(topo, sm, s);
    for (SwitchId d = 0; d < topo.num_switches(); ++d) {
      rs.mutable_alternatives(s, d) = std::move(row[idx(d)]);
    }
  }
  return rs;
}

}  // namespace itb
