#include "core/itb_split.hpp"

#include <cassert>

namespace itb {

std::vector<int> itb_split_points(const UpDown& ud, const SwitchPath& path) {
  std::vector<int> splits;
  bool gone_down = false;
  for (int i = 0; i < path.hops(); ++i) {
    const bool up = ud.is_up(path.cable[static_cast<std::size_t>(i)],
                             path.sw[static_cast<std::size_t>(i)]);
    if (up && gone_down) {
      splits.push_back(i);  // eject/re-inject at path.sw[i]
      gone_down = false;
    }
    if (!up) gone_down = true;
  }
  return splits;
}

std::vector<SwitchPath> split_path(const SwitchPath& path,
                                   const std::vector<int>& split_points) {
  std::vector<SwitchPath> segments;
  int start = 0;
  auto cut = [&](int end) {
    SwitchPath seg;
    seg.sw.assign(path.sw.begin() + start, path.sw.begin() + end + 1);
    seg.cable.assign(path.cable.begin() + start, path.cable.begin() + end);
    segments.push_back(std::move(seg));
    start = end;
  };
  for (const int p : split_points) {
    assert(p > start && p < path.hops());
    cut(p);
  }
  cut(path.hops());
  return segments;
}

}  // namespace itb
