// Sequence interning primitives shared by the route-store builders.
//
// The factorized store dedups three kinds of variable-length sequences
// (leg port walks, per-route walk-id lists, per-pair alternative lists).
// Interning them through std::unordered_map<std::string, id> — the PR 6
// approach — allocates a key per *lookup*, which dominated the flat build
// (BENCH_pr8: flat 40.2 ms vs nested 26.4 ms on the 512-host torus).
//
// HashInterner is the allocation-free replacement: an open-addressed
// hash -> id probe table that owns no keys at all.  The caller keeps the
// canonical sequences in its own pools, hands in a 64-bit hash, and
// supplies two callbacks: `eq(id)` compares the candidate against the
// already-interned sequence `id`, and `append()` materializes the new
// sequence and returns its id.  One interner therefore serves any pool
// layout, both for the row-local staging tables and the global merge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace itb {

/// FNV-1a over a byte span.  `seed` chains hashes (fold a trailing tag
/// into a sequence hash by re-invoking with the previous result).
[[nodiscard]] inline std::uint64_t hash_bytes(
    const void* data, std::size_t n,
    std::uint64_t seed = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

class HashInterner {
 public:
  HashInterner() = default;

  /// Drops all entries but keeps the slot storage (row staging reuses one
  /// interner across sources).
  void clear() {
    for (Slot& s : slots_) s.id = kEmpty;
    count_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Returns the id of the sequence with hash `hash` for which `eq(id)`
  /// holds; when absent, calls `append()` and records the returned id.
  template <typename Eq, typename Append>
  std::uint32_t intern(std::uint64_t hash, Eq&& eq, Append&& append) {
    if (slots_.empty()) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.id == kEmpty) {
        const std::uint32_t id = append();
        s.hash = hash;
        s.id = id;
        ++count_;
        if (count_ * 10 >= slots_.size() * 7) grow();
        return id;
      }
      if (s.hash == hash && eq(s.id)) return s.id;
      i = (i + 1) & mask;
    }
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t id = kEmpty;
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 64 : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.id == kEmpty) continue;
      std::size_t i = static_cast<std::size_t>(s.hash) & mask;
      while (slots_[i].id != kEmpty) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
};

}  // namespace itb
