file(REMOVE_RECURSE
  "libitb_core.a"
)
