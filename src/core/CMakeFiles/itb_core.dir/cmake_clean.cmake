file(REMOVE_RECURSE
  "CMakeFiles/itb_core.dir/itb_split.cpp.o"
  "CMakeFiles/itb_core.dir/itb_split.cpp.o.d"
  "CMakeFiles/itb_core.dir/path_policy.cpp.o"
  "CMakeFiles/itb_core.dir/path_policy.cpp.o.d"
  "CMakeFiles/itb_core.dir/route_builder.cpp.o"
  "CMakeFiles/itb_core.dir/route_builder.cpp.o.d"
  "CMakeFiles/itb_core.dir/route_io.cpp.o"
  "CMakeFiles/itb_core.dir/route_io.cpp.o.d"
  "CMakeFiles/itb_core.dir/route_set.cpp.o"
  "CMakeFiles/itb_core.dir/route_set.cpp.o.d"
  "CMakeFiles/itb_core.dir/route_stats.cpp.o"
  "CMakeFiles/itb_core.dir/route_stats.cpp.o.d"
  "CMakeFiles/itb_core.dir/route_store.cpp.o"
  "CMakeFiles/itb_core.dir/route_store.cpp.o.d"
  "libitb_core.a"
  "libitb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
