# Empty dependencies file for itb_core.
# This may be replaced when dependencies are built.
