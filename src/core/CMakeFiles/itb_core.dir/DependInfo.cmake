
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/itb_split.cpp" "src/core/CMakeFiles/itb_core.dir/itb_split.cpp.o" "gcc" "src/core/CMakeFiles/itb_core.dir/itb_split.cpp.o.d"
  "/root/repo/src/core/path_policy.cpp" "src/core/CMakeFiles/itb_core.dir/path_policy.cpp.o" "gcc" "src/core/CMakeFiles/itb_core.dir/path_policy.cpp.o.d"
  "/root/repo/src/core/route_builder.cpp" "src/core/CMakeFiles/itb_core.dir/route_builder.cpp.o" "gcc" "src/core/CMakeFiles/itb_core.dir/route_builder.cpp.o.d"
  "/root/repo/src/core/route_io.cpp" "src/core/CMakeFiles/itb_core.dir/route_io.cpp.o" "gcc" "src/core/CMakeFiles/itb_core.dir/route_io.cpp.o.d"
  "/root/repo/src/core/route_set.cpp" "src/core/CMakeFiles/itb_core.dir/route_set.cpp.o" "gcc" "src/core/CMakeFiles/itb_core.dir/route_set.cpp.o.d"
  "/root/repo/src/core/route_stats.cpp" "src/core/CMakeFiles/itb_core.dir/route_stats.cpp.o" "gcc" "src/core/CMakeFiles/itb_core.dir/route_stats.cpp.o.d"
  "/root/repo/src/core/route_store.cpp" "src/core/CMakeFiles/itb_core.dir/route_store.cpp.o" "gcc" "src/core/CMakeFiles/itb_core.dir/route_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/route/CMakeFiles/itb_route.dir/DependInfo.cmake"
  "/root/repo/src/topo/CMakeFiles/itb_topo.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/itb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
