#include "core/route_set.hpp"

namespace itb {

RouteSet::RouteSet(const NestedRouteTable& nested)
    : num_switches_(nested.num_switches()), algo_(nested.algorithm()) {
  const int n = nested.num_switches();
  RouteStoreBuilder b(static_cast<std::size_t>(n) *
                      static_cast<std::size_t>(n));
  for (SwitchId s = 0; s < n; ++s) {
    for (SwitchId d = 0; d < n; ++d) {
      b.append_pair(nested.alternatives(s, d));
    }
  }
  store_ = b.finish();
}

NestedRouteTable RouteSet::materialize_nested() const {
  NestedRouteTable out(num_switches_, algo_);
  for (SwitchId s = 0; s < num_switches_; ++s) {
    for (SwitchId d = 0; d < num_switches_; ++d) {
      std::vector<Route>& alts = out.mutable_alternatives(s, d);
      const AltsView views = alternatives(s, d);
      alts.reserve(views.size());
      for (const RouteView v : views) alts.push_back(materialize_route(v));
    }
  }
  return out;
}

std::uint64_t nested_table_bytes(const NestedRouteTable& t) {
  const int n = t.num_switches();
  // Count size()-based storage, not capacity: the fairest possible
  // baseline for the nested layout (real capacities only grow it).
  std::uint64_t bytes = static_cast<std::uint64_t>(n) *
                        static_cast<std::uint64_t>(n) *
                        sizeof(std::vector<Route>);
  for (SwitchId s = 0; s < n; ++s) {
    for (SwitchId d = 0; d < n; ++d) {
      for (const Route& r : t.alternatives(s, d)) {
        bytes += sizeof(Route);
        bytes += r.switches.size() * sizeof(SwitchId);
        for (const RouteLeg& leg : r.legs) {
          bytes += sizeof(RouteLeg);
          bytes += leg.ports.size() * sizeof(PortId);
        }
      }
    }
  }
  return bytes;
}

}  // namespace itb
