// The heart of the in-transit buffer mechanism: splitting a minimal path
// that violates the up*/down* rule into legal sub-paths.
//
// Walking the path, the first hop that would traverse an "up" cable after a
// "down" cable marks a violation; ejecting the packet into a host attached
// to the switch *before* that hop and re-injecting it there resets the
// up*/down* phase (a freshly injected packet may again go up), so the walk
// continues with a clean phase.  Greedy splitting at each violation yields
// the minimum number of in-transit stops for the given path, and every
// resulting segment is legal by construction.
#pragma once

#include <vector>

#include "route/switch_path.hpp"
#include "route/updown.hpp"

namespace itb {

/// Indices i (0 < i < hops()) such that an in-transit host must be placed
/// at `path.sw[i]`.  Empty when the path is already legal.
[[nodiscard]] std::vector<int> itb_split_points(const UpDown& ud,
                                                const SwitchPath& path);

/// Splits `path` at the given points; the returned segments concatenate
/// back to `path` (each split switch appears as the last switch of one
/// segment and the first of the next).
[[nodiscard]] std::vector<SwitchPath> split_path(
    const SwitchPath& path, const std::vector<int>& split_points);

}  // namespace itb
