#include "core/route_stats.hpp"

namespace itb {

RouteSetStats analyze_routes(const Topology& topo, const RouteSet& rs) {
  RouteSetStats st;
  const int n = topo.num_switches();
  const auto dist = topo.all_switch_distances();

  long pairs = 0;
  long alts_total = 0;
  double hops_sp = 0.0, hops_all = 0.0, itbs_sp = 0.0, itbs_all = 0.0;
  long minimal_sp = 0;

  for (SwitchId s = 0; s < n; ++s) {
    for (SwitchId d = 0; d < n; ++d) {
      if (s == d) continue;
      const AltsView alts = rs.alternatives(s, d);
      if (alts.empty()) continue;
      ++pairs;
      alts_total += static_cast<long>(alts.size());
      const int min_dist = dist[static_cast<std::size_t>(s) *
                                    static_cast<std::size_t>(n) +
                                static_cast<std::size_t>(d)];
      hops_sp += alts.front().total_switch_hops;
      itbs_sp += alts.front().num_itbs();
      if (alts.front().total_switch_hops == min_dist) ++minimal_sp;
      for (const RouteView r : alts) {
        hops_all += r.total_switch_hops;
        itbs_all += r.num_itbs();
      }
    }
  }
  if (pairs == 0) return st;
  const auto p = static_cast<double>(pairs);
  const auto a = static_cast<double>(alts_total);
  st.avg_hops_sp = hops_sp / p;
  st.avg_hops_all = hops_all / a;
  st.minimal_fraction_sp = static_cast<double>(minimal_sp) / p;
  st.avg_itbs_sp = itbs_sp / p;
  st.avg_itbs_all = itbs_all / a;
  st.avg_alternatives = a / p;
  return st;
}

}  // namespace itb
