#include "core/path_policy.hpp"

#include <cassert>

namespace itb {

const char* to_string(PathPolicy p) {
  switch (p) {
    case PathPolicy::kSingle: return "SP";
    case PathPolicy::kRoundRobin: return "RR";
    case PathPolicy::kRandom: return "RND";
    case PathPolicy::kAdaptive: return "ADAPT";
  }
  return "?";
}

PathSelector::PathSelector(PathPolicy policy, int num_switches,
                           std::uint64_t seed)
    : policy_(policy), rng_(seed) {
  reset(policy, num_switches, seed);
}

void PathSelector::reset(PathPolicy policy, int num_switches,
                         std::uint64_t seed) {
  policy_ = policy;
  rng_ = Rng(seed);
  const auto n = static_cast<std::size_t>(num_switches);
  if (policy_ == PathPolicy::kRoundRobin) {
    // Random starting offsets: different sources begin their rotation at
    // different alternatives, so the load-spreading effect of round-robin
    // appears immediately instead of only after many repeat messages to
    // the same destination.
    rr_next_.assign(n, 0);
    for (auto& v : rr_next_) v = static_cast<std::uint32_t>(rng_.next_u64());
  } else {
    rr_next_.clear();
  }
  if (policy_ == PathPolicy::kAdaptive) {
    ewma_.assign(n, {});
  } else {
    ewma_.clear();
  }
}

int PathSelector::pick(SwitchId dst_switch, int num_alternatives) {
  assert(num_alternatives > 0);
  if (num_alternatives == 1) return 0;
  switch (policy_) {
    case PathPolicy::kSingle:
      return 0;
    case PathPolicy::kRoundRobin: {
      auto& next = rr_next_[static_cast<std::size_t>(dst_switch)];
      const int alt = static_cast<int>(next % static_cast<std::uint32_t>(
                                                  num_alternatives));
      ++next;
      return alt;
    }
    case PathPolicy::kRandom:
      return static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(num_alternatives)));
    case PathPolicy::kAdaptive: {
      auto& scores = ewma_[static_cast<std::size_t>(dst_switch)];
      if (scores.size() < static_cast<std::size_t>(num_alternatives)) {
        scores.resize(static_cast<std::size_t>(num_alternatives), -1.0);
      }
      if (rng_.next_bool(kExploreEps)) {
        return static_cast<int>(
            rng_.next_below(static_cast<std::uint64_t>(num_alternatives)));
      }
      int best = 0;
      for (int i = 0; i < num_alternatives; ++i) {
        const double si = scores[static_cast<std::size_t>(i)];
        const double sb = scores[static_cast<std::size_t>(best)];
        if (si < 0) return i;  // unexplored alternative first
        if (si < sb) best = i;
      }
      return best;
    }
  }
  return 0;
}

void PathSelector::feedback(SwitchId dst_switch, int alternative,
                            TimePs latency) {
  if (policy_ != PathPolicy::kAdaptive) return;
  auto& scores = ewma_[static_cast<std::size_t>(dst_switch)];
  if (scores.size() <= static_cast<std::size_t>(alternative)) {
    scores.resize(static_cast<std::size_t>(alternative) + 1, -1.0);
  }
  double& s = scores[static_cast<std::size_t>(alternative)];
  const auto l = static_cast<double>(latency);
  s = (s < 0) ? l : (1.0 - kEwmaAlpha) * s + kEwmaAlpha * l;
}

}  // namespace itb
