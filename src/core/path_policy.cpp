#include "core/path_policy.hpp"

#include <cassert>

namespace itb {

const char* to_string(PathPolicy p) {
  switch (p) {
    case PathPolicy::kSingle: return "SP";
    case PathPolicy::kRoundRobin: return "RR";
    case PathPolicy::kRandom: return "RND";
    case PathPolicy::kAdaptive: return "ADAPT";
  }
  return "?";
}

PathSelector::PathSelector(PathPolicy policy, int num_switches,
                           std::uint64_t seed)
    : policy_(policy), rng_(seed) {
  reset(policy, num_switches, seed);
}

void PathSelector::reset(PathPolicy policy, int num_switches,
                         std::uint64_t seed) {
  policy_ = policy;
  rng_ = Rng(seed);
  num_switches_ = num_switches;
  const auto n = static_cast<std::size_t>(num_switches);
  if (policy_ == PathPolicy::kRoundRobin) {
    // Random starting offsets: different sources begin their rotation at
    // different alternatives, so the load-spreading effect of round-robin
    // appears immediately instead of only after many repeat messages to
    // the same destination.
    rr_next_.assign(n, 0);
    for (auto& v : rr_next_) v = static_cast<std::uint32_t>(rng_.next_u64());
  } else {
    rr_next_.clear();
  }
  // All destinations unexplored; the flat table regrows its stride on
  // demand (capacity is kept, so a reset-and-rerun reuses the storage).
  ewma_.clear();
  ewma_stride_ = 0;
}

void PathSelector::ensure_ewma_stride(int alts) {
  if (alts <= ewma_stride_) return;
  const auto n = static_cast<std::size_t>(num_switches_);
  const auto old_s = static_cast<std::size_t>(ewma_stride_);
  const auto new_s = static_cast<std::size_t>(alts);
  ewma_.resize(n * new_s, -1.0);
  // Re-layout in place from the last row down (regions cannot overlap
  // forward when widening).
  for (std::size_t dst = n; dst-- > 0;) {
    for (std::size_t a = new_s; a-- > 0;) {
      ewma_[dst * new_s + a] = a < old_s ? ewma_[dst * old_s + a] : -1.0;
    }
  }
  ewma_stride_ = alts;
}

int PathSelector::pick(SwitchId dst_switch, int num_alternatives) {
  assert(num_alternatives > 0);
  if (num_alternatives == 1) return 0;
  switch (policy_) {
    case PathPolicy::kSingle:
      return 0;
    case PathPolicy::kRoundRobin: {
      auto& next = rr_next_[static_cast<std::size_t>(dst_switch)];
      const int alt = static_cast<int>(next % static_cast<std::uint32_t>(
                                                  num_alternatives));
      ++next;
      return alt;
    }
    case PathPolicy::kRandom:
      return static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(num_alternatives)));
    case PathPolicy::kAdaptive: {
      ensure_ewma_stride(num_alternatives);
      const double* scores = ewma_row(dst_switch);
      if (rng_.next_bool(kExploreEps)) {
        return static_cast<int>(
            rng_.next_below(static_cast<std::uint64_t>(num_alternatives)));
      }
      int best = 0;
      for (int i = 0; i < num_alternatives; ++i) {
        const double si = scores[i];
        const double sb = scores[best];
        if (si < 0) return i;  // unexplored alternative first
        if (si < sb) best = i;
      }
      return best;
    }
  }
  return 0;
}

void PathSelector::feedback(SwitchId dst_switch, int alternative,
                            TimePs latency) {
  if (policy_ != PathPolicy::kAdaptive) return;
  ensure_ewma_stride(alternative + 1);
  double& s = ewma_row(dst_switch)[alternative];
  const auto l = static_cast<double>(latency);
  s = (s < 0) ? l : (1.0 - kEwmaAlpha) * s + kEwmaAlpha * l;
}

}  // namespace itb
