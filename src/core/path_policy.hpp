// Source-host path-selection policies.
//
// The paper evaluates two (single path and round-robin) and names adaptive
// selection at the source host as future work; kRandom and kAdaptive are
// provided as that extension and exercised by bench_adaptive_policy.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "topo/types.hpp"

namespace itb {

enum class PathPolicy : std::uint8_t {
  kSingle,      // ITB-SP / UP-DOWN: always alternative 0
  kRoundRobin,  // ITB-RR: cycle through the alternatives per pair
  kRandom,      // uniformly random alternative per packet (extension)
  kAdaptive,    // latency-EWMA driven with epsilon exploration (extension)
};

[[nodiscard]] const char* to_string(PathPolicy p);

/// Per-source-NIC selection state.  `pick` chooses the alternative index
/// for a packet headed to `dst_switch`; `feedback` (used only by kAdaptive)
/// reports the measured network latency of a delivered packet so the source
/// can steer toward currently faster alternatives — the "adaptivity at the
/// source host" the paper's future-work section sketches.
class PathSelector {
 public:
  /// An empty selector (no destinations); reset() before use.
  PathSelector() : PathSelector(PathPolicy::kSingle, 0, 0) {}
  PathSelector(PathPolicy policy, int num_switches, std::uint64_t seed);

  /// Return the selector to the exact state the corresponding constructor
  /// would produce (same RNG stream, same rotation offsets), reusing table
  /// capacity where possible.  Part of the workspace-reuse determinism
  /// contract (see sim/workspace.hpp).
  void reset(PathPolicy policy, int num_switches, std::uint64_t seed);

  [[nodiscard]] PathPolicy policy() const { return policy_; }

  int pick(SwitchId dst_switch, int num_alternatives);
  void feedback(SwitchId dst_switch, int alternative, TimePs latency);

 private:
  /// Grow the EWMA table's row stride to at least `alts` columns,
  /// re-laying existing rows out in place (new cells read "unexplored").
  void ensure_ewma_stride(int alts);

  [[nodiscard]] double* ewma_row(SwitchId dst_switch) {
    return ewma_.data() + static_cast<std::size_t>(dst_switch) *
                              static_cast<std::size_t>(ewma_stride_);
  }

  PathPolicy policy_;
  Rng rng_;
  int num_switches_ = 0;
  std::vector<std::uint32_t> rr_next_;  // per destination switch
  // One flat num_switches x ewma_stride_ array (row-major, -1.0 means
  // unexplored) instead of a vector per destination: the same
  // pointer-chasing fix as the route store, selector-local.  The stride
  // grows lazily to the widest alternative count seen, preserving values.
  std::vector<double> ewma_;
  int ewma_stride_ = 0;
  static constexpr double kEwmaAlpha = 0.1;
  static constexpr double kExploreEps = 0.1;
};

}  // namespace itb
