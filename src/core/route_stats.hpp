// Static route-set analysis backing the figures-in-prose of §4.7.1:
// percentage of minimal paths, average distance, and in-transit counts.
#pragma once

#include "core/route_set.hpp"
#include "topo/topology.hpp"

namespace itb {

struct RouteSetStats {
  /// Average switch-to-switch hop count of alternative 0, over ordered
  /// switch pairs with s != d (the paper's "average distance": 4.57 for
  /// up*/down* vs 4.06 minimal on the 8x8 torus).
  double avg_hops_sp = 0.0;

  /// Same, averaged over *all* alternatives of every pair.
  double avg_hops_all = 0.0;

  /// Fraction of pairs (s != d) whose alternative-0 route is minimal
  /// (paper: 80% for up*/down* on the torus, 94% with express channels,
  /// 100% on CPLANT; always 1.0 for ITB tables by construction).
  double minimal_fraction_sp = 0.0;

  /// Average in-transit hosts per route: alternative 0 only, and across
  /// all alternatives (paper: 0.43 for ITB-SP, 0.54 for ITB-RR usage).
  double avg_itbs_sp = 0.0;
  double avg_itbs_all = 0.0;

  /// Average number of stored alternatives per pair (<= the 10-route cap).
  double avg_alternatives = 0.0;
};

[[nodiscard]] RouteSetStats analyze_routes(const Topology& topo,
                                           const RouteSet& rs);

}  // namespace itb
