// Human-readable export of routing tables.
//
// Myrinet administrators debug routing with dump tools; this mirrors
// that: one line per route with the switch sequence, the port bytes as a
// NIC would emit them, and the in-transit hosts.  Used by the CLI's
// --dump-routes and by tests to golden-check table construction.
#pragma once

#include <iosfwd>
#include <string>

#include "core/route.hpp"
#include "core/route_set.hpp"
#include "topo/topology.hpp"

namespace itb {

/// "s3->s2 hops=2 itbs=1 legs=[p1,p4 @h9 | p2] via 3-4-2"
[[nodiscard]] std::string format_route(const Topology& topo,
                                       const RouteView& r);

/// Dump every pair's alternatives (optionally only pairs whose first
/// alternative uses at least `min_itbs` in-transit hosts, to keep torus
/// dumps readable).
void dump_routes(std::ostream& os, const Topology& topo, const RouteSet& rs,
                 int min_itbs = 0);

/// Summary line: route count, ITB usage histogram (0,1,2,3+).
[[nodiscard]] std::string summarize_route_set(const Topology& topo,
                                              const RouteSet& rs);

}  // namespace itb
