// Runtime source-route representation.
//
// A Route is what a NIC's routing table stores for one alternative of one
// (source switch, destination switch) pair.  It is organised as *legs*:
// up*/down*-legal sub-routes separated by in-transit hosts.  A plain
// up*/down* route is a Route with exactly one leg and no in-transit hosts.
//
// Port semantics follow Myrinet source routing: the header carries one
// output-port byte per switch the packet will traverse; each switch strips
// the leading byte.  For intermediate (ITB) legs the last port leads to the
// chosen in-transit host and is stored here; for the final leg the delivery
// port depends on the destination *host*, so the NIC appends it when the
// packet is built.
#pragma once

#include <vector>

#include "topo/types.hpp"

namespace itb {

/// Which route computation populated a routing table.
enum class RoutingAlgorithm {
  kUpDown,   // original Myrinet: one simple_routes-selected up*/down* path
  kItb,      // minimal paths split into legal legs via in-transit buffers
  kMinimal,  // structured minimal route per pair (route/topo_minimal.hpp):
             // dimension-order (HyperX), l-g-l (Dragonfly), direct (mesh)
};

struct RouteLeg {
  /// Output port at each switch this leg traverses, in order.  For an
  /// intermediate leg the final entry is the port to `end_host`; for the
  /// final leg the delivery port is appended by the sender.
  std::vector<PortId> ports;

  /// In-transit host terminating this leg; kNoHost on the final leg.
  HostId end_host = kNoHost;

  /// Switch-to-switch cables crossed by this leg.
  int switch_hops = 0;

  bool operator==(const RouteLeg&) const = default;
};

struct Route {
  SwitchId src_switch = kNoSwitch;
  SwitchId dst_switch = kNoSwitch;
  std::vector<RouteLeg> legs;

  /// Full switch sequence of the underlying path (across all legs), kept
  /// for analysis and assertions; not used on the data path.
  std::vector<SwitchId> switches;

  int total_switch_hops = 0;

  [[nodiscard]] int num_itbs() const {
    return static_cast<int>(legs.size()) - 1;
  }

  bool operator==(const Route&) const = default;
};

}  // namespace itb
