#include "core/route_io.hpp"

#include <array>
#include <ostream>
#include <sstream>

namespace itb {

std::string format_route(const Topology& topo, const RouteView& r) {
  (void)topo;
  std::ostringstream os;
  os << "s" << r.src_switch << "->s" << r.dst_switch
     << " hops=" << r.total_switch_hops << " itbs=" << r.num_itbs()
     << " legs=[";
  for (std::size_t li = 0; li < r.legs.size(); ++li) {
    if (li > 0) os << " | ";
    const LegView leg = r.legs[li];
    for (std::size_t pi = 0; pi < leg.ports.size(); ++pi) {
      if (pi > 0) os << ",";
      os << "p" << leg.ports[pi];
    }
    if (leg.ports.empty()) os << "-";
    if (leg.end_host != kNoHost) os << " @h" << leg.end_host;
  }
  os << "] via ";
  // The view no longer carries the switch walk; inflate it from the store.
  const Route full = materialize_route(r);
  for (std::size_t i = 0; i < full.switches.size(); ++i) {
    if (i > 0) os << "-";
    os << full.switches[i];
  }
  return os.str();
}

void dump_routes(std::ostream& os, const Topology& topo, const RouteSet& rs,
                 int min_itbs) {
  for (SwitchId s = 0; s < rs.num_switches(); ++s) {
    for (SwitchId d = 0; d < rs.num_switches(); ++d) {
      const AltsView alts = rs.alternatives(s, d);
      if (alts.empty() || alts.front().num_itbs() < min_itbs) continue;
      for (std::size_t a = 0; a < alts.size(); ++a) {
        os << "alt" << a << " " << format_route(topo, alts[a]) << "\n";
      }
    }
  }
}

std::string summarize_route_set(const Topology& topo, const RouteSet& rs) {
  (void)topo;
  long routes = 0, pairs = 0;
  std::array<long, 4> by_itbs{};  // 0, 1, 2, 3+
  for (SwitchId s = 0; s < rs.num_switches(); ++s) {
    for (SwitchId d = 0; d < rs.num_switches(); ++d) {
      if (s == d) continue;
      const AltsView alts = rs.alternatives(s, d);
      if (alts.empty()) continue;
      ++pairs;
      routes += static_cast<long>(alts.size());
      for (const RouteView r : alts) {
        ++by_itbs[static_cast<std::size_t>(std::min(r.num_itbs(), 3))];
      }
    }
  }
  std::ostringstream os;
  os << pairs << " pairs, " << routes << " routes; itbs 0/1/2/3+: "
     << by_itbs[0] << "/" << by_itbs[1] << "/" << by_itbs[2] << "/"
     << by_itbs[3];
  return os.str();
}

}  // namespace itb
