// Routing tables at switch-pair granularity.
//
// Myrinet NICs hold per-destination route lists; because every host on a
// switch shares the same switch-level paths, the table is stored per
// ordered (source switch, destination switch) pair and the delivery port is
// appended per packet.  The paper caps alternatives at 10 per pair to keep
// NIC look-up cheap; the same cap is the default here.
//
// Two representations:
//
//  - NestedRouteTable: mutable `vector<vector<Route>>` staging — what the
//    builders and hand-constructed test fixtures write into.
//  - RouteSet: the compressed contiguous store (core/route_store.hpp) —
//    what every runtime consumer reads.  Immutable after construction;
//    lookups return lightweight views.
//
// `RouteSet(nested)` compresses a staged table; `materialize_nested()`
// inflates the store back into owning Routes for tests, IO and the
// differential harness.  Compression consumes pairs in (s,d) order, so the
// flat arrays are a pure function of the staged route *values* — identical
// bytes no matter how many threads staged them.
#pragma once

#include <vector>

#include "core/route.hpp"
#include "core/route_store.hpp"
#include "topo/topology.hpp"

namespace itb {

class NestedRouteTable {
 public:
  NestedRouteTable(int num_switches, RoutingAlgorithm algo)
      : num_switches_(num_switches), algo_(algo),
        table_(static_cast<std::size_t>(num_switches) *
               static_cast<std::size_t>(num_switches)) {}

  [[nodiscard]] RoutingAlgorithm algorithm() const { return algo_; }
  [[nodiscard]] int num_switches() const { return num_switches_; }

  [[nodiscard]] const std::vector<Route>& alternatives(SwitchId s,
                                                       SwitchId d) const {
    return table_[key(s, d)];
  }

  std::vector<Route>& mutable_alternatives(SwitchId s, SwitchId d) {
    return table_[key(s, d)];
  }

 private:
  [[nodiscard]] std::size_t key(SwitchId s, SwitchId d) const {
    return static_cast<std::size_t>(s) *
               static_cast<std::size_t>(num_switches_) +
           static_cast<std::size_t>(d);
  }

  int num_switches_;
  RoutingAlgorithm algo_;
  std::vector<std::vector<Route>> table_;
};

class RouteSet {
 public:
  /// Compress a staged nested table into the flat store.
  explicit RouteSet(const NestedRouteTable& nested);

  /// Wrap an already-built store (used by the parallel builders, which
  /// compress per-worker staging rows without materializing the whole
  /// nested table at once).
  RouteSet(int num_switches, RoutingAlgorithm algo, RouteStore store)
      : num_switches_(num_switches), algo_(algo), store_(std::move(store)) {}

  [[nodiscard]] RoutingAlgorithm algorithm() const { return algo_; }
  [[nodiscard]] int num_switches() const { return num_switches_; }

  [[nodiscard]] AltsView alternatives(SwitchId s, SwitchId d) const {
    return store_.pair(key(s, d));
  }

  [[nodiscard]] RouteView view(SwitchId s, SwitchId d, int alt) const {
    return alternatives(s, d)[static_cast<std::size_t>(alt)];
  }

  /// Owning copy of one alternative (tests / IO).
  [[nodiscard]] Route materialize(SwitchId s, SwitchId d, int alt) const {
    return materialize_route(view(s, d, alt));
  }

  /// Inflate the whole store back into a nested table.
  [[nodiscard]] NestedRouteTable materialize_nested() const;

  [[nodiscard]] const RouteStore& store() const { return store_; }
  [[nodiscard]] std::uint64_t table_bytes() const {
    return store_.table_bytes();
  }
  [[nodiscard]] std::uint64_t segments_shared() const {
    return store_.segments_shared();
  }
  [[nodiscard]] double build_ms() const { return store_.build_ms(); }
  void set_build_ms(double ms) { store_.set_build_ms(ms); }

 private:
  [[nodiscard]] std::size_t key(SwitchId s, SwitchId d) const {
    return static_cast<std::size_t>(s) *
               static_cast<std::size_t>(num_switches_) +
           static_cast<std::size_t>(d);
  }

  int num_switches_;
  RoutingAlgorithm algo_;
  RouteStore store_;
};

/// Heap footprint of a nested table (object headers + vector storage),
/// the baseline the compressed store's table_bytes() is compared against
/// in benches and tests.
[[nodiscard]] std::uint64_t nested_table_bytes(const NestedRouteTable& t);

}  // namespace itb
