// Routing tables at switch-pair granularity.
//
// Myrinet NICs hold per-destination route lists; because every host on a
// switch shares the same switch-level paths, the table is stored per
// ordered (source switch, destination switch) pair and the delivery port is
// appended per packet.  The paper caps alternatives at 10 per pair to keep
// NIC look-up cheap; the same cap is the default here.
#pragma once

#include <vector>

#include "core/route.hpp"
#include "topo/topology.hpp"

namespace itb {

class RouteSet {
 public:
  RouteSet(int num_switches, RoutingAlgorithm algo)
      : num_switches_(num_switches), algo_(algo),
        table_(static_cast<std::size_t>(num_switches) *
               static_cast<std::size_t>(num_switches)) {}

  [[nodiscard]] RoutingAlgorithm algorithm() const { return algo_; }
  [[nodiscard]] int num_switches() const { return num_switches_; }

  [[nodiscard]] const std::vector<Route>& alternatives(SwitchId s,
                                                       SwitchId d) const {
    return table_[key(s, d)];
  }

  std::vector<Route>& mutable_alternatives(SwitchId s, SwitchId d) {
    return table_[key(s, d)];
  }

 private:
  [[nodiscard]] std::size_t key(SwitchId s, SwitchId d) const {
    return static_cast<std::size_t>(s) *
               static_cast<std::size_t>(num_switches_) +
           static_cast<std::size_t>(d);
  }

  int num_switches_;
  RoutingAlgorithm algo_;
  std::vector<std::vector<Route>> table_;
};

}  // namespace itb
