// Compressed contiguous route store.
//
// The flat, offset-indexed representation behind RouteSet: instead of
// `vector<vector<Route>>` with three more heap vectors per Route (legs,
// per-leg ports, switches) — five levels of pointer-chasing per packet
// injection — the whole table lives in five contiguous arrays:
//
//   port_pool_    [PortId ...]            shared, dedup'd port sequences
//   switch_pool_  [SwitchId ...]          shared, dedup'd switch walks
//   legs_         [FlatLeg ...]           POD: port offset/count, end_host
//   routes_       [FlatRoute ...]         POD: leg range, switch range
//   pairs_        [PairSlot ...]          (src,dst) -> {first_route, count}
//
// Identical port sequences (ubiquitous in regular topologies, where many
// pairs reuse the same dimension-ordered sub-walks) are stored once:
// the builder interns each leg's port sequence and each route's switch
// walk by value, so a lookup is two indexed loads (pair slot -> route
// record -> leg record + pool offset) over cache-friendly memory.
//
// The store is immutable after build.  Lookup hands out non-owning views
// (RouteView / LegView over std::span) that mirror the member names of
// the materialized Route/RouteLeg structs, so hot-path code reads
// `route.legs[i].ports[h]` unchanged.  Views are trivially copyable and
// remain valid as long as the owning store is alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/route.hpp"
#include "topo/types.hpp"

namespace itb {

/// One leg of a flat route: `port_count` ports starting at
/// `port_off` in the port pool.  Mirrors RouteLeg.
struct FlatLeg {
  std::uint32_t port_off = 0;
  std::uint16_t port_count = 0;
  std::uint16_t switch_hops = 0;
  HostId end_host = kNoHost;
};

/// One route: `leg_count` consecutive FlatLeg records starting at
/// `first_leg`, plus the dedup'd switch walk.  Mirrors Route.
struct FlatRoute {
  SwitchId src_switch = kNoSwitch;
  SwitchId dst_switch = kNoSwitch;
  std::uint32_t first_leg = 0;
  std::uint32_t switch_off = 0;
  std::uint16_t leg_count = 0;
  std::uint16_t switch_count = 0;
  std::int32_t total_switch_hops = 0;
};

/// Pair index entry: the alternatives of one ordered (src,dst) switch
/// pair are `count` consecutive FlatRoute records from `first_route`.
struct PairSlot {
  std::uint32_t first_route = 0;
  std::uint32_t count = 0;
};

/// Non-owning view of one leg; mirrors RouteLeg's members.
struct LegView {
  std::span<const PortId> ports;
  HostId end_host = kNoHost;
  int switch_hops = 0;
};

/// Random-access range of LegView over a route's consecutive FlatLeg
/// records.  Indexing constructs the ~16-byte view on the fly.
class LegRange {
 public:
  LegRange() = default;
  LegRange(const FlatLeg* legs, const PortId* port_pool, std::uint32_t count)
      : legs_(legs), port_pool_(port_pool), count_(count) {}

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] LegView operator[](std::size_t i) const {
    const FlatLeg& l = legs_[i];
    return LegView{{port_pool_ + l.port_off, l.port_count},
                   l.end_host,
                   l.switch_hops};
  }
  [[nodiscard]] LegView front() const { return (*this)[0]; }
  [[nodiscard]] LegView back() const { return (*this)[count_ - 1]; }

  class iterator {
   public:
    iterator(const LegRange* r, std::size_t i) : r_(r), i_(i) {}
    LegView operator*() const { return (*r_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }

   private:
    const LegRange* r_;
    std::size_t i_;
  };
  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, count_}; }

 private:
  const FlatLeg* legs_ = nullptr;
  const PortId* port_pool_ = nullptr;
  std::uint32_t count_ = 0;
};

/// Non-owning view of one route; member names mirror Route so call sites
/// (`r.total_switch_hops`, `r.legs[i].ports[h]`, `r.switches`) read the
/// same against either representation.  Trivially copyable; Packet stores
/// one by value.
struct RouteView {
  SwitchId src_switch = kNoSwitch;
  SwitchId dst_switch = kNoSwitch;
  LegRange legs;
  std::span<const SwitchId> switches;
  int total_switch_hops = 0;

  [[nodiscard]] int num_itbs() const {
    return static_cast<int>(legs.size()) - 1;
  }
};

class RouteStore;

/// The alternatives of one (src,dst) pair: a random-access range yielding
/// RouteView by value.
class AltsView {
 public:
  AltsView() = default;
  AltsView(const RouteStore* store, std::uint32_t first, std::uint32_t count)
      : store_(store), first_(first), count_(count) {}

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] RouteView operator[](std::size_t i) const;
  [[nodiscard]] RouteView front() const { return (*this)[0]; }
  [[nodiscard]] RouteView back() const { return (*this)[count_ - 1]; }

  class iterator {
   public:
    iterator(const AltsView* v, std::size_t i) : v_(v), i_(i) {}
    RouteView operator*() const { return (*v_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }

   private:
    const AltsView* v_;
    std::size_t i_;
  };
  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, count_}; }

 private:
  const RouteStore* store_ = nullptr;
  std::uint32_t first_ = 0;
  std::uint32_t count_ = 0;
};

/// The five arrays plus build statistics.  Built once by RouteStoreBuilder
/// (pairs appended strictly in index order, which fixes the pool layout
/// byte-for-byte regardless of how the staging Routes were produced);
/// immutable afterwards.
class RouteStore {
 public:
  [[nodiscard]] AltsView pair(std::size_t pair_index) const {
    const PairSlot& p = pairs_[pair_index];
    return {this, p.first_route, p.count};
  }
  [[nodiscard]] RouteView route(std::size_t route_index) const {
    const FlatRoute& r = routes_[route_index];
    return RouteView{
        r.src_switch,
        r.dst_switch,
        LegRange{legs_.data() + r.first_leg, port_pool_.data(), r.leg_count},
        {switch_pool_.data() + r.switch_off, r.switch_count},
        r.total_switch_hops};
  }

  [[nodiscard]] std::size_t num_pairs() const { return pairs_.size(); }
  [[nodiscard]] std::size_t num_routes() const { return routes_.size(); }

  /// Bytes held by the five arrays (the whole table; excludes the
  /// fixed-size object header).
  [[nodiscard]] std::uint64_t table_bytes() const { return table_bytes_; }
  /// Leg port sequences that were dedup'd onto an already-interned
  /// segment instead of growing the pool.
  [[nodiscard]] std::uint64_t segments_shared() const {
    return segments_shared_;
  }
  /// Wall-clock build time, stamped by the route builders.
  [[nodiscard]] double build_ms() const { return build_ms_; }
  void set_build_ms(double ms) { build_ms_ = ms; }

  // Raw arrays, exposed for byte-identity tests and debugging.
  [[nodiscard]] std::span<const PortId> port_pool() const {
    return port_pool_;
  }
  [[nodiscard]] std::span<const SwitchId> switch_pool() const {
    return switch_pool_;
  }
  [[nodiscard]] std::span<const FlatLeg> flat_legs() const { return legs_; }
  [[nodiscard]] std::span<const FlatRoute> flat_routes() const {
    return routes_;
  }
  [[nodiscard]] std::span<const PairSlot> pair_index() const {
    return pairs_;
  }

 private:
  friend class RouteStoreBuilder;

  std::vector<PortId> port_pool_;
  std::vector<SwitchId> switch_pool_;
  std::vector<FlatLeg> legs_;
  std::vector<FlatRoute> routes_;
  std::vector<PairSlot> pairs_;
  std::uint64_t table_bytes_ = 0;
  std::uint64_t segments_shared_ = 0;
  double build_ms_ = 0.0;
};

inline RouteView AltsView::operator[](std::size_t i) const {
  return store_->route(first_ + i);
}

/// Incremental store builder.  append_pair must be called exactly once per
/// (src,dst) pair in ascending pair-index order; the result is then a pure
/// function of the appended Route values — bit-identical no matter how
/// many threads staged them.
class RouteStoreBuilder {
 public:
  explicit RouteStoreBuilder(std::size_t num_pairs);

  void append_pair(const std::vector<Route>& alts);
  [[nodiscard]] RouteStore finish();

 private:
  [[nodiscard]] std::uint32_t intern_ports(const std::vector<PortId>& ports);
  [[nodiscard]] std::uint32_t intern_switches(
      const std::vector<SwitchId>& sws);

  RouteStore store_;
  // Keys are byte copies of the sequences (not views into the growing
  // pools, which reallocate during build).
  std::unordered_map<std::string, std::uint32_t> port_segments_;
  std::unordered_map<std::string, std::uint32_t> switch_segments_;
};

/// Materialize an owning Route from a view (adapter for tests / IO / the
/// differential harness).
[[nodiscard]] Route materialize_route(const RouteView& v);

}  // namespace itb
