// Switch-pair factorized route store.
//
// The store behind RouteSet.  Two tiers share one lookup interface:
//
// **Factorized tier** (what the route builders produce).  The stored unit
// is the ordered switch pair; everything below it is interned so that no
// absolute switch or host id survives into route identity.  Arrays:
//
//   port_pool_    [PortId ...]     dedup'd leg port walks (switch output
//                                  ports only — no ITB eject ports)
//   walks_        [WalkRec ...]    walk id -> pool span
//   route_walks_  [u32 ...]        per distinct route: its walk ids
//   core_routes_  [RouteRec ...]   route id -> walk span + alt tag
//   alt_routes_   [u32 ...]        per distinct alternative list: route ids
//   altlists_     [AltListRec ...] altlist id -> alt_routes_ span
//   pair_alt_     [u32 ...]        (src,dst) switch pair -> altlist id
//
// On regular topologies the same port walks, routes and alternative lists
// recur across thousands of pairs (a Dragonfly's l-g-l pattern has a few
// thousand distinct port walks network-wide), so the core shrinks from
// O(route instances) to O(distinct shapes) + O(S^2) pair words — 22x
// smaller than the PR 6 instance-flat layout at the 2064-switch scale.
//
// Lookup *composes* a self-contained RouteView on the fly: end switches
// are rederived by walking a (switch, port) -> switch table, the ITB
// in-transit host is recomputed as the same deterministic function of
// (src, dst, alt tag, leg, itb_host_salt) the builder's compile_route
// uses, and the eject port is synthesized from the host attachment table.
// Composition is a handful of indexed loads per leg (single-leg routes —
// every UP/DOWN and MIN route, and most ITB alternatives — walk nothing),
// and simulated results are bit-identical to the instance-flat store.
//
// **Explicit tier** (RouteStoreBuilder, used by `RouteSet(nested)`).
// Arbitrary staged tables — hand-built test fixtures, tables whose end
// hosts don't follow the canonical composition rule, tables with no
// backing topology — keep the PR 6 instance-flat layout: FlatLeg /
// FlatRoute records with explicit end hosts and stored switch walks.
//
// Views are trivially copyable and self-contained (a Packet stores one by
// value); the inline leg records keep the per-hop data path identical to
// the flat store: `route.legs[i].ports[h]` is two indexed loads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "core/intern.hpp"
#include "core/route.hpp"
#include "topo/topology.hpp"
#include "topo/types.hpp"

namespace itb {

/// Upper bound on legs per route a view can carry inline.  A route with k
/// legs uses k-1 in-transit buffers; the paper's tables peak at 3-4 legs
/// and the 16x16 torus at the bench frontier stays under 10, so 12 leaves
/// headroom.  Builders throw std::length_error beyond it.
inline constexpr int kMaxRouteLegs = 12;

// ---------------------------------------------------------------------------
// Views

/// Port sequence of one leg: `n_pool` ports resident in the shared pool
/// plus an optional synthesized trailing port (the ITB eject port of a
/// factorized intermediate leg).  Indexing mirrors a flat array.
class PortSeq {
 public:
  PortSeq() = default;
  PortSeq(const PortId* data, std::uint16_t n_pool, PortId tail)
      : data_(data), n_pool_(n_pool), tail_(tail) {}

  [[nodiscard]] std::size_t size() const {
    return n_pool_ + (tail_ != kNoPort ? 1u : 0u);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] PortId operator[](std::size_t i) const {
    return i < n_pool_ ? data_[i] : tail_;
  }
  [[nodiscard]] PortId front() const { return (*this)[0]; }
  [[nodiscard]] PortId back() const { return (*this)[size() - 1]; }

  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = PortId;
    using difference_type = std::ptrdiff_t;
    using pointer = const PortId*;
    using reference = PortId;

    iterator(const PortSeq* s, std::size_t i) : s_(s), i_(i) {}
    PortId operator*() const { return (*s_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }

   private:
    const PortSeq* s_;
    std::size_t i_;
  };
  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, size()}; }

 private:
  const PortId* data_ = nullptr;
  std::uint16_t n_pool_ = 0;
  PortId tail_ = kNoPort;
};

/// Non-owning view of one leg; mirrors RouteLeg's members.
struct LegView {
  PortSeq ports;
  HostId end_host = kNoHost;
  int switch_hops = 0;
};

/// One composed leg record held inline in a RouteView.
struct LegRec {
  std::uint32_t port_off = 0;    // into the owning store's port pool
  std::uint16_t port_count = 0;  // ports resident in the pool
  std::uint16_t switch_hops = 0;
  PortId tail = kNoPort;         // synthesized ITB eject port
  HostId end_host = kNoHost;
};

/// Random-access range over a route's composed legs.  The records live
/// inline (composition fills them once per lookup); only the port pool is
/// referenced through the owning store, so the range stays valid as long
/// as the store is alive.
class LegRange {
 public:
  LegRange() = default;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] LegView operator[](std::size_t i) const {
    const LegRec& l = recs_[i];
    return LegView{PortSeq{pool_ + l.port_off, l.port_count, l.tail},
                   l.end_host, l.switch_hops};
  }
  [[nodiscard]] LegView front() const { return (*this)[0]; }
  [[nodiscard]] LegView back() const { return (*this)[count_ - 1]; }

  class iterator {
   public:
    iterator(const LegRange* r, std::size_t i) : r_(r), i_(i) {}
    LegView operator*() const { return (*r_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }

   private:
    const LegRange* r_;
    std::size_t i_;
  };
  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, count_}; }

 private:
  friend class RouteStore;
  const PortId* pool_ = nullptr;
  std::uint32_t count_ = 0;
  LegRec recs_[kMaxRouteLegs];
};

class RouteStore;

/// Non-owning composed view of one route; member names mirror Route so
/// call sites (`r.total_switch_hops`, `r.legs[i].ports[h]`) read the same
/// against either representation.  Trivially copyable; Packet stores one
/// by value.  The full switch walk is no longer carried — consumers that
/// need it materialize (materialize_route) or track the current switch
/// while walking the port bytes through the topology.
struct RouteView {
  SwitchId src_switch = kNoSwitch;
  SwitchId dst_switch = kNoSwitch;
  int total_switch_hops = 0;
  LegRange legs;

  // Origin locator (store + pair/slot), used by materialize_route.
  const RouteStore* store = nullptr;
  std::uint32_t pair_index = 0;
  std::uint32_t slot = 0;

  [[nodiscard]] int num_itbs() const {
    return static_cast<int>(legs.size()) - 1;
  }
};

/// The alternatives of one (src,dst) pair: a random-access range composing
/// RouteView by value.
class AltsView {
 public:
  AltsView() = default;
  AltsView(const RouteStore* store, std::uint32_t pair, std::uint32_t first,
           std::uint32_t count)
      : store_(store), pair_(pair), first_(first), count_(count) {}

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] RouteView operator[](std::size_t i) const;
  [[nodiscard]] RouteView front() const { return (*this)[0]; }
  [[nodiscard]] RouteView back() const { return (*this)[count_ - 1]; }

  class iterator {
   public:
    iterator(const AltsView* v, std::size_t i) : v_(v), i_(i) {}
    RouteView operator*() const { return (*v_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }

   private:
    const AltsView* v_;
    std::size_t i_;
  };
  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, count_}; }

 private:
  const RouteStore* store_ = nullptr;
  std::uint32_t pair_ = 0;
  std::uint32_t first_ = 0;
  std::uint32_t count_ = 0;
};

// ---------------------------------------------------------------------------
// Store records

enum class StoreTier : std::uint8_t {
  kFactorized,  // switch-pair core + on-the-fly composition
  kExplicit,    // instance-flat records with stored end hosts / walks
};

/// Factorized: one interned leg port walk (switch output ports only).
struct WalkRec {
  std::uint32_t port_off = 0;
  std::uint32_t port_count = 0;
};

/// Factorized: one distinct route shape.  `alt_tag` is the compile-time
/// alternative index baked into the ITB host-choice mix; it is part of
/// route identity so two pairs sharing a walk but compiled at different
/// alternative positions stay distinct.
struct RouteRec {
  std::uint32_t first_walk = 0;  // into route_walks_
  std::uint16_t leg_count = 0;
  std::uint16_t alt_tag = 0;
};

/// Factorized: one distinct alternative list.
struct AltListRec {
  std::uint32_t first = 0;  // into alt_routes_
  std::uint32_t count = 0;
};

/// Explicit tier: one leg instance.  Ports (including the ITB eject port)
/// live in the shared port pool; mirrors RouteLeg.
struct FlatLeg {
  std::uint32_t port_off = 0;
  std::uint16_t port_count = 0;
  std::uint16_t switch_hops = 0;
  HostId end_host = kNoHost;
};

/// Explicit tier: one route instance with its stored switch walk.
struct FlatRoute {
  SwitchId src_switch = kNoSwitch;
  SwitchId dst_switch = kNoSwitch;
  std::uint32_t first_leg = 0;
  std::uint32_t switch_off = 0;
  std::uint16_t leg_count = 0;
  std::uint16_t switch_count = 0;
  std::int32_t total_switch_hops = 0;
};

/// Explicit tier: pair index entry.
struct PairSlot {
  std::uint32_t first_route = 0;
  std::uint32_t count = 0;
};

// ---------------------------------------------------------------------------
// Store

class RouteStore {
 public:
  [[nodiscard]] StoreTier tier() const { return tier_; }

  [[nodiscard]] AltsView pair(std::size_t pair_index) const {
    if (tier_ == StoreTier::kFactorized) {
      const AltListRec& a = altlists_[pair_alt_[pair_index]];
      return {this, static_cast<std::uint32_t>(pair_index), a.first, a.count};
    }
    const PairSlot& p = pairs_[pair_index];
    return {this, static_cast<std::uint32_t>(pair_index), p.first_route,
            p.count};
  }

  /// Compose the view for alternative slot `slot` of `pair_index`.
  /// Factorized: `slot` indexes alt_routes_; explicit: routes_.
  [[nodiscard]] RouteView compose(std::uint32_t pair_index,
                                  std::uint32_t slot) const;

  /// Owning Route for the same locator (exact round-trip on the explicit
  /// tier; switch walks rederived on the factorized tier).
  [[nodiscard]] Route materialize(std::uint32_t pair_index,
                                  std::uint32_t slot) const;

  [[nodiscard]] std::size_t num_pairs() const {
    return tier_ == StoreTier::kFactorized ? pair_alt_.size() : pairs_.size();
  }
  /// Route *instances* (sum of per-pair alternative counts).
  [[nodiscard]] std::size_t num_routes() const { return num_route_instances_; }
  [[nodiscard]] int num_switches() const { return num_switches_; }

  /// Bytes held by all arrays — the route core plus (factorized) the
  /// composition tables; excludes the fixed-size object header.
  [[nodiscard]] std::uint64_t table_bytes() const { return table_bytes_; }
  /// Bytes of the route core alone (pair index + interned pools, without
  /// the topology-derived composition tables).
  [[nodiscard]] std::uint64_t core_bytes() const { return core_bytes_; }
  /// Leg instances that dedup'd onto an already-interned port walk.
  [[nodiscard]] std::uint64_t segments_shared() const {
    return segments_shared_;
  }
  /// Wall-clock build time, stamped by the route builders.
  [[nodiscard]] double build_ms() const { return build_ms_; }
  void set_build_ms(double ms) { build_ms_ = ms; }

  // Distinct-shape counts (factorized tier; zero on the explicit tier).
  [[nodiscard]] std::size_t distinct_walks() const { return walks_.size(); }
  [[nodiscard]] std::size_t distinct_routes() const {
    return core_routes_.size();
  }
  [[nodiscard]] std::size_t distinct_altlists() const {
    return altlists_.size();
  }

  // Raw arrays, exposed for byte-identity tests and debugging.
  [[nodiscard]] std::span<const PortId> port_pool() const { return port_pool_; }
  [[nodiscard]] std::span<const WalkRec> walks() const { return walks_; }
  [[nodiscard]] std::span<const std::uint32_t> route_walks() const {
    return route_walks_;
  }
  [[nodiscard]] std::span<const RouteRec> core_routes() const {
    return core_routes_;
  }
  [[nodiscard]] std::span<const std::uint32_t> alt_routes() const {
    return alt_routes_;
  }
  [[nodiscard]] std::span<const AltListRec> altlists() const {
    return altlists_;
  }
  [[nodiscard]] std::span<const std::uint32_t> pair_altlist() const {
    return pair_alt_;
  }
  [[nodiscard]] std::span<const SwitchId> switch_pool() const {
    return switch_pool_;
  }
  [[nodiscard]] std::span<const FlatLeg> flat_legs() const { return legs_; }
  [[nodiscard]] std::span<const FlatRoute> flat_routes() const {
    return routes_;
  }
  [[nodiscard]] std::span<const PairSlot> pair_index() const { return pairs_; }

 private:
  friend class RouteStoreBuilder;
  friend class FactorizedStoreBuilder;

  void compose_factorized(std::uint32_t pair_index, std::uint32_t slot,
                          RouteView& v) const;
  void compose_explicit(std::uint32_t pair_index, std::uint32_t slot,
                        RouteView& v) const;

  StoreTier tier_ = StoreTier::kExplicit;
  int num_switches_ = 0;

  // Shared pools.
  std::vector<PortId> port_pool_;

  // Factorized tier.
  std::vector<WalkRec> walks_;
  std::vector<std::uint32_t> route_walks_;
  std::vector<RouteRec> core_routes_;
  std::vector<std::uint32_t> alt_routes_;
  std::vector<AltListRec> altlists_;
  std::vector<std::uint32_t> pair_alt_;
  // Composition tables (derived from the topology at build time).
  int ports_per_switch_ = 0;
  std::uint64_t itb_host_salt_ = 0;
  std::vector<SwitchId> next_switch_;   // [switch * P + port] -> peer switch
  std::vector<std::uint32_t> sw_host_off_;  // CSR offsets into sw_hosts_
  std::vector<HostId> sw_hosts_;            // hosts per switch, port order
  std::vector<PortId> host_port_;           // attachment port per host

  // Explicit tier.
  std::vector<SwitchId> switch_pool_;
  std::vector<FlatLeg> legs_;
  std::vector<FlatRoute> routes_;
  std::vector<PairSlot> pairs_;

  std::uint64_t num_route_instances_ = 0;
  std::uint64_t table_bytes_ = 0;
  std::uint64_t core_bytes_ = 0;
  std::uint64_t segments_shared_ = 0;
  double build_ms_ = 0.0;
};

inline RouteView AltsView::operator[](std::size_t i) const {
  return store_->compose(pair_, first_ + static_cast<std::uint32_t>(i));
}

// ---------------------------------------------------------------------------
// Builders

/// Explicit-tier builder.  append_pair must be called exactly once per
/// (src,dst) pair in ascending pair-index order; the result is then a pure
/// function of the appended Route values.
class RouteStoreBuilder {
 public:
  explicit RouteStoreBuilder(std::size_t num_pairs);

  void append_pair(const std::vector<Route>& alts);
  [[nodiscard]] RouteStore finish();

 private:
  RouteStore store_;
  HashInterner port_tab_;
  HashInterner switch_tab_;
  std::vector<WalkRec> port_refs_;    // interned spans into port_pool_
  std::vector<WalkRec> switch_refs_;  // interned spans into switch_pool_
};

/// Staged factorized rows for a contiguous block of source switches.  All
/// ids are block-local, assigned in first-appearance order over the
/// block's (s,d) pair stream — which makes the merged global ids a pure
/// function of the pair stream, independent of how sources were blocked
/// across workers.
struct FactorizedBlock {
  std::vector<PortId> walk_bytes;
  std::vector<WalkRec> walks;
  std::vector<std::uint32_t> route_walks;
  std::vector<RouteRec> routes;
  std::vector<std::uint32_t> alt_routes;
  std::vector<AltListRec> altlists;
  std::vector<std::uint32_t> pair_alt;
  std::uint64_t route_instances = 0;
  std::uint64_t leg_instances = 0;

  void clear();
};

/// Block-local stager with interning; reusable across blocks (serial
/// builds keep one and clear between sources).
class FactorizedBlockStager {
 public:
  void begin_block(FactorizedBlock* out);

  /// Interns one leg port walk (switch output ports only, no eject port).
  std::uint32_t stage_walk(const PortId* ports, std::size_t n);
  /// Interns one route shape over previously staged walk ids.
  std::uint32_t stage_route(const std::uint32_t* walk_ids, std::size_t n_legs,
                            std::uint16_t alt_tag);
  /// Appends the next pair's alternative list (pairs strictly in (s,d)
  /// order within the block), interning the list itself.
  void commit_pair(const std::uint32_t* route_ids, std::size_t n);

  /// Leg count of a staged route (prefer_fewest_itbs ordering).
  [[nodiscard]] std::uint16_t route_leg_count(std::uint32_t rid) const {
    return out_->routes[rid].leg_count;
  }

 private:
  FactorizedBlock* out_ = nullptr;
  HashInterner walk_tab_;
  HashInterner route_tab_;
  HashInterner alt_tab_;
};

/// Serial merge of staged blocks into the global factorized store.
/// Blocks must be appended in ascending source order, covering every
/// source switch exactly once.
class FactorizedStoreBuilder {
 public:
  FactorizedStoreBuilder(const Topology& topo, std::uint64_t itb_host_salt);

  /// Declares that pairs will be committed destination-major — stream
  /// position d * S + s instead of s * S + d.  finish() transposes the
  /// pair index back to the (s, d)-major layout every reader assumes.
  /// Destination-major staging lets the ITB build reuse one per-destination
  /// pruned DAG across all sources (see route_builder.cpp).
  void set_pair_transposed(bool v) { pair_transposed_ = v; }

  void append_block(const FactorizedBlock& block);
  [[nodiscard]] RouteStore finish();

 private:
  const Topology* topo_;
  RouteStore store_;
  HashInterner walk_tab_;
  HashInterner route_tab_;
  HashInterner alt_tab_;
  std::vector<std::uint32_t> walk_remap_;
  std::vector<std::uint32_t> route_remap_;
  std::vector<std::uint32_t> alt_remap_;
  std::vector<std::uint32_t> scratch_ids_;
  std::uint64_t leg_instances_ = 0;
  bool pair_transposed_ = false;
};

/// Materialize an owning Route from a view (adapter for tests / IO / the
/// differential harness).
[[nodiscard]] Route materialize_route(const RouteView& v);

}  // namespace itb
