#include "core/route_store.hpp"

#include <cstring>
#include <stdexcept>

namespace itb {

namespace {

template <typename T>
std::string byte_key(const std::vector<T>& seq) {
  if (seq.empty()) return {};
  return {reinterpret_cast<const char*>(seq.data()),
          seq.size() * sizeof(T)};
}

}  // namespace

RouteStoreBuilder::RouteStoreBuilder(std::size_t num_pairs) {
  store_.pairs_.reserve(num_pairs);
}

std::uint32_t RouteStoreBuilder::intern_ports(
    const std::vector<PortId>& ports) {
  const auto [it, inserted] = port_segments_.try_emplace(
      byte_key(ports), static_cast<std::uint32_t>(store_.port_pool_.size()));
  if (inserted) {
    store_.port_pool_.insert(store_.port_pool_.end(), ports.begin(),
                             ports.end());
  } else {
    ++store_.segments_shared_;
  }
  return it->second;
}

std::uint32_t RouteStoreBuilder::intern_switches(
    const std::vector<SwitchId>& sws) {
  const auto [it, inserted] = switch_segments_.try_emplace(
      byte_key(sws), static_cast<std::uint32_t>(store_.switch_pool_.size()));
  if (inserted) {
    store_.switch_pool_.insert(store_.switch_pool_.end(), sws.begin(),
                               sws.end());
  }
  return it->second;
}

void RouteStoreBuilder::append_pair(const std::vector<Route>& alts) {
  PairSlot slot;
  slot.first_route = static_cast<std::uint32_t>(store_.routes_.size());
  slot.count = static_cast<std::uint32_t>(alts.size());
  store_.pairs_.push_back(slot);
  for (const Route& r : alts) {
    FlatRoute fr;
    fr.src_switch = r.src_switch;
    fr.dst_switch = r.dst_switch;
    fr.first_leg = static_cast<std::uint32_t>(store_.legs_.size());
    fr.switch_off = intern_switches(r.switches);
    fr.leg_count = static_cast<std::uint16_t>(r.legs.size());
    fr.switch_count = static_cast<std::uint16_t>(r.switches.size());
    fr.total_switch_hops = r.total_switch_hops;
    store_.routes_.push_back(fr);
    for (const RouteLeg& leg : r.legs) {
      if (leg.ports.size() > 0xffff) {
        throw std::length_error("route leg exceeds 65535 ports");
      }
      FlatLeg fl;
      fl.port_off = intern_ports(leg.ports);
      fl.port_count = static_cast<std::uint16_t>(leg.ports.size());
      fl.switch_hops = static_cast<std::uint16_t>(leg.switch_hops);
      fl.end_host = leg.end_host;
      store_.legs_.push_back(fl);
    }
  }
}

RouteStore RouteStoreBuilder::finish() {
  store_.port_pool_.shrink_to_fit();
  store_.switch_pool_.shrink_to_fit();
  store_.legs_.shrink_to_fit();
  store_.routes_.shrink_to_fit();
  store_.table_bytes_ =
      store_.port_pool_.size() * sizeof(PortId) +
      store_.switch_pool_.size() * sizeof(SwitchId) +
      store_.legs_.size() * sizeof(FlatLeg) +
      store_.routes_.size() * sizeof(FlatRoute) +
      store_.pairs_.size() * sizeof(PairSlot);
  port_segments_.clear();
  switch_segments_.clear();
  return std::move(store_);
}

Route materialize_route(const RouteView& v) {
  Route r;
  r.src_switch = v.src_switch;
  r.dst_switch = v.dst_switch;
  r.total_switch_hops = v.total_switch_hops;
  r.switches.assign(v.switches.begin(), v.switches.end());
  r.legs.reserve(v.legs.size());
  for (const LegView leg : v.legs) {
    RouteLeg out;
    out.ports.assign(leg.ports.begin(), leg.ports.end());
    out.end_host = leg.end_host;
    out.switch_hops = leg.switch_hops;
    r.legs.push_back(std::move(out));
  }
  return r;
}

}  // namespace itb
