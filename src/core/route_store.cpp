#include "core/route_store.hpp"

#include <cstring>
#include <stdexcept>

namespace itb {

namespace {

std::size_t uz(std::int64_t v) { return static_cast<std::size_t>(v); }

bool bytes_equal(const void* a, const void* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n) == 0;
}

std::uint64_t vec_bytes(const auto& v) {
  return static_cast<std::uint64_t>(v.size()) * sizeof(v[0]);
}

}  // namespace

// ---------------------------------------------------------------------------
// Composition

RouteView RouteStore::compose(std::uint32_t pair_index,
                              std::uint32_t slot) const {
  RouteView v;
  v.store = this;
  v.pair_index = pair_index;
  v.slot = slot;
  if (tier_ == StoreTier::kFactorized) {
    compose_factorized(pair_index, slot, v);
  } else {
    compose_explicit(pair_index, slot, v);
  }
  return v;
}

void RouteStore::compose_factorized(std::uint32_t pair_index,
                                    std::uint32_t slot, RouteView& v) const {
  const auto s = static_cast<SwitchId>(pair_index /
                                       static_cast<std::uint32_t>(num_switches_));
  const auto d = static_cast<SwitchId>(pair_index %
                                       static_cast<std::uint32_t>(num_switches_));
  const RouteRec rr = core_routes_[alt_routes_[slot]];
  v.src_switch = s;
  v.dst_switch = d;
  v.legs.pool_ = port_pool_.data();
  v.legs.count_ = rr.leg_count;
  const auto P = uz(ports_per_switch_);
  SwitchId cur = s;
  int total = 0;
  for (std::uint32_t li = 0; li < rr.leg_count; ++li) {
    const WalkRec w = walks_[route_walks_[rr.first_walk + li]];
    LegRec& rec = v.legs.recs_[li];
    rec.port_off = w.port_off;
    rec.port_count = static_cast<std::uint16_t>(w.port_count);
    rec.switch_hops = static_cast<std::uint16_t>(w.port_count);
    total += static_cast<int>(w.port_count);
    if (li + 1 == rr.leg_count) {
      rec.tail = kNoPort;
      rec.end_host = kNoHost;
    } else {
      // Walk to the leg's end switch, then rederive the in-transit host
      // with the exact compile_route mix — composition is bit-identical
      // to the materialized build.
      const PortId* ports = port_pool_.data() + w.port_off;
      for (std::uint32_t h = 0; h < w.port_count; ++h) {
        cur = next_switch_[uz(cur) * P + uz(ports[h])];
      }
      const std::uint32_t h0 = sw_host_off_[uz(cur)];
      const std::uint32_t nh = sw_host_off_[uz(cur) + 1] - h0;
      const std::uint64_t mix =
          static_cast<std::uint64_t>(s) * 1315423911ULL +
          static_cast<std::uint64_t>(d) * 2654435761ULL +
          static_cast<std::uint64_t>(rr.alt_tag) * 40503ULL +
          static_cast<std::uint64_t>(li) * 97ULL + itb_host_salt_;
      const HostId host = sw_hosts_[h0 + static_cast<std::uint32_t>(mix % nh)];
      rec.end_host = host;
      rec.tail = host_port_[uz(host)];
    }
  }
  v.total_switch_hops = total;
}

void RouteStore::compose_explicit(std::uint32_t pair_index, std::uint32_t slot,
                                  RouteView& v) const {
  (void)pair_index;
  const FlatRoute& r = routes_[slot];
  v.src_switch = r.src_switch;
  v.dst_switch = r.dst_switch;
  v.total_switch_hops = r.total_switch_hops;
  v.legs.pool_ = port_pool_.data();
  v.legs.count_ = r.leg_count;
  for (std::uint32_t li = 0; li < r.leg_count; ++li) {
    const FlatLeg& fl = legs_[r.first_leg + li];
    v.legs.recs_[li] =
        LegRec{fl.port_off, fl.port_count, fl.switch_hops, kNoPort,
               fl.end_host};
  }
}

Route RouteStore::materialize(std::uint32_t pair_index,
                              std::uint32_t slot) const {
  Route out;
  const RouteView v = compose(pair_index, slot);
  out.src_switch = v.src_switch;
  out.dst_switch = v.dst_switch;
  out.total_switch_hops = v.total_switch_hops;
  out.legs.reserve(v.legs.size());
  for (const LegView leg : v.legs) {
    RouteLeg l;
    l.ports.assign(leg.ports.begin(), leg.ports.end());
    l.end_host = leg.end_host;
    l.switch_hops = leg.switch_hops;
    out.legs.push_back(std::move(l));
  }
  if (tier_ == StoreTier::kExplicit) {
    const FlatRoute& r = routes_[slot];
    out.switches.assign(switch_pool_.begin() + r.switch_off,
                        switch_pool_.begin() + r.switch_off + r.switch_count);
  } else {
    // Rederive the switch walk from the composition table.
    out.switches.reserve(uz(v.total_switch_hops) + 1);
    SwitchId cur = v.src_switch;
    out.switches.push_back(cur);
    const auto P = uz(ports_per_switch_);
    for (const LegView leg : v.legs) {
      for (int h = 0; h < leg.switch_hops; ++h) {
        cur = next_switch_[uz(cur) * P + uz(leg.ports[uz(h)])];
        out.switches.push_back(cur);
      }
    }
  }
  return out;
}

Route materialize_route(const RouteView& v) {
  if (v.store == nullptr) {
    throw std::logic_error("materialize_route: view has no owning store");
  }
  return v.store->materialize(v.pair_index, v.slot);
}

// ---------------------------------------------------------------------------
// Explicit-tier builder

RouteStoreBuilder::RouteStoreBuilder(std::size_t num_pairs) {
  store_.tier_ = StoreTier::kExplicit;
  store_.pairs_.reserve(num_pairs);
}

void RouteStoreBuilder::append_pair(const std::vector<Route>& alts) {
  PairSlot slot;
  slot.first_route = static_cast<std::uint32_t>(store_.routes_.size());
  slot.count = static_cast<std::uint32_t>(alts.size());
  store_.pairs_.push_back(slot);
  for (const Route& r : alts) {
    if (r.legs.size() > static_cast<std::size_t>(kMaxRouteLegs)) {
      throw std::length_error("route exceeds kMaxRouteLegs legs");
    }
    FlatRoute fr;
    fr.src_switch = r.src_switch;
    fr.dst_switch = r.dst_switch;
    fr.first_leg = static_cast<std::uint32_t>(store_.legs_.size());
    fr.leg_count = static_cast<std::uint16_t>(r.legs.size());
    fr.total_switch_hops = r.total_switch_hops;
    {
      const std::uint64_t h = hash_bytes(
          r.switches.data(), r.switches.size() * sizeof(SwitchId));
      const std::uint32_t id = switch_tab_.intern(
          h,
          [&](std::uint32_t cand) {
            const WalkRec& w = switch_refs_[cand];
            return w.port_count == r.switches.size() &&
                   bytes_equal(store_.switch_pool_.data() + w.port_off,
                               r.switches.data(),
                               r.switches.size() * sizeof(SwitchId));
          },
          [&] {
            const auto id = static_cast<std::uint32_t>(switch_refs_.size());
            switch_refs_.push_back(
                WalkRec{static_cast<std::uint32_t>(store_.switch_pool_.size()),
                        static_cast<std::uint32_t>(r.switches.size())});
            store_.switch_pool_.insert(store_.switch_pool_.end(),
                                       r.switches.begin(), r.switches.end());
            return id;
          });
      fr.switch_off = switch_refs_[id].port_off;
      fr.switch_count = static_cast<std::uint16_t>(r.switches.size());
    }
    store_.routes_.push_back(fr);
    for (const RouteLeg& leg : r.legs) {
      if (leg.ports.size() > 0xffff) {
        throw std::length_error("route leg exceeds 65535 ports");
      }
      FlatLeg fl;
      bool fresh = false;
      const std::uint64_t h =
          hash_bytes(leg.ports.data(), leg.ports.size() * sizeof(PortId));
      const std::uint32_t id = port_tab_.intern(
          h,
          [&](std::uint32_t cand) {
            const WalkRec& w = port_refs_[cand];
            return w.port_count == leg.ports.size() &&
                   bytes_equal(store_.port_pool_.data() + w.port_off,
                               leg.ports.data(),
                               leg.ports.size() * sizeof(PortId));
          },
          [&] {
            fresh = true;
            const auto id2 = static_cast<std::uint32_t>(port_refs_.size());
            port_refs_.push_back(
                WalkRec{static_cast<std::uint32_t>(store_.port_pool_.size()),
                        static_cast<std::uint32_t>(leg.ports.size())});
            store_.port_pool_.insert(store_.port_pool_.end(),
                                     leg.ports.begin(), leg.ports.end());
            return id2;
          });
      if (!fresh) ++store_.segments_shared_;
      fl.port_off = port_refs_[id].port_off;
      fl.port_count = static_cast<std::uint16_t>(leg.ports.size());
      fl.switch_hops = static_cast<std::uint16_t>(leg.switch_hops);
      fl.end_host = leg.end_host;
      store_.legs_.push_back(fl);
    }
  }
}

RouteStore RouteStoreBuilder::finish() {
  store_.port_pool_.shrink_to_fit();
  store_.switch_pool_.shrink_to_fit();
  store_.legs_.shrink_to_fit();
  store_.routes_.shrink_to_fit();
  store_.num_route_instances_ = store_.routes_.size();
  store_.table_bytes_ = vec_bytes(store_.port_pool_) +
                        vec_bytes(store_.switch_pool_) +
                        vec_bytes(store_.legs_) + vec_bytes(store_.routes_) +
                        vec_bytes(store_.pairs_);
  store_.core_bytes_ = store_.table_bytes_;
  return std::move(store_);
}

// ---------------------------------------------------------------------------
// Factorized staging

void FactorizedBlock::clear() {
  walk_bytes.clear();
  walks.clear();
  route_walks.clear();
  routes.clear();
  alt_routes.clear();
  altlists.clear();
  pair_alt.clear();
  route_instances = 0;
  leg_instances = 0;
}

void FactorizedBlockStager::begin_block(FactorizedBlock* out) {
  out_ = out;
  out_->clear();
  walk_tab_.clear();
  route_tab_.clear();
  alt_tab_.clear();
}

std::uint32_t FactorizedBlockStager::stage_walk(const PortId* ports,
                                                std::size_t n) {
  const std::uint64_t h = hash_bytes(ports, n * sizeof(PortId));
  return walk_tab_.intern(
      h,
      [&](std::uint32_t id) {
        const WalkRec& w = out_->walks[id];
        return w.port_count == n &&
               bytes_equal(out_->walk_bytes.data() + w.port_off, ports,
                           n * sizeof(PortId));
      },
      [&] {
        const auto id = static_cast<std::uint32_t>(out_->walks.size());
        out_->walks.push_back(
            WalkRec{static_cast<std::uint32_t>(out_->walk_bytes.size()),
                    static_cast<std::uint32_t>(n)});
        out_->walk_bytes.insert(out_->walk_bytes.end(), ports, ports + n);
        return id;
      });
}

std::uint32_t FactorizedBlockStager::stage_route(
    const std::uint32_t* walk_ids, std::size_t n_legs, std::uint16_t alt_tag) {
  if (n_legs > static_cast<std::size_t>(kMaxRouteLegs)) {
    throw std::length_error("route exceeds kMaxRouteLegs legs");
  }
  std::uint64_t h = hash_bytes(walk_ids, n_legs * sizeof(std::uint32_t));
  h = hash_bytes(&alt_tag, sizeof(alt_tag), h);
  return route_tab_.intern(
      h,
      [&](std::uint32_t id) {
        const RouteRec& rr = out_->routes[id];
        return rr.leg_count == n_legs && rr.alt_tag == alt_tag &&
               bytes_equal(out_->route_walks.data() + rr.first_walk, walk_ids,
                           n_legs * sizeof(std::uint32_t));
      },
      [&] {
        const auto id = static_cast<std::uint32_t>(out_->routes.size());
        out_->routes.push_back(
            RouteRec{static_cast<std::uint32_t>(out_->route_walks.size()),
                     static_cast<std::uint16_t>(n_legs), alt_tag});
        out_->route_walks.insert(out_->route_walks.end(), walk_ids,
                                 walk_ids + n_legs);
        return id;
      });
}

void FactorizedBlockStager::commit_pair(const std::uint32_t* route_ids,
                                        std::size_t n) {
  const std::uint64_t h = hash_bytes(route_ids, n * sizeof(std::uint32_t));
  const std::uint32_t id = alt_tab_.intern(
      h,
      [&](std::uint32_t cand) {
        const AltListRec& a = out_->altlists[cand];
        return a.count == n &&
               bytes_equal(out_->alt_routes.data() + a.first, route_ids,
                           n * sizeof(std::uint32_t));
      },
      [&] {
        const auto id2 = static_cast<std::uint32_t>(out_->altlists.size());
        out_->altlists.push_back(
            AltListRec{static_cast<std::uint32_t>(out_->alt_routes.size()),
                       static_cast<std::uint32_t>(n)});
        out_->alt_routes.insert(out_->alt_routes.end(), route_ids,
                                route_ids + n);
        return id2;
      });
  out_->pair_alt.push_back(id);
  out_->route_instances += n;
  for (std::size_t i = 0; i < n; ++i) {
    out_->leg_instances += out_->routes[route_ids[i]].leg_count;
  }
}

// ---------------------------------------------------------------------------
// Factorized merge

FactorizedStoreBuilder::FactorizedStoreBuilder(const Topology& topo,
                                               std::uint64_t itb_host_salt)
    : topo_(&topo) {
  store_.tier_ = StoreTier::kFactorized;
  const int S = topo.num_switches();
  const int P = topo.ports_per_switch();
  store_.num_switches_ = S;
  store_.ports_per_switch_ = P;
  store_.itb_host_salt_ = itb_host_salt;
  store_.next_switch_.assign(uz(S) * uz(P), kNoSwitch);
  for (SwitchId s = 0; s < S; ++s) {
    for (PortId p = 0; p < P; ++p) {
      const PortPeer& pp = topo.peer(s, p);
      if (pp.kind == PeerKind::kSwitch) {
        store_.next_switch_[uz(s) * uz(P) + uz(p)] = pp.sw;
      }
    }
  }
  store_.sw_host_off_.assign(uz(S) + 1, 0);
  for (SwitchId s = 0; s < S; ++s) {
    const auto hosts = topo.hosts_of_switch(s);
    store_.sw_host_off_[uz(s) + 1] =
        store_.sw_host_off_[uz(s)] + static_cast<std::uint32_t>(hosts.size());
    store_.sw_hosts_.insert(store_.sw_hosts_.end(), hosts.begin(),
                            hosts.end());
  }
  store_.host_port_.reserve(uz(topo.num_hosts()));
  for (HostId hst = 0; hst < topo.num_hosts(); ++hst) {
    store_.host_port_.push_back(topo.host(hst).port);
  }
  store_.pair_alt_.reserve(uz(S) * uz(S));
}

void FactorizedStoreBuilder::append_block(const FactorizedBlock& block) {
  // Walks.
  walk_remap_.resize(block.walks.size());
  for (std::size_t lid = 0; lid < block.walks.size(); ++lid) {
    const WalkRec w = block.walks[lid];
    const PortId* p = block.walk_bytes.data() + w.port_off;
    const std::uint64_t h = hash_bytes(p, w.port_count * sizeof(PortId));
    walk_remap_[lid] = walk_tab_.intern(
        h,
        [&](std::uint32_t id) {
          const WalkRec& g = store_.walks_[id];
          return g.port_count == w.port_count &&
                 bytes_equal(store_.port_pool_.data() + g.port_off, p,
                             w.port_count * sizeof(PortId));
        },
        [&] {
          const auto id = static_cast<std::uint32_t>(store_.walks_.size());
          store_.walks_.push_back(
              WalkRec{static_cast<std::uint32_t>(store_.port_pool_.size()),
                      w.port_count});
          store_.port_pool_.insert(store_.port_pool_.end(), p,
                                   p + w.port_count);
          return id;
        });
  }
  // Routes (walk ids remapped into global id space first).
  route_remap_.resize(block.routes.size());
  for (std::size_t lid = 0; lid < block.routes.size(); ++lid) {
    const RouteRec rr = block.routes[lid];
    scratch_ids_.assign(rr.leg_count, 0);
    for (std::uint32_t i = 0; i < rr.leg_count; ++i) {
      scratch_ids_[i] = walk_remap_[block.route_walks[rr.first_walk + i]];
    }
    std::uint64_t h =
        hash_bytes(scratch_ids_.data(), scratch_ids_.size() * sizeof(std::uint32_t));
    h = hash_bytes(&rr.alt_tag, sizeof(rr.alt_tag), h);
    route_remap_[lid] = route_tab_.intern(
        h,
        [&](std::uint32_t id) {
          const RouteRec& g = store_.core_routes_[id];
          return g.leg_count == rr.leg_count && g.alt_tag == rr.alt_tag &&
                 bytes_equal(store_.route_walks_.data() + g.first_walk,
                             scratch_ids_.data(),
                             scratch_ids_.size() * sizeof(std::uint32_t));
        },
        [&] {
          const auto id =
              static_cast<std::uint32_t>(store_.core_routes_.size());
          store_.core_routes_.push_back(
              RouteRec{static_cast<std::uint32_t>(store_.route_walks_.size()),
                       rr.leg_count, rr.alt_tag});
          store_.route_walks_.insert(store_.route_walks_.end(),
                                     scratch_ids_.begin(), scratch_ids_.end());
          return id;
        });
  }
  // Alternative lists.
  alt_remap_.resize(block.altlists.size());
  for (std::size_t lid = 0; lid < block.altlists.size(); ++lid) {
    const AltListRec a = block.altlists[lid];
    scratch_ids_.assign(a.count, 0);
    for (std::uint32_t i = 0; i < a.count; ++i) {
      scratch_ids_[i] = route_remap_[block.alt_routes[a.first + i]];
    }
    const std::uint64_t h =
        hash_bytes(scratch_ids_.data(), scratch_ids_.size() * sizeof(std::uint32_t));
    alt_remap_[lid] = alt_tab_.intern(
        h,
        [&](std::uint32_t id) {
          const AltListRec& g = store_.altlists_[id];
          return g.count == a.count &&
                 bytes_equal(store_.alt_routes_.data() + g.first,
                             scratch_ids_.data(),
                             scratch_ids_.size() * sizeof(std::uint32_t));
        },
        [&] {
          const auto id = static_cast<std::uint32_t>(store_.altlists_.size());
          store_.altlists_.push_back(AltListRec{
              static_cast<std::uint32_t>(store_.alt_routes_.size()), a.count});
          store_.alt_routes_.insert(store_.alt_routes_.end(),
                                    scratch_ids_.begin(), scratch_ids_.end());
          return id;
        });
  }
  // Pair index.
  for (const std::uint32_t lid : block.pair_alt) {
    store_.pair_alt_.push_back(alt_remap_[lid]);
  }
  store_.num_route_instances_ += block.route_instances;
  leg_instances_ += block.leg_instances;
}

RouteStore FactorizedStoreBuilder::finish() {
  const std::size_t want = uz(topo_->num_switches()) * uz(topo_->num_switches());
  if (store_.pair_alt_.size() != want) {
    throw std::logic_error("FactorizedStoreBuilder: pair stream incomplete");
  }
  if (pair_transposed_) {
    // Pairs were streamed destination-major; readers index s * S + d.
    const std::size_t n = uz(topo_->num_switches());
    std::vector<std::uint32_t> by_src(want);
    for (std::size_t d = 0; d < n; ++d) {
      for (std::size_t s = 0; s < n; ++s) {
        by_src[s * n + d] = store_.pair_alt_[d * n + s];
      }
    }
    store_.pair_alt_ = std::move(by_src);
  }
  store_.port_pool_.shrink_to_fit();
  store_.walks_.shrink_to_fit();
  store_.route_walks_.shrink_to_fit();
  store_.core_routes_.shrink_to_fit();
  store_.alt_routes_.shrink_to_fit();
  store_.altlists_.shrink_to_fit();
  store_.segments_shared_ = leg_instances_ - store_.walks_.size();
  store_.core_bytes_ =
      vec_bytes(store_.port_pool_) + vec_bytes(store_.walks_) +
      vec_bytes(store_.route_walks_) + vec_bytes(store_.core_routes_) +
      vec_bytes(store_.alt_routes_) + vec_bytes(store_.altlists_) +
      vec_bytes(store_.pair_alt_);
  store_.table_bytes_ =
      store_.core_bytes_ + vec_bytes(store_.next_switch_) +
      vec_bytes(store_.sw_host_off_) + vec_bytes(store_.sw_hosts_) +
      vec_bytes(store_.host_port_);
  return std::move(store_);
}

}  // namespace itb
