// Construction of the two routing tables the paper compares.
//
// Both builders stage per-source-switch rows of materialized Routes and
// compress them into the flat contiguous store (core/route_store.hpp).
// Row construction is independent per source switch, so with `jobs` > 1
// the staging fans out across the shared thread pool (sim/pool.hpp); the
// compression pass then consumes rows strictly in (s,d) order, making the
// result bit-identical to the serial build.  The `*_nested` variants
// return the raw staged representation for the differential harness and
// the bench A/B.
#pragma once

#include <cstdint>

#include "core/route_set.hpp"
#include "route/simple_routes.hpp"
#include "route/updown.hpp"
#include "topo/topology.hpp"

namespace itb {

struct ItbBuildOptions {
  /// Paper: at most 10 alternative routes per source-destination pair.
  int max_alternatives = 10;
  /// Salt for spreading in-transit host choices across a switch's hosts.
  std::uint64_t itb_host_salt = 0;
  /// Order alternatives by ascending in-transit count, so ITB-SP (which
  /// always uses alternative 0) takes a legal minimal path whenever one
  /// exists.  false keeps the enumeration (DFS) order, which matches the
  /// paper's measured 0.43 in-transit buffers per ITB-SP message more
  /// closely (fewest-first yields ~0.23); see EXPERIMENTS.md.
  bool prefer_fewest_itbs = false;
};

/// UP/DOWN baseline: one simple_routes-selected legal path per pair,
/// single-leg routes (no in-transit hosts).  `jobs` > 1 stages rows in
/// parallel; the result is bit-identical for every jobs value.
[[nodiscard]] RouteSet build_updown_routes(const Topology& topo,
                                           const SimpleRoutes& sr,
                                           int jobs = 1);

/// ITB table: up to `max_alternatives` *minimal* paths per pair, each split
/// into legal legs with in-transit hosts at the violating switches.
/// Alternatives are ordered by ascending in-transit count (stable within a
/// count), so alternative 0 — the one ITB-SP always uses — is a legal
/// minimal path whenever one exists.  A minimal path whose required split
/// switch has no attached host is discarded; if every candidate is
/// discarded the pair falls back to one shortest legal (up*/down*) route so
/// connectivity is never lost.  `jobs` as in build_updown_routes.
[[nodiscard]] RouteSet build_itb_routes(const Topology& topo,
                                        const UpDown& ud,
                                        ItbBuildOptions opts = {},
                                        int jobs = 1);

/// Structured-minimal baseline (route/topo_minimal.hpp): the canonical
/// minimal route per pair — dimension-order on HyperX, l-g-l on Dragonfly,
/// direct on full mesh — as single-leg routes with no in-transit hosts.
/// Requires a structured topology (has_structured_minimal); throws
/// std::invalid_argument otherwise.  `jobs` as in build_updown_routes.
[[nodiscard]] RouteSet build_minimal_routes(const Topology& topo,
                                            int jobs = 1);

/// Legacy nested staging tables (differential tests, bench A/B).  Same
/// route values as the flat builders, serial construction.
[[nodiscard]] NestedRouteTable build_updown_routes_nested(
    const Topology& topo, const SimpleRoutes& sr);
[[nodiscard]] NestedRouteTable build_itb_routes_nested(
    const Topology& topo, const UpDown& ud, ItbBuildOptions opts = {});
[[nodiscard]] NestedRouteTable build_minimal_routes_nested(
    const Topology& topo);

/// Helper shared by both builders: lowers a switch-level path (plus split
/// points for ITB legs) into a runtime Route with concrete ports and
/// in-transit host choices.  `alt_index` participates in in-transit host
/// spreading so different alternatives use different hosts of the same
/// switch.
[[nodiscard]] Route compile_route(const Topology& topo, const SwitchPath& path,
                                  const std::vector<int>& split_points,
                                  int alt_index, std::uint64_t itb_host_salt);

}  // namespace itb
