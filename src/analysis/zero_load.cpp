#include "analysis/zero_load.hpp"

#include <cassert>

#include "net/packet.hpp"

namespace itb {

TimePs zero_load_latency(const Topology& topo, const RouteView& route,
                         int payload_bytes, const MyrinetParams& params) {
  const TimePs F = params.flit_time;
  const TimePs R = params.routing_delay;
  TimePs t = 0;

  // Walk the legs; `at` tracks the physical switch (followed through the
  // topology's port-peer table) so per-cable propagation delays (which may
  // differ per cable) are honoured.
  SwitchId at = route.src_switch;
  for (std::size_t li = 0; li < route.legs.size(); ++li) {
    const LegView leg = route.legs[li];
    const bool final_leg = li + 1 == route.legs.size();

    // Access cable: the sending host (source or in-transit) to `at`.
    const HostId sender =
        li == 0 ? kNoHost : route.legs[li - 1].end_host;
    const double access_len =
        li == 0 ? 10.0 /* source host cable; all generators use 10 m */
                : topo.cable(topo.host(sender).cable).length_m;
    t += F + params.cable_prop_delay(access_len);

    // Fabric hops of this leg: follow the stored port bytes.
    for (int h = 0; h < leg.switch_hops; ++h) {
      const PortPeer& peer =
          topo.peer(at, leg.ports[static_cast<std::size_t>(h)]);
      assert(peer.kind == PeerKind::kSwitch);
      t += R;  // routing at `at`
      t += F + params.cable_prop_delay(topo.cable(peer.cable).length_m);
      at = peer.sw;
    }

    // Delivery hop off the last switch of the leg (to the in-transit host
    // or the destination host).
    const HostId end = final_leg ? kNoHost : leg.end_host;
    const double out_len =
        end == kNoHost ? 10.0 : topo.cable(topo.host(end).cable).length_m;
    t += R;  // routing at the leg's last switch
    t += F + params.cable_prop_delay(out_len);

    if (final_leg) {
      // Tail trails the header by (payload + type - 1) flit times.
      t += static_cast<TimePs>(payload_bytes + params.type_bytes - 1) * F;
    } else {
      // In-transit pipeline before the next leg starts.
      t += params.itb_detect_delay + params.itb_dma_delay;
    }
  }
  (void)at;
  return t;
}

double average_zero_load_latency_ns(const Topology& topo,
                                    const RouteSet& routes, int payload_bytes,
                                    const MyrinetParams& params) {
  double sum = 0.0;
  long pairs = 0;
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    for (SwitchId d = 0; d < topo.num_switches(); ++d) {
      const AltsView alts = routes.alternatives(s, d);
      if (alts.empty()) continue;
      // Weight by the number of host pairs using this switch pair.
      const long hs = static_cast<long>(topo.hosts_of_switch(s).size());
      const long hd = static_cast<long>(topo.hosts_of_switch(d).size());
      long weight = hs * hd;
      if (s == d) weight = hs * (hs - 1);
      if (weight <= 0) continue;
      const TimePs lat =
          zero_load_latency(topo, alts.front(), payload_bytes, params);
      sum += to_ns(lat) * static_cast<double>(weight);
      pairs += weight;
    }
  }
  return pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
}

}  // namespace itb
