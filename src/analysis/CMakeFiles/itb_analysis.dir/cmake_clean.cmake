file(REMOVE_RECURSE
  "CMakeFiles/itb_analysis.dir/channel_load.cpp.o"
  "CMakeFiles/itb_analysis.dir/channel_load.cpp.o.d"
  "CMakeFiles/itb_analysis.dir/zero_load.cpp.o"
  "CMakeFiles/itb_analysis.dir/zero_load.cpp.o.d"
  "libitb_analysis.a"
  "libitb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
