file(REMOVE_RECURSE
  "libitb_analysis.a"
)
