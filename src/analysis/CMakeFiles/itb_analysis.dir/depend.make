# Empty dependencies file for itb_analysis.
# This may be replaced when dependencies are built.
