#include "analysis/channel_load.hpp"

#include <algorithm>
#include <cassert>

namespace itb {

namespace {
std::size_t uz(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

ChannelLoadModel compute_channel_load(const Topology& topo,
                                      const RouteSet& routes,
                                      PathPolicy policy,
                                      const DestinationPattern& pattern,
                                      std::uint64_t seed, int samples,
                                      double channel_capacity_flits_per_ns) {
  ChannelLoadModel model;
  model.crossings_per_packet.assign(uz(topo.num_channels()), 0.0);

  Rng rng(seed);
  const int hosts = topo.num_hosts();
  long accepted_samples = 0;
  double itbs = 0.0, hops = 0.0;

  for (int i = 0; i < samples; ++i) {
    const auto src =
        static_cast<HostId>(rng.next_below(static_cast<std::uint64_t>(hosts)));
    const HostId dst = pattern.pick(src, rng);
    if (dst == kNoHost || dst == src) continue;
    ++accepted_samples;

    const SwitchId ssw = topo.host(src).sw;
    const SwitchId dsw = topo.host(dst).sw;
    const AltsView alts = routes.alternatives(ssw, dsw);
    assert(!alts.empty());
    const std::size_t alt =
        (policy == PathPolicy::kSingle || alts.size() == 1)
            ? 0
            : rng.next_below(alts.size());
    const RouteView r = alts[alt];
    itbs += r.num_itbs();
    hops += r.total_switch_hops;

    auto cross = [&](ChannelId ch) {
      model.crossings_per_packet[uz(ch)] += 1.0;
    };

    // Injection channel (source host -> its switch).
    cross(topo.channel_from(topo.host(src).cable, false));
    // Fabric and in-transit channels, leg by leg (the current switch is
    // followed through the port-peer table, not stored in the view).
    SwitchId cur = r.src_switch;
    for (std::size_t li = 0; li < r.legs.size(); ++li) {
      const LegView leg = r.legs[li];
      for (int h = 0; h < leg.switch_hops; ++h) {
        const PortPeer& peer =
            topo.peer(cur, leg.ports[static_cast<std::size_t>(h)]);
        cross(topo.channel_from_switch(cur, peer.cable));
        cur = peer.sw;
      }
      if (li + 1 < r.legs.size()) {
        // Ejection into and re-injection out of the in-transit host.
        const CableId hc = topo.host(leg.end_host).cable;
        cross(topo.channel_from(hc, true));
        cross(topo.channel_from(hc, false));
      }
    }
    // Delivery channel (destination switch -> destination host).
    cross(topo.channel_from(topo.host(dst).cable, true));
  }

  if (accepted_samples == 0) return model;
  for (double& v : model.crossings_per_packet) {
    v /= static_cast<double>(accepted_samples);
  }
  model.expected_itbs = itbs / static_cast<double>(accepted_samples);
  model.expected_hops = hops / static_cast<double>(accepted_samples);

  const auto it = std::max_element(model.crossings_per_packet.begin(),
                                   model.crossings_per_packet.end());
  model.bottleneck =
      static_cast<ChannelId>(it - model.crossings_per_packet.begin());
  model.bottleneck_crossings = *it;

  // With q = expected crossings per packet of the hottest channel and L
  // payload flits per packet, the aggregate packet rate lambda satisfies
  // lambda * q * L <= capacity, i.e. payload throughput lambda * L <=
  // capacity / q.  Normalised per switch to match the paper's unit.
  if (model.bottleneck_crossings > 0) {
    model.throughput_bound = channel_capacity_flits_per_ns /
                             model.bottleneck_crossings /
                             static_cast<double>(topo.num_switches());
  }
  return model;
}

}  // namespace itb
