// Static channel-load model and bottleneck throughput bound.
//
// For a routing table, a path-selection policy and a traffic pattern, the
// expected number of crossings of every directed channel per injected
// packet is a pure function of the tables.  The channel with the highest
// crossing rate bounds the achievable throughput: no schedule can push
// more than one flit per flit-time through it.  The bound ignores
// blocking, routing occupancy and flow control, so real (simulated)
// saturation lands well below it — but the *ordering* between schemes and
// the location of the bottleneck are faithful, which makes the model a
// cheap cross-check for the simulator (bench_analysis) and a design tool
// (where would more wires help?).
//
// Traffic is characterised empirically: the pattern is sampled with a
// seeded RNG, so any DestinationPattern works without bespoke math.
#pragma once

#include <cstdint>
#include <vector>

#include "core/path_policy.hpp"
#include "core/route_set.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"
#include "traffic/patterns.hpp"

namespace itb {

struct ChannelLoadModel {
  /// Expected crossings of each directed channel per injected packet
  /// (header overhead ignored; payload treated as the unit of traffic).
  std::vector<double> crossings_per_packet;

  /// Hottest channel and its expected crossings.
  ChannelId bottleneck = -1;
  double bottleneck_crossings = 0.0;

  /// Upper bound on aggregate accepted traffic, in flits/ns/switch, from
  /// the bottleneck channel's capacity (1 flit per flit-time).
  double throughput_bound = 0.0;

  /// Expected in-transit hosts per packet under the sampled traffic.
  double expected_itbs = 0.0;

  /// Expected switch-to-switch hops per packet.
  double expected_hops = 0.0;
};

/// Sample `samples` (source, destination) draws: sources uniform over
/// hosts, destinations from `pattern`; route alternatives chosen by
/// `policy` semantics (kSingle -> alternative 0, anything else -> uniform
/// over alternatives, the steady-state behaviour of RR/random selection).
[[nodiscard]] ChannelLoadModel compute_channel_load(
    const Topology& topo, const RouteSet& routes, PathPolicy policy,
    const DestinationPattern& pattern, std::uint64_t seed = 1,
    int samples = 200000,
    double channel_capacity_flits_per_ns = 0.16 /* 160 MB/s Myrinet */);

}  // namespace itb
