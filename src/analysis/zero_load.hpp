// Closed-form zero-load latency model.
//
// On an idle network the engine's behaviour is exactly derivable: each
// channel crossing costs one flit time (the header flit) plus the wire's
// propagation delay, each switch adds its routing delay, the tail follows
// the header by (payload + type - 1) flit times on the final hop, and
// each in-transit host adds its detection + DMA-programming delay (the
// re-injected stream never starves because reception leads it by that
// same delay).  The unit tests pin the simulator to this model flit for
// flit (chunk = 1); the bench uses it to sanity-check every route set.
#pragma once

#include "core/route.hpp"
#include "core/route_set.hpp"
#include "net/params.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace itb {

/// Predicted injection-to-delivery latency for one packet following
/// `route` with `payload_bytes` of payload, on an otherwise idle network.
/// Exact for chunk_flits == 1 and itb_detect+dma >= one flit time.
[[nodiscard]] TimePs zero_load_latency(const Topology& topo,
                                       const RouteView& route,
                                       int payload_bytes,
                                       const MyrinetParams& params);

/// Average zero-load latency over all ordered host pairs, using
/// alternative 0 of each pair (what ITB-SP and UP/DOWN use).  Host pairs
/// sharing a switch use the same-switch route.
[[nodiscard]] double average_zero_load_latency_ns(const Topology& topo,
                                                  const RouteSet& routes,
                                                  int payload_bytes,
                                                  const MyrinetParams& params);

}  // namespace itb
