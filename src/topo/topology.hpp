// Port-level network topology: switches with numbered ports, full-duplex
// cables between switch ports, and hosts attached to switch ports.
//
// This is the substrate every other layer consumes:
//  * the routing layer sees the switch-level graph (adjacency + distances),
//  * the network model sees cables/channels with physical lengths,
//  * source-route headers are sequences of *output port numbers*, exactly as
//    in Myrinet, so the port-level detail is load-bearing, not cosmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "topo/types.hpp"

namespace itb {

/// One end of a cable: a switch port or a host.
struct PortRef {
  SwitchId sw = kNoSwitch;
  PortId port = kNoPort;
  friend bool operator==(const PortRef&, const PortRef&) = default;
};

/// A full-duplex cable.  Either switch<->switch (host == kNoHost) or
/// switch<->host (b is unused, host holds the host id).
struct Cable {
  PortRef a;                  // always a switch port
  PortRef b;                  // valid iff host == kNoHost
  HostId host = kNoHost;      // valid iff this is a host cable
  double length_m = 10.0;     // paper: short LAN cables, 10 m

  [[nodiscard]] bool to_host() const { return host != kNoHost; }
};

/// What a given switch port is connected to.
struct PortPeer {
  PeerKind kind = PeerKind::kNone;
  SwitchId sw = kNoSwitch;   // valid when kind == kSwitch
  PortId port = kNoPort;     // valid when kind == kSwitch
  HostId host = kNoHost;     // valid when kind == kHost
  CableId cable = kNoCable;  // valid unless kind == kNone
};

/// Host attachment point.
struct HostAttachment {
  SwitchId sw = kNoSwitch;
  PortId port = kNoPort;
  CableId cable = kNoCable;
};

/// Optional 2-D placement of a switch, used by the link-utilization map
/// reports (paper Figures 8, 9 and 11).
struct SwitchPos {
  int x = 0;
  int y = 0;
};

/// Families whose construction parameters routing can exploit (the minimal
/// source-route builders in route/topo_minimal.hpp key off this).  kGeneric
/// means "no structural promise beyond the port tables".
enum class TopoKind : std::uint8_t {
  kGeneric = 0,
  kHyperX,     // params: {L, S_1..S_L, hosts_per_switch}
  kDragonfly,  // params: {a, p, h, arrangement (0 palmtree, 1 absolute)}
  kFullMesh,   // params: {num_switches, hosts_per_switch}
};

[[nodiscard]] const char* to_string(TopoKind k);
/// Inverse of to_string; returns std::nullopt for unknown names.
[[nodiscard]] std::optional<TopoKind> topo_kind_from_string(
    const std::string& name);

/// Construction metadata a generator stamps on its topology.  Purely
/// descriptive: the port tables stay the single source of truth for what is
/// wired where, and consumers must tolerate kGeneric (e.g. hand-written map
/// files).  Serialised by topo/io as a `shape` directive so file round-trips
/// keep it.
struct TopoShape {
  TopoKind kind = TopoKind::kGeneric;
  std::vector<int> params;  // per-kind meaning documented on TopoKind
  friend bool operator==(const TopoShape&, const TopoShape&) = default;
};

class Topology {
 public:
  /// Creates `num_switches` switches, each with `ports_per_switch` ports,
  /// and no cables.
  Topology(int num_switches, int ports_per_switch, std::string name = "custom");

  // -- construction -------------------------------------------------------

  /// Connect two switch ports with a cable.  Both ports must be free.
  CableId connect(SwitchId a, PortId pa, SwitchId b, PortId pb,
                  double length_m = 10.0);

  /// Connect two switches using their lowest-numbered free ports.
  CableId connect_auto(SwitchId a, SwitchId b, double length_m = 10.0);

  /// Attach a new host to the given switch port; returns its HostId
  /// (assigned densely in attachment order).
  HostId attach_host(SwitchId sw, PortId port, double length_m = 10.0);

  /// Attach `n` hosts to a switch using its lowest-numbered free ports.
  void attach_hosts(SwitchId sw, int n, double length_m = 10.0);

  void set_pos(SwitchId s, int x, int y);

  /// Record the generator family and parameters (see TopoShape).
  void set_shape(TopoShape shape) { shape_ = std::move(shape); }

  // -- queries ------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const TopoShape& shape() const { return shape_; }
  [[nodiscard]] int num_switches() const { return static_cast<int>(ports_.size()); }
  [[nodiscard]] int ports_per_switch() const { return ports_per_switch_; }
  [[nodiscard]] int num_hosts() const { return static_cast<int>(hosts_.size()); }
  [[nodiscard]] int num_cables() const { return static_cast<int>(cables_.size()); }
  [[nodiscard]] int num_channels() const { return 2 * num_cables(); }

  [[nodiscard]] const PortPeer& peer(SwitchId s, PortId p) const;
  [[nodiscard]] const Cable& cable(CableId c) const { return cables_[static_cast<std::size_t>(c)]; }
  [[nodiscard]] const HostAttachment& host(HostId h) const { return hosts_[static_cast<std::size_t>(h)]; }
  [[nodiscard]] SwitchPos pos(SwitchId s) const { return pos_[static_cast<std::size_t>(s)]; }

  /// Lowest-numbered free port of a switch, or kNoPort.
  [[nodiscard]] PortId first_free_port(SwitchId s) const;
  [[nodiscard]] int free_ports(SwitchId s) const;

  /// Number of switch-to-switch cables incident to `s`.
  [[nodiscard]] int switch_degree(SwitchId s) const;

  /// Hosts attached to switch `s`, in port order.
  [[nodiscard]] std::vector<HostId> hosts_of_switch(SwitchId s) const;

  /// Ports of `s` leading to other switches, in port order.
  [[nodiscard]] std::vector<PortId> switch_ports_of(SwitchId s) const;

  /// Neighbouring switches of `s` (one entry per cable, so parallel cables
  /// appear multiple times), in port order.
  [[nodiscard]] std::vector<SwitchId> switch_neighbors(SwitchId s) const;

  /// The output port of `from` for a given cable (which must be incident to
  /// `from` and lead to a switch).
  [[nodiscard]] PortId port_towards(SwitchId from, CableId c) const;

  /// BFS hop distances over the switch graph from `src` (-1 if unreachable).
  [[nodiscard]] std::vector<int> switch_distances_from(SwitchId src) const;

  /// All-pairs switch distances (num_switches x num_switches, row-major).
  [[nodiscard]] std::vector<int> all_switch_distances() const;

  /// True if the switch graph is connected (ignoring hosts).
  [[nodiscard]] bool connected() const;

  /// Structural invariant check: consistent port tables, every host port
  /// matches its attachment, every cable's endpoints point back at it.
  /// Returns a list of human-readable problems (empty when valid).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Directed channel id for cable `c` leaving switch-side endpoint `from`.
  /// For a host cable, `from_host == true` selects the host->switch channel.
  [[nodiscard]] ChannelId channel_from(CableId c, bool from_a) const {
    return 2 * c + (from_a ? 0 : 1);
  }

  /// Directed channel from switch `from` across cable `c` (which must be a
  /// switch-to-switch cable incident to `from`).
  [[nodiscard]] ChannelId channel_from_switch(SwitchId from, CableId c) const;

 private:
  PortPeer& peer_mut(SwitchId s, PortId p);

  std::string name_;
  TopoShape shape_;
  int ports_per_switch_;
  std::vector<std::vector<PortPeer>> ports_;  // [switch][port]
  std::vector<Cable> cables_;
  std::vector<HostAttachment> hosts_;
  std::vector<SwitchPos> pos_;
};

}  // namespace itb
