#include "topo/topology.hpp"

#include <cassert>
#include <deque>
#include <stdexcept>
#include <utility>

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

const char* to_string(TopoKind k) {
  switch (k) {
    case TopoKind::kGeneric: return "generic";
    case TopoKind::kHyperX: return "hyperx";
    case TopoKind::kDragonfly: return "dragonfly";
    case TopoKind::kFullMesh: return "fullmesh";
  }
  return "?";
}

std::optional<TopoKind> topo_kind_from_string(const std::string& name) {
  if (name == "generic") return TopoKind::kGeneric;
  if (name == "hyperx") return TopoKind::kHyperX;
  if (name == "dragonfly") return TopoKind::kDragonfly;
  if (name == "fullmesh") return TopoKind::kFullMesh;
  return std::nullopt;
}

Topology::Topology(int num_switches, int ports_per_switch, std::string name)
    : name_(std::move(name)), ports_per_switch_(ports_per_switch) {
  if (num_switches <= 0 || ports_per_switch <= 0) {
    throw std::invalid_argument("Topology: sizes must be positive");
  }
  ports_.assign(idx(num_switches),
                std::vector<PortPeer>(idx(ports_per_switch)));
  pos_.assign(idx(num_switches), SwitchPos{});
}

PortPeer& Topology::peer_mut(SwitchId s, PortId p) {
  if (s < 0 || s >= num_switches() || p < 0 || p >= ports_per_switch_) {
    throw std::out_of_range("Topology: bad switch/port");
  }
  return ports_[idx(s)][idx(p)];
}

const PortPeer& Topology::peer(SwitchId s, PortId p) const {
  return const_cast<Topology*>(this)->peer_mut(s, p);
}

CableId Topology::connect(SwitchId a, PortId pa, SwitchId b, PortId pb,
                          double length_m) {
  PortPeer& ea = peer_mut(a, pa);
  PortPeer& eb = peer_mut(b, pb);
  if (ea.kind != PeerKind::kNone || eb.kind != PeerKind::kNone) {
    throw std::invalid_argument("Topology::connect: port already in use");
  }
  if (a == b && pa == pb) {
    throw std::invalid_argument("Topology::connect: self-loop on one port");
  }
  const auto id = static_cast<CableId>(cables_.size());
  cables_.push_back(Cable{{a, pa}, {b, pb}, kNoHost, length_m});
  ea = PortPeer{PeerKind::kSwitch, b, pb, kNoHost, id};
  eb = PortPeer{PeerKind::kSwitch, a, pa, kNoHost, id};
  return id;
}

CableId Topology::connect_auto(SwitchId a, SwitchId b, double length_m) {
  const PortId pa = first_free_port(a);
  // Reserve pa mentally before searching b: distinct switches cannot clash,
  // and self-cables (a == b) need two distinct free ports.
  PortId pb = first_free_port(b);
  if (a == b && pb == pa) {
    // find the next free port after pa
    pb = kNoPort;
    for (PortId p = static_cast<PortId>(pa + 1); p < ports_per_switch_; ++p) {
      if (peer(b, p).kind == PeerKind::kNone) {
        pb = p;
        break;
      }
    }
  }
  if (pa == kNoPort || pb == kNoPort) {
    throw std::invalid_argument("Topology::connect_auto: no free port");
  }
  return connect(a, pa, b, pb, length_m);
}

HostId Topology::attach_host(SwitchId sw, PortId port, double length_m) {
  PortPeer& e = peer_mut(sw, port);
  if (e.kind != PeerKind::kNone) {
    throw std::invalid_argument("Topology::attach_host: port already in use");
  }
  const auto h = static_cast<HostId>(hosts_.size());
  const auto id = static_cast<CableId>(cables_.size());
  cables_.push_back(Cable{{sw, port}, {}, h, length_m});
  hosts_.push_back(HostAttachment{sw, port, id});
  e = PortPeer{PeerKind::kHost, kNoSwitch, kNoPort, h, id};
  return h;
}

void Topology::attach_hosts(SwitchId sw, int n, double length_m) {
  for (int i = 0; i < n; ++i) {
    const PortId p = first_free_port(sw);
    if (p == kNoPort) {
      throw std::invalid_argument("Topology::attach_hosts: no free port");
    }
    attach_host(sw, p, length_m);
  }
}

void Topology::set_pos(SwitchId s, int x, int y) {
  pos_[idx(s)] = SwitchPos{x, y};
}

PortId Topology::first_free_port(SwitchId s) const {
  for (PortId p = 0; p < ports_per_switch_; ++p) {
    if (peer(s, p).kind == PeerKind::kNone) return p;
  }
  return kNoPort;
}

int Topology::free_ports(SwitchId s) const {
  int n = 0;
  for (PortId p = 0; p < ports_per_switch_; ++p) {
    if (peer(s, p).kind == PeerKind::kNone) ++n;
  }
  return n;
}

int Topology::switch_degree(SwitchId s) const {
  int n = 0;
  for (PortId p = 0; p < ports_per_switch_; ++p) {
    if (peer(s, p).kind == PeerKind::kSwitch) ++n;
  }
  return n;
}

std::vector<HostId> Topology::hosts_of_switch(SwitchId s) const {
  std::vector<HostId> out;
  for (PortId p = 0; p < ports_per_switch_; ++p) {
    if (peer(s, p).kind == PeerKind::kHost) out.push_back(peer(s, p).host);
  }
  return out;
}

std::vector<PortId> Topology::switch_ports_of(SwitchId s) const {
  std::vector<PortId> out;
  for (PortId p = 0; p < ports_per_switch_; ++p) {
    if (peer(s, p).kind == PeerKind::kSwitch) out.push_back(p);
  }
  return out;
}

std::vector<SwitchId> Topology::switch_neighbors(SwitchId s) const {
  std::vector<SwitchId> out;
  for (PortId p = 0; p < ports_per_switch_; ++p) {
    if (peer(s, p).kind == PeerKind::kSwitch) out.push_back(peer(s, p).sw);
  }
  return out;
}

PortId Topology::port_towards(SwitchId from, CableId c) const {
  const Cable& cb = cable(c);
  if (cb.to_host()) throw std::invalid_argument("port_towards: host cable");
  if (cb.a.sw == from) return cb.a.port;
  if (cb.b.sw == from) return cb.b.port;
  throw std::invalid_argument("port_towards: cable not incident to switch");
}

ChannelId Topology::channel_from_switch(SwitchId from, CableId c) const {
  const Cable& cb = cable(c);
  if (cb.a.sw == from) return channel_from(c, true);
  if (!cb.to_host() && cb.b.sw == from) return channel_from(c, false);
  throw std::invalid_argument("channel_from_switch: not incident");
}

std::vector<int> Topology::switch_distances_from(SwitchId src) const {
  std::vector<int> dist(idx(num_switches()), -1);
  std::deque<SwitchId> q;
  dist[idx(src)] = 0;
  q.push_back(src);
  while (!q.empty()) {
    const SwitchId u = q.front();
    q.pop_front();
    for (PortId p = 0; p < ports_per_switch_; ++p) {
      const PortPeer& e = peer(u, p);
      if (e.kind != PeerKind::kSwitch) continue;
      if (dist[idx(e.sw)] == -1) {
        dist[idx(e.sw)] = dist[idx(u)] + 1;
        q.push_back(e.sw);
      }
    }
  }
  return dist;
}

std::vector<int> Topology::all_switch_distances() const {
  const auto n = idx(num_switches());
  std::vector<int> out(n * n, -1);
  for (SwitchId s = 0; s < num_switches(); ++s) {
    const auto row = switch_distances_from(s);
    for (std::size_t j = 0; j < n; ++j) out[idx(s) * n + j] = row[j];
  }
  return out;
}

bool Topology::connected() const {
  const auto dist = switch_distances_from(0);
  for (const int d : dist) {
    if (d < 0) return false;
  }
  return true;
}

std::vector<std::string> Topology::validate() const {
  std::vector<std::string> problems;
  auto complain = [&](std::string msg) { problems.push_back(std::move(msg)); };

  for (CableId c = 0; c < num_cables(); ++c) {
    const Cable& cb = cable(c);
    const PortPeer& ea = peer(cb.a.sw, cb.a.port);
    if (ea.cable != c) {
      complain("cable " + std::to_string(c) + ": A-side port table mismatch");
    }
    if (cb.to_host()) {
      if (ea.kind != PeerKind::kHost || ea.host != cb.host) {
        complain("cable " + std::to_string(c) + ": host peer mismatch");
      }
      const HostAttachment& ha = host(cb.host);
      if (ha.sw != cb.a.sw || ha.port != cb.a.port || ha.cable != c) {
        complain("host " + std::to_string(cb.host) + ": attachment mismatch");
      }
    } else {
      const PortPeer& eb = peer(cb.b.sw, cb.b.port);
      if (ea.kind != PeerKind::kSwitch || ea.sw != cb.b.sw ||
          ea.port != cb.b.port) {
        complain("cable " + std::to_string(c) + ": A-side peer mismatch");
      }
      if (eb.kind != PeerKind::kSwitch || eb.sw != cb.a.sw ||
          eb.port != cb.a.port || eb.cable != c) {
        complain("cable " + std::to_string(c) + ": B-side peer mismatch");
      }
    }
  }

  // Every in-use port must be claimed by exactly the cable it names.
  for (SwitchId s = 0; s < num_switches(); ++s) {
    for (PortId p = 0; p < ports_per_switch_; ++p) {
      const PortPeer& e = peer(s, p);
      if (e.kind == PeerKind::kNone) continue;
      if (e.cable < 0 || e.cable >= num_cables()) {
        complain("switch " + std::to_string(s) + " port " + std::to_string(p) +
                 ": dangling cable id");
        continue;
      }
      const Cable& cb = cable(e.cable);
      const bool matches_a = cb.a.sw == s && cb.a.port == p;
      const bool matches_b = !cb.to_host() && cb.b.sw == s && cb.b.port == p;
      if (!matches_a && !matches_b) {
        complain("switch " + std::to_string(s) + " port " + std::to_string(p) +
                 ": cable does not terminate here");
      }
    }
  }
  return problems;
}

}  // namespace itb
