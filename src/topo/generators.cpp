#include "topo/generators.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace itb {

namespace {

/// Wire every switch's hosts after the switch fabric is complete, so host
/// ids are dense per switch: switch s owns hosts [s*h, (s+1)*h).
void attach_all_hosts(Topology& t, int hosts_per_switch) {
  for (SwitchId s = 0; s < t.num_switches(); ++s) {
    t.attach_hosts(s, hosts_per_switch);
  }
}

}  // namespace

Topology make_torus_2d(int rows, int cols, int hosts_per_switch,
                       int ports_per_switch) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("make_torus_2d: rows/cols must be >= 2");
  }
  Topology t(rows * cols, ports_per_switch,
             "torus-" + std::to_string(rows) + "x" + std::to_string(cols));
  auto id = [cols](int r, int c) { return static_cast<SwitchId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      t.set_pos(id(r, c), c, r);
      t.connect_auto(id(r, c), id(r, (c + 1) % cols));  // +x
      t.connect_auto(id(r, c), id((r + 1) % rows, c));  // +y
    }
  }
  attach_all_hosts(t, hosts_per_switch);
  return t;
}

Topology make_torus_2d_express(int rows, int cols, int hosts_per_switch,
                               int ports_per_switch) {
  if (rows < 5 || cols < 5) {
    throw std::invalid_argument(
        "make_torus_2d_express: rows/cols must be >= 5 so express and "
        "regular neighbours are distinct (got rows=" + std::to_string(rows) +
        ", cols=" + std::to_string(cols) + ")");
  }
  Topology t(rows * cols, ports_per_switch,
             "torus-express-" + std::to_string(rows) + "x" +
                 std::to_string(cols));
  auto id = [cols](int r, int c) { return static_cast<SwitchId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      t.set_pos(id(r, c), c, r);
      t.connect_auto(id(r, c), id(r, (c + 1) % cols));  // +x
      t.connect_auto(id(r, c), id((r + 1) % rows, c));  // +y
      t.connect_auto(id(r, c), id(r, (c + 2) % cols));  // +2x express
      t.connect_auto(id(r, c), id((r + 2) % rows, c));  // +2y express
    }
  }
  attach_all_hosts(t, hosts_per_switch);
  return t;
}

Topology make_cplant() {
  constexpr int kGroups = 6;
  constexpr int kGroupSize = 8;  // 3-cube plus complement cable
  constexpr int kSwitches = kGroups * kGroupSize + 2;  // 50
  constexpr int kHostsPerSwitch = 8;                   // 400 hosts total
  Topology t(kSwitches, 16, "cplant");

  auto sw = [](int group, int index) {
    return static_cast<SwitchId>(group * kGroupSize + index);
  };

  // Intra-group fabric: 3-cube plus a cable to the complement switch.
  for (int g = 0; g < kGroups; ++g) {
    for (int i = 0; i < kGroupSize; ++i) {
      for (int bit = 0; bit < 3; ++bit) {
        const int j = i ^ (1 << bit);
        if (i < j) t.connect_auto(sw(g, i), sw(g, j));
      }
      const int comp = i ^ 0b111;
      if (i < comp) t.connect_auto(sw(g, i), sw(g, comp));
    }
  }

  // Inter-group fabric: groups labelled 0..5 form the 6-vertex incomplete
  // 3-cube (vertices 6 and 7 absent) plus the two complement pairs that
  // exist, (2,5) and (3,4).  Equivalent switches (same index) are joined.
  const std::vector<std::pair<int, int>> group_pairs = {
      {0, 1}, {0, 2}, {0, 4}, {1, 3}, {1, 5}, {2, 3}, {4, 5},  // cube edges
      {2, 5}, {3, 4},                                          // complements
  };
  for (const auto& [g1, g2] : group_pairs) {
    for (int i = 0; i < kGroupSize; ++i) {
      t.connect_auto(sw(g1, i), sw(g2, i));
    }
  }

  // The additional 2-switch group: one switch fans out to each switch of
  // group 0, the other to each switch of group 1.
  const SwitchId extra0 = kGroups * kGroupSize;      // 48
  const SwitchId extra1 = kGroups * kGroupSize + 1;  // 49
  for (int i = 0; i < kGroupSize; ++i) {
    t.connect_auto(extra0, sw(0, i));
    t.connect_auto(extra1, sw(1, i));
  }

  // Layout for utilization maps: groups side by side, the extra pair below.
  for (int g = 0; g < kGroups; ++g) {
    for (int i = 0; i < kGroupSize; ++i) {
      t.set_pos(sw(g, i), g * 3 + (i % 2), i / 2);
    }
  }
  t.set_pos(extra0, 0, kGroupSize / 2 + 1);
  t.set_pos(extra1, 3, kGroupSize / 2 + 1);

  attach_all_hosts(t, kHostsPerSwitch);
  return t;
}

Topology make_kary_ncube(int k, int n, int hosts_per_switch,
                         int ports_per_switch) {
  if (k < 2 || n < 1) {
    throw std::invalid_argument("make_kary_ncube: need k >= 2, n >= 1");
  }
  double count = 1;
  for (int d = 0; d < n; ++d) count *= k;
  if (count > 4096) {
    throw std::invalid_argument("make_kary_ncube: too many switches");
  }
  const int switches = static_cast<int>(count);
  Topology t(switches, ports_per_switch,
             "kary-" + std::to_string(k) + "-" + std::to_string(n));

  // Mixed-radix coordinates; stride[d] = k^d.
  std::vector<int> stride(static_cast<std::size_t>(n), 1);
  for (int d = 1; d < n; ++d) {
    stride[static_cast<std::size_t>(d)] = stride[static_cast<std::size_t>(d - 1)] * k;
  }
  auto digit = [&](int s, int d) { return (s / stride[static_cast<std::size_t>(d)]) % k; };
  for (int s = 0; s < switches; ++s) {
    for (int d = 0; d < n; ++d) {
      // Connect only the +1 direction; -1 is the neighbour's +1.  For
      // k == 2 both directions coincide, so connect once (from the lower
      // digit) to avoid a duplicate cable.
      const int dig = digit(s, d);
      const int up = s - dig * stride[static_cast<std::size_t>(d)] +
                     ((dig + 1) % k) * stride[static_cast<std::size_t>(d)];
      if (k == 2 && dig == 1) continue;
      t.connect_auto(s, up);
    }
    // A planar-ish layout for utilization maps: first two dims.
    t.set_pos(s, digit(s, 0), n > 1 ? digit(s, 1) : 0);
  }
  attach_all_hosts(t, hosts_per_switch);
  return t;
}

Topology make_hypercube(int dims, int hosts_per_switch, int ports_per_switch) {
  if (dims < 1 || dims > 16) {
    throw std::invalid_argument("make_hypercube: dims out of range");
  }
  const int n = 1 << dims;
  Topology t(n, ports_per_switch, "hypercube-" + std::to_string(dims));
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < dims; ++d) {
      const int j = i ^ (1 << d);
      if (i < j) t.connect_auto(i, j);
    }
    t.set_pos(i, i % 4, i / 4);
  }
  attach_all_hosts(t, hosts_per_switch);
  return t;
}

Topology make_mesh_2d(int rows, int cols, int hosts_per_switch,
                      int ports_per_switch) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("make_mesh_2d: empty mesh");
  }
  Topology t(rows * cols, ports_per_switch,
             "mesh-" + std::to_string(rows) + "x" + std::to_string(cols));
  auto id = [cols](int r, int c) { return static_cast<SwitchId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      t.set_pos(id(r, c), c, r);
      if (c + 1 < cols) t.connect_auto(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.connect_auto(id(r, c), id(r + 1, c));
    }
  }
  attach_all_hosts(t, hosts_per_switch);
  return t;
}

Topology make_hyperx(const std::vector<int>& S, int hosts_per_switch,
                     int ports_per_switch) {
  if (S.empty()) {
    throw std::invalid_argument("make_hyperx: need at least one dimension");
  }
  if (hosts_per_switch < 0) {
    throw std::invalid_argument("make_hyperx: hosts_per_switch must be >= 0 (got " +
                                std::to_string(hosts_per_switch) + ")");
  }
  std::int64_t count = 1;
  int degree = 0;
  for (std::size_t d = 0; d < S.size(); ++d) {
    if (S[d] < 1) {
      throw std::invalid_argument("make_hyperx: S[" + std::to_string(d) +
                                  "] must be >= 1 (got " +
                                  std::to_string(S[d]) + ")");
    }
    count *= S[d];
    degree += S[d] - 1;
    if (count > 65536) {
      throw std::invalid_argument("make_hyperx: too many switches");
    }
  }
  if (count < 2) {
    throw std::invalid_argument("make_hyperx: degenerate shape (1 switch)");
  }
  const int need = degree + hosts_per_switch;
  if (ports_per_switch == 0) ports_per_switch = need;
  if (ports_per_switch < need) {
    throw std::invalid_argument(
        "make_hyperx: ports_per_switch=" + std::to_string(ports_per_switch) +
        " < degree+hosts=" + std::to_string(need));
  }

  std::string name = "hyperx-";
  for (std::size_t d = 0; d < S.size(); ++d) {
    if (d) name += "x";
    name += std::to_string(S[d]);
  }
  const int switches = static_cast<int>(count);
  Topology t(switches, ports_per_switch, name);

  // Mixed-radix coordinates, dimension 0 fastest: stride[d] = prod(S_0..S_{d-1}).
  const int dims = static_cast<int>(S.size());
  std::vector<int> stride(S.size(), 1);
  for (int d = 1; d < dims; ++d) {
    stride[static_cast<std::size_t>(d)] =
        stride[static_cast<std::size_t>(d - 1)] * S[static_cast<std::size_t>(d - 1)];
  }
  auto digit = [&](int s, int d) {
    return (s / stride[static_cast<std::size_t>(d)]) % S[static_cast<std::size_t>(d)];
  };
  // Per dimension, each line of S_d co-aligned switches forms a clique;
  // connect each switch to the higher digits only so every pair gets one cable.
  for (int s = 0; s < switches; ++s) {
    for (int d = 0; d < dims; ++d) {
      const int dig = digit(s, d);
      for (int j = dig + 1; j < S[static_cast<std::size_t>(d)]; ++j) {
        t.connect_auto(s, s + (j - dig) * stride[static_cast<std::size_t>(d)]);
      }
    }
    t.set_pos(s, digit(s, 0), dims > 1 ? digit(s, 1) : 0);
  }
  attach_all_hosts(t, hosts_per_switch);

  TopoShape shape;
  shape.kind = TopoKind::kHyperX;
  shape.params.push_back(dims);
  for (const int sk : S) shape.params.push_back(sk);
  shape.params.push_back(hosts_per_switch);
  t.set_shape(std::move(shape));
  return t;
}

Topology make_dragonfly(int a, int p, int h,
                        DragonflyArrangement arrangement,
                        int ports_per_switch) {
  if (a < 2) {
    throw std::invalid_argument("make_dragonfly: a must be >= 2 (got " +
                                std::to_string(a) + ")");
  }
  if (p < 0) {
    throw std::invalid_argument("make_dragonfly: p must be >= 0 (got " +
                                std::to_string(p) + ")");
  }
  if (h < 1) {
    throw std::invalid_argument("make_dragonfly: h must be >= 1 (got " +
                                std::to_string(h) + ")");
  }
  const int groups = a * h + 1;  // every group pair shares one global cable
  const std::int64_t count = static_cast<std::int64_t>(groups) * a;
  if (count > 65536) {
    throw std::invalid_argument("make_dragonfly: too many switches");
  }
  const int need = (a - 1) + h + p;
  if (ports_per_switch == 0) ports_per_switch = need;
  if (ports_per_switch < need) {
    throw std::invalid_argument(
        "make_dragonfly: ports_per_switch=" + std::to_string(ports_per_switch) +
        " < (a-1)+h+p=" + std::to_string(need));
  }

  std::string name = "dragonfly-" + std::to_string(a) + "-" +
                     std::to_string(p) + "-" + std::to_string(h);
  if (arrangement == DragonflyArrangement::kAbsolute) name += "-abs";
  Topology t(static_cast<int>(count), ports_per_switch, name);

  auto sw = [a](int g, int i) { return static_cast<SwitchId>(g * a + i); };

  // Intra-group full mesh.
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < a; ++i) {
      for (int j = i + 1; j < a; ++j) t.connect_auto(sw(g, i), sw(g, j));
    }
  }

  // Global links: group g exposes a*h global slots, slot k owned by switch
  // k/h.  Each of the G*(G-1)/2 group pairs gets exactly one cable.
  const int slots = a * h;
  if (arrangement == DragonflyArrangement::kPalmtree) {
    // Slot k of group g reaches group (g - k - 1) mod G; the reverse link
    // sits in slot G - 2 - k there, so each cable is created from the lower
    // group id only.
    for (int g = 0; g < groups; ++g) {
      for (int k = 0; k < slots; ++k) {
        const int peer = (g - k - 1 + groups) % groups;
        if (g >= peer) continue;
        const int peer_slot = groups - 2 - k;
        t.connect_auto(sw(g, k / h), sw(peer, peer_slot / h));
      }
    }
  } else {
    // Absolute: pair (g1 < g2) uses slot g2-1 at g1 and slot g1 at g2.
    for (int g1 = 0; g1 < groups; ++g1) {
      for (int g2 = g1 + 1; g2 < groups; ++g2) {
        t.connect_auto(sw(g1, (g2 - 1) / h), sw(g2, g1 / h));
      }
    }
  }

  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < a; ++i) t.set_pos(sw(g, i), g, i);
  }
  attach_all_hosts(t, p);

  TopoShape shape;
  shape.kind = TopoKind::kDragonfly;
  shape.params = {a, p, h, static_cast<int>(arrangement)};
  t.set_shape(std::move(shape));
  return t;
}

Topology make_full_mesh(int num_switches, int hosts_per_switch,
                        int ports_per_switch) {
  if (num_switches < 2) {
    throw std::invalid_argument("make_full_mesh: need >= 2 switches (got " +
                                std::to_string(num_switches) + ")");
  }
  if (num_switches > 1024) {
    throw std::invalid_argument("make_full_mesh: too many switches (got " +
                                std::to_string(num_switches) + ")");
  }
  if (hosts_per_switch < 0) {
    throw std::invalid_argument("make_full_mesh: hosts_per_switch must be >= 0");
  }
  const int need = (num_switches - 1) + hosts_per_switch;
  if (ports_per_switch == 0) ports_per_switch = need;
  if (ports_per_switch < need) {
    throw std::invalid_argument(
        "make_full_mesh: ports_per_switch=" + std::to_string(ports_per_switch) +
        " < degree+hosts=" + std::to_string(need));
  }
  Topology t(num_switches, ports_per_switch,
             "fullmesh-" + std::to_string(num_switches));
  for (SwitchId i = 0; i < num_switches; ++i) {
    for (SwitchId j = i + 1; j < num_switches; ++j) t.connect_auto(i, j);
  }
  // Square-ish grid layout for utilization maps.
  int side = 1;
  while (side * side < num_switches) ++side;
  for (SwitchId s = 0; s < num_switches; ++s) {
    t.set_pos(s, s % side, s / side);
  }
  attach_all_hosts(t, hosts_per_switch);

  TopoShape shape;
  shape.kind = TopoKind::kFullMesh;
  shape.params = {num_switches, hosts_per_switch};
  t.set_shape(std::move(shape));
  return t;
}

Topology make_irregular(int num_switches, int hosts_per_switch,
                        int max_switch_ports, Rng& rng,
                        int ports_per_switch) {
  if (num_switches < 2) {
    throw std::invalid_argument("make_irregular: need >= 2 switches");
  }
  if (max_switch_ports + hosts_per_switch > ports_per_switch) {
    throw std::invalid_argument("make_irregular: port budget exceeded");
  }
  Topology t(num_switches, ports_per_switch,
             "irregular-" + std::to_string(num_switches));

  std::vector<int> used(static_cast<std::size_t>(num_switches), 0);
  auto adjacent = [&](SwitchId a, SwitchId b) {
    for (const SwitchId n : t.switch_neighbors(a)) {
      if (n == b) return true;
    }
    return false;
  };

  // Candidate pairs in random order.
  std::vector<std::pair<SwitchId, SwitchId>> pairs;
  for (SwitchId a = 0; a < num_switches; ++a) {
    for (SwitchId b = a + 1; b < num_switches; ++b) pairs.emplace_back(a, b);
  }
  for (std::size_t i = pairs.size(); i > 1; --i) {
    std::swap(pairs[i - 1], pairs[rng.next_below(i)]);
  }
  for (const auto& [a, b] : pairs) {
    if (used[static_cast<std::size_t>(a)] >= max_switch_ports ||
        used[static_cast<std::size_t>(b)] >= max_switch_ports) {
      continue;
    }
    // Leave some randomness in the density: accept with probability 1/2.
    if (!rng.next_bool(0.5)) continue;
    t.connect_auto(a, b);
    ++used[static_cast<std::size_t>(a)];
    ++used[static_cast<std::size_t>(b)];
  }

  // Repair connectivity: repeatedly join the component of switch 0 with any
  // unreachable switch, using endpoints that still have port budget (fall
  // back to any endpoint if the budget is exhausted — physical networks get
  // cabled up even when it spoils symmetry).
  for (;;) {
    const auto dist = t.switch_distances_from(0);
    SwitchId orphan = kNoSwitch;
    for (SwitchId s = 0; s < num_switches; ++s) {
      if (dist[static_cast<std::size_t>(s)] < 0) {
        orphan = s;
        break;
      }
    }
    if (orphan == kNoSwitch) break;
    SwitchId anchor = kNoSwitch;
    for (SwitchId s = 0; s < num_switches; ++s) {
      if (dist[static_cast<std::size_t>(s)] >= 0 &&
          used[static_cast<std::size_t>(s)] < max_switch_ports &&
          !adjacent(s, orphan)) {
        anchor = s;
        break;
      }
    }
    if (anchor == kNoSwitch) anchor = 0;
    t.connect_auto(anchor, orphan);
    ++used[static_cast<std::size_t>(anchor)];
    ++used[static_cast<std::size_t>(orphan)];
  }

  attach_all_hosts(t, hosts_per_switch);
  return t;
}

}  // namespace itb
