file(REMOVE_RECURSE
  "CMakeFiles/itb_topo.dir/generators.cpp.o"
  "CMakeFiles/itb_topo.dir/generators.cpp.o.d"
  "CMakeFiles/itb_topo.dir/io.cpp.o"
  "CMakeFiles/itb_topo.dir/io.cpp.o.d"
  "CMakeFiles/itb_topo.dir/topology.cpp.o"
  "CMakeFiles/itb_topo.dir/topology.cpp.o.d"
  "libitb_topo.a"
  "libitb_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
