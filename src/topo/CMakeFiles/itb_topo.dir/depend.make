# Empty dependencies file for itb_topo.
# This may be replaced when dependencies are built.
