file(REMOVE_RECURSE
  "libitb_topo.a"
)
