// Plain-text serialisation of topologies, in the spirit of Myrinet map
// files: a network is fully described by its switches, cables and host
// attachments, so clusters can be described in a file and loaded by the
// examples/CLI instead of being hard-coded.
//
// Format (one directive per line, '#' starts a comment):
//
//   topology <name>
//   switches <count> <ports-per-switch>
//   shape <kind> [params...]
//   cable <switch-a> <port-a> <switch-b> <port-b> [length-m]
//   host <switch> <port> [length-m]
//   pos <switch> <x> <y>
//
// `switches` must precede any shape/cable/host/pos line.  Hosts are numbered
// in file order (matching Topology's dense ids).  `shape` records generator
// metadata (TopoShape) so structured-topology routing survives a file
// round-trip; it never changes the wiring.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "topo/topology.hpp"

namespace itb {

/// Parse failure: carries the 1-based line number and a reason.
class TopologyParseError : public std::runtime_error {
 public:
  TopologyParseError(int line, const std::string& reason)
      : std::runtime_error("line " + std::to_string(line) + ": " + reason),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Parse a topology from a stream / string.  Throws TopologyParseError on
/// malformed input and std::invalid_argument on semantically invalid
/// wiring (double-used ports etc., surfaced from Topology).
[[nodiscard]] Topology parse_topology(std::istream& in);
[[nodiscard]] Topology parse_topology_string(const std::string& text);

/// Load from a file; throws std::runtime_error when unreadable.
[[nodiscard]] Topology load_topology(const std::string& path);

/// Serialise; parse_topology_string(serialize_topology(t)) reproduces the
/// topology exactly (names, cables, host order, positions).
[[nodiscard]] std::string serialize_topology(const Topology& topo);

/// Write to a file; throws std::runtime_error when unwritable.
void save_topology(const Topology& topo, const std::string& path);

}  // namespace itb
