// Topology generators for the networks evaluated in the paper plus a few
// auxiliary families used by tests and examples.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace itb {

/// 2-D torus of rows x cols switches (paper: 8x8, 16-port switches, 8 hosts
/// per switch -> 512 hosts, 4 ports left open per switch).  Each switch is
/// connected to its four wrap-around neighbours with single cables.
Topology make_torus_2d(int rows, int cols, int hosts_per_switch,
                       int ports_per_switch = 16);

/// 2-D torus with express channels (Dally '91): the plain torus plus cables
/// to the second-order (two hops away) neighbour in each dimension (paper:
/// all 16 ports used).  Requires rows, cols >= 5 so that regular and express
/// neighbours are distinct and no port is double-booked.
Topology make_torus_2d_express(int rows, int cols, int hosts_per_switch,
                               int ports_per_switch = 16);

/// The CPLANT network at Sandia (paper Figure 6): 50 16-port switches and
/// 400 hosts.  48 switches form 6 groups of 8; each group is a 3-cube with
/// an extra intra-group cable to the complement (farthest) switch.  Groups
/// are themselves wired as an incomplete 3-cube over labels 0..5 (plus the
/// complement pairs (2,5) and (3,4)) through "equivalent" switches, and the
/// remaining two switches form an extra group attached to groups 0 and 1.
/// The paper notes the real machine is "not completely regular"; this
/// follows the paper's description where it is explicit and fills the gaps
/// symmetrically (see DESIGN.md).
Topology make_cplant();

/// n-dimensional hypercube (2^n switches), used by unit tests.
Topology make_hypercube(int dims, int hosts_per_switch, int ports_per_switch);

/// General k-ary n-cube: k^n switches, each connected to its +1/-1
/// neighbour (mod k) in every dimension.  k == 2 collapses both
/// directions onto a single cable per dimension (a hypercube); the 2-D
/// torus of the paper is the k=8, n=2 member.  Extension experiments use
/// the 3-D torus (k=4, n=3: 64 switches, like the paper's networks).
Topology make_kary_ncube(int k, int n, int hosts_per_switch,
                         int ports_per_switch = 16);

/// 2-D mesh without wrap-around, used by unit tests.
Topology make_mesh_2d(int rows, int cols, int hosts_per_switch,
                      int ports_per_switch = 16);

/// L-dimensional HyperX (Ahn et al., SC'09): switches carry mixed-radix
/// coordinates over the per-dimension sizes `S = {S_1..S_L}` and every pair
/// of switches that differ in exactly one coordinate is directly cabled (a
/// clique per dimension per line).  N = prod(S_k) switches, switch degree
/// sum(S_k - 1), diameter = |{k : S_k > 1}| (one hop fixes one coordinate).
/// `ports_per_switch == 0` sizes the switch exactly (degree + hosts).
/// Dimension-order minimal source routes are deadlock-free without VCs.
Topology make_hyperx(const std::vector<int>& S, int hosts_per_switch,
                     int ports_per_switch = 0);

/// Global-link arrangement for make_dragonfly: which group a given global
/// port of a given group reaches (Camarero et al. nomenclature).
enum class DragonflyArrangement : std::uint8_t {
  kPalmtree = 0,  // slot k of group g reaches group (g - k - 1) mod G
  kAbsolute = 1,  // pair (g1 < g2) uses slot g2-1 at g1 and slot g1 at g2
};

/// Canonical (maximal) Dragonfly (Kim et al., ISCA'08): `a` switches per
/// group wired as a full mesh, `p` hosts per switch, `h` global ports per
/// switch, G = a*h + 1 groups so every group pair is joined by exactly one
/// global cable.  N = G*a switches, degree (a-1) + h, diameter 3
/// (local, global, local).  Switch ids are g*a + i.  Minimal l-g-l routes
/// can deadlock without VCs — the ITB schemes are the deadlock-free fix.
Topology make_dragonfly(int a, int p, int h,
                        DragonflyArrangement arrangement =
                            DragonflyArrangement::kPalmtree,
                        int ports_per_switch = 0);

/// Full mesh K_n: every switch pair directly cabled.  Degree n-1,
/// diameter 1; direct single-hop routes are trivially deadlock-free.
Topology make_full_mesh(int num_switches, int hosts_per_switch,
                        int ports_per_switch = 0);

/// Random connected irregular network in the style of the authors' earlier
/// NOW papers: each switch devotes at most `max_switch_ports` ports to other
/// switches; cables are added uniformly at random subject to port limits and
/// no parallel cables, then connectivity is repaired by joining components.
Topology make_irregular(int num_switches, int hosts_per_switch,
                        int max_switch_ports, Rng& rng,
                        int ports_per_switch = 16);

}  // namespace itb
