// Identifier types shared across the topology, routing and network layers.
#pragma once

#include <cstdint>

namespace itb {

/// Index of a switch within a Topology, in [0, num_switches).
using SwitchId = std::int32_t;

/// Index of a host within a Topology, in [0, num_hosts).
using HostId = std::int32_t;

/// Port number on a switch, in [0, ports_per_switch).  Myrinet switches in
/// the paper have 16 ports.
using PortId = std::int16_t;

/// Index of a full-duplex cable within a Topology.
using CableId = std::int32_t;

/// Index of one *unidirectional* channel.  Cable c contributes channels
/// 2c (A-side to B-side) and 2c+1 (B-side to A-side).
using ChannelId = std::int32_t;

inline constexpr SwitchId kNoSwitch = -1;
inline constexpr HostId kNoHost = -1;
inline constexpr PortId kNoPort = -1;
inline constexpr CableId kNoCable = -1;

/// What is plugged into a switch port.
enum class PeerKind : std::uint8_t { kNone, kSwitch, kHost };

}  // namespace itb
