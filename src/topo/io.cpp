#include "topo/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

namespace itb {

namespace {

// Split a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok.front() == '#') break;
    out.push_back(tok);
  }
  return out;
}

int parse_int(const std::string& tok, int line, const char* what) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(tok, &used);
    if (used != tok.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw TopologyParseError(line, std::string("bad integer for ") + what +
                                       ": '" + tok + "'");
  }
}

double parse_double(const std::string& tok, int line, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw TopologyParseError(line, std::string("bad number for ") + what +
                                       ": '" + tok + "'");
  }
}

}  // namespace

Topology parse_topology(std::istream& in) {
  std::optional<Topology> topo;
  std::string name = "custom";
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& kind = tok[0];

    if (kind == "topology") {
      if (tok.size() != 2) {
        throw TopologyParseError(lineno, "topology expects: topology <name>");
      }
      name = tok[1];
      if (topo) throw TopologyParseError(lineno, "topology after switches");
    } else if (kind == "switches") {
      if (tok.size() != 3) {
        throw TopologyParseError(lineno,
                                 "switches expects: switches <count> <ports>");
      }
      if (topo) throw TopologyParseError(lineno, "duplicate switches line");
      const int count = parse_int(tok[1], lineno, "switch count");
      const int ports = parse_int(tok[2], lineno, "port count");
      if (count <= 0 || ports <= 0) {
        throw TopologyParseError(lineno, "switches/ports must be positive");
      }
      topo.emplace(count, ports, name);
    } else if (kind == "shape") {
      if (!topo) throw TopologyParseError(lineno, "shape before switches");
      if (tok.size() < 2) {
        throw TopologyParseError(lineno,
                                 "shape expects: shape <kind> [params...]");
      }
      const auto k = topo_kind_from_string(tok[1]);
      if (!k) {
        throw TopologyParseError(lineno, "unknown shape kind '" + tok[1] + "'");
      }
      TopoShape shape;
      shape.kind = *k;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        shape.params.push_back(parse_int(tok[i], lineno, "shape param"));
      }
      topo->set_shape(std::move(shape));
    } else if (kind == "cable") {
      if (!topo) throw TopologyParseError(lineno, "cable before switches");
      if (tok.size() != 5 && tok.size() != 6) {
        throw TopologyParseError(
            lineno, "cable expects: cable <a> <pa> <b> <pb> [length]");
      }
      const int a = parse_int(tok[1], lineno, "switch a");
      const int pa = parse_int(tok[2], lineno, "port a");
      const int b = parse_int(tok[3], lineno, "switch b");
      const int pb = parse_int(tok[4], lineno, "port b");
      const double len =
          tok.size() == 6 ? parse_double(tok[5], lineno, "length") : 10.0;
      try {
        topo->connect(a, static_cast<PortId>(pa), b, static_cast<PortId>(pb),
                      len);
      } catch (const std::exception& e) {
        throw TopologyParseError(lineno, e.what());
      }
    } else if (kind == "host") {
      if (!topo) throw TopologyParseError(lineno, "host before switches");
      if (tok.size() != 3 && tok.size() != 4) {
        throw TopologyParseError(lineno,
                                 "host expects: host <switch> <port> [length]");
      }
      const int sw = parse_int(tok[1], lineno, "switch");
      const int port = parse_int(tok[2], lineno, "port");
      const double len =
          tok.size() == 4 ? parse_double(tok[3], lineno, "length") : 10.0;
      try {
        topo->attach_host(sw, static_cast<PortId>(port), len);
      } catch (const std::exception& e) {
        throw TopologyParseError(lineno, e.what());
      }
    } else if (kind == "pos") {
      if (!topo) throw TopologyParseError(lineno, "pos before switches");
      if (tok.size() != 4) {
        throw TopologyParseError(lineno, "pos expects: pos <switch> <x> <y>");
      }
      const int sw = parse_int(tok[1], lineno, "switch");
      if (sw < 0 || sw >= topo->num_switches()) {
        throw TopologyParseError(lineno, "pos switch out of range");
      }
      topo->set_pos(sw, parse_int(tok[2], lineno, "x"),
                    parse_int(tok[3], lineno, "y"));
    } else {
      throw TopologyParseError(lineno, "unknown directive '" + kind + "'");
    }
  }
  if (!topo) throw TopologyParseError(lineno, "missing switches line");
  return std::move(*topo);
}

Topology parse_topology_string(const std::string& text) {
  std::istringstream is(text);
  return parse_topology(is);
}

Topology load_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("load_topology: cannot read " + path);
  }
  return parse_topology(in);
}

std::string serialize_topology(const Topology& topo) {
  std::ostringstream os;
  os << "topology " << topo.name() << "\n";
  os << "switches " << topo.num_switches() << " " << topo.ports_per_switch()
     << "\n";
  if (topo.shape().kind != TopoKind::kGeneric) {
    os << "shape " << to_string(topo.shape().kind);
    for (const int p : topo.shape().params) os << " " << p;
    os << "\n";
  }
  for (CableId c = 0; c < topo.num_cables(); ++c) {
    const Cable& cb = topo.cable(c);
    if (cb.to_host()) continue;  // emitted as host lines below, in order
    os << "cable " << cb.a.sw << " " << cb.a.port << " " << cb.b.sw << " "
       << cb.b.port;
    if (cb.length_m != 10.0) os << " " << cb.length_m;
    os << "\n";
  }
  for (HostId h = 0; h < topo.num_hosts(); ++h) {
    const HostAttachment& at = topo.host(h);
    os << "host " << at.sw << " " << at.port;
    const double len = topo.cable(at.cable).length_m;
    if (len != 10.0) os << " " << len;
    os << "\n";
  }
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    const SwitchPos p = topo.pos(s);
    if (p.x != 0 || p.y != 0) {
      os << "pos " << s << " " << p.x << " " << p.y << "\n";
    }
  }
  return os.str();
}

void save_topology(const Topology& topo, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    throw std::runtime_error("save_topology: cannot write " + path);
  }
  out << serialize_topology(topo);
}

}  // namespace itb
