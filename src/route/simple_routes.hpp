// Emulation of Myricom GM's `simple_routes` route selection.
//
// GM computes the set of up*/down* paths and then selects ONE path per
// source-destination pair, balancing traffic across links via link weights.
// The paper notes two properties we preserve:
//   * the selected path may be a *non-minimal* legal path — GM optimizes
//     balance over the legal shortest paths it found, and legal shortest
//     paths are themselves often longer than true minimal paths;
//   * using simple_routes' balanced selection beats naively taking any
//     minimal legal path, so it is the right baseline for UP/DOWN.
//
// Our emulation: for every ordered switch pair, enumerate up to
// `max_candidates` shortest legal paths; process pairs in a seeded random
// order; pick the candidate minimizing (max directed-channel weight along
// the path, then total weight, then candidate index) and charge one unit of
// weight to each directed channel it crosses.  `refine_passes` additional
// passes re-place every route after removing its own charge, which lets
// early (greedy) decisions be revisited.
#pragma once

#include <cstdint>
#include <vector>

#include "route/switch_path.hpp"
#include "route/updown.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace itb {

/// Balancing objective when choosing among a pair's candidate paths.
enum class BalanceObjective {
  kMinMax,  // minimise the hottest channel on the path (default)
  kMinSum,  // minimise total weight along the path
};

struct SimpleRoutesOptions {
  int max_candidates = 16;
  int refine_passes = 2;
  std::uint64_t seed = 1;
  BalanceObjective objective = BalanceObjective::kMinMax;
};

class SimpleRoutes {
 public:
  /// Computes one legal path per ordered switch pair.
  SimpleRoutes(const Topology& topo, const UpDown& ud,
               SimpleRoutesOptions opts = {});

  /// Selected path for the ordered pair (s, d); s == d yields the trivial
  /// single-switch path.
  [[nodiscard]] const SwitchPath& route(SwitchId s, SwitchId d) const {
    return routes_[key(s, d)];
  }

  /// Final directed-channel weights (route count per channel), exposed for
  /// tests and the path-statistics bench.
  [[nodiscard]] const std::vector<int>& channel_weights() const {
    return weight_;
  }

 private:
  [[nodiscard]] std::size_t key(SwitchId s, SwitchId d) const {
    return static_cast<std::size_t>(s) *
               static_cast<std::size_t>(num_switches_) +
           static_cast<std::size_t>(d);
  }
  void charge(const SwitchPath& p, int delta);
  [[nodiscard]] std::size_t pick_best(
      const std::vector<SwitchPath>& candidates) const;

  const Topology* topo_;
  BalanceObjective objective_ = BalanceObjective::kMinMax;
  int num_switches_;
  std::vector<SwitchPath> routes_;  // [s * S + d]
  std::vector<int> weight_;         // per directed channel
};

}  // namespace itb
