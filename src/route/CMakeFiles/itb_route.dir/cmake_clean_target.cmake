file(REMOVE_RECURSE
  "libitb_route.a"
)
