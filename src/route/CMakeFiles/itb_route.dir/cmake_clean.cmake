file(REMOVE_RECURSE
  "CMakeFiles/itb_route.dir/minimal_paths.cpp.o"
  "CMakeFiles/itb_route.dir/minimal_paths.cpp.o.d"
  "CMakeFiles/itb_route.dir/simple_routes.cpp.o"
  "CMakeFiles/itb_route.dir/simple_routes.cpp.o.d"
  "CMakeFiles/itb_route.dir/switch_path.cpp.o"
  "CMakeFiles/itb_route.dir/switch_path.cpp.o.d"
  "CMakeFiles/itb_route.dir/topo_minimal.cpp.o"
  "CMakeFiles/itb_route.dir/topo_minimal.cpp.o.d"
  "CMakeFiles/itb_route.dir/updown.cpp.o"
  "CMakeFiles/itb_route.dir/updown.cpp.o.d"
  "libitb_route.a"
  "libitb_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
