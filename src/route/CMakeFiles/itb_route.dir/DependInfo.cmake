
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/minimal_paths.cpp" "src/route/CMakeFiles/itb_route.dir/minimal_paths.cpp.o" "gcc" "src/route/CMakeFiles/itb_route.dir/minimal_paths.cpp.o.d"
  "/root/repo/src/route/simple_routes.cpp" "src/route/CMakeFiles/itb_route.dir/simple_routes.cpp.o" "gcc" "src/route/CMakeFiles/itb_route.dir/simple_routes.cpp.o.d"
  "/root/repo/src/route/switch_path.cpp" "src/route/CMakeFiles/itb_route.dir/switch_path.cpp.o" "gcc" "src/route/CMakeFiles/itb_route.dir/switch_path.cpp.o.d"
  "/root/repo/src/route/topo_minimal.cpp" "src/route/CMakeFiles/itb_route.dir/topo_minimal.cpp.o" "gcc" "src/route/CMakeFiles/itb_route.dir/topo_minimal.cpp.o.d"
  "/root/repo/src/route/updown.cpp" "src/route/CMakeFiles/itb_route.dir/updown.cpp.o" "gcc" "src/route/CMakeFiles/itb_route.dir/updown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/topo/CMakeFiles/itb_topo.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/itb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
