# Empty dependencies file for itb_route.
# This may be replaced when dependencies are built.
