#include "route/switch_path.hpp"

namespace itb {

bool path_is_consistent(const Topology& topo, const SwitchPath& path) {
  if (path.sw.empty()) return false;
  if (path.sw.size() != path.cable.size() + 1) return false;
  for (std::size_t i = 0; i < path.cable.size(); ++i) {
    const CableId c = path.cable[i];
    if (c < 0 || c >= topo.num_cables()) return false;
    const Cable& cb = topo.cable(c);
    if (cb.to_host()) return false;
    const SwitchId a = path.sw[i];
    const SwitchId b = path.sw[i + 1];
    const bool forward = cb.a.sw == a && cb.b.sw == b;
    const bool backward = cb.a.sw == b && cb.b.sw == a;
    if (!forward && !backward) return false;
  }
  return true;
}

}  // namespace itb
