// Switch-level path representation shared by the routing algorithms.
#pragma once

#include <vector>

#include "topo/topology.hpp"
#include "topo/types.hpp"

namespace itb {

/// A walk over the switch graph: `sw` lists the visited switches and
/// `cable[i]` is the cable crossed between sw[i] and sw[i+1].
/// Invariant: sw.size() == cable.size() + 1 (a single-switch path has one
/// switch and no cables).
struct SwitchPath {
  std::vector<SwitchId> sw;
  std::vector<CableId> cable;

  [[nodiscard]] int hops() const { return static_cast<int>(cable.size()); }
  [[nodiscard]] SwitchId src() const { return sw.front(); }
  [[nodiscard]] SwitchId dst() const { return sw.back(); }

  friend bool operator==(const SwitchPath&, const SwitchPath&) = default;
};

/// Checks structural consistency of a path against a topology: consecutive
/// switches joined by the named cables, no host cables.
[[nodiscard]] bool path_is_consistent(const Topology& topo,
                                      const SwitchPath& path);

}  // namespace itb
