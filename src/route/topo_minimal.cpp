#include "route/topo_minimal.hpp"

#include <stdexcept>
#include <string>

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

bool has_structured_minimal(const Topology& topo) {
  switch (topo.shape().kind) {
    case TopoKind::kHyperX:
    case TopoKind::kDragonfly:
    case TopoKind::kFullMesh: return true;
    case TopoKind::kGeneric: return false;
  }
  return false;
}

StructuredMinimal::StructuredMinimal(const Topology& topo)
    : topo_(&topo), kind_(topo.shape().kind) {
  const TopoShape& shape = topo.shape();
  switch (kind_) {
    case TopoKind::kHyperX: {
      // params: {L, S_1..S_L, hosts_per_switch}
      if (shape.params.size() < 2 ||
          shape.params.size() != idx(shape.params[0]) + 2) {
        throw std::invalid_argument("StructuredMinimal: bad hyperx params");
      }
      const int dims = shape.params[0];
      std::int64_t count = 1;
      dims_.assign(shape.params.begin() + 1, shape.params.begin() + 1 + dims);
      stride_.assign(idx(dims), 1);
      for (int d = 0; d < dims; ++d) {
        if (dims_[idx(d)] < 1) {
          throw std::invalid_argument("StructuredMinimal: bad hyperx extent");
        }
        if (d > 0) stride_[idx(d)] = stride_[idx(d - 1)] * dims_[idx(d - 1)];
        count *= dims_[idx(d)];
      }
      if (count != topo.num_switches()) {
        throw std::invalid_argument(
            "StructuredMinimal: hyperx shape names " + std::to_string(count) +
            " switches, topology has " + std::to_string(topo.num_switches()));
      }
      break;
    }
    case TopoKind::kDragonfly: {
      // params: {a, p, h, arrangement}
      if (shape.params.size() != 4) {
        throw std::invalid_argument("StructuredMinimal: bad dragonfly params");
      }
      dfly_a_ = shape.params[0];
      const int h = shape.params[2];
      if (dfly_a_ < 2 || h < 1) {
        throw std::invalid_argument("StructuredMinimal: bad dragonfly a/h");
      }
      dfly_groups_ = dfly_a_ * h + 1;
      if (static_cast<std::int64_t>(dfly_groups_) * dfly_a_ !=
          topo.num_switches()) {
        throw std::invalid_argument(
            "StructuredMinimal: dragonfly shape disagrees with switch count");
      }
      // One pass over the cables recovers which switch of each group owns
      // the global cable to each other group — the only fact l-g-l needs.
      const int G = dfly_groups_;
      global_exit_.assign(idx(G) * idx(G), kNoSwitch);
      for (CableId c = 0; c < topo.num_cables(); ++c) {
        const Cable& cb = topo.cable(c);
        if (cb.to_host()) continue;
        const int ga = cb.a.sw / dfly_a_;
        const int gb = cb.b.sw / dfly_a_;
        if (ga == gb) continue;
        SwitchId& slot_ab = global_exit_[idx(ga) * idx(G) + idx(gb)];
        SwitchId& slot_ba = global_exit_[idx(gb) * idx(G) + idx(ga)];
        if (slot_ab != kNoSwitch || slot_ba != kNoSwitch) {
          throw std::invalid_argument(
              "StructuredMinimal: duplicate global cable between groups " +
              std::to_string(ga) + " and " + std::to_string(gb));
        }
        slot_ab = cb.a.sw;
        slot_ba = cb.b.sw;
      }
      for (int g1 = 0; g1 < G; ++g1) {
        for (int g2 = 0; g2 < G; ++g2) {
          if (g1 != g2 && global_exit_[idx(g1) * idx(G) + idx(g2)] == kNoSwitch) {
            throw std::invalid_argument(
                "StructuredMinimal: groups " + std::to_string(g1) + " and " +
                std::to_string(g2) + " share no global cable");
          }
        }
      }
      break;
    }
    case TopoKind::kFullMesh:
      if (shape.params.size() != 2 || shape.params[0] != topo.num_switches()) {
        throw std::invalid_argument("StructuredMinimal: bad fullmesh params");
      }
      break;
    case TopoKind::kGeneric:
      throw std::invalid_argument(
          "StructuredMinimal: topology '" + topo.name() +
          "' carries no structured shape (TopoKind::kGeneric)");
  }
}

void StructuredMinimal::append_hop(SwitchPath& p, SwitchId v) const {
  const SwitchId u = p.dst();
  for (PortId port = 0; port < topo_->ports_per_switch(); ++port) {
    const PortPeer& e = topo_->peer(u, port);
    if (e.kind == PeerKind::kSwitch && e.sw == v) {
      p.cable.push_back(e.cable);
      p.sw.push_back(v);
      return;
    }
  }
  throw std::invalid_argument("StructuredMinimal: switches " +
                              std::to_string(u) + " and " + std::to_string(v) +
                              " are not adjacent as the shape promises");
}

SwitchPath StructuredMinimal::hyperx_path(SwitchId s, SwitchId d) const {
  SwitchPath p;
  p.sw.push_back(s);
  SwitchId cur = s;
  for (std::size_t dim = 0; dim < dims_.size(); ++dim) {
    const int cd = (cur / stride_[dim]) % dims_[dim];
    const int dd = (d / stride_[dim]) % dims_[dim];
    if (cd == dd) continue;
    const SwitchId next = cur + (dd - cd) * stride_[dim];
    append_hop(p, next);
    cur = next;
  }
  return p;
}

SwitchPath StructuredMinimal::dragonfly_path(SwitchId s, SwitchId d) const {
  SwitchPath p;
  p.sw.push_back(s);
  const int gs = s / dfly_a_;
  const int gd = d / dfly_a_;
  if (gs == gd) {
    if (s != d) append_hop(p, d);  // intra-group full mesh: one local hop
    return p;
  }
  const SwitchId exit = global_exit_[idx(gs) * idx(dfly_groups_) + idx(gd)];
  const SwitchId entry = global_exit_[idx(gd) * idx(dfly_groups_) + idx(gs)];
  if (s != exit) append_hop(p, exit);   // l: reach the global cable
  append_hop(p, entry);                 // g: cross it
  if (entry != d) append_hop(p, d);     // l: fan out in the target group
  return p;
}

SwitchPath StructuredMinimal::path(SwitchId s, SwitchId d) const {
  if (s == d) return SwitchPath{{s}, {}};
  switch (kind_) {
    case TopoKind::kHyperX: return hyperx_path(s, d);
    case TopoKind::kDragonfly: return dragonfly_path(s, d);
    case TopoKind::kFullMesh: {
      SwitchPath p;
      p.sw.push_back(s);
      append_hop(p, d);
      return p;
    }
    case TopoKind::kGeneric: break;
  }
  throw std::invalid_argument("StructuredMinimal: unsupported kind");
}

}  // namespace itb
