// Enumeration of minimal (shortest, unrestricted) paths over the switch
// graph.  The ITB mechanism starts from these and splits them into
// up*/down*-legal segments; the paper caps the number of alternative routes
// per source-destination pair at 10 to bound NIC table size.
#pragma once

#include <span>
#include <vector>

#include "route/switch_path.hpp"
#include "topo/topology.hpp"

namespace itb {

/// Up to `max_paths` distinct minimal paths from s to d in deterministic
/// DFS sequence.  s == d yields the trivial path.
///
/// `port_rotation` rotates the per-switch port visiting order; the DFS
/// therefore *starts* from a different direction for different rotations
/// while still enumerating the same set.  Route construction passes a
/// per-pair hash here so that "the first minimal path" — the one ITB-SP
/// pins — is spread across directions instead of systematically
/// preferring low-numbered ports (which would starve express channels
/// and overload +x rings).
[[nodiscard]] std::vector<SwitchPath> enumerate_minimal_paths(
    const Topology& topo, SwitchId s, SwitchId d, int max_paths,
    unsigned port_rotation = 0);

/// Same enumeration, but with the BFS distances *to d* supplied by the
/// caller (`dist_to_d[u]` = hop distance from u to d; the graph is
/// undirected, so Topology::switch_distances_from(d) serves).  The large
/// table builds pass rows of a precomputed all-pairs matrix here so the
/// per-pair BFS — which dwarfs the DFS on dense low-diameter graphs —
/// happens once per destination instead of once per pair.  The emitted
/// paths and their order are identical to the overload above.
[[nodiscard]] std::vector<SwitchPath> enumerate_minimal_paths(
    const Topology& topo, SwitchId s, SwitchId d, int max_paths,
    unsigned port_rotation, std::span<const int> dist_to_d);

/// Count of minimal paths from s to d, saturating at `cap` (the DFS stops
/// once `cap` paths are found).
[[nodiscard]] int count_minimal_paths(const Topology& topo, SwitchId s,
                                      SwitchId d, int cap);

}  // namespace itb
