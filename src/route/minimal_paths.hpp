// Enumeration of minimal (shortest, unrestricted) paths over the switch
// graph.  The ITB mechanism starts from these and splits them into
// up*/down*-legal segments; the paper caps the number of alternative routes
// per source-destination pair at 10 to bound NIC table size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "route/switch_path.hpp"
#include "topo/topology.hpp"

namespace itb {

/// Up to `max_paths` distinct minimal paths from s to d in deterministic
/// DFS sequence.  s == d yields the trivial path.
///
/// `port_rotation` rotates the per-switch port visiting order; the DFS
/// therefore *starts* from a different direction for different rotations
/// while still enumerating the same set.  Route construction passes a
/// per-pair hash here so that "the first minimal path" — the one ITB-SP
/// pins — is spread across directions instead of systematically
/// preferring low-numbered ports (which would starve express channels
/// and overload +x rings).
[[nodiscard]] std::vector<SwitchPath> enumerate_minimal_paths(
    const Topology& topo, SwitchId s, SwitchId d, int max_paths,
    unsigned port_rotation = 0);

/// Same enumeration, but with the BFS distances *to d* supplied by the
/// caller (`dist_to_d[u]` = hop distance from u to d; the graph is
/// undirected, so Topology::switch_distances_from(d) serves).  The large
/// table builds pass rows of a precomputed all-pairs matrix here so the
/// per-pair BFS — which dwarfs the DFS on dense low-diameter graphs —
/// happens once per destination instead of once per pair.  The emitted
/// paths and their order are identical to the overload above.
[[nodiscard]] std::vector<SwitchPath> enumerate_minimal_paths(
    const Topology& topo, SwitchId s, SwitchId d, int max_paths,
    unsigned port_rotation, std::span<const int> dist_to_d);

/// Count of minimal paths from s to d, saturating at `cap` (the DFS stops
/// once `cap` paths are found).
[[nodiscard]] int count_minimal_paths(const Topology& topo, SwitchId s,
                                      SwitchId d, int cap);

/// Flat per-switch adjacency snapshot: entries [off[u], off[u+1]) list the
/// (peer switch, cable, output port) triples of switch u's fabric ports in
/// port order — the same iteration order as topo.switch_ports_of(u), so a
/// DFS over the cache enumerates paths in exactly the same sequence as
/// enumerate_minimal_paths.  Built once per table build; replaces the
/// per-visit switch_ports_of() vector allocation that dominated the PR 8
/// large-scale build profile.
struct SwitchAdjacency {
  struct Edge {
    SwitchId sw;
    CableId cable;
    PortId port;
  };

  explicit SwitchAdjacency(const Topology& topo);

  [[nodiscard]] std::span<const Edge> of(SwitchId u) const {
    const auto b = off[static_cast<std::size_t>(u)];
    return {edges.data() + b, off[static_cast<std::size_t>(u) + 1] - b};
  }

  std::vector<std::uint32_t> off;  // num_switches + 1
  std::vector<Edge> edges;
};

/// Reusable DFS state for for_each_minimal_path; sized on first use,
/// alloc-free afterwards.
struct MinimalPathScratch {
  std::vector<SwitchId> sw;
  std::vector<CableId> cable;
  std::vector<PortId> port;
  std::vector<std::size_t> pi;
  std::vector<std::size_t> start;  // pruned-DAG DFS: cyclic scan origin

  void ensure(int depth_max) {
    const auto need = static_cast<std::size_t>(depth_max) + 1;
    if (sw.size() < need) {
      sw.resize(need);
      cable.resize(need);
      port.resize(need);
      pi.resize(need);
      start.resize(need);
    }
  }
};

/// Per-destination pruned DAG: for each switch u, the subset of its fabric
/// edges that step toward a fixed destination d (dist_to_d[e.sw] ==
/// dist_to_d[u] - 1), in port order, each remembering its index in the
/// full port list.  Built once per destination and shared by every
/// source's DFS, this removes all distance lookups from the enumeration
/// inner loop — the dominant cost of large-table builds, where the
/// distance matrix is far bigger than cache but one destination's pruned
/// DAG is not.
struct PrunedDag {
  struct Edge {
    SwitchId sw;
    CableId cable;
    PortId port;
    std::uint16_t base;  // index in the full port-order edge list
  };

  /// Rebuilds for destination rows on the fly; buffers are reused.
  void build(const SwitchAdjacency& adj, std::span<const int> dist_to_d) {
    const std::size_t n = adj.off.size() - 1;
    off.assign(n + 1, 0);
    edges.clear();
    full_deg.clear();
    dist = dist_to_d;
    for (std::size_t u = 0; u < n; ++u) {
      const std::span<const SwitchAdjacency::Edge> full =
          adj.of(static_cast<SwitchId>(u));
      const int want = dist_to_d[u] - 1;
      for (std::size_t k = 0; k < full.size(); ++k) {
        const SwitchAdjacency::Edge& e = full[k];
        if (dist_to_d[static_cast<std::size_t>(e.sw)] != want) continue;
        edges.push_back(
            Edge{e.sw, e.cable, e.port, static_cast<std::uint16_t>(k)});
      }
      off[u + 1] = static_cast<std::uint32_t>(edges.size());
      full_deg.push_back(static_cast<std::uint16_t>(full.size()));
    }
  }

  [[nodiscard]] std::span<const Edge> of(SwitchId u) const {
    const auto b = off[static_cast<std::size_t>(u)];
    return {edges.data() + b, off[static_cast<std::size_t>(u) + 1] - b};
  }

  std::vector<std::uint32_t> off;
  std::vector<Edge> edges;
  std::vector<std::uint16_t> full_deg;  // full fabric-port count per switch
  std::span<const int> dist;            // the row the DAG was built from
};

/// Allocation-free variant of enumerate_minimal_paths: emits each minimal
/// path as `emit(sw, cable, port, hops)` — `sw` has hops+1 entries,
/// `cable`/`port` have `hops` (the output port of sw[i] crossing cable[i]).
/// Paths and order are identical to enumerate_minimal_paths; returns the
/// number emitted.  The spans point into `scratch` and are only valid for
/// the duration of the callback.
template <typename Emit>
int for_each_minimal_path(const SwitchAdjacency& adj, SwitchId s, SwitchId d,
                          int max_paths, unsigned rotation,
                          std::span<const int> dist_to_d,
                          MinimalPathScratch& sc, Emit&& emit) {
  if (max_paths <= 0) return 0;
  const auto uz = [](std::int64_t v) { return static_cast<std::size_t>(v); };
  if (s == d) {
    sc.ensure(0);
    sc.sw[0] = s;
    emit(sc.sw.data(), sc.cable.data(), sc.port.data(), 0);
    return 1;
  }
  if (dist_to_d[uz(s)] < 0) return 0;
  sc.ensure(dist_to_d[uz(s)]);
  int found = 0;
  int depth = 0;
  sc.sw[0] = s;
  sc.pi[0] = 0;
  while (depth >= 0) {
    const SwitchId u = sc.sw[uz(depth)];
    if (u == d) {
      emit(sc.sw.data(), sc.cable.data(), sc.port.data(), depth);
      if (++found >= max_paths) break;
      --depth;
      continue;
    }
    const std::span<const SwitchAdjacency::Edge> edges = adj.of(u);
    const std::size_t deg = edges.size();
    const int want = dist_to_d[uz(u)] - 1;
    bool advanced = false;
    while (sc.pi[uz(depth)] < deg) {
      const std::size_t k = sc.pi[uz(depth)]++;
      const SwitchAdjacency::Edge& e = edges[(k + rotation) % deg];
      if (dist_to_d[uz(e.sw)] != want) continue;
      sc.cable[uz(depth)] = e.cable;
      sc.port[uz(depth)] = e.port;
      sc.sw[uz(depth) + 1] = e.sw;
      ++depth;
      sc.pi[uz(depth)] = 0;
      advanced = true;
      break;
    }
    if (!advanced) --depth;
  }
  return found;
}

/// Pruned-DAG twin of for_each_minimal_path: identical paths in identical
/// order, but all feasibility decisions were precomputed by
/// PrunedDag::build, so the DFS inner loop touches only edges that lie on
/// some minimal path.  Order equivalence: the plain DFS scans the full
/// port list starting at offset `rotation % deg` and skips infeasible
/// edges — which visits the feasible sub-list cyclically starting at its
/// first entry whose full-list index is >= the offset.  That cyclic scan
/// is what this DFS performs directly.
template <typename Emit>
int for_each_minimal_path_dag(const PrunedDag& dag, SwitchId s, SwitchId d,
                              int max_paths, unsigned rotation,
                              MinimalPathScratch& sc, Emit&& emit) {
  if (max_paths <= 0) return 0;
  const auto uz = [](std::int64_t v) { return static_cast<std::size_t>(v); };
  if (s == d) {
    sc.ensure(0);
    sc.sw[0] = s;
    emit(sc.sw.data(), sc.cable.data(), sc.port.data(), 0);
    return 1;
  }
  if (dag.dist[uz(s)] < 0) return 0;
  sc.ensure(dag.dist[uz(s)]);

  // Where the cyclic scan of u's feasible list starts for this rotation.
  const auto scan_start = [&](SwitchId u,
                              std::span<const PrunedDag::Edge> list) {
    const std::uint16_t deg = dag.full_deg[uz(u)];
    const std::uint16_t r =
        deg ? static_cast<std::uint16_t>(rotation % deg) : 0;
    for (std::size_t j = 0; j < list.size(); ++j) {
      if (list[j].base >= r) return j;
    }
    return std::size_t{0};  // wrap: every entry precedes the offset
  };

  int found = 0;
  int depth = 0;
  sc.sw[0] = s;
  sc.pi[0] = 0;
  sc.start[0] = scan_start(s, dag.of(s));
  while (depth >= 0) {
    const SwitchId u = sc.sw[uz(depth)];
    if (u == d) {
      emit(sc.sw.data(), sc.cable.data(), sc.port.data(), depth);
      if (++found >= max_paths) break;
      --depth;
      continue;
    }
    const std::span<const PrunedDag::Edge> list = dag.of(u);
    if (sc.pi[uz(depth)] < list.size()) {
      const std::size_t k =
          (sc.start[uz(depth)] + sc.pi[uz(depth)]++) % list.size();
      const PrunedDag::Edge& e = list[k];
      sc.cable[uz(depth)] = e.cable;
      sc.port[uz(depth)] = e.port;
      sc.sw[uz(depth) + 1] = e.sw;
      ++depth;
      sc.pi[uz(depth)] = 0;
      sc.start[uz(depth)] = scan_start(e.sw, dag.of(e.sw));
    } else {
      --depth;
    }
  }
  return found;
}

}  // namespace itb
