// up*/down* routing (Schroeder et al., Autonet; used by Myrinet).
//
// A breadth-first spanning tree is computed from a root switch and every
// switch-to-switch cable is oriented: its "up" end is (1) the endpoint
// closer to the root, or (2) the endpoint with the lower switch id when
// both are at the same tree level.  A legal route traverses zero or more
// cables in the "up" direction followed by zero or more in the "down"
// direction; this breaks every cycle (each cycle contains both an up-most
// switch and a down-most switch) and therefore every cyclic channel
// dependency, making the routing deadlock-free without virtual channels.
#pragma once

#include <vector>

#include "route/switch_path.hpp"
#include "topo/topology.hpp"
#include "topo/types.hpp"

namespace itb {

/// Deterministic root choice for up*/down* on arbitrary topologies: a
/// double-sweep pseudo-center.  BFS from switch 0 finds a far switch u,
/// BFS from u finds the far pair endpoint v; the root is the switch
/// minimising max(dist_u, dist_v) — ties broken by higher switch degree,
/// then lower id.  On the paper's torus this is interior (roots at corners
/// concentrate "down" traffic); on dense low-diameter graphs most switches
/// tie and the low-id rule keeps the choice stable.  Purely a function of
/// the topology, so tables built from it stay reproducible.
[[nodiscard]] SwitchId select_updown_root(const Topology& topo);

/// Sentinel for Testbed and CLI layers: "pick the root for me" via
/// select_updown_root.
inline constexpr SwitchId kAutoRoot = -2;

class UpDown {
 public:
  /// Orients all switch-to-switch cables of `topo` from the given root.
  /// The topology's switch graph must be connected.
  explicit UpDown(const Topology& topo, SwitchId root = 0);

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] SwitchId root() const { return root_; }

  /// BFS tree level of a switch (root is 0).
  [[nodiscard]] int level(SwitchId s) const {
    return level_[static_cast<std::size_t>(s)];
  }

  /// The switch at the "up" end of a switch-to-switch cable.
  [[nodiscard]] SwitchId up_end(CableId c) const {
    return up_end_[static_cast<std::size_t>(c)];
  }

  /// True when crossing cable `c` out of switch `from` moves in the "up"
  /// direction (i.e. `from` is the down end).
  [[nodiscard]] bool is_up(CableId c, SwitchId from) const {
    return up_end_[static_cast<std::size_t>(c)] != from;
  }

  /// True when `path` obeys the up*/down* rule.
  [[nodiscard]] bool legal(const SwitchPath& path) const;

  /// Length of the shortest *legal* path from s to d (0 when s == d);
  /// -1 when unreachable, which cannot happen on a connected topology.
  [[nodiscard]] int legal_distance(SwitchId s, SwitchId d) const;

  /// Up to `max_paths` distinct shortest legal paths from s to d, in a
  /// deterministic (port-order) sequence.  For s == d returns the trivial
  /// single-switch path.
  [[nodiscard]] std::vector<SwitchPath> shortest_legal_paths(
      SwitchId s, SwitchId d, int max_paths) const;

  /// Same, with the product-graph distances from `s` supplied by the caller
  /// (a state_distances_from(s) result).  Per-source consumers — the
  /// simple_routes placement enumerates candidates for every destination of
  /// one source — hoist the BFS this way; emitted paths and order are
  /// identical to the overload above.
  [[nodiscard]] std::vector<SwitchPath> shortest_legal_paths(
      SwitchId s, SwitchId d, int max_paths,
      const std::vector<int>& state_dist) const;

  /// All shortest legal distances from `s` (index = destination switch).
  [[nodiscard]] std::vector<int> legal_distances_from(SwitchId s) const;

  /// BFS over the (switch, phase) product graph; phase 0 = may still go up,
  /// phase 1 = has gone down.  Returns 2*num_switches distances, indexed by
  /// 2*switch + phase.  Exposed for per-source hoisting (see above).
  [[nodiscard]] std::vector<int> state_distances_from(SwitchId s) const;

 private:
  const Topology* topo_;
  SwitchId root_;
  std::vector<int> level_;        // per switch
  std::vector<SwitchId> up_end_;  // per cable; kNoSwitch for host cables
};

}  // namespace itb
