#include "route/minimal_paths.hpp"

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

std::vector<SwitchPath> enumerate_minimal_paths(const Topology& topo,
                                                SwitchId s, SwitchId d,
                                                int max_paths,
                                                unsigned port_rotation) {
  // Distances *to* d (the graph is undirected, so distances from d serve).
  const std::vector<int> dist = topo.switch_distances_from(d);
  return enumerate_minimal_paths(topo, s, d, max_paths, port_rotation,
                                 std::span<const int>(dist));
}

std::vector<SwitchPath> enumerate_minimal_paths(const Topology& topo,
                                                SwitchId s, SwitchId d,
                                                int max_paths,
                                                unsigned port_rotation,
                                                std::span<const int> dist_to_d) {
  std::vector<SwitchPath> out;
  if (max_paths <= 0) return out;
  if (s == d) {
    out.push_back(SwitchPath{{s}, {}});
    return out;
  }
  if (dist_to_d[idx(s)] < 0) return out;

  SwitchPath cur;
  cur.sw.push_back(s);

  auto rec = [&](auto&& self, SwitchId u) -> void {
    if (static_cast<int>(out.size()) >= max_paths) return;
    if (u == d) {
      out.push_back(cur);
      return;
    }
    const int remaining = dist_to_d[idx(u)];
    const auto ports = topo.switch_ports_of(u);
    for (std::size_t pi = 0; pi < ports.size(); ++pi) {
      if (static_cast<int>(out.size()) >= max_paths) return;
      const PortId p = ports[(pi + port_rotation) % ports.size()];
      const PortPeer& e = topo.peer(u, p);
      if (dist_to_d[idx(e.sw)] != remaining - 1) continue;
      cur.sw.push_back(e.sw);
      cur.cable.push_back(e.cable);
      self(self, e.sw);
      cur.sw.pop_back();
      cur.cable.pop_back();
    }
  };
  rec(rec, s);
  return out;
}

int count_minimal_paths(const Topology& topo, SwitchId s, SwitchId d,
                        int cap) {
  return static_cast<int>(enumerate_minimal_paths(topo, s, d, cap).size());
}

SwitchAdjacency::SwitchAdjacency(const Topology& topo) {
  const int n = topo.num_switches();
  off.assign(idx(n) + 1, 0);
  for (SwitchId u = 0; u < n; ++u) {
    const auto ports = topo.switch_ports_of(u);
    off[idx(u) + 1] = off[idx(u)] + static_cast<std::uint32_t>(ports.size());
    for (const PortId p : ports) {
      const PortPeer& e = topo.peer(u, p);
      edges.push_back(Edge{e.sw, e.cable, p});
    }
  }
}

}  // namespace itb
