#include "route/simple_routes.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

SimpleRoutes::SimpleRoutes(const Topology& topo, const UpDown& ud,
                           SimpleRoutesOptions opts)
    : topo_(&topo), objective_(opts.objective),
      num_switches_(topo.num_switches()) {
  const auto n = idx(num_switches_);
  routes_.resize(n * n);
  weight_.assign(idx(topo.num_channels()), 0);

  // Candidate sets per ordered pair.  The product-graph BFS is per source,
  // not per pair: one state_distances_from(s) serves every destination of
  // s, which is what keeps dense low-diameter graphs (degree ~ switches)
  // tractable.  Candidates are unchanged from the per-pair form.
  std::vector<std::vector<SwitchPath>> candidates(n * n);
  for (SwitchId s = 0; s < num_switches_; ++s) {
    const auto state_dist = ud.state_distances_from(s);
    for (SwitchId d = 0; d < num_switches_; ++d) {
      candidates[key(s, d)] =
          ud.shortest_legal_paths(s, d, opts.max_candidates, state_dist);
      if (candidates[key(s, d)].empty()) {
        throw std::runtime_error("SimpleRoutes: pair unreachable");
      }
    }
  }

  // Seeded random placement order, as GM's balance depends on order and we
  // want determinism without a systematic bias toward low switch ids.
  std::vector<std::size_t> order;
  order.reserve(n * n);
  for (std::size_t k = 0; k < n * n; ++k) order.push_back(k);
  Rng rng(opts.seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  // Greedy placement.
  for (const std::size_t k : order) {
    const auto& cands = candidates[k];
    const std::size_t best = pick_best(cands);
    routes_[k] = cands[best];
    charge(routes_[k], +1);
  }

  // Refinement: re-place each route with its own charge removed.
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    for (const std::size_t k : order) {
      charge(routes_[k], -1);
      const auto& cands = candidates[k];
      const std::size_t best = pick_best(cands);
      routes_[k] = cands[best];
      charge(routes_[k], +1);
    }
  }
}

void SimpleRoutes::charge(const SwitchPath& p, int delta) {
  for (std::size_t i = 0; i < p.cable.size(); ++i) {
    const ChannelId ch = topo_->channel_from_switch(p.sw[i], p.cable[i]);
    weight_[idx(ch)] += delta;
    assert(weight_[idx(ch)] >= 0);
  }
}

std::size_t SimpleRoutes::pick_best(
    const std::vector<SwitchPath>& candidates) const {
  std::size_t best = 0;
  int best_max = std::numeric_limits<int>::max();
  long best_sum = std::numeric_limits<long>::max();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const SwitchPath& p = candidates[i];
    int w_max = 0;
    long w_sum = 0;
    for (std::size_t h = 0; h < p.cable.size(); ++h) {
      const ChannelId ch = topo_->channel_from_switch(p.sw[h], p.cable[h]);
      const int w = weight_[idx(ch)];
      w_max = std::max(w_max, w);
      w_sum += w;
    }
    const bool better =
        objective_ == BalanceObjective::kMinMax
            ? (w_max < best_max || (w_max == best_max && w_sum < best_sum))
            : (w_sum < best_sum || (w_sum == best_sum && w_max < best_max));
    if (better) {
      best_max = w_max;
      best_sum = w_sum;
      best = i;
    }
  }
  return best;
}

}  // namespace itb
