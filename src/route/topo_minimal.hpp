// Structured minimal source routes for the low-diameter families.
//
// The generic ITB machinery discovers minimal paths by search; the
// low-diameter generators (topo/generators.hpp) additionally promise enough
// structure to pick ONE canonical minimal path per pair without search:
//
//  * HyperX: dimension-order routing — fix coordinates in dimension order
//    0..L-1, one clique hop per differing coordinate.  The channel
//    dependency graph is acyclic across the fixed dimension order, so these
//    routes are deadlock-free without virtual channels.
//  * Dragonfly: minimal l-g-l — at most one local hop to the switch owning
//    the global cable towards the destination group, the global hop, then
//    at most one local hop.  Minimal, but NOT deadlock-free without VCs
//    (the classic l-g-l cycle) — this is exactly the baseline the ITB
//    schemes fix, so checked runs of MIN-dragonfly may legitimately report
//    watchdog violations.
//  * Full mesh: the direct single hop, trivially deadlock-free.
//
// Construction keys off Topology::shape(); the port tables remain the
// source of truth (cables are found by adjacency, never by assumed port
// numbers), so a generator change that breaks the promised structure makes
// this throw rather than emit wrong routes.
#pragma once

#include "route/switch_path.hpp"
#include "topo/topology.hpp"

namespace itb {

/// True when `topo` carries a shape this router understands (HyperX,
/// Dragonfly or full mesh stamped by its generator or a `shape` directive).
[[nodiscard]] bool has_structured_minimal(const Topology& topo);

/// Canonical-minimal path oracle for one topology.  Immutable and
/// internally precomputed (Dragonfly group-pair cable table), so one
/// instance serves concurrent per-source route builds.
class StructuredMinimal {
 public:
  /// Throws std::invalid_argument when has_structured_minimal() is false
  /// or the wiring contradicts the declared shape.
  explicit StructuredMinimal(const Topology& topo);

  /// The canonical minimal path for (s, d); s == d yields the trivial path.
  [[nodiscard]] SwitchPath path(SwitchId s, SwitchId d) const;

 private:
  [[nodiscard]] SwitchPath hyperx_path(SwitchId s, SwitchId d) const;
  [[nodiscard]] SwitchPath dragonfly_path(SwitchId s, SwitchId d) const;

  /// Append the hop u -> v (which must be directly cabled) to `p`.
  void append_hop(SwitchPath& p, SwitchId v) const;

  const Topology* topo_;
  TopoKind kind_;
  std::vector<int> dims_;     // HyperX: S_1..S_L
  std::vector<int> stride_;   // HyperX: mixed-radix strides
  int dfly_a_ = 0;            // Dragonfly: switches per group
  int dfly_groups_ = 0;       // Dragonfly: G = a*h + 1
  std::vector<SwitchId> global_exit_;  // [g1 * G + g2] = switch of g1 cabled to g2
};

}  // namespace itb
