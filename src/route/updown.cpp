#include "route/updown.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

SwitchId select_updown_root(const Topology& topo) {
  const auto far_from = [&](SwitchId start) {
    const auto dist = topo.switch_distances_from(start);
    SwitchId far = start;
    for (SwitchId s = 0; s < topo.num_switches(); ++s) {
      if (dist[idx(s)] > dist[idx(far)]) far = s;  // first max wins (low id)
    }
    return far;
  };
  const SwitchId u = far_from(0);
  const SwitchId v = far_from(u);
  const auto du = topo.switch_distances_from(u);
  const auto dv = topo.switch_distances_from(v);
  SwitchId best = 0;
  int best_ecc = -1;
  int best_deg = -1;
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    const int ecc = std::max(du[idx(s)], dv[idx(s)]);
    const int deg = topo.switch_degree(s);
    if (best_ecc < 0 || ecc < best_ecc ||
        (ecc == best_ecc && deg > best_deg)) {
      best = s;
      best_ecc = ecc;
      best_deg = deg;
    }
  }
  return best;
}

UpDown::UpDown(const Topology& topo, SwitchId root)
    : topo_(&topo), root_(root) {
  level_ = topo.switch_distances_from(root);
  for (const int l : level_) {
    if (l < 0) {
      throw std::invalid_argument("UpDown: switch graph is not connected");
    }
  }
  up_end_.assign(idx(topo.num_cables()), kNoSwitch);
  for (CableId c = 0; c < topo.num_cables(); ++c) {
    const Cable& cb = topo.cable(c);
    if (cb.to_host()) continue;
    const SwitchId a = cb.a.sw;
    const SwitchId b = cb.b.sw;
    const int la = level_[idx(a)];
    const int lb = level_[idx(b)];
    // "Up" end: closer to the root; ties broken by the lower switch id.
    if (la != lb) {
      up_end_[idx(c)] = la < lb ? a : b;
    } else {
      up_end_[idx(c)] = a < b ? a : b;
    }
  }
}

bool UpDown::legal(const SwitchPath& path) const {
  bool gone_down = false;
  for (std::size_t i = 0; i < path.cable.size(); ++i) {
    const bool up = is_up(path.cable[i], path.sw[i]);
    if (up && gone_down) return false;
    if (!up) gone_down = true;
  }
  return true;
}

std::vector<int> UpDown::state_distances_from(SwitchId s) const {
  // State encoding: 2*switch + phase; phase 0 = no down cable taken yet,
  // phase 1 = at least one down cable taken (up cables now forbidden).
  const auto n = idx(topo_->num_switches());
  std::vector<int> dist(2 * n, -1);
  std::deque<std::int32_t> q;
  dist[idx(2 * s)] = 0;
  q.push_back(2 * s);
  while (!q.empty()) {
    const std::int32_t state = q.front();
    q.pop_front();
    const SwitchId u = state / 2;
    const int phase = state % 2;
    for (const PortId p : topo_->switch_ports_of(u)) {
      const PortPeer& e = topo_->peer(u, p);
      const bool up = is_up(e.cable, u);
      if (phase == 1 && up) continue;  // down->up transition forbidden
      const std::int32_t next = 2 * e.sw + (up ? phase : 1);
      if (dist[idx(next)] == -1) {
        dist[idx(next)] = dist[idx(state)] + 1;
        q.push_back(next);
      }
    }
  }
  return dist;
}

int UpDown::legal_distance(SwitchId s, SwitchId d) const {
  if (s == d) return 0;
  const auto dist = state_distances_from(s);
  const int a = dist[idx(2 * d)];
  const int b = dist[idx(2 * d + 1)];
  if (a < 0) return b;
  if (b < 0) return a;
  return std::min(a, b);
}

std::vector<int> UpDown::legal_distances_from(SwitchId s) const {
  const auto dist = state_distances_from(s);
  std::vector<int> out(idx(topo_->num_switches()), -1);
  for (SwitchId d = 0; d < topo_->num_switches(); ++d) {
    const int a = dist[idx(2 * d)];
    const int b = dist[idx(2 * d + 1)];
    out[idx(d)] = (a < 0) ? b : (b < 0 ? a : std::min(a, b));
  }
  out[idx(s)] = 0;
  return out;
}

std::vector<SwitchPath> UpDown::shortest_legal_paths(SwitchId s, SwitchId d,
                                                     int max_paths) const {
  if (max_paths <= 0 || s == d) {
    return shortest_legal_paths(s, d, max_paths, {});
  }
  return shortest_legal_paths(s, d, max_paths, state_distances_from(s));
}

std::vector<SwitchPath> UpDown::shortest_legal_paths(
    SwitchId s, SwitchId d, int max_paths,
    const std::vector<int>& dist) const {
  std::vector<SwitchPath> out;
  if (max_paths <= 0) return out;
  if (s == d) {
    out.push_back(SwitchPath{{s}, {}});
    return out;
  }
  const int da = dist[idx(2 * d)];
  const int db = dist[idx(2 * d + 1)];
  if (da < 0 && db < 0) return out;
  const int best = (da < 0) ? db : (db < 0 ? da : std::min(da, db));

  // Depth-first backward walk over the BFS predecessor DAG.  The reversed
  // cable list is accumulated on an explicit stack-free recursion (paths
  // are at most a few tens of hops).
  std::vector<CableId> rev_cables;
  std::vector<SwitchId> rev_switches;

  auto emit = [&] {
    SwitchPath path;
    path.sw.assign(rev_switches.rbegin(), rev_switches.rend());
    path.cable.assign(rev_cables.rbegin(), rev_cables.rend());
    out.push_back(std::move(path));
  };

  // rec(v, phase): dist[(v,phase)] steps remain back to (s, 0).
  auto rec = [&](auto&& self, SwitchId v, int phase) -> void {
    if (static_cast<int>(out.size()) >= max_paths) return;
    const int dv = dist[idx(2 * v + phase)];
    if (dv == 0) {
      assert(v == s && phase == 0);
      emit();
      return;
    }
    for (const PortId p : topo_->switch_ports_of(v)) {
      if (static_cast<int>(out.size()) >= max_paths) return;
      const PortPeer& e = topo_->peer(v, p);
      const SwitchId u = e.sw;
      const CableId c = e.cable;
      const bool traversal_up = is_up(c, u);  // direction of u -> v
      rev_cables.push_back(c);
      rev_switches.push_back(u);
      if (phase == 0) {
        // (u,0) --up--> (v,0)
        if (traversal_up && dist[idx(2 * u)] == dv - 1) self(self, u, 0);
      } else {
        // (u,0) --down--> (v,1) or (u,1) --down--> (v,1)
        if (!traversal_up) {
          if (dist[idx(2 * u)] == dv - 1) self(self, u, 0);
          if (static_cast<int>(out.size()) < max_paths &&
              dist[idx(2 * u + 1)] == dv - 1) {
            self(self, u, 1);
          }
        }
      }
      rev_cables.pop_back();
      rev_switches.pop_back();
    }
  };

  rev_switches.push_back(d);  // destination is the last switch of every path
  // A path's final phase is determined by its contents (pure-up paths end
  // in phase 0, everything else in phase 1), so the two start phases emit
  // disjoint path sets.
  for (int phase = 0; phase < 2; ++phase) {
    const int dp = dist[idx(2 * d + phase)];
    if (dp == best) {
      rev_switches.clear();
      rev_cables.clear();
      rev_switches.push_back(d);
      rec(rec, d, phase);
    }
  }
  return out;
}

}  // namespace itb
