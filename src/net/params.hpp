// Physical and protocol parameters of the simulated Myrinet network.
// Defaults are the paper's measured values (§4.3-4.5).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace itb {

struct MyrinetParams {
  // --- links (§4.3) ---
  /// One flit (byte) every 6.25 ns: 160 MB/s links.
  TimePs flit_time = 6250;
  /// Short LAN cable: 4.92 ns/m; with 10 m cables the wire holds ~8 flits.
  double cable_delay_ps_per_m = 4920.0;

  // --- switches (§4.4) ---
  /// First-flit latency through the switch when the output is free.
  TimePs routing_delay = ns(std::int64_t{150});
  /// Slack buffer per input port.
  int slack_buffer_flits = 80;
  /// Stop control flit sent when the input buffer fills *over* this level.
  int stop_threshold_flits = 56;
  /// Go control flit sent when the buffer empties *below* this level.
  int go_threshold_flits = 40;

  // --- network interfaces (§4.5) ---
  /// Time from header arrival to recognising the ITB mark (44 bytes).
  TimePs itb_detect_delay = ns(std::int64_t{275});
  /// Additional time to program the re-injection DMA (32 more bytes).
  TimePs itb_dma_delay = ns(std::int64_t{200});
  /// In-transit buffer pool per NIC.
  std::int64_t itb_pool_bytes = 90 * 1024;
  /// Extra readiness delay when the pool is exhausted and the packet must
  /// be staged through host memory (the paper calls this "considerably"
  /// slower without quantifying it).
  TimePs host_memory_penalty = us(1);
  /// Re-inject in-transit packets before locally generated ones ("as soon
  /// as possible").
  bool itb_priority_over_injection = true;

  // --- packet format ---
  /// Non-route header flits (packet type byte).
  int type_bytes = 1;

  // --- engine ---
  /// Flits moved per simulation event.  1 = exact flit-level behaviour;
  /// 8 (the default) keeps every stop/go threshold crossing on a chunk
  /// boundary and cannot overflow the 80-flit slack buffer as long as every
  /// chunk is full-size (56 + 8 just-arrived + 8 in flight + 8 started
  /// before the stop lands = 80).  Values above 8 can overflow and are
  /// rejected.  Known artifact: a flow whose flit count is not a multiple
  /// of chunk_flits ends in a shorter tail chunk, and two commits can then
  /// fit inside one stop-propagation window; packets small enough to fit
  /// entirely in the slack buffer (payloads below ~128 bytes) stream
  /// tail-to-head at saturation and can exceed the budget by a few flits
  /// (bounded by two extra chunks).  The overflow is counted (never
  /// silent) and
  /// pinned by SlackSkid.SubChunkTailsCanOverflowByABoundedMargin; use
  /// chunk_flits = 1 for exact behaviour at such payloads.
  int chunk_flits = 8;

  /// Coalesce the per-chunk arrival events of a packet's final leg into a
  /// single tail event (POD engine only; legacy always steps per chunk).
  /// Legal because those arrivals are pure sinks — a NIC applies no flow
  /// control, the header work happened on the first chunk, and nothing
  /// reads the entry until the tail delivers — so eliding them preserves
  /// the (time, push-order) schedule of every remaining event bit-for-bit.
  bool coalesce_chunk_flow = true;

  /// Always-on invariant ledgers (flit/credit conservation, buffer bounds,
  /// ITB pool capacity, packet conservation): cheap integer comparisons on
  /// the hot path, on by default.  Off exists solely so bench_micro_kernel
  /// can A/B their cost (the ≤5% budget recorded in BENCH_pr3.json).
  bool ledger_checks = true;

  [[nodiscard]] TimePs cable_prop_delay(double length_m) const {
    return static_cast<TimePs>(cable_delay_ps_per_m * length_m + 0.5);
  }
};

}  // namespace itb
