#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>
#include <unordered_set>

namespace itb {

namespace {
std::size_t idx(std::int64_t v) { return static_cast<std::size_t>(v); }
}  // namespace

// Deep per-event assertions (checked tier 2): compiled in only by the
// ITB_CHECKED build, where a failed condition records a violation instead
// of aborting, so a whole checked grid can report every deviation.
#ifdef ITB_CHECKED
#define ITB_DEEP_CHECK(cond, kind, id, msg)                              \
  do {                                                                   \
    if (!(cond)) recorder().record((kind), cursim().now(), (id), (msg)); \
  } while (0)
#else
#define ITB_DEEP_CHECK(cond, kind, id, msg) \
  do {                                      \
  } while (0)
#endif

const char* to_string(PacketEvent e) {
  switch (e) {
    case PacketEvent::kInjected: return "injected";
    case PacketEvent::kHeaderAtSwitch: return "header";
    case PacketEvent::kEjectedAtItb: return "ejected";
    case PacketEvent::kReinjectionReady: return "ready";
    case PacketEvent::kDelivered: return "delivered";
  }
  return "?";
}

Network::Network(Simulator& sim, const Topology& topo, const RouteSet& routes,
                 const MyrinetParams& params, PathPolicy policy,
                 std::uint64_t seed)
    : sim_(&sim) {
  reset(topo, routes, params, policy, seed);
}

void Network::reset(const Topology& topo, const RouteSet& routes,
                    const MyrinetParams& params, PathPolicy policy,
                    std::uint64_t seed, ParallelEngine* par) {
  if (params.chunk_flits < 1 || params.chunk_flits > 8) {
    throw std::invalid_argument(
        "Network: chunk_flits must be in [1, 8]; larger chunks could "
        "overflow the slack buffer before a stop takes effect");
  }
  if (routes.num_switches() != topo.num_switches()) {
    throw std::invalid_argument("Network: route set/topology mismatch");
  }
  topo_ = &topo;
  routes_ = &routes;
  params_ = params;
  pod_ = sim_->engine() == EngineKind::kPod;
  coalesce_ = pod_ && params.coalesce_chunk_flow;
  ledger_ = params.ledger_checks;
  par_ = par;
  assert((par_ == nullptr || pod_) && "sharded runs require the POD engine");
  if (pod_) sim_->set_pod_handler(this);
  if (par_ != nullptr) par_->bind(this, this);

  // --- wire up channels ---
  // Value-reinitialise every channel in place (Channel is trivially
  // copyable, so this reuses the vector's capacity); any arena-spilled
  // queue buffer is abandoned here and reclaimed by the rewind below.
  // Spill-queue binding happens after the cable loop, once each channel's
  // owning lanes are known.
  channels_.assign(idx(topo.num_channels()), Channel{});
  out_port_stride_ = idx(topo.ports_per_switch());
  out_channel_at_.assign(idx(topo.num_switches()) * out_port_stride_,
                         ChannelId{-1});
  for (CableId c = 0; c < topo.num_cables(); ++c) {
    const Cable& cb = topo.cable(c);
    const TimePs prop = params_.cable_prop_delay(cb.length_m);

    Channel& fwd = chan(topo.channel_from(c, true));  // A side -> B side
    fwd.prop_delay = prop;
    fwd.from_switch = true;
    fwd.src_sw = cb.a.sw;
    fwd.src_port = cb.a.port;
    out_channel_at_[idx(cb.a.sw) * out_port_stride_ + idx(cb.a.port)] =
        topo.channel_from(c, true);
    Channel& rev = chan(topo.channel_from(c, false));  // B side -> A side
    rev.prop_delay = prop;
    rev.into_switch = true;
    rev.dst_sw = cb.a.sw;
    rev.dst_port = cb.a.port;

    if (cb.to_host()) {
      fwd.into_switch = false;
      fwd.dst_host = cb.host;
      rev.from_switch = false;
      rev.src_host = cb.host;
    } else {
      fwd.into_switch = true;
      fwd.dst_sw = cb.b.sw;
      fwd.dst_port = cb.b.port;
      rev.from_switch = true;
      rev.src_sw = cb.b.sw;
      rev.src_port = cb.b.port;
      out_channel_at_[idx(cb.b.sw) * out_port_stride_ + idx(cb.b.port)] =
          topo.channel_from(c, false);
    }
  }

  // --- lane ownership + spill-queue binding ---
  // Tag each channel half with its owning lane (all lane 0 in serial
  // operation) and bind every spill queue to the arena of the lane whose
  // thread mutates it: requests live with the sender half, entries and
  // incoming with the receiver half.
  const int lanes = par_ == nullptr ? 1 : par_->plan().shards;
  while (static_cast<int>(extra_arenas_.size()) < lanes - 1) {
    extra_arenas_.push_back(std::make_unique<Arena>());
  }
  if (par_ != nullptr) {
    const PartitionPlan& plan = par_->plan();
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      Channel& c = channels_[i];
      c.send_lane = plan.ch_send_lane[i];
      c.recv_lane = plan.ch_recv_lane[i];
      c.cross = c.send_lane != c.recv_lane;
    }
  }
  for (Channel& c : channels_) {
    c.requests.reset(&lane_arena(c.send_lane));
    c.entries.reset(&lane_arena(c.recv_lane));
    c.incoming.reset(&lane_arena(c.recv_lane));
  }

  // --- NICs ---
  Rng seeder(seed);
  nics_.resize(idx(topo.num_hosts()));
  for (HostId h = 0; h < topo.num_hosts(); ++h) {
    Nic& n = nic(h);
    n.id = h;
    const HostAttachment& at = topo.host(h);
    n.sw = at.sw;
    n.to_switch = topo.channel_from(at.cable, false);   // host is the B side
    n.from_switch = topo.channel_from(at.cable, true);
    Arena& host_arena = lane_arena(
        par_ == nullptr ? 0 : par_->plan().lane_of_host(h));
    n.source_queue.reset(&host_arena);
    n.itb_queue.reset(&host_arena);
    n.itb_pool_used = 0;
    n.selector.reset(policy, topo.num_switches(),
                     seeder.next_u64() ^ static_cast<std::uint64_t>(h));
  }

  // Every spilled buffer has been dropped above; recycle the arena blocks.
  arena_.rewind();
  for (auto& a : extra_arenas_) a->rewind();

  // Lane states (serial operation uses lane_[0] only; stale extra lanes
  // from an earlier sharded run are zeroed too, so the summed accessors
  // stay correct).  Packet storage persists per lane; rebuild each free
  // list in reverse storage order so alloc_packet hands slots out in
  // first-fill order again — this also repatriates packets that were freed
  // on a different lane than the one whose deque stores them.
  while (static_cast<int>(lane_.size()) < (lanes > 1 ? lanes : 1)) {
    lane_.emplace_back();
  }
  lane0_ = &lane_[0];
  for (std::size_t li = 0; li < lane_.size(); ++li) {
    LaneState& l = lane_[li];
    l.packet_free.clear();
    l.packet_free.reserve(l.packet_storage.size());
    for (auto it = l.packet_storage.rbegin(); it != l.packet_storage.rend();
         ++it) {
      l.packet_free.push_back(&*it);
    }
    l.next_packet_id = 1;
    l.id_tag = par_ != nullptr ? static_cast<std::uint64_t>(li) << 48 : 0;
    l.injected = 0;
    l.delivered = 0;
    l.itb_spills = 0;
    l.fc_violations = 0;
    l.chunk_events_coalesced = 0;
    l.max_occupancy = 0;
    l.deliveries.clear();
    l.merge_cursor = 0;
    l.checks.clear();
  }

  on_delivery_ = nullptr;
  event_sink_ = nullptr;
  tracer_ = nullptr;
  prof_ = nullptr;
  lane_profs_ = nullptr;
  delivery_ties_ = 0;
  checks_.clear();
  heap_allocs_run_base_ = total_heap_allocs();
}

void Network::handle_event(const Event& e) {
  ScopedPhase phase(cur_prof(), Phase::kEventDispatch);
  dispatch_event(e);
}

void Network::shard_apply_boundary(const BoundaryMsg& m) {
  Channel& c = chan(m.ch);
  if (m.announce_pkt != nullptr) {
    c.incoming.push_back(
        Incoming{static_cast<Packet*>(m.announce_pkt), m.announce_len});
  }
  // The receiver half owns a cross channel's wire ledger: credit the flits
  // at drain (they left the sender before this barrier), debit them when
  // the arrival executes.
  if (m.kind == EventKind::kChunkArrived) c.wire_flits += m.a;
  shard::tl_sim->schedule_event_keyed_at(m.at, m.key, m.kind, m.ch, m.a);
}

void Network::flush_deliveries() {
  if (par_ == nullptr) return;
  // Coordinator-side metrics attribution: the replay below is the sharded
  // counterpart of the serial delivery-callback scope in deliver().
  ScopedPhase phase(prof_, Phase::kMetrics);
  // K-way merge of the per-lane time-ordered buffers by (deliver_time,
  // lane) — the order the serial engine's single callback stream would
  // have, up to cross-lane same-picosecond pairs, which are counted so a
  // differential test can assert the merged stream is exactly serial.
  for (;;) {
    TimePs min_t = 0;
    std::size_t min_lane = 0;
    bool any = false;
    for (std::size_t li = 0; li < lane_.size(); ++li) {
      const LaneState& l = lane_[li];
      if (l.merge_cursor >= l.deliveries.size()) continue;
      const TimePs t = l.deliveries[l.merge_cursor].deliver_time;
      if (!any || t < min_t) {
        min_t = t;
        min_lane = li;
        any = true;
      }
    }
    if (!any) break;
    for (std::size_t li = 0; li < lane_.size(); ++li) {
      if (li == min_lane) continue;
      const LaneState& l = lane_[li];
      if (l.merge_cursor < l.deliveries.size() &&
          l.deliveries[l.merge_cursor].deliver_time == min_t) {
        ++delivery_ties_;
      }
    }
    LaneState& l = lane_[min_lane];
    if (on_delivery_) on_delivery_(l.deliveries[l.merge_cursor]);
    ++l.merge_cursor;
  }
  for (LaneState& l : lane_) {
    l.deliveries.clear();
    l.merge_cursor = 0;
  }
  // Absorb the per-lane violation records into the primary recorder, in
  // lane order (deterministic: each lane's own record order is).
  for (LaneState& l : lane_) checks_.absorb(l.checks);
}

void Network::dispatch_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kChunkSent: chunk_sent(e.ch, e.a); break;
    case EventKind::kChunkArrived: chunk_arrived(e.ch, e.a); break;
    case EventKind::kBurstArrived: burst_arrived(e.ch, e.a); break;
    case EventKind::kStopArrived: stop_arrived(e.ch); break;
    case EventKind::kGoArrived: go_arrived(e.ch); break;
    case EventKind::kGrantDone: grant_done(e.ch); break;
    case EventKind::kItbReady: itb_ready(static_cast<Packet*>(e.p)); break;
    case EventKind::kCallback:
      assert(false && "kCallback is dispatched by the Simulator");
      break;
  }
}

void Network::sched_event(TimePs delay, EventKind kind, ChannelId ch, int a) {
  if (pod_) {
    if (par_ == nullptr) {
      sim_->schedule_event_in(delay, kind, ch, a);
      return;
    }
    // Sharded run: route the event to the lane owning the half of the
    // channel it mutates.  Arrivals land on the receiver half; everything
    // else (chunk transmit completion, stop/go credits reaching the sender,
    // routing-delay expiry) acts on the sender half.
    Channel& c = chan(ch);
    const std::int16_t target = (kind == EventKind::kChunkArrived ||
                                 kind == EventKind::kBurstArrived)
                                    ? c.recv_lane
                                    : c.send_lane;
    Simulator& s = *shard::tl_sim;
    if (target == shard::tl_lane) {
      s.schedule_event_in(delay, kind, ch, a);
      return;
    }
    // Cross-lane: carry the key this lane would have pushed with, so the
    // receiving lane's calendar merges the event into the serial order.
    BoundaryMsg m{s.now() + delay, s.next_shard_key(),
                  /*announce_pkt=*/nullptr, /*announce_len=*/0, ch, a, kind};
    if (kind == EventKind::kChunkArrived && c.announce_pending) {
      m.announce_pkt = c.owner;
      m.announce_len = c.flow_len;
      c.announce_pending = false;
    }
    par_->post(target, m);
    return;
  }
  switch (kind) {
    case EventKind::kChunkSent:
      sim_->schedule_in(delay, [this, ch, a] { chunk_sent(ch, a); });
      break;
    case EventKind::kChunkArrived:
      sim_->schedule_in(delay, [this, ch, a] { chunk_arrived(ch, a); });
      break;
    case EventKind::kStopArrived:
      sim_->schedule_in(delay, [this, ch] { stop_arrived(ch); });
      break;
    case EventKind::kGoArrived:
      sim_->schedule_in(delay, [this, ch] { go_arrived(ch); });
      break;
    case EventKind::kGrantDone:
      sim_->schedule_in(delay, [this, ch] { grant_done(ch); });
      break;
    default:
      assert(false && "no legacy closure for this kind");
      break;
  }
}

Packet* Network::alloc_packet() {
  LaneState& l = ln();
  if (!l.packet_free.empty()) {
    Packet* p = l.packet_free.back();
    l.packet_free.pop_back();
    *p = Packet{};
    return p;
  }
  l.packet_storage.emplace_back();
  ++l.packet_heap_allocs;
  return &l.packet_storage.back();
}

void Network::free_packet(Packet* p) { ln().packet_free.push_back(p); }

void Network::emit_event(const Packet* p, PacketEvent ev, SwitchId sw,
                         HostId host) {
  if (!event_sink_) return;
  event_sink_(PacketEventRecord{sim_->now(), p->id, ev, sw, host});
}

void Network::inject(HostId src, HostId dst, int payload_bytes) {
  assert(src != dst);
  assert(payload_bytes > 0);
  LaneState& l = ln();
  Packet* p = alloc_packet();
  p->id = l.id_tag | l.next_packet_id++;
  p->src = src;
  p->dst = dst;
  p->payload_flits = payload_bytes;
  p->gen_time = cursim().now();

  const SwitchId ssw = topo_->host(src).sw;
  const SwitchId dsw = topo_->host(dst).sw;
  const AltsView alts = routes_->alternatives(ssw, dsw);
  assert(!alts.empty());
  Nic& n = nic(src);
  p->alt_index = n.selector.pick(dsw, static_cast<int>(alts.size()));
  p->route = alts[idx(p->alt_index)];
  p->delivery_port = topo_->host(dst).port;
  p->leg_wire_flits = leg_start_wire_flits(p->route, 0, p->payload_flits,
                                           params_.type_bytes);
  ++l.injected;
  n.source_queue.push_back(p);
  emit_event(p, PacketEvent::kInjected, kNoSwitch, src);
  trace(TraceKind::kInject, p->id, -1, kNoSwitch, src);
  nic_try_start(src);
}

void Network::nic_try_start(HostId h) {
  Nic& n = nic(h);
  Channel& c = chan(n.to_switch);
  if (c.owner != nullptr) return;
  Packet* p = nullptr;
  bool from_itb_queue = false;
  if (params_.itb_priority_over_injection && !n.itb_queue.empty()) {
    p = n.itb_queue.front();
    n.itb_queue.pop_front();
    from_itb_queue = true;
  } else if (!n.source_queue.empty()) {
    p = n.source_queue.front();
    n.source_queue.pop_front();
  } else if (!n.itb_queue.empty()) {
    p = n.itb_queue.front();
    n.itb_queue.pop_front();
    from_itb_queue = true;
  }
  if (p == nullptr) return;
  c.owner = p;
  trace(TraceKind::kChanAcquire, p->id, n.to_switch, kNoSwitch, h);
  c.src_in_ch = -1;
  c.flow_len = p->leg_wire_flits;
  c.sent = 0;
  c.coalesce_flow = false;  // receiver is a switch: arrivals are observable
  c.burst_flits = 0;
  if (from_itb_queue) {
    // The leg being re-injected is p->current_leg *right now*; the ejection
    // that feeds it happened at the previous leg's end host.
    c.flow_eject_host =
        p->route.legs[idx(p->current_leg - 1)].end_host;
  } else {
    c.flow_eject_host = kNoHost;
    p->inject_time = cursim().now();
  }
  c.incoming.push_back(Incoming{p, c.flow_len});
  try_send(n.to_switch);
}

int Network::sender_available(const Channel& c) const {
  if (c.from_switch) {
    const Channel& in = channels_[idx(c.src_in_ch)];
    assert(!in.entries.empty() && in.entries.front().pkt == c.owner);
    const BufferEntry& e = in.entries.front();
    assert(e.header_done);
    return (e.arrived_raw - 1) - c.sent;
  }
  // NIC sender.
  const Packet* p = c.owner;
  if (c.flow_eject_host == kNoHost) {
    return c.flow_len - c.sent;  // fully resident in NIC memory
  }
  // Re-injection: never ahead of what has been received on the previous
  // leg (minus the ITB mark byte, which is not re-injected).
  const Channel& in =
      channels_[idx(nics_[idx(c.flow_eject_host)].from_switch)];
  for (const BufferEntry& e : in.entries) {
    if (e.pkt == p) {
      const int avail = std::min(c.flow_len, e.arrived_raw - 1);
      return avail - c.sent;
    }
  }
  // The ejection entry must exist until re-injection completes.
  assert(false && "re-injection without ejection entry");
  return 0;
}

void Network::try_send(ChannelId ch) {
  Channel& c = chan(ch);
  if (c.owner == nullptr || c.sending || c.grant_pending || c.sender_stopped) {
    return;
  }
  const int avail = sender_available(c);
  assert(avail >= 0);
  if (avail == 0) return;
  const int k = std::min(params_.chunk_flits, avail);
  c.sending = true;
  sched_event(static_cast<TimePs>(k) * params_.flit_time,
              EventKind::kChunkSent, ch, k);
}

void Network::chunk_sent(ChannelId ch, int k) {
  Channel& c = chan(ch);
  assert(c.sending && c.owner != nullptr);
  c.sending = false;
  const bool first_chunk = (c.sent == 0);
  c.sent += k;
  c.busy_accum += static_cast<TimePs>(k) * params_.flit_time;
  // A cross channel's wire ledger belongs to the receiver half: the credit
  // is applied at mailbox drain (shard_apply_boundary), not here.
  if (!c.cross) c.wire_flits += k;

  if (c.from_switch) {
    Channel& in = chan(c.src_in_ch);
    BufferEntry& e = in.entries.front();
    assert(e.pkt == c.owner);
    e.forwarded += k;
    in.occupancy -= k;
    assert(in.occupancy >= 0);
    if (ledger_ && in.occupancy < 0) {
      recorder().record(InvariantKind::kFlitConservation, cursim().now(),
                        c.src_in_ch,
                        "buffer occupancy went negative on forward");
    }
    ITB_DEEP_CHECK(e.forwarded <= e.arrived_raw - 1,
                   InvariantKind::kFlitConservation, ch,
                   "forwarded flits ahead of arrivals (header excluded)");
    if (in.stop_sent && in.occupancy < params_.go_threshold_flits) {
      in.stop_sent = false;
      sched_event(in.prop_delay, EventKind::kGoArrived, c.src_in_ch);
    }
  }

  if (c.coalesce_flow && !first_chunk) {
    if (c.sent == c.flow_len) {
      // Tail chunk: land it together with every suppressed flit, pushed at
      // the exact moment the legacy engine pushes the tail arrival.
      sched_event(c.prop_delay, EventKind::kBurstArrived, ch,
                  c.burst_flits + k);
    } else {
      // Intermediate delivery arrival: a pure sink — elide the event.
      c.burst_flits += k;
      ++ln().chunk_events_coalesced;
    }
  } else {
    // The first chunk always arrives as itself: it carries the header and
    // opens the receiver entry.
    sched_event(c.prop_delay, EventKind::kChunkArrived, ch, k);
  }

  if (c.sent == c.flow_len) {
    sender_done(ch);
  } else {
    try_send(ch);
  }
}

void Network::sender_done(ChannelId ch) {
  Channel& c = chan(ch);
  Packet* p = c.owner;
  trace(TraceKind::kChanRelease, p->id, ch, c.src_sw, c.src_host);

  if (c.from_switch) {
    Channel& in = chan(c.src_in_ch);
    assert(!in.entries.empty() && in.entries.front().pkt == p);
    assert(in.entries.front().forwarded == in.entries.front().total_flits - 1);
    in.entries.pop_front();
    // The next packet's header may already be waiting at the FIFO head.
    if (!in.entries.empty() && !in.entries.front().header_done &&
        in.entries.front().arrived_raw > 0) {
      process_header(c.src_in_ch);
    }
  } else {
    // NIC sender.
    Nic& n = nic(c.src_host);
    if (c.flow_eject_host != kNoHost) {
      // A re-injection finished: free the ITB pool reservation and drop the
      // ejection entry (NIC memory) of the previous leg.
      assert(c.flow_eject_host == c.src_host);
      Channel& in = chan(n.from_switch);
      auto it = std::find_if(in.entries.begin(), in.entries.end(),
                             [p](const BufferEntry& e) { return e.pkt == p; });
      assert(it != in.entries.end());
      n.itb_pool_used -= it->reserved_bytes;
      if (ledger_ && n.itb_pool_used < 0) {
        recorder().record(InvariantKind::kItbPoolOverflow, cursim().now(),
                          n.id, "ITB pool released below zero");
      }
      in.occupancy -= it->total_flits - it->forwarded;  // bookkeeping only
      in.entries.erase(it);
    }
  }

  c.owner = nullptr;
  c.src_in_ch = -1;
  c.flow_eject_host = kNoHost;
  c.flow_len = 0;
  c.sent = 0;
  c.coalesce_flow = false;
  c.burst_flits = 0;

  if (c.from_switch) {
    grant_next(ch);
  } else {
    nic_try_start(c.src_host);
  }
}

void Network::chunk_arrived(ChannelId ch, int k) {
  Channel& c = chan(ch);

  // Attach the chunk to the newest incomplete entry, or open a new entry
  // for the next packet announced on the wire.
  BufferEntry* entry = nullptr;
  if (!c.entries.empty() &&
      c.entries.back().arrived_raw < c.entries.back().total_flits) {
    entry = &c.entries.back();
  } else {
    assert(!c.incoming.empty());
    const auto [pkt, len] = c.incoming.front();
    c.incoming.pop_front();
    c.entries.push_back(BufferEntry{});
    entry = &c.entries.back();
    entry->pkt = pkt;
    entry->total_flits = len;
  }
  entry->arrived_raw += k;
  c.occupancy += k;
  c.wire_flits -= k;
  if (ledger_ && c.wire_flits < 0) {
    recorder().record(InvariantKind::kFlitConservation, cursim().now(), ch,
                      "more flits landed than were sent on this channel");
  }
  ITB_DEEP_CHECK(entry->arrived_raw <= entry->total_flits,
                 InvariantKind::kFlitConservation, ch,
                 "entry overfilled beyond its announced wire length");

  if (c.into_switch) {
    // Only slack buffers have a capacity; NIC memory is modelled as an
    // unbounded sink (ejection must never block — §3 of the paper).
    LaneState& l = ln();
    if (c.occupancy > l.max_occupancy) l.max_occupancy = c.occupancy;
    if (c.occupancy > params_.slack_buffer_flits) {
      ++l.fc_violations;
      if (ledger_) {
        recorder().record(InvariantKind::kBufferOverflow, cursim().now(), ch,
                          "slack buffer at " + std::to_string(c.occupancy) +
                              " flits, capacity " +
                              std::to_string(params_.slack_buffer_flits));
      }
    }
    if (!c.stop_sent && c.occupancy > params_.stop_threshold_flits) {
      c.stop_sent = true;
      sched_event(c.prop_delay, EventKind::kStopArrived, ch);
    }
    if (&c.entries.front() == entry && !entry->header_done) {
      process_header(ch);
    } else if (&c.entries.front() == entry && entry->header_done &&
               entry->out_ch >= 0) {
      try_send(entry->out_ch);
    }
  } else {
    // NIC receiver: always sinks; no flow control.
    if (!entry->header_done) nic_header_arrived(ch, *entry);
    if (entry->arrived_raw == entry->total_flits && entry->is_delivery) {
      deliver(ch, *entry);
      return;
    }
    // Wake a stalled re-injection waiting on this data.
    Nic& n = nic(c.dst_host);
    Channel& out = chan(n.to_switch);
    if (out.owner == entry->pkt) try_send(n.to_switch);
  }
}

void Network::burst_arrived(ChannelId ch, int flits) {
  // Coalesced delivery tail: the suppressed intermediate flits and the tail
  // chunk all land now, at the exact time the legacy per-chunk tail arrival
  // fires.  The entry is necessarily the newest one on this NIC channel —
  // the next flow cannot start arriving before our sender released the
  // channel, which is also when this event was pushed.
  Channel& c = chan(ch);
  assert(!c.into_switch && c.dst_host != kNoHost);
  assert(!c.entries.empty());
  BufferEntry& e = c.entries.back();
  assert(e.header_done && e.is_delivery);
  e.arrived_raw += flits;
  c.occupancy += flits;
  c.wire_flits -= flits;
  if (ledger_ && c.wire_flits < 0) {
    recorder().record(InvariantKind::kFlitConservation, cursim().now(), ch,
                      "coalesced burst landed more flits than were sent");
  }
  assert(e.arrived_raw == e.total_flits);
  deliver(ch, e);
}

void Network::process_header(ChannelId in_ch) {
  ScopedPhase phase(cur_prof(), Phase::kRouteLookup);
  Channel& in = chan(in_ch);
  BufferEntry& e = in.entries.front();
  assert(!e.header_done && e.arrived_raw > 0);
  e.header_done = true;
  in.occupancy -= 1;  // the routing byte is consumed by the control unit
  if (ledger_ && in.occupancy < 0) {
    recorder().record(InvariantKind::kFlitConservation, cursim().now(), in_ch,
                      "buffer occupancy went negative on header strip");
  }
  if (in.stop_sent && in.occupancy < params_.go_threshold_flits) {
    in.stop_sent = false;
    sched_event(in.prop_delay, EventKind::kGoArrived, in_ch);
  }
  Packet* p = e.pkt;
  emit_event(p, PacketEvent::kHeaderAtSwitch, in.dst_sw, kNoHost);
  trace(TraceKind::kHeader, p->id, in_ch, in.dst_sw, kNoHost);
  const PortId port = p->next_port();
  const ChannelId out_ch = out_channel(in.dst_sw, port);
  assert(out_ch >= 0 && "route names an unconnected port");
  ITB_DEEP_CHECK(chan(out_ch).src_sw == in.dst_sw,
                 InvariantKind::kIllegalRoute, in_ch,
                 "granted output does not leave the header's switch");
  request_output(out_ch, in_ch, in.dst_port, p);
}

void Network::request_output(ChannelId out_ch, ChannelId in_ch, PortId in_port,
                             Packet* pkt) {
  Channel& out = chan(out_ch);
  if (out.owner == nullptr) {
    out.rr_ptr = in_port;
    grant(out_ch, in_ch, pkt);
  } else {
    out.requests.push_back(Request{in_ch, in_port, pkt});
  }
}

void Network::grant(ChannelId out_ch, ChannelId in_ch, Packet* pkt) {
  Channel& out = chan(out_ch);
  Channel& in = chan(in_ch);
  assert(out.owner == nullptr);
  assert(!in.entries.empty() && in.entries.front().pkt == pkt);
  out.owner = pkt;
  trace(TraceKind::kChanAcquire, pkt->id, out_ch, out.src_sw, kNoHost);
  out.src_in_ch = in_ch;
  out.flow_len = in.entries.front().total_flits - 1;
  out.sent = 0;
  // Final-leg flows into a NIC qualify for tail-burst coalescing: the
  // classification is stable from here until the header reaches the NIC
  // (current_leg only advances at in-transit hosts, before re-injection).
  out.coalesce_flow =
      coalesce_ && out.dst_host != kNoHost && pkt->on_final_leg();
  out.burst_flits = 0;
  out.grant_pending = true;
  in.entries.front().out_ch = out_ch;
  sched_event(params_.routing_delay, EventKind::kGrantDone, out_ch);
}

void Network::grant_done(ChannelId out_ch) {
  Channel& out = chan(out_ch);
  assert(out.grant_pending && out.owner != nullptr);
  out.grant_pending = false;
  if (out.cross) {
    // The receiver half lives on another lane: the announcement rides the
    // flow's first kChunkArrived mailbox message (see sched_event) and is
    // applied at drain, still strictly before any of the flow's arrivals
    // execute — the same order the receiver observes serially.
    out.announce_pending = true;
  } else {
    out.incoming.push_back(Incoming{out.owner, out.flow_len});
  }
  try_send(out_ch);
}

void Network::grant_next(ChannelId out_ch) {
  Channel& out = chan(out_ch);
  if (out.requests.empty()) return;
  // Demand-slotted round-robin over input ports: serve the pending request
  // whose input port follows the last-served port most closely.
  const int ports = topo_->ports_per_switch();
  std::size_t best = 0;
  int best_dist = ports + 1;
  for (std::size_t i = 0; i < out.requests.size(); ++i) {
    int d = (out.requests[i].in_port - out.rr_ptr - 1 + ports) % ports;
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  const Request req = out.requests[best];
  out.requests.erase(&out.requests[best]);
  out.rr_ptr = req.in_port;
  grant(out_ch, req.in_ch, req.pkt);
}

void Network::stop_arrived(ChannelId ch) {
  Channel& c = chan(ch);
  // Stop and go credits strictly alternate per channel (stop_sent guards
  // both send sites and the wire preserves order), so a repeated stop means
  // a credit was duplicated or lost somewhere.
  if (ledger_ && c.sender_stopped) {
    recorder().record(
        InvariantKind::kCreditConservation, cursim().now(), ch,
        "stop credit arrived while the sender was already stopped");
  }
  c.sender_stopped = true;
  if (c.owner != nullptr) c.stopped_since = cursim().now();
}

void Network::go_arrived(ChannelId ch) {
  Channel& c = chan(ch);
  if (c.drop_next_go) {  // test_drop_next_go fault: the credit is lost
    c.drop_next_go = false;
    return;
  }
  if (ledger_ && !c.sender_stopped) {
    recorder().record(InvariantKind::kCreditConservation, cursim().now(), ch,
                      "go credit arrived while the sender was not stopped");
  }
  c.sender_stopped = false;
  if (c.stopped_since >= 0) {
    c.stopped_accum += cursim().now() - c.stopped_since;
    c.stopped_since = -1;
  }
  try_send(ch);
}

void Network::nic_header_arrived(ChannelId in_ch, BufferEntry& entry) {
  entry.header_done = true;
  Packet* p = entry.pkt;
  if (p->on_final_leg()) {
    entry.is_delivery = true;
    return;
  }
  // In-transit packet: reserve buffer space and start the detection + DMA
  // programming pipeline.
  entry.is_delivery = false;
  ++p->itbs_used;
  emit_event(p, PacketEvent::kEjectedAtItb, kNoSwitch, chan(in_ch).dst_host);
  trace(TraceKind::kEject, p->id, in_ch, kNoSwitch, chan(in_ch).dst_host);
  Nic& n = nic(chan(in_ch).dst_host);
  const std::int64_t need = entry.total_flits;  // one byte per flit
  TimePs ready_delay = params_.itb_detect_delay + params_.itb_dma_delay;
  if (n.itb_pool_used + need <= params_.itb_pool_bytes) {
    n.itb_pool_used += need;
    entry.reserved_bytes = need;
    if (ledger_ && n.itb_pool_used > params_.itb_pool_bytes) {
      recorder().record(InvariantKind::kItbPoolOverflow, cursim().now(), n.id,
                        "ITB pool reserved past capacity");
    }
  } else {
    // Pool exhausted: the MCP stages the packet through host memory.
    ++ln().itb_spills;
    p->spilled_to_host_memory = true;
    entry.reserved_bytes = 0;
    ready_delay += params_.host_memory_penalty;
    trace(TraceKind::kSpill, p->id, in_ch, kNoSwitch, n.id);
  }
  if (pod_) {
    // The in-transit host and its NIC live on this lane, so the ready event
    // is always local.
    cursim().schedule_event_in(ready_delay, EventKind::kItbReady, /*ch=*/-1,
                               /*a=*/0, p);
  } else {
    sim_->schedule_in(ready_delay, [this, p] { itb_ready(p); });
  }
}

void Network::itb_ready(Packet* p) {
  const LegView leg = p->route.legs[idx(p->current_leg)];
  const HostId host = leg.end_host;
  assert(host != kNoHost);
  p->current_leg += 1;
  p->hop_in_leg = 0;
  p->leg_wire_flits = leg_start_wire_flits(p->route, p->current_leg,
                                           p->payload_flits,
                                           params_.type_bytes);
  emit_event(p, PacketEvent::kReinjectionReady, kNoSwitch, host);
  trace(TraceKind::kReinject, p->id, -1, kNoSwitch, host);
  Nic& n = nic(host);
  n.itb_queue.push_back(p);
  nic_try_start(host);
}

void Network::deliver(ChannelId in_ch, BufferEntry& entry) {
  Channel& c = chan(in_ch);
  LaneState& l = ln();
  Packet* p = entry.pkt;
  p->deliver_time = cursim().now();
  ++l.delivered;
  // The inline source->sink comparison only holds within one ledger; a
  // sharded run's packets deliver on a different lane than they were
  // injected, so conservation is checked globally in audit_invariants.
  if (ledger_ && par_ == nullptr && l.delivered > l.injected) {
    recorder().record(InvariantKind::kPacketConservation, cursim().now(),
                      static_cast<std::int64_t>(p->id),
                      "more packets delivered than injected");
  }
  emit_event(p, PacketEvent::kDelivered, kNoSwitch, p->dst);
  trace(TraceKind::kDeliver, p->id, in_ch, kNoSwitch, p->dst);

  const DeliveryRecord rec{p->src, p->dst, p->payload_flits, p->gen_time,
                           p->inject_time, p->deliver_time, p->itbs_used,
                           p->alt_index, p->route.total_switch_hops,
                           p->spilled_to_host_memory};
  if (par_ != nullptr) {
    // Buffered per lane (time-ordered: this lane's clock is monotone) and
    // replayed through the callback at the next flush_deliveries(), so the
    // metrics accumulators see one global time-ordered stream.
    l.deliveries.push_back(rec);
  } else if (on_delivery_) {
    ScopedPhase phase(prof_, Phase::kMetrics);
    on_delivery_(rec);
  }
  if (par_ == nullptr) {
    // Close the adaptive-policy loop: the source learns the network latency
    // of the alternative it picked (models an acknowledgment path).  The
    // source NIC may live on another lane, so sharded runs skip this; the
    // harness falls back to the serial engine for adaptive policies.
    nic(p->src).selector.feedback(p->route.dst_switch, p->alt_index,
                                  p->deliver_time - p->inject_time);
  }

  c.occupancy -= entry.total_flits;
  auto it = std::find_if(c.entries.begin(), c.entries.end(),
                         [p](const BufferEntry& e) { return e.pkt == p; });
  assert(it != c.entries.end());
  c.entries.erase(it);
  free_packet(p);
}

void Network::reset_channel_stats() {
  for (Channel& c : channels_) {
    c.busy_accum = 0;
    c.stopped_accum = 0;
    if (c.stopped_since >= 0) c.stopped_since = sim_->now();
  }
}

void Network::debug_dump(std::ostream& os) const {
  os << "=== network dump @" << sim_->now()
     << "ps: injected=" << packets_injected()
     << " delivered=" << packets_delivered() << "\n";
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const Channel& c = channels_[i];
    if (c.owner == nullptr && c.entries.empty() && c.requests.empty()) {
      continue;
    }
    os << "ch " << i << " [";
    if (c.from_switch) {
      os << "sw" << c.src_sw << ":p" << c.src_port;
    } else {
      os << "host" << c.src_host;
    }
    os << " -> ";
    if (c.into_switch) {
      os << "sw" << c.dst_sw << ":p" << c.dst_port;
    } else {
      os << "host" << c.dst_host;
    }
    os << "]";
    if (c.owner != nullptr) {
      os << " owner=pkt" << c.owner->id << " sent=" << c.sent << "/"
         << c.flow_len << (c.sending ? " SENDING" : "")
         << (c.grant_pending ? " GRANT_PENDING" : "")
         << (c.sender_stopped ? " STOPPED" : "");
    }
    os << " occ=" << c.occupancy << (c.stop_sent ? " STOP_SENT" : "");
    for (const BufferEntry& e : c.entries) {
      os << " {pkt" << e.pkt->id << " " << e.arrived_raw << "/"
         << e.total_flits << " fwd=" << e.forwarded
         << (e.header_done ? " hdr" : "") << " out=" << e.out_ch << "}";
    }
    if (!c.requests.empty()) {
      os << " waiting:";
      for (const Request& r : c.requests) os << " pkt" << r.pkt->id;
    }
    os << "\n";
  }
}

std::uint64_t Network::source_backlog_packets() const {
  std::uint64_t n = 0;
  for (const Nic& nc : nics_) n += nc.source_queue.size();
  return n;
}

std::string Network::channel_label(ChannelId ch) const {
  const Channel& c = channels_[idx(ch)];
  std::string s = "ch" + std::to_string(ch) + "(";
  s += c.from_switch
           ? "sw" + std::to_string(c.src_sw) + ":p" + std::to_string(c.src_port)
           : "host" + std::to_string(c.src_host);
  s += "->";
  s += c.into_switch
           ? "sw" + std::to_string(c.dst_sw) + ":p" + std::to_string(c.dst_port)
           : "host" + std::to_string(c.dst_host);
  return s + ")";
}

void Network::audit_invariants(bool quiescent) {
  ScopedPhase phase(prof_, Phase::kLedgerChecks);
  const TimePs now = sim_->now();
  // Per-channel ledgers: every occupancy must equal the sum of its live
  // entries' resident flits, and no wire may have landed more than was sent.
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const Channel& c = channels_[i];
    const auto ch = static_cast<ChannelId>(i);
    if (c.wire_flits < 0 || (quiescent && c.wire_flits != 0)) {
      checks_.record(InvariantKind::kFlitConservation, now, ch,
                     "wire ledger reads " + std::to_string(c.wire_flits) +
                         " flits at audit");
    }
    if (c.into_switch || c.dst_host != kNoHost) {
      std::int64_t expected = 0;
      for (const BufferEntry& e : c.entries) {
        // Switch buffers strip the routing byte and drain via `forwarded`;
        // NIC memory holds everything that arrived until delivery/erase.
        expected += c.into_switch
                        ? e.arrived_raw - (e.header_done ? 1 : 0) - e.forwarded
                        : e.arrived_raw;
      }
      if (expected != c.occupancy) {
        checks_.record(InvariantKind::kFlitConservation, now, ch,
                       "occupancy ledger reads " + std::to_string(c.occupancy) +
                           ", entries hold " + std::to_string(expected));
      }
      if (c.into_switch && c.occupancy > params_.slack_buffer_flits) {
        checks_.record(InvariantKind::kBufferOverflow, now, ch,
                       "slack buffer at " + std::to_string(c.occupancy) +
                           " flits at audit, capacity " +
                           std::to_string(params_.slack_buffer_flits));
      }
    }
    // A stopped sender whose receiver has no stop outstanding and no go in
    // flight will never resume: the credit was lost.  Only decidable at
    // quiescence — mid-run the go may legitimately be on the wire.
    if (quiescent && c.sender_stopped && !c.stop_sent) {
      checks_.record(InvariantKind::kCreditConservation, now, ch,
                     "sender stopped with no stop outstanding: go credit "
                     "lost");
    }
  }
  // ITB pools: the pool level must equal the sum of live reservations and
  // stay within capacity.
  for (const Nic& n : nics_) {
    std::int64_t reserved = 0;
    for (const BufferEntry& e : channels_[idx(n.from_switch)].entries) {
      reserved += e.reserved_bytes;
    }
    if (n.itb_pool_used != reserved || n.itb_pool_used < 0 ||
        n.itb_pool_used > params_.itb_pool_bytes) {
      checks_.record(InvariantKind::kItbPoolOverflow, now, n.id,
                     "pool ledger reads " + std::to_string(n.itb_pool_used) +
                         " bytes, live reservations total " +
                         std::to_string(reserved) + " (capacity " +
                         std::to_string(params_.itb_pool_bytes) + ")");
    }
  }
  // Source->sink packet conservation: every injected, undelivered packet
  // must be somewhere (a NIC queue, a buffer entry, a flow, or announced on
  // a wire), and nothing else may hold a live packet.
  std::unordered_set<const Packet*> live;
  for (const Nic& n : nics_) {
    for (const Packet* p : n.source_queue) live.insert(p);
    for (const Packet* p : n.itb_queue) live.insert(p);
  }
  for (const Channel& c : channels_) {
    if (c.owner != nullptr) live.insert(c.owner);
    for (const BufferEntry& e : c.entries) live.insert(e.pkt);
    for (const auto& [p, len] : c.incoming) live.insert(p);
  }
  if (par_ != nullptr) {
    // A packet whose sender finished while its announcement is still in an
    // undrained mailbox is live only there — walk the in-flight messages.
    par_->for_each_pending([&live](const BoundaryMsg& m) {
      if (m.announce_pkt != nullptr) {
        live.insert(static_cast<const Packet*>(m.announce_pkt));
      }
    });
  }
  const std::uint64_t injected = packets_injected();
  const std::uint64_t delivered = packets_delivered();
  const std::uint64_t in_flight = injected - delivered;
  if (delivered > injected || live.size() != in_flight) {
    checks_.record(InvariantKind::kPacketConservation, now,
                   static_cast<std::int64_t>(injected),
                   "census finds " + std::to_string(live.size()) +
                       " live packets, counters say " +
                       std::to_string(injected) + " injected - " +
                       std::to_string(delivered) + " delivered");
  }
}

std::vector<std::pair<ChannelId, ChannelId>> Network::wait_graph_edges()
    const {
  std::vector<std::pair<ChannelId, ChannelId>> edges;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const Channel& c = channels_[i];
    const auto ch = static_cast<ChannelId>(i);
    // Head-of-line flow: the front entry drains only through its granted
    // output.  NIC-bound channels sink unconditionally (out_ch stays -1).
    if (c.into_switch && !c.entries.empty()) {
      const BufferEntry& e = c.entries.front();
      if (e.header_done && e.out_ch >= 0) edges.emplace_back(ch, e.out_ch);
    }
    // Queued output requests: the requesting input buffer cannot drain
    // until this output frees up.
    for (const Request& r : c.requests) edges.emplace_back(r.in_ch, ch);
  }
  return edges;
}

void Network::test_force_go(ChannelId ch) { go_arrived(ch); }

void Network::test_drop_next_go(ChannelId ch) {
  chan(ch).drop_next_go = true;
}

void Network::test_corrupt_occupancy(ChannelId ch, int delta) {
  chan(ch).occupancy += delta;
}

void Network::test_corrupt_itb_pool(HostId h, std::int64_t delta) {
  nic(h).itb_pool_used += delta;
}

void Network::test_corrupt_injected(std::uint64_t delta) {
  lane_[0].injected += delta;
}

}  // namespace itb
