// Packet state carried through the network model.
#pragma once

#include <cstdint>

#include "core/route_store.hpp"
#include "sim/time.hpp"
#include "topo/types.hpp"

namespace itb {

struct Packet {
  std::uint64_t id = 0;
  HostId src = kNoHost;
  HostId dst = kNoHost;
  int payload_flits = 0;

  /// Route chosen at the source NIC and progress along it.  The view is a
  /// trivially copyable window into the owning RouteSet's flat store —
  /// two indexed loads per header byte, no pointer-chasing.
  RouteView route;
  int alt_index = 0;     // which alternative the path policy picked
  int current_leg = 0;   // index into route.legs
  int hop_in_leg = 0;    // header ports consumed within the current leg
  PortId delivery_port = kNoPort;  // port of the destination switch to dst

  /// Timestamps (picoseconds).
  TimePs gen_time = 0;      // message ready in source NIC memory
  TimePs inject_time = 0;   // first flit entered the source link
  TimePs deliver_time = 0;  // tail flit arrived at the destination NIC

  /// In-transit bookkeeping.  (Pool reservations are tracked per ejection
  /// entry inside the network model, not here: the packet may already be
  /// registered at the *next* in-transit host while the previous host is
  /// still draining its reservation.)
  int itbs_used = 0;
  bool spilled_to_host_memory = false;

  /// Wire length (flits) of the current leg as injected at the leg's start;
  /// shrinks by one per switch traversed (header byte stripped) and by one
  /// more at each in-transit host (ITB mark removed).
  int leg_wire_flits = 0;

  /// Output port the *next* switch visit must use; advances hop_in_leg.
  [[nodiscard]] PortId next_port() {
    const LegView leg = route.legs[static_cast<std::size_t>(current_leg)];
    const int consumed = hop_in_leg++;
    if (consumed < static_cast<int>(leg.ports.size())) {
      return leg.ports[static_cast<std::size_t>(consumed)];
    }
    // Final leg: the delivery port appended by the source NIC.
    return delivery_port;
  }

  [[nodiscard]] bool on_final_leg() const {
    return current_leg + 1 == static_cast<int>(route.legs.size());
  }
};

/// Wire length (flits) of leg `leg_index` at the moment it is (re)injected:
/// payload + type byte(s) + all remaining header port bytes + the remaining
/// ITB mark bytes.  The delivery port byte of the final leg is included.
[[nodiscard]] inline int leg_start_wire_flits(const RouteView& r,
                                              int leg_index, int payload_flits,
                                              int type_bytes) {
  int ports = 0;
  const int legs = static_cast<int>(r.legs.size());
  for (int l = leg_index; l < legs; ++l) {
    ports += static_cast<int>(r.legs[static_cast<std::size_t>(l)].ports.size());
    if (l == legs - 1) ports += 1;  // delivery port appended per packet
  }
  const int marks = legs - 1 - leg_index;
  return payload_flits + type_bytes + ports + marks;
}

}  // namespace itb
