// Event-driven model of a Myrinet network: wormhole/cut-through switches
// with stop&go flow control, pipelined links, and NICs implementing source
// routing plus the in-transit buffer mechanism.
//
// Granularity: data moves in chunks of params.chunk_flits flits (default 8,
// chunk 1 = exact flit level).  All buffer accounting stays in flits; the
// engine never lets a slack buffer exceed its capacity (counted in
// `flow_control_violations`, asserted zero by the test suite).
//
// Model walk-through for one packet hop A -> B:
//  1. A's sender (NIC memory or A's input buffer at the previous switch)
//     streams chunks onto the channel whenever it has data and the last
//     flow-control word it saw was "go".
//  2. Each chunk lands in B's input slack buffer one propagation delay
//     after its last flit left A.  Crossing the 56-flit mark upward sends
//     "stop" back (it reaches A one propagation delay later); crossing the
//     40-flit mark downward sends "go".
//  3. When the packet's first flits reach the *head* of B's input FIFO, the
//     routing control unit strips the leading header byte and requests the
//     output port it names.  A free output is granted immediately; a busy
//     one queues the request and serves it in demand-slotted round-robin
//     order over the input ports.  150 ns after the grant the first flit
//     can leave the switch.
//  4. At a NIC, a packet on its final leg is delivered when its tail
//     arrives.  A packet with in-transit legs remaining reserves ITB pool
//     space (or takes the host-memory penalty) and becomes ready to
//     re-inject detect+DMA-program time after its header arrived; it then
//     competes for the NIC's injection channel (with priority over locally
//     generated packets) and streams out, never ahead of what has arrived.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "check/invariants.hpp"
#include "core/path_policy.hpp"
#include "core/route_set.hpp"
#include "net/packet.hpp"
#include "net/params.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/arena.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/rng.hpp"
#include "sim/short_queue.hpp"
#include "sim/simulator.hpp"
#include "topo/topology.hpp"

namespace itb {

/// Milestones in a packet's life, reported through the optional packet
/// event sink (observability/debugging; zero cost when no sink is set).
enum class PacketEvent : std::uint8_t {
  kInjected,          // first enqueued at the source NIC
  kHeaderAtSwitch,    // routing control unit consumed the header byte
  kEjectedAtItb,      // recognised as in-transit at a host NIC
  kReinjectionReady,  // detection + DMA programming finished
  kDelivered,         // tail arrived at the destination NIC
};

[[nodiscard]] const char* to_string(PacketEvent e);

struct PacketEventRecord {
  TimePs time;
  std::uint64_t packet_id;
  PacketEvent event;
  SwitchId sw;   // kHeaderAtSwitch only
  HostId host;   // source / in-transit / destination host, by event
};

using PacketEventSink = std::function<void(const PacketEventRecord&)>;

/// Snapshot of one delivered packet handed to the delivery callback.
struct DeliveryRecord {
  HostId src, dst;
  int payload_flits;
  TimePs gen_time, inject_time, deliver_time;
  int itbs_used;
  int alt_index;
  int total_switch_hops;
  bool spilled;
};

using DeliveryCallback = std::function<void(const DeliveryRecord&)>;

class Network : public PodHandler, public ShardHooks {
 public:
  Network(Simulator& sim, const Topology& topo, const RouteSet& routes,
          const MyrinetParams& params, PathPolicy policy,
          std::uint64_t seed = 1);

  /// POD-engine dispatch: one switch over EventKind, no type erasure.
  /// Registered with the Simulator at construction (POD engine only).
  void handle_event(const Event& e) override;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Rebind this network to a (possibly different) topology/route set and
  /// return every queue, ledger and counter to its just-constructed state,
  /// reusing channel/NIC/packet-storage capacity in place.  The owning
  /// Simulator must have been reset first — the engine kind is re-read from
  /// it and the POD handler re-registered.  A run on a reset network is
  /// bit-identical to one on a freshly constructed network (same RNG
  /// streams, same (time, seq) event order) — the workspace determinism
  /// contract, enforced by test_workspace.
  ///
  /// Pass `par` (already configured with a PartitionPlan) to run this
  /// network sharded across the engine's lanes: every handler then executes
  /// on the worker thread owning the element it touches, cross-lane events
  /// travel through the engine's mailboxes, and deliveries are buffered per
  /// lane until flush_deliveries().  nullptr = ordinary serial operation.
  void reset(const Topology& topo, const RouteSet& routes,
             const MyrinetParams& params, PathPolicy policy,
             std::uint64_t seed = 1, ParallelEngine* par = nullptr);

  /// Mailbox drain (ShardHooks): apply a piggybacked flow announcement, then
  /// schedule the carried event on the draining lane's Simulator.
  void shard_apply_boundary(const BoundaryMsg& m) override;

  /// The Simulator that host `h`'s NIC-side callbacks must be scheduled on:
  /// the owning lane's in a sharded run, the serial Simulator otherwise.
  [[nodiscard]] Simulator& host_sim(HostId h) {
    return par_ == nullptr ? *sim_
                           : par_->lane(par_->plan().lane_of_host(h));
  }

  /// Sharded runs buffer DeliveryRecords per lane; this merges them by
  /// (deliver_time, lane) and replays them through the delivery callback,
  /// and absorbs the per-lane invariant recorders into invariants().  Call
  /// with the lanes quiescent (a window-sync point).  Serial: no-op.
  void flush_deliveries();

  /// Cross-lane deliveries at the exact same picosecond whose merge order
  /// is therefore not the serial order (see RunResult::boundary_ties).
  [[nodiscard]] std::uint64_t delivery_ties() const { return delivery_ties_; }

  /// Called for every packet delivered at its final destination.
  void set_delivery_callback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  /// Observe every packet milestone (header consumption per switch, ITB
  /// ejection/re-injection, delivery).  Pass nullptr to disable.
  void set_packet_event_sink(PacketEventSink sink) {
    event_sink_ = std::move(sink);
  }

  /// Attach a packet-lifecycle tracer (src/obs/trace.hpp).  Null disables;
  /// every hot-path hook is a single null test when disabled.  Cleared by
  /// reset().  Sharded runs instead pass the BASE of an array of one tracer
  /// per lane (each configured via PacketTracer::configure_lane): every
  /// hook then appends to the executing lane's ring, lock-free, stamping
  /// the shard key of the current event so merge_lane_traces() can rebuild
  /// the serial record order.
  void set_tracer(PacketTracer* tracer) { tracer_ = tracer; }

  /// Attach a phase profiler (src/obs/profiler.hpp) timing event dispatch,
  /// route lookup, ledger audits and the metrics callback.  Null disables.
  /// Cleared by reset().  In a sharded run this profiler keeps the
  /// coordinator-side phases (ledger audits, delivery-replay metrics);
  /// set_lane_profilers() supplies the per-lane ones.
  void set_profiler(PhaseProfiler* prof) { prof_ = prof; }

  /// Sharded runs: base of an array of one PhaseProfiler per lane.  The
  /// hot per-event phases (event dispatch, route lookup) are timed into the
  /// executing lane's profiler — wall-clock attribution per worker thread,
  /// which is exactly the load-imbalance signal.  Cleared by reset().
  void set_lane_profilers(PhaseProfiler* base) { lane_profs_ = base; }

  /// Queue a message (ready in the source NIC's memory now) for injection.
  void inject(HostId src, HostId dst, int payload_bytes);

  // --- observability ----------------------------------------------------

  // Counters live per lane (one lane in serial operation) and are summed
  // here; every accessor below is cold and reads with the lanes quiescent.
  [[nodiscard]] std::uint64_t packets_injected() const {
    std::uint64_t n = 0;
    for (const LaneState& l : lane_) n += l.injected;
    return n;
  }
  [[nodiscard]] std::uint64_t packets_delivered() const {
    std::uint64_t n = 0;
    for (const LaneState& l : lane_) n += l.delivered;
    return n;
  }
  [[nodiscard]] std::uint64_t packets_in_flight() const {
    return packets_injected() - packets_delivered();
  }
  [[nodiscard]] std::uint64_t itb_spills() const {
    std::uint64_t n = 0;
    for (const LaneState& l : lane_) n += l.itb_spills;
    return n;
  }
  [[nodiscard]] std::uint64_t flow_control_violations() const {
    std::uint64_t n = 0;
    for (const LaneState& l : lane_) n += l.fc_violations;
    return n;
  }
  /// Per-chunk arrival events elided by delivery tail-burst coalescing.
  /// Zero on the legacy engine or when coalesce_chunk_flow is off.
  [[nodiscard]] std::uint64_t chunk_events_coalesced() const {
    std::uint64_t n = 0;
    for (const LaneState& l : lane_) n += l.chunk_events_coalesced;
    return n;
  }
  /// Largest slack-buffer occupancy ever observed (flits).
  [[nodiscard]] int max_buffer_occupancy() const {
    int m = 0;
    for (const LaneState& l : lane_) m = m > l.max_occupancy ? m : l.max_occupancy;
    return m;
  }

  /// High-water mark of transient arena bytes handed to spilled containers
  /// since the last reset (inline ShortQueue storage is not counted).
  /// Sharded runs sum the per-lane arenas.
  [[nodiscard]] std::size_t arena_bytes_peak() const {
    std::size_t n = arena_.bytes_peak();
    if (par_ != nullptr) {
      for (const auto& a : extra_arenas_) n += a->bytes_peak();
    }
    return n;
  }
  /// Heap allocations the engine performed since the last reset: new arena
  /// blocks plus packet-storage growth.  Drops to zero once a reused
  /// workspace has warmed to the workload's high-water mark — the property
  /// RunResult::heap_allocs_steady_state surfaces.
  [[nodiscard]] std::uint64_t heap_allocs_this_run() const {
    return total_heap_allocs() - heap_allocs_run_base_;
  }

  /// Violations detected by the always-on ledgers (and recorded into by the
  /// deep checkers in src/check/, which share this sink).  The mutable
  /// overload exists for those checkers; the engine itself only appends.
  [[nodiscard]] const InvariantRecorder& invariants() const { return checks_; }
  [[nodiscard]] InvariantRecorder& invariants() { return checks_; }

  /// Cold-path conservation audit: recompute every buffer occupancy from
  /// its entries, every ITB pool level from its reservations, and the
  /// in-flight packet census, and record any mismatch.  With `quiescent`
  /// set (nothing should be in flight and no events pending) additionally
  /// require every wire ledger to read zero and flag stranded stop/go
  /// credits.  Called by the harness at the end of a measurement window
  /// and by tests after draining.
  void audit_invariants(bool quiescent = false);

  /// Snapshot of the channel wait graph for the deadlock watchdog: an edge
  /// (c, o) means channel c's input buffer cannot drain until output
  /// channel o drains (granted head-of-line flow or queued output
  /// request).  Channels draining into NICs sink unconditionally and get
  /// no edges — the ITB deadlock-freedom property in graph form.
  [[nodiscard]] std::vector<std::pair<ChannelId, ChannelId>> wait_graph_edges()
      const;

  /// "ch3(sw0:p1->sw2:p0)" — for watchdog cycle dumps and diagnostics.
  [[nodiscard]] std::string channel_label(ChannelId ch) const;

  // --- test-only fault injection ---------------------------------------
  // Deliberately corrupt engine state so the negative tests can prove each
  // ledger catches its failure mode.  Never called by the engine itself.

  /// Forge a "go" credit arriving on `ch` right now (credit duplication).
  void test_force_go(ChannelId ch);
  /// Drop the next "go" credit that arrives on `ch` (credit loss).
  void test_drop_next_go(ChannelId ch);
  /// Skew a buffer's occupancy ledger without moving any flits.
  void test_corrupt_occupancy(ChannelId ch, int delta);
  /// Skew a NIC's ITB pool accounting without a matching reservation.
  void test_corrupt_itb_pool(HostId h, std::int64_t delta);
  /// Skew the injected-packet counter (breaks source->sink conservation).
  void test_corrupt_injected(std::uint64_t delta);

  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const MyrinetParams& params() const { return params_; }

  /// Cumulative transmit-busy time of a directed channel.
  [[nodiscard]] TimePs channel_busy_time(ChannelId ch) const {
    return channels_[static_cast<std::size_t>(ch)].busy_accum;
  }
  /// Cumulative time a channel's sender held a packet with data available
  /// but was stopped by flow control.
  [[nodiscard]] TimePs channel_stopped_time(ChannelId ch) const {
    return channels_[static_cast<std::size_t>(ch)].stopped_accum;
  }
  /// Zero the per-channel busy/stopped accumulators (start of a
  /// measurement window).
  void reset_channel_stats();

  /// Flits currently queued at source NICs (injection backlog), across all
  /// hosts; grows without bound past saturation.
  [[nodiscard]] std::uint64_t source_backlog_packets() const;

  /// Bytes currently reserved across every NIC's ITB pool (time-series
  /// sampler: pool-occupancy signal).
  [[nodiscard]] std::int64_t itb_pool_used_total() const {
    std::int64_t total = 0;
    for (const Nic& n : nics_) total += n.itb_pool_used;
    return total;
  }

  /// Bytes currently reserved in one NIC's ITB pool (heatmap sampler:
  /// per-host occupancy signal; read at window-sync points).
  [[nodiscard]] std::int64_t itb_pool_used(HostId h) const {
    return nics_[static_cast<std::size_t>(h)].itb_pool_used;
  }

  /// Diagnostic dump of every busy channel (owner, progress, flow-control
  /// state) — used to investigate stalls in tests.
  void debug_dump(std::ostream& os) const;

 private:
  // ---- internal structures ----
  struct BufferEntry {
    Packet* pkt = nullptr;
    int total_flits = 0;      // flits that will arrive on this channel
    int arrived_raw = 0;      // flits arrived so far (incl. header byte)
    int forwarded = 0;        // post-strip flits already sent downstream
    bool header_done = false; // routing byte consumed / NIC header seen
    bool is_delivery = false; // NIC entry: final leg (deliver on completion)
    ChannelId out_ch = -1;    // granted output channel (switch buffers)
    std::int64_t reserved_bytes = 0;  // ITB pool reservation (NIC entries)
  };

  struct Request {
    ChannelId in_ch;
    PortId in_port;   // for demand-slotted round-robin
    Packet* pkt;
  };

  /// One flow announced on a channel, in wire order.  (std::pair is not
  /// trivially copyable, which ShortQueue elements must be.)
  struct Incoming {
    Packet* pkt = nullptr;
    int len = 0;
  };

  struct Channel {
    // static wiring
    TimePs prop_delay = 0;
    bool from_switch = false;   // sender is a switch input buffer
    bool into_switch = false;   // receiver is a switch input buffer
    SwitchId src_sw = kNoSwitch;
    SwitchId dst_sw = kNoSwitch;
    PortId dst_port = kNoPort;  // input port at dst_sw (into_switch)
    PortId src_port = kNoPort;  // output port at src_sw (from_switch)
    HostId src_host = kNoHost;
    HostId dst_host = kNoHost;

    // sender-side dynamic state
    Packet* owner = nullptr;
    ChannelId src_in_ch = -1;  // feeding input buffer (switch senders)
    // Delivery tail-burst coalescing (POD engine): when the flow streams a
    // packet's final leg into a NIC, intermediate arrivals are pure sinks —
    // suppress them, accumulate their flits, and land everything with the
    // tail chunk as one kBurstArrived.
    bool coalesce_flow = false;
    int burst_flits = 0;       // suppressed flits awaiting the tail event
    // NIC senders: kNoHost when the flow streams from resident NIC memory
    // (a locally generated packet); otherwise the in-transit host whose
    // ejection entry bounds how much may be re-injected.  Snapshotted at
    // flow start because the packet's own leg counter advances as soon as
    // its header reaches the *next* in-transit host, long before this flow
    // finishes sending.
    HostId flow_eject_host = kNoHost;
    int flow_len = 0;          // flits this owner sends on this channel
    int sent = 0;
    bool sending = false;      // a chunk-transmit event is outstanding
    bool grant_pending = false;  // routing delay running, cannot send yet
    bool sender_stopped = false; // last flow-control word was "stop"

    // output arbitration (channels leaving a switch or a NIC).  These
    // FIFO/list members hold 1-4 elements in steady state, so they live
    // inline in the Channel and spill to the network's arena only under
    // deep backlogs — steady-state simulation never touches the heap.
    ShortQueue<Request, 2> requests;
    PortId rr_ptr = 0;

    // receiver-side state: the input FIFO this channel feeds
    ShortQueue<BufferEntry, 2> entries;
    int occupancy = 0;      // flits resident in the buffer
    bool stop_sent = false; // receiver has signalled stop upstream
    ShortQueue<Incoming, 2> incoming;  // announced flows in wire order

    // always-on ledgers (checked tier 1)
    std::int64_t wire_flits = 0;  // flits sent but not yet landed
    bool drop_next_go = false;    // test_drop_next_go fault armed

    // Sharded runs: which lane owns each half (equal except across a cut
    // cable).  Sender-half fields above belong to send_lane, receiver-half
    // fields to recv_lane; for a cross channel the wire ledger is carried
    // entirely by the receiver (credited at mailbox drain).
    std::int16_t send_lane = 0;
    std::int16_t recv_lane = 0;
    bool cross = false;
    // A cross channel's grant_done cannot push `incoming` on the receiver;
    // the announcement rides the flow's first kChunkArrived mailbox message
    // instead (applied at drain, before the arrival can execute).
    bool announce_pending = false;

    // statistics
    TimePs busy_accum = 0;
    TimePs stopped_accum = 0;
    TimePs stopped_since = -1;
  };

  struct Nic {
    HostId id = kNoHost;
    SwitchId sw = kNoSwitch;
    ChannelId to_switch = -1;
    ChannelId from_switch = -1;
    ShortQueue<Packet*, 4> source_queue;  // generated, not yet injected
    ShortQueue<Packet*, 4> itb_queue;     // in-transit, ready to re-inject
    std::int64_t itb_pool_used = 0;
    PathSelector selector;  // reset in place across runs
  };

  // ---- engine steps ----
  void dispatch_event(const Event& e);
  void try_send(ChannelId ch);
  void chunk_sent(ChannelId ch, int k);
  void chunk_arrived(ChannelId ch, int k);
  void burst_arrived(ChannelId ch, int flits);
  void sender_done(ChannelId ch);
  void process_header(ChannelId in_ch);
  void request_output(ChannelId out_ch, ChannelId in_ch, PortId in_port,
                      Packet* pkt);
  void grant(ChannelId out_ch, ChannelId in_ch, Packet* pkt);
  void grant_done(ChannelId out_ch);
  void grant_next(ChannelId out_ch);
  void stop_arrived(ChannelId ch);
  void go_arrived(ChannelId ch);
  void nic_try_start(HostId h);
  void nic_header_arrived(ChannelId in_ch, BufferEntry& entry);
  void itb_ready(Packet* pkt);
  void deliver(ChannelId in_ch, BufferEntry& entry);
  [[nodiscard]] int sender_available(const Channel& c) const;

  Channel& chan(ChannelId ch) { return channels_[static_cast<std::size_t>(ch)]; }
  Nic& nic(HostId h) { return nics_[static_cast<std::size_t>(h)]; }
  [[nodiscard]] ChannelId out_channel(SwitchId sw, PortId port) const {
    return out_channel_at_[static_cast<std::size_t>(sw) * out_port_stride_ +
                           static_cast<std::size_t>(port)];
  }

  Packet* alloc_packet();
  void free_packet(Packet* p);
  void emit_event(const Packet* p, PacketEvent ev, SwitchId sw, HostId host);

  /// Lifecycle hook shared by every trace site.  Disabled cost is the one
  /// null test on tracer_ (serial and sharded alike).  Sharded runs append
  /// to the executing lane's ring with the current event's shard key —
  /// lock-free, because only the owning worker writes a lane's ring.
  void trace(TraceKind kind, std::uint64_t packet, ChannelId ch, SwitchId sw,
             HostId host) {
    if (tracer_ == nullptr) return;
    if (par_ != nullptr) {
      Simulator& s = *shard::tl_sim;
      tracer_[shard::tl_lane].record_keyed(s.now(), s.current_key(), kind,
                                           packet, ch, sw, host);
    } else {
      tracer_->record(sim_->now(), kind, packet, ch, sw, host);
    }
  }

  /// Profiler for the calling thread's hot per-event phases: the lane's
  /// own profiler while sharded handlers run, the primary one serially.
  [[nodiscard]] PhaseProfiler* cur_prof() const {
    if (par_ == nullptr) return prof_;
    return lane_profs_ == nullptr
               ? nullptr
               : lane_profs_ + static_cast<std::size_t>(shard::tl_lane);
  }

  /// Schedule an engine step `delay` from now.  POD engine: a trivially
  /// copyable Event record; legacy engine: the original std::function
  /// closure.  Both push at the same moment, so the (time, push-order)
  /// schedule — and therefore every simulated result — is identical.
  void sched_event(TimePs delay, EventKind kind, ChannelId ch, int a = 0);

  // Mutable engine state owned by one lane of a sharded run.  Serial
  // operation uses lane_[0] exclusively, so the serial hot path is the same
  // memory it always touched.  Elements are stable in a deque (ShortQueues
  // and Packet* point into them) and only ever touched by their owning
  // worker thread while lanes run.
  struct LaneState {
    // Packet arena: storage is stable (deque) and recycled via a free list,
    // so Packet* stays valid for a packet's whole lifetime.  A packet freed
    // on another lane joins that lane's free list; reset() re-sorts.
    std::deque<Packet> packet_storage;
    std::vector<Packet*> packet_free;
    std::uint64_t next_packet_id = 1;
    std::uint64_t id_tag = 0;  // lane << 48, OR'd into ids of sharded runs
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t itb_spills = 0;
    std::uint64_t fc_violations = 0;
    std::uint64_t chunk_events_coalesced = 0;
    std::uint64_t packet_heap_allocs = 0;
    int max_occupancy = 0;
    // Sharded runs buffer deliveries (time-ordered per lane) and invariant
    // records here; flush_deliveries() merges both into the primary sinks.
    std::vector<DeliveryRecord> deliveries;
    std::size_t merge_cursor = 0;
    InvariantRecorder checks;
  };

  /// The LaneState the calling thread may touch.  The serial path goes
  /// through a cached pointer (deque addresses are stable) — ln() sits on
  /// every hot counter bump and deque indexing is not free.
  LaneState& ln() {
    return par_ == nullptr ? *lane0_
                           : lane_[static_cast<std::size_t>(shard::tl_lane)];
  }
  /// The Simulator driving the calling thread's events.
  Simulator& cursim() {
    return par_ == nullptr ? *sim_ : *shard::tl_sim;
  }
  [[nodiscard]] const Simulator& cursim() const {
    return par_ == nullptr ? *sim_ : *shard::tl_sim;
  }
  /// Violation sink for the calling thread (lane recorder while sharded
  /// handlers run; the primary recorder on the serial/coordinator path).
  InvariantRecorder& recorder() {
    return par_ != nullptr && shard::tl_lane >= 0 ? ln().checks : checks_;
  }
  /// Spill arena owned by `lane` (lane 0 and serial use arena_).
  Arena& lane_arena(int lane) {
    return lane <= 0 ? arena_ : *extra_arenas_[static_cast<std::size_t>(lane - 1)];
  }
  [[nodiscard]] std::uint64_t total_heap_allocs() const {
    std::uint64_t n = arena_.heap_block_allocs();
    for (const auto& a : extra_arenas_) n += a->heap_block_allocs();
    for (const LaneState& l : lane_) n += l.packet_heap_allocs;
    return n;
  }

  // ---- members ----
  Simulator* sim_;
  const Topology* topo_ = nullptr;
  const RouteSet* routes_ = nullptr;
  MyrinetParams params_;

  // Spill target for every ShortQueue in channels_/nics_; rewound wholesale
  // by reset().  Its address must be stable, which Network's deleted
  // copy/move guarantees.  Lanes > 0 of a sharded run spill into their own
  // arena in extra_arenas_ instead (one allocator per touching thread).
  Arena arena_;
  std::vector<std::unique_ptr<Arena>> extra_arenas_;

  std::vector<Channel> channels_;
  std::vector<Nic> nics_;
  std::vector<ChannelId> out_channel_at_;  // flattened [switch*stride + port]
  std::size_t out_port_stride_ = 0;

  std::deque<LaneState> lane_;  // stable addresses; >= 1 element
  LaneState* lane0_ = nullptr;  // &lane_[0], refreshed by reset()

  DeliveryCallback on_delivery_;
  PacketEventSink event_sink_;
  PacketTracer* tracer_ = nullptr;   // null unless a run asked for tracing
                                     // (sharded: base of a per-lane array)
  PhaseProfiler* prof_ = nullptr;    // null unless a run asked for profiling
  PhaseProfiler* lane_profs_ = nullptr;  // sharded: base of per-lane array
  // The (arena blocks + packet growth) watermark captured at the last
  // reset — see heap_allocs_this_run.
  std::uint64_t heap_allocs_run_base_ = 0;
  std::uint64_t delivery_ties_ = 0;
  bool pod_ = false;       // simulator runs the POD engine
  bool coalesce_ = false;  // pod_ && params.coalesce_chunk_flow
  bool ledger_ = true;     // params.ledger_checks (always-on invariant tier)
  ParallelEngine* par_ = nullptr;  // non-null while sharded
  InvariantRecorder checks_;
};

}  // namespace itb
