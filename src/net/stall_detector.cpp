#include "net/stall_detector.hpp"

#include <sstream>

namespace itb {

StallDetector::StallDetector(Simulator& sim, const Network& net, TimePs window,
                             std::function<void(const std::string&)> on_stall)
    : sim_(&sim), net_(&net), window_(window), on_stall_(std::move(on_stall)) {
  last_delivered_ = net.packets_delivered();
  sim_->schedule_in(window_, [this] { sample(); });
}

void StallDetector::sample() {
  if (!armed_) return;
  const std::uint64_t delivered = net_->packets_delivered();
  const bool progressed = delivered != last_delivered_;
  const bool in_flight = net_->packets_in_flight() > 0;
  if (!progressed && in_flight) {
    if (!stalled_) {
      stalled_ = true;
      ++episodes_;
      if (on_stall_) {
        std::ostringstream os;
        os << "no delivery for " << to_ns(window_) << " ns with "
           << net_->packets_in_flight() << " packet(s) in flight at t="
           << to_ns(sim_->now()) << " ns";
        net_->debug_dump(os);
        on_stall_(os.str());
      }
    }
  } else if (progressed) {
    stalled_ = false;  // re-arm after recovery
  }
  last_delivered_ = delivered;
  sim_->schedule_in(window_, [this] { sample(); });
}

}  // namespace itb
