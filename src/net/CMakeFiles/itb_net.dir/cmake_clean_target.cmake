file(REMOVE_RECURSE
  "libitb_net.a"
)
