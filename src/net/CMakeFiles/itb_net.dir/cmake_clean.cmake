file(REMOVE_RECURSE
  "CMakeFiles/itb_net.dir/network.cpp.o"
  "CMakeFiles/itb_net.dir/network.cpp.o.d"
  "CMakeFiles/itb_net.dir/stall_detector.cpp.o"
  "CMakeFiles/itb_net.dir/stall_detector.cpp.o.d"
  "libitb_net.a"
  "libitb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
