
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/itb_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/itb_net.dir/network.cpp.o.d"
  "/root/repo/src/net/stall_detector.cpp" "src/net/CMakeFiles/itb_net.dir/stall_detector.cpp.o" "gcc" "src/net/CMakeFiles/itb_net.dir/stall_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/core/CMakeFiles/itb_core.dir/DependInfo.cmake"
  "/root/repo/src/route/CMakeFiles/itb_route.dir/DependInfo.cmake"
  "/root/repo/src/topo/CMakeFiles/itb_topo.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/itb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
