# Empty dependencies file for itb_net.
# This may be replaced when dependencies are built.
