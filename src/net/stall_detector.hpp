// Forward-progress watchdog.
//
// Wormhole networks fail by *wedging*: every buffer fills, every channel
// blocks, and simulated time keeps advancing with zero deliveries.  The
// detector samples the network periodically and reports a stall when
// packets are in flight but none were delivered for `window` consecutive
// simulated time.  The test suite uses it two ways: to guard long runs
// against regressions, and — pointed at a deliberately *illegal* routing
// (cyclic channel dependencies) — to demonstrate the deadlock the
// up*/down* rule exists to prevent.
#pragma once

#include <functional>
#include <string>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace itb {

class StallDetector {
 public:
  /// Starts sampling immediately; `on_stall` fires (once per stall episode)
  /// when no delivery happened over a full window while packets were in
  /// flight.  The detector keeps sampling afterwards, so progress after a
  /// transient stall re-arms it.
  StallDetector(Simulator& sim, const Network& net, TimePs window,
                std::function<void(const std::string&)> on_stall);

  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] int stall_episodes() const { return episodes_; }

  /// Stop sampling (the detector keeps no pending events alive forever;
  /// it reschedules only while enabled).
  void disarm() { armed_ = false; }

 private:
  void sample();

  Simulator* sim_;
  const Network* net_;
  TimePs window_;
  std::function<void(const std::string&)> on_stall_;
  std::uint64_t last_delivered_ = 0;
  bool stalled_ = false;
  bool armed_ = true;
  int episodes_ = 0;
};

}  // namespace itb
