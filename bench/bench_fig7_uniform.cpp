// Figure 7: average message latency vs accepted traffic under the uniform
// destination distribution, for (a) the 2-D torus, (b) the torus with
// express channels and (c) CPLANT, comparing UP/DOWN, ITB-SP and ITB-RR.
//
// Prints one latency/traffic series per (network, scheme) — the data
// behind each curve of the figure — followed by the saturation throughput
// of every scheme next to the paper's reported value.  The nine
// (network, scheme) cells are independent simulations and run
// concurrently across --jobs workers; results are printed in cell order.
#include "bench_common.hpp"

#include <iterator>
#include <memory>

namespace {

using namespace itb;
using namespace itb::bench;

struct Anchor {
  const char* testbed;
  double updown, itb_sp, itb_rr;  // paper's saturation throughputs
};

constexpr Anchor kAnchors[] = {
    {"torus", 0.015, 0.029, 0.032},
    {"express", 0.070, 0.120, 0.110},
    {"cplant", 0.050, 0.090, 0.095},
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Figure 7", "uniform traffic: latency vs accepted traffic");

  constexpr int kNetworks = static_cast<int>(std::size(kAnchors));
  const int schemes = static_cast<int>(paper_schemes().size());

  // Shared, warmed testbeds: one per network, read-only during the grid.
  std::vector<Testbed> testbeds;
  std::vector<std::unique_ptr<UniformPattern>> patterns;
  for (const Anchor& anchor : kAnchors) {
    testbeds.push_back(make_testbed(anchor.testbed));
    testbeds.back().warm_all();
    patterns.push_back(
        std::make_unique<UniformPattern>(testbeds.back().topo().num_hosts()));
  }

  const auto results = run_grid<SaturationResult>(
      kNetworks * schemes, opts, [&](int cell) {
        const int ti = cell / schemes;
        const int si = cell % schemes;
        RunConfig cfg = default_config(opts);
        return find_saturation(testbeds[ti], paper_schemes()[si],
                               *patterns[ti], cfg,
                               start_load(kAnchors[ti].testbed),
                               opts.fast ? 1.45 : 1.25, opts.fast ? 10 : 18);
      });

  for (int ti = 0; ti < kNetworks; ++ti) {
    const Anchor& anchor = kAnchors[ti];
    std::printf("\n--- %s (%d switches, %d hosts) ---\n", anchor.testbed,
                testbeds[ti].topo().num_switches(),
                testbeds[ti].topo().num_hosts());
    double sat[3] = {0, 0, 0};
    for (int si = 0; si < schemes; ++si) {
      const SaturationResult& res = results[ti * schemes + si];
      sat[si] = res.throughput;
      print_series(std::cout, std::string("fig7 ") + anchor.testbed + " uniform",
                   to_string(paper_schemes()[si]), res.trace);
      append_series_csv(opts.csv, std::string("fig7_") + anchor.testbed,
                        to_string(paper_schemes()[si]), res.trace);
    }
    std::printf("\nsaturation throughput (flits/ns/switch), %s:\n",
                anchor.testbed);
    print_anchor("UP/DOWN", sat[0], anchor.updown);
    print_anchor("ITB-SP", sat[1], anchor.itb_sp);
    print_anchor("ITB-RR", sat[2], anchor.itb_rr);
    std::printf("  ITB-SP / UP-DOWN improvement: %.2fx (paper %.2fx)\n",
                sat[1] / sat[0], anchor.itb_sp / anchor.updown);
    std::printf("  ITB-RR / UP-DOWN improvement: %.2fx (paper %.2fx)\n",
                sat[2] / sat[0], anchor.itb_rr / anchor.updown);
  }
  return 0;
}
