// Figure 7: average message latency vs accepted traffic under the uniform
// destination distribution, for (a) the 2-D torus, (b) the torus with
// express channels and (c) CPLANT, comparing UP/DOWN, ITB-SP and ITB-RR.
//
// Prints one latency/traffic series per (network, scheme) — the data
// behind each curve of the figure — followed by the saturation throughput
// of every scheme next to the paper's reported value.
#include "bench_common.hpp"

namespace {

using namespace itb;
using namespace itb::bench;

struct Anchor {
  const char* testbed;
  double updown, itb_sp, itb_rr;  // paper's saturation throughputs
};

constexpr Anchor kAnchors[] = {
    {"torus", 0.015, 0.029, 0.032},
    {"express", 0.070, 0.120, 0.110},
    {"cplant", 0.050, 0.090, 0.095},
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Figure 7", "uniform traffic: latency vs accepted traffic");

  for (const Anchor& anchor : kAnchors) {
    Testbed tb = make_testbed(anchor.testbed);
    UniformPattern pattern(tb.topo().num_hosts());
    std::printf("\n--- %s (%d switches, %d hosts) ---\n", anchor.testbed,
                tb.topo().num_switches(), tb.topo().num_hosts());

    double sat[3] = {0, 0, 0};
    for (std::size_t i = 0; i < paper_schemes().size(); ++i) {
      const RoutingScheme scheme = paper_schemes()[i];
      RunConfig cfg = default_config(opts);
      const auto res =
          find_saturation(tb, scheme, pattern, cfg, start_load(anchor.testbed),
                          opts.fast ? 1.45 : 1.25, opts.fast ? 10 : 18);
      sat[i] = res.throughput;
      print_series(std::cout, std::string("fig7 ") + anchor.testbed + " uniform",
                   to_string(scheme), res.trace);
      append_series_csv(opts.csv, std::string("fig7_") + anchor.testbed,
                        to_string(scheme), res.trace);
    }
    std::printf("\nsaturation throughput (flits/ns/switch), %s:\n",
                anchor.testbed);
    print_anchor("UP/DOWN", sat[0], anchor.updown);
    print_anchor("ITB-SP", sat[1], anchor.itb_sp);
    print_anchor("ITB-RR", sat[2], anchor.itb_rr);
    std::printf("  ITB-SP / UP-DOWN improvement: %.2fx (paper %.2fx)\n",
                sat[1] / sat[0], anchor.itb_sp / anchor.updown);
    std::printf("  ITB-RR / UP-DOWN improvement: %.2fx (paper %.2fx)\n",
                sat[2] / sat[0], anchor.itb_rr / anchor.updown);
  }
  return 0;
}
