// Extension: the irregular-NOW setting the ITB mechanism came from
// (references [5][6] of the paper).  Sweeps an ensemble of random
// irregular networks — several sizes, several wiring seeds — and reports
// the distribution of the ITB-RR / UP-DOWN saturation gain, together
// with how constrained up*/down* was on each ensemble (fraction of pairs
// with a legal minimal path).  The paper's thesis predicts the gain
// grows as that fraction drops.
#include "bench_common.hpp"

#include "core/route_stats.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Irregular-network ensemble",
               "ITB gain distribution on random NOWs");

  struct Ensemble {
    int switches;
    int max_fabric_ports;
    const char* label;
  };
  const Ensemble ensembles[] = {
      {16, 4, "16 switches, dense (4 fabric ports)"},
      {24, 3, "24 switches, sparse (3 fabric ports)"},
  };
  const int seeds = opts.fast ? 2 : 5;

  for (const Ensemble& e : ensembles) {
    std::printf("\n--- %s, %d seeds ---\n", e.label, seeds);
    TextTable t({"seed", "minimal%", "U/D sat", "ITB-RR sat", "gain"});
    RunningStats gains, minimal;
    for (int seed = 1; seed <= seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 1000003);
      Testbed tb(make_irregular(e.switches, 4, e.max_fabric_ports, rng));
      UniformPattern pattern(tb.topo().num_hosts());
      const auto st =
          analyze_routes(tb.topo(), tb.routes(RoutingScheme::kUpDown));
      RunConfig cfg = default_config(opts);
      const double ud =
          find_saturation(tb, RoutingScheme::kUpDown, pattern, cfg, 0.01,
                          opts.fast ? 1.5 : 1.3, opts.fast ? 9 : 13)
              .throughput;
      const double rr =
          find_saturation(tb, RoutingScheme::kItbRr, pattern, cfg, 0.01,
                          opts.fast ? 1.5 : 1.3, opts.fast ? 9 : 13)
              .throughput;
      gains.add(rr / ud);
      minimal.add(st.minimal_fraction_sp);
      t.add_row({std::to_string(seed), fmt_pct(st.minimal_fraction_sp),
                 fmt_load(ud), fmt_load(rr), fmt_ratio(rr / ud)});
    }
    t.print(std::cout);
    std::printf("  gain over the ensemble: mean %.2fx (min %.2fx, max %.2fx); "
                "mean minimal-path fraction %.0f%%\n",
                gains.mean(), gains.min(), gains.max(),
                100 * minimal.mean());
  }
  std::printf(
      "\nreading: sparser irregular networks leave up*/down* fewer minimal\n"
      "paths, and the ITB gain widens accordingly — consistent with the\n"
      "authors' earlier irregular-NOW results that motivated this paper.\n");
  return 0;
}
