// Figure 8: link utilization maps on the 2-D torus under uniform traffic:
//   (a) UP/DOWN at 0.015 flits/ns/switch (its saturation point),
//   (b) ITB-RR at the same 0.015,
//   (c) ITB-RR at 0.030 (close to its own saturation point).
//
// The paper's shaded grid is rendered as ASCII (+x / +y outgoing channel
// utilization per switch), followed by the summary statistics quoted in
// the prose: near-root hot links ~50%, 65% of links under 10% for
// UP/DOWN; all links under ~12% for ITB-RR at 0.015; 14-29% at 0.030.
#include "bench_common.hpp"

#include "metrics/link_util.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

void one_map(Testbed& tb, RoutingScheme scheme, double load,
             const BenchOptions& opts) {
  UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg = default_config(opts);
  cfg.load_flits_per_ns_per_switch = load;
  cfg.collect_link_util = true;
  const RunResult r = run_point(tb, scheme, pattern, cfg);
  std::printf("\n--- %s at %.3f flits/ns/switch (accepted %.4f) ---\n",
              to_string(scheme), load, r.accepted);
  std::printf("%s\n",
              render_grid_utilization(r.link_util, tb.topo()).c_str());
  const auto s = summarize_link_utilization(r.link_util, tb.topo(), 0);
  std::printf("  max util %.0f%%  near-root max %.0f%%  elsewhere max %.0f%%\n",
              100 * s.max_utilization, 100 * s.max_near_root,
              100 * s.max_far_from_root);
  std::printf("  links under 10%% utilization: %.0f%%\n",
              100 * s.fraction_below_10pct);
  std::printf("  links stopped by flow control >10%% of time: %.0f%%\n",
              100 * s.fraction_stopped_over_10pct);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Figure 8", "2-D torus link utilization, uniform traffic");
  Testbed tb = make_testbed("torus");
  one_map(tb, RoutingScheme::kUpDown, 0.015, opts);  // (a)
  one_map(tb, RoutingScheme::kItbRr, 0.015, opts);   // (b)
  one_map(tb, RoutingScheme::kItbRr, 0.030, opts);   // (c)
  std::printf(
      "\npaper: (a) near-root links reach ~50%%, 65%% of links <10%%;\n"
      "       (b) all links <12%%;  (c) links range 14-29%%; ~20%% of links\n"
      "       idle >10%% of the time due to stop&go at ITB-RR saturation.\n");
  return 0;
}
