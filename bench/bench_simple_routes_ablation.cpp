// Baseline-sensitivity ablation: how much does the UP/DOWN baseline
// depend on our emulated simple_routes balancing?
//
// Our measured UP/DOWN saturation sits ~30% above the paper's on every
// network (EXPERIMENTS.md).  A natural suspicion is that our balancer is
// better than GM's.  This ablation sweeps the balancing knobs — greedy vs
// refined, few vs many candidates, min-max vs min-sum objective, and
// several placement orders — and shows the saturation point barely moves,
// so the deviation is *not* a balancing artefact.
#include "bench_common.hpp"

#include "core/route_builder.hpp"
#include "net/network.hpp"
#include "metrics/collector.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

double saturation_for(const Topology& topo, const RouteSet& routes,
                      const BenchOptions& opts) {
  UniformPattern pattern(topo.num_hosts());
  double best = 0.0;
  for (double load = 0.008; load < 0.06; load *= (opts.fast ? 1.5 : 1.3)) {
    Simulator sim;
    MyrinetParams params;
    Network net(sim, topo, routes, params, PathPolicy::kSingle, 7);
    MetricsCollector m(topo.num_switches());
    m.attach(net);
    TrafficConfig tc;
    tc.load_flits_per_ns_per_switch = load;
    TrafficGenerator gen(sim, net, pattern, tc);
    gen.start();
    sim.run_until(opts.fast ? us(150) : us(250));
    m.reset_window(sim.now());
    sim.run_until(sim.now() + (opts.fast ? us(250) : us(450)));
    const double acc = m.accepted_flits_per_ns_per_switch(sim.now());
    best = std::max(best, acc);
    if (acc < 0.95 * load) break;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("simple_routes ablation",
               "UP/DOWN baseline vs balancing strategy (torus, uniform)");

  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);

  TextTable t({"objective", "passes", "candidates", "seed", "max weight",
               "U/D saturation"});
  struct Config {
    BalanceObjective obj;
    int passes, cands;
    std::uint64_t seed;
  };
  const Config configs[] = {
      {BalanceObjective::kMinMax, 2, 16, 1},  // the default
      {BalanceObjective::kMinMax, 0, 16, 1},  // pure greedy
      {BalanceObjective::kMinMax, 2, 4, 1},   // few candidates
      {BalanceObjective::kMinSum, 2, 16, 1},  // sum objective
      {BalanceObjective::kMinSum, 0, 4, 1},   // weakest balancer
      {BalanceObjective::kMinMax, 2, 16, 99}, // different placement order
  };
  for (const Config& c : configs) {
    SimpleRoutesOptions o;
    o.objective = c.obj;
    o.refine_passes = c.passes;
    o.max_candidates = c.cands;
    o.seed = c.seed;
    const SimpleRoutes sr(topo, ud, o);
    const RouteSet routes = build_updown_routes(topo, sr);
    int max_w = 0;
    for (const int w : sr.channel_weights()) max_w = std::max(max_w, w);
    const double sat = saturation_for(topo, routes, opts);
    t.add_row({c.obj == BalanceObjective::kMinMax ? "min-max" : "min-sum",
               std::to_string(c.passes), std::to_string(c.cands),
               std::to_string(c.seed), std::to_string(max_w),
               fmt_load(sat)});
  }
  t.print(std::cout);
  std::printf(
      "\nreading: even the weakest balancer saturates within ~10%% of the\n"
      "default, all well above the paper's 0.015 — the baseline deviation\n"
      "comes from route-selection details we cannot recover from GM, not\n"
      "from our balancing being unrealistically good.\n");
  return 0;
}
