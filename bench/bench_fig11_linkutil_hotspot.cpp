// Figure 11: link utilization on the 2-D torus with 10% hotspot traffic,
// measured at UP/DOWN's saturation level (~0.0123 flits/ns/switch):
// under UP/DOWN the links near the *root* are the hottest (the root acts
// as "a big hotspot" of its own), while under ITB-RR only links near the
// actual hotspot switch heat up.
#include "bench_hotspot_common.hpp"

#include "metrics/link_util.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

double max_near(const std::vector<ChannelUtil>& utils, const Topology& topo,
                SwitchId center) {
  std::vector<bool> near(static_cast<std::size_t>(topo.num_switches()), false);
  near[static_cast<std::size_t>(center)] = true;
  for (const SwitchId n : topo.switch_neighbors(center)) {
    near[static_cast<std::size_t>(n)] = true;
  }
  double best = 0;
  for (const auto& u : utils) {
    if (u.to_host) continue;
    if ((u.from_sw != kNoSwitch && near[static_cast<std::size_t>(u.from_sw)]) ||
        (u.to_sw != kNoSwitch && near[static_cast<std::size_t>(u.to_sw)])) {
      best = std::max(best, u.utilization);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Figure 11",
               "torus link utilization, 10% hotspot, at UP/DOWN saturation");
  Testbed tb = make_testbed("torus");
  // Same seeded location list as Table 1; use the first hotspot.
  const HostId hotspot = hotspot_locations(tb.topo().num_hosts(), 1)[0];
  const SwitchId hotspot_sw = tb.topo().host(hotspot).sw;
  std::printf("hotspot host %d on switch %d (root is switch 0)\n", hotspot,
              hotspot_sw);

  HotspotPattern pattern(tb.topo().num_hosts(), hotspot, 0.10);
  for (const RoutingScheme scheme :
       {RoutingScheme::kUpDown, RoutingScheme::kItbRr}) {
    RunConfig cfg = default_config(opts);
    cfg.load_flits_per_ns_per_switch = 0.0123;  // UP/DOWN saturation, Table 1
    cfg.collect_link_util = true;
    const RunResult r = run_point(tb, scheme, pattern, cfg);
    std::printf("\n--- %s (accepted %.4f) ---\n", to_string(scheme),
                r.accepted);
    std::printf("%s\n",
                render_grid_utilization(r.link_util, tb.topo()).c_str());
    const double near_root = max_near(r.link_util, tb.topo(), 0);
    const double near_spot = max_near(r.link_util, tb.topo(), hotspot_sw);
    std::printf("  hottest link near root:    %.1f%%\n", 100 * near_root);
    std::printf("  hottest link near hotspot: %.1f%%\n", 100 * near_spot);
    std::printf("  %s\n", near_root > near_spot
                              ? "-> root area dominates (UP/DOWN behaviour)"
                              : "-> hotspot area dominates (ITB behaviour)");
  }
  std::printf(
      "\npaper: UP/DOWN saturates at its root switch even with the hotspot\n"
      "       present; ITB-RR saturates at the hotspot itself.\n");
  return 0;
}
