// Parallel-engine scaling microbench: a fixed 16-point workload (16 seed
// replications of one uniform-traffic point on the paper's torus) run at
// 1/2/4/8 workers, reporting wall time, aggregate events/sec and speedup
// vs the serial run.  Also cross-checks the determinism contract: every
// jobs value must reproduce the serial results bit-for-bit (the binary
// exits non-zero if not, so it can double as a CI check).
//
// Expected shape: near-linear speedup up to the physical core count
// (>= 3x at --jobs 4 on a 4-core machine), flat beyond it.
#include "bench_common.hpp"

#include <chrono>

#include "harness/json.hpp"
#include "harness/replicate.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Parallel scaling",
               "16 replications across 1/2/4/8 workers, torus + uniform");

  Testbed tb = make_testbed("torus");
  tb.warm_all();
  UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg = default_config(opts);
  if (opts.fast) {
    cfg.warmup = us(40);
    cfg.measure = us(100);
  }
  cfg.load_flits_per_ns_per_switch = start_load("torus");
  constexpr int kPoints = 16;

  struct Sample {
    int jobs;
    double wall_s;
    std::uint64_t events;
    std::uint64_t workspace_reuses;
    std::uint64_t arena_bytes_peak;
    std::uint64_t heap_allocs_steady_state;
  };
  std::vector<Sample> samples;
  ReplicatedResult baseline;

  bool deterministic = true;
  for (const int jobs : {1, 2, 4, 8}) {
    const auto t0 = std::chrono::steady_clock::now();
    ReplicatedResult rep =
        run_replicated(tb, RoutingScheme::kItbRr, pattern, cfg, kPoints, jobs);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::uint64_t events = 0, reuses = 0, arena_peak = 0, steady = 0;
    for (const RunResult& r : rep.runs) {
      events += r.events;
      reuses += r.workspace_reuses;
      arena_peak = std::max(arena_peak, r.arena_bytes_peak);
      steady += r.heap_allocs_steady_state;
    }
    samples.push_back({jobs, wall_s, events, reuses, arena_peak, steady});
    if (jobs == 1) {
      baseline = std::move(rep);
    } else {
      for (int k = 0; k < kPoints; ++k) {
        if (!same_simulated_metrics(baseline.runs[k], rep.runs[k])) {
          std::printf("DETERMINISM VIOLATION: replication %d differs at "
                      "--jobs %d\n", k, jobs);
          deterministic = false;
        }
      }
    }
  }

  // Per-worker rate divides the aggregate by the workers that can actually
  // run at once (min(jobs, cores)); the ratio jobs=N / jobs=1 is the
  // parallel efficiency the perf gate tracks.  On an oversubscribed box
  // (jobs > cores) healthy efficiency stays near 1.0 — it only drops when
  // the workers contend, e.g. on the global allocator lock.
  const unsigned hw = std::thread::hardware_concurrency();
  const auto per_worker = [hw](const Sample& s) {
    const int eff_workers =
        std::min(s.jobs, static_cast<int>(hw > 0 ? hw : 1));
    return static_cast<double>(s.events) / s.wall_s /
           static_cast<double>(eff_workers);
  };
  const double serial_rate = per_worker(samples.front());

  TextTable table({"jobs", "wall(s)", "Mevents/s", "speedup", "per-worker",
                   "efficiency", "steady-allocs"});
  const double serial_wall = samples.front().wall_s;
  for (const Sample& s : samples) {
    char wall[32], evps[32], speed[32], pw[32], eff[32];
    std::snprintf(wall, sizeof wall, "%.2f", s.wall_s);
    std::snprintf(evps, sizeof evps, "%.2f",
                  static_cast<double>(s.events) / s.wall_s / 1e6);
    std::snprintf(speed, sizeof speed, "%.2fx", serial_wall / s.wall_s);
    std::snprintf(pw, sizeof pw, "%.2fM", per_worker(s) / 1e6);
    std::snprintf(eff, sizeof eff, "%.3f", per_worker(s) / serial_rate);
    table.add_row({std::to_string(s.jobs), wall, evps, speed, pw, eff,
                   std::to_string(s.heap_allocs_steady_state)});
  }
  table.print(std::cout);
  std::printf("\nhardware concurrency: %u   determinism: %s\n", hw,
              deterministic ? "OK (all jobs values bit-identical)"
                            : "VIOLATED");

  if (!opts.json.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("points").value(kPoints);
    w.key("deterministic").value(deterministic);
    w.key("hardware_concurrency").value(static_cast<std::int64_t>(hw));
    w.key("samples").begin_array();
    for (const Sample& s : samples) {
      w.begin_object();
      w.key("jobs").value(s.jobs);
      w.key("wall_s").value(s.wall_s);
      w.key("events").value(s.events);
      w.key("events_per_sec").value(static_cast<double>(s.events) / s.wall_s);
      w.key("per_worker_events_per_sec").value(per_worker(s));
      w.key("efficiency").value(per_worker(s) / serial_rate);
      w.key("workspace_reuses").value(s.workspace_reuses);
      w.key("arena_bytes_peak").value(s.arena_bytes_peak);
      w.key("heap_allocs_steady_state").value(s.heap_allocs_steady_state);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    write_json_section(opts.json, "parallel_scaling", w.str());
    std::printf("wrote parallel_scaling section to %s\n", opts.json.c_str());
  }
  return deterministic ? 0 : 1;
}
