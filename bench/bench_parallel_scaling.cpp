// Parallel-engine scaling microbench: a fixed 16-point workload (16 seed
// replications of one uniform-traffic point on the paper's torus) run at
// 1/2/4/8 workers, reporting wall time, aggregate events/sec and speedup
// vs the serial run.  Also cross-checks the determinism contract: every
// jobs value must reproduce the serial results bit-for-bit (the binary
// exits non-zero if not, so it can double as a CI check).
//
// Expected shape: near-linear speedup up to the physical core count
// (>= 3x at --jobs 4 on a 4-core machine), flat beyond it.
#include "bench_common.hpp"

#include <chrono>

#include "harness/json.hpp"
#include "harness/replicate.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Parallel scaling",
               "16 replications across 1/2/4/8 workers, torus + uniform");

  Testbed tb = make_testbed("torus");
  tb.warm_all();
  UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg = default_config(opts);
  if (opts.fast) {
    cfg.warmup = us(40);
    cfg.measure = us(100);
  }
  cfg.load_flits_per_ns_per_switch = start_load("torus");
  constexpr int kPoints = 16;

  struct Sample {
    int jobs;
    double wall_s;
    std::uint64_t events;
  };
  std::vector<Sample> samples;
  ReplicatedResult baseline;

  bool deterministic = true;
  for (const int jobs : {1, 2, 4, 8}) {
    const auto t0 = std::chrono::steady_clock::now();
    ReplicatedResult rep =
        run_replicated(tb, RoutingScheme::kItbRr, pattern, cfg, kPoints, jobs);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::uint64_t events = 0;
    for (const RunResult& r : rep.runs) events += r.events;
    samples.push_back({jobs, wall_s, events});
    if (jobs == 1) {
      baseline = std::move(rep);
    } else {
      for (int k = 0; k < kPoints; ++k) {
        if (!same_simulated_metrics(baseline.runs[k], rep.runs[k])) {
          std::printf("DETERMINISM VIOLATION: replication %d differs at "
                      "--jobs %d\n", k, jobs);
          deterministic = false;
        }
      }
    }
  }

  TextTable table({"jobs", "wall(s)", "Mevents/s", "speedup"});
  const double serial_wall = samples.front().wall_s;
  for (const Sample& s : samples) {
    char wall[32], evps[32], speed[32];
    std::snprintf(wall, sizeof wall, "%.2f", s.wall_s);
    std::snprintf(evps, sizeof evps, "%.2f",
                  static_cast<double>(s.events) / s.wall_s / 1e6);
    std::snprintf(speed, sizeof speed, "%.2fx", serial_wall / s.wall_s);
    table.add_row({std::to_string(s.jobs), wall, evps, speed});
  }
  table.print(std::cout);
  std::printf("\nhardware concurrency: %u   determinism: %s\n",
              std::thread::hardware_concurrency(),
              deterministic ? "OK (all jobs values bit-identical)"
                            : "VIOLATED");

  if (!opts.json.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("points").value(kPoints);
    w.key("deterministic").value(deterministic);
    w.key("samples").begin_array();
    for (const Sample& s : samples) {
      w.begin_object();
      w.key("jobs").value(s.jobs);
      w.key("wall_s").value(s.wall_s);
      w.key("events").value(s.events);
      w.key("events_per_sec").value(static_cast<double>(s.events) / s.wall_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    write_json_section(opts.json, "parallel_scaling", w.str());
    std::printf("wrote parallel_scaling section to %s\n", opts.json.c_str());
  }
  return deterministic ? 0 : 1;
}
