// Parallel-engine scaling microbench: a fixed 16-point workload (16 seed
// replications of one uniform-traffic point on the paper's torus) run at
// 1/2/4/8 workers, reporting wall time, aggregate events/sec and speedup
// vs the serial run.  Also cross-checks the determinism contract: every
// jobs value must reproduce the serial results bit-for-bit (the binary
// exits non-zero if not, so it can double as a CI check).
//
// Expected shape: near-linear speedup up to the physical core count
// (>= 3x at --jobs 4 on a 4-core machine), flat beyond it.
//
// A second table covers intra-run sharding: the SAME point split across
// 1/2/4/8 lanes by the conservative window engine (--engine pod_parallel),
// again held to bit-identical simulated metrics against the serial run.
#include "bench_common.hpp"

#include <chrono>

#include "harness/json.hpp"
#include "harness/replicate.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Parallel scaling",
               "16 replications across 1/2/4/8 workers, torus + uniform");

  Testbed tb = make_testbed("torus");
  tb.warm_all();
  UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg = default_config(opts);
  if (opts.fast) {
    cfg.warmup = us(40);
    cfg.measure = us(100);
  }
  cfg.load_flits_per_ns_per_switch = start_load("torus");
  constexpr int kPoints = 16;

  struct Sample {
    int jobs;
    double wall_s;
    std::uint64_t events;
    std::uint64_t workspace_reuses;
    std::uint64_t arena_bytes_peak;
    std::uint64_t heap_allocs_steady_state;
  };
  std::vector<Sample> samples;
  ReplicatedResult baseline;

  bool deterministic = true;
  for (const int jobs : {1, 2, 4, 8}) {
    const auto t0 = std::chrono::steady_clock::now();
    ReplicatedResult rep =
        run_replicated(tb, RoutingScheme::kItbRr, pattern, cfg, kPoints, jobs);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::uint64_t events = 0, reuses = 0, arena_peak = 0, steady = 0;
    for (const RunResult& r : rep.runs) {
      events += r.events;
      reuses += r.workspace_reuses;
      arena_peak = std::max(arena_peak, r.arena_bytes_peak);
      steady += r.heap_allocs_steady_state;
    }
    samples.push_back({jobs, wall_s, events, reuses, arena_peak, steady});
    if (jobs == 1) {
      baseline = std::move(rep);
    } else {
      for (int k = 0; k < kPoints; ++k) {
        if (!same_simulated_metrics(baseline.runs[k], rep.runs[k])) {
          std::printf("DETERMINISM VIOLATION: replication %d differs at "
                      "--jobs %d\n", k, jobs);
          deterministic = false;
        }
      }
    }
  }

  // Per-worker rate divides the aggregate by the workers that can actually
  // run at once (min(jobs, cores)); the ratio jobs=N / jobs=1 is the
  // parallel efficiency the perf gate tracks.  On an oversubscribed box
  // (jobs > cores) healthy efficiency stays near 1.0 — it only drops when
  // the workers contend, e.g. on the global allocator lock.
  const unsigned hw = std::thread::hardware_concurrency();
  const auto per_worker = [hw](const Sample& s) {
    const int eff_workers =
        std::min(s.jobs, static_cast<int>(hw > 0 ? hw : 1));
    return static_cast<double>(s.events) / s.wall_s /
           static_cast<double>(eff_workers);
  };
  const double serial_rate = per_worker(samples.front());

  TextTable table({"jobs", "wall(s)", "Mevents/s", "speedup", "per-worker",
                   "efficiency", "steady-allocs"});
  const double serial_wall = samples.front().wall_s;
  for (const Sample& s : samples) {
    char wall[32], evps[32], speed[32], pw[32], eff[32];
    std::snprintf(wall, sizeof wall, "%.2f", s.wall_s);
    std::snprintf(evps, sizeof evps, "%.2f",
                  static_cast<double>(s.events) / s.wall_s / 1e6);
    std::snprintf(speed, sizeof speed, "%.2fx", serial_wall / s.wall_s);
    std::snprintf(pw, sizeof pw, "%.2fM", per_worker(s) / 1e6);
    std::snprintf(eff, sizeof eff, "%.3f", per_worker(s) / serial_rate);
    table.add_row({std::to_string(s.jobs), wall, evps, speed, pw, eff,
                   std::to_string(s.heap_allocs_steady_state)});
  }
  table.print(std::cout);
  std::printf("\nhardware concurrency: %u   determinism: %s\n", hw,
              deterministic ? "OK (all jobs values bit-identical)"
                            : "VIOLATED");

  // Intra-run sharding: where the table above spreads independent points
  // across workers, this splits ONE simulation across K lanes with the
  // conservative window engine (sim/parallel_engine.hpp) and holds it to
  // the same contract — bit-identical simulated metrics at every K.
  struct ShardSample {
    int shards;
    RunResult run;
  };
  std::vector<ShardSample> shard_samples;
  bool shard_deterministic = true;
  RunConfig scfg = cfg;
  scfg.engine = EngineKind::kPod;
  const RunResult shard_serial =
      run_point(tb, RoutingScheme::kItbRr, pattern, scfg);
  scfg.engine = EngineKind::kPodParallel;
  for (const int shards : {1, 2, 4, 8}) {
    scfg.shards = shards;
    RunResult r = run_point(tb, RoutingScheme::kItbRr, pattern, scfg);
    RunResult cmp = r;
    cmp.peak_event_queue_len = shard_serial.peak_event_queue_len;
    if (!same_simulated_metrics(shard_serial, cmp) ||
        r.events != shard_serial.events) {
      std::printf("DETERMINISM VIOLATION: sharded run differs at "
                  "--shards %d\n", shards);
      shard_deterministic = false;
    }
    shard_samples.push_back({shards, std::move(r)});
  }

  TextTable shard_table({"shards", "window(ns)", "windows", "boundary",
                         "ties", "Mevents/s", "speedup"});
  for (const ShardSample& s : shard_samples) {
    char win[32], evps[32], speed[32];
    std::snprintf(win, sizeof win, "%.1f", s.run.window_ns);
    std::snprintf(evps, sizeof evps, "%.2f", s.run.events_per_sec / 1e6);
    std::snprintf(speed, sizeof speed, "%.2fx",
                  s.run.events_per_sec / shard_serial.events_per_sec);
    shard_table.add_row({std::to_string(s.shards), win,
                         std::to_string(s.run.windows_executed),
                         std::to_string(s.run.boundary_events),
                         std::to_string(s.run.boundary_ties), evps, speed});
  }
  std::printf("\nintra-run sharding (one point, --engine pod_parallel, "
              "serial %.2f Mevents/s):\n",
              shard_serial.events_per_sec / 1e6);
  shard_table.print(std::cout);
  std::printf("shard determinism: %s\n",
              shard_deterministic ? "OK (all K bit-identical to serial)"
                                  : "VIOLATED");

  if (!opts.json.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("points").value(kPoints);
    w.key("deterministic").value(deterministic);
    w.key("hardware_concurrency").value(static_cast<std::int64_t>(hw));
    w.key("samples").begin_array();
    for (const Sample& s : samples) {
      w.begin_object();
      w.key("jobs").value(s.jobs);
      w.key("wall_s").value(s.wall_s);
      w.key("events").value(s.events);
      w.key("events_per_sec").value(static_cast<double>(s.events) / s.wall_s);
      w.key("per_worker_events_per_sec").value(per_worker(s));
      w.key("efficiency").value(per_worker(s) / serial_rate);
      w.key("workspace_reuses").value(s.workspace_reuses);
      w.key("arena_bytes_peak").value(s.arena_bytes_peak);
      w.key("heap_allocs_steady_state").value(s.heap_allocs_steady_state);
      w.end_object();
    }
    w.end_array();
    w.key("shard_serial_events_per_sec").value(shard_serial.events_per_sec);
    w.key("shard_deterministic").value(shard_deterministic);
    w.key("shard_samples").begin_array();
    for (const ShardSample& s : shard_samples) {
      w.begin_object();
      w.key("shards").value(s.shards);
      w.key("events_per_sec").value(s.run.events_per_sec);
      w.key("speedup").value(s.run.events_per_sec /
                             shard_serial.events_per_sec);
      w.key("window_ns").value(s.run.window_ns);
      w.key("windows_executed").value(s.run.windows_executed);
      w.key("boundary_events").value(s.run.boundary_events);
      w.key("boundary_ties").value(s.run.boundary_ties);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    write_json_section(opts.json, "parallel_scaling", w.str());
    std::printf("wrote parallel_scaling section to %s\n", opts.json.c_str());
  }
  return deterministic && shard_deterministic ? 0 : 1;
}
