// Table 3: saturation throughput on the CPLANT network with 5% hotspot
// traffic (paper reports the average over hotspot locations).
#include "bench_hotspot_common.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Table 3", "hotspot throughput, CPLANT");
  const auto result = run_hotspot_table("cplant", {0.05}, opts);

  std::printf("\naverages vs paper:\n");
  print_anchor("UP/DOWN", result.avg[0][0], 0.0340);
  print_anchor("ITB-SP", result.avg[0][1], 0.0423);
  print_anchor("ITB-RR", result.avg[0][2], 0.0451);
  std::printf(
      "\npaper: ITB-SP/ITB-RR improve UP/DOWN by 1.24x/1.32x.\n"
      "measured: %.2fx/%.2fx\n",
      result.avg[0][1] / result.avg[0][0],
      result.avg[0][2] / result.avg[0][0]);
  return 0;
}
