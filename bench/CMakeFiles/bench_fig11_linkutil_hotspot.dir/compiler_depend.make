# Empty compiler generated dependencies file for bench_fig11_linkutil_hotspot.
# This may be replaced when dependencies are built.
