file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_linkutil_hotspot.dir/bench_fig11_linkutil_hotspot.cpp.o"
  "CMakeFiles/bench_fig11_linkutil_hotspot.dir/bench_fig11_linkutil_hotspot.cpp.o.d"
  "bench_fig11_linkutil_hotspot"
  "bench_fig11_linkutil_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_linkutil_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
