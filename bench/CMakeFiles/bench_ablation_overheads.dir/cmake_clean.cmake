file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_overheads.dir/bench_ablation_overheads.cpp.o"
  "CMakeFiles/bench_ablation_overheads.dir/bench_ablation_overheads.cpp.o.d"
  "bench_ablation_overheads"
  "bench_ablation_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
