# Empty dependencies file for bench_msgsize_ablation.
# This may be replaced when dependencies are built.
