file(REMOVE_RECURSE
  "CMakeFiles/bench_msgsize_ablation.dir/bench_msgsize_ablation.cpp.o"
  "CMakeFiles/bench_msgsize_ablation.dir/bench_msgsize_ablation.cpp.o.d"
  "bench_msgsize_ablation"
  "bench_msgsize_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msgsize_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
