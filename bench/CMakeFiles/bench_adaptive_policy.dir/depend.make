# Empty dependencies file for bench_adaptive_policy.
# This may be replaced when dependencies are built.
