file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_policy.dir/bench_adaptive_policy.cpp.o"
  "CMakeFiles/bench_adaptive_policy.dir/bench_adaptive_policy.cpp.o.d"
  "bench_adaptive_policy"
  "bench_adaptive_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
