# Empty compiler generated dependencies file for bench_path_stats.
# This may be replaced when dependencies are built.
