file(REMOVE_RECURSE
  "CMakeFiles/bench_path_stats.dir/bench_path_stats.cpp.o"
  "CMakeFiles/bench_path_stats.dir/bench_path_stats.cpp.o.d"
  "bench_path_stats"
  "bench_path_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
