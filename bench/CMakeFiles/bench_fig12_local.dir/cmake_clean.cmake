file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_local.dir/bench_fig12_local.cpp.o"
  "CMakeFiles/bench_fig12_local.dir/bench_fig12_local.cpp.o.d"
  "bench_fig12_local"
  "bench_fig12_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
