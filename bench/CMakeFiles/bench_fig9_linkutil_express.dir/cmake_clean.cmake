file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_linkutil_express.dir/bench_fig9_linkutil_express.cpp.o"
  "CMakeFiles/bench_fig9_linkutil_express.dir/bench_fig9_linkutil_express.cpp.o.d"
  "bench_fig9_linkutil_express"
  "bench_fig9_linkutil_express.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_linkutil_express.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
