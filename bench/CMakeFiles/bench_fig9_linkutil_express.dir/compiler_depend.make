# Empty compiler generated dependencies file for bench_fig9_linkutil_express.
# This may be replaced when dependencies are built.
