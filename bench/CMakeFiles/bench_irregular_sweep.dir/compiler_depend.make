# Empty compiler generated dependencies file for bench_irregular_sweep.
# This may be replaced when dependencies are built.
