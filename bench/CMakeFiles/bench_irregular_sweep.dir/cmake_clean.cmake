file(REMOVE_RECURSE
  "CMakeFiles/bench_irregular_sweep.dir/bench_irregular_sweep.cpp.o"
  "CMakeFiles/bench_irregular_sweep.dir/bench_irregular_sweep.cpp.o.d"
  "bench_irregular_sweep"
  "bench_irregular_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_irregular_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
