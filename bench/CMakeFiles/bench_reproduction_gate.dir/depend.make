# Empty dependencies file for bench_reproduction_gate.
# This may be replaced when dependencies are built.
