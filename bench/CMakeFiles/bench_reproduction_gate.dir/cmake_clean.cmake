file(REMOVE_RECURSE
  "CMakeFiles/bench_reproduction_gate.dir/bench_reproduction_gate.cpp.o"
  "CMakeFiles/bench_reproduction_gate.dir/bench_reproduction_gate.cpp.o.d"
  "bench_reproduction_gate"
  "bench_reproduction_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reproduction_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
