# Empty dependencies file for bench_simple_routes_ablation.
# This may be replaced when dependencies are built.
