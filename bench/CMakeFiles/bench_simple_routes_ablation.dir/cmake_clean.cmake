file(REMOVE_RECURSE
  "CMakeFiles/bench_simple_routes_ablation.dir/bench_simple_routes_ablation.cpp.o"
  "CMakeFiles/bench_simple_routes_ablation.dir/bench_simple_routes_ablation.cpp.o.d"
  "bench_simple_routes_ablation"
  "bench_simple_routes_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simple_routes_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
