# Empty dependencies file for bench_fig7_uniform.
# This may be replaced when dependencies are built.
