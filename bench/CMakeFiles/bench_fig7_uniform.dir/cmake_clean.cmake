file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_uniform.dir/bench_fig7_uniform.cpp.o"
  "CMakeFiles/bench_fig7_uniform.dir/bench_fig7_uniform.cpp.o.d"
  "bench_fig7_uniform"
  "bench_fig7_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
