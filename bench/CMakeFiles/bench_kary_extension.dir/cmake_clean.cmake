file(REMOVE_RECURSE
  "CMakeFiles/bench_kary_extension.dir/bench_kary_extension.cpp.o"
  "CMakeFiles/bench_kary_extension.dir/bench_kary_extension.cpp.o.d"
  "bench_kary_extension"
  "bench_kary_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kary_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
