# Empty compiler generated dependencies file for bench_kary_extension.
# This may be replaced when dependencies are built.
