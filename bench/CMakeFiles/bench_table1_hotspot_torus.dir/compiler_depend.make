# Empty compiler generated dependencies file for bench_table1_hotspot_torus.
# This may be replaced when dependencies are built.
