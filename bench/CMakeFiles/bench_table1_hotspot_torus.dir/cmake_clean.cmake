file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_hotspot_torus.dir/bench_table1_hotspot_torus.cpp.o"
  "CMakeFiles/bench_table1_hotspot_torus.dir/bench_table1_hotspot_torus.cpp.o.d"
  "bench_table1_hotspot_torus"
  "bench_table1_hotspot_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_hotspot_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
