# Empty dependencies file for bench_route_scale.
# This may be replaced when dependencies are built.
