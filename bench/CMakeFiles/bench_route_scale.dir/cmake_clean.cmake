file(REMOVE_RECURSE
  "CMakeFiles/bench_route_scale.dir/bench_route_scale.cpp.o"
  "CMakeFiles/bench_route_scale.dir/bench_route_scale.cpp.o.d"
  "bench_route_scale"
  "bench_route_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_route_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
