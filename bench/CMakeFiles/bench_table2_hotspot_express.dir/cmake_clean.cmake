file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hotspot_express.dir/bench_table2_hotspot_express.cpp.o"
  "CMakeFiles/bench_table2_hotspot_express.dir/bench_table2_hotspot_express.cpp.o.d"
  "bench_table2_hotspot_express"
  "bench_table2_hotspot_express.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hotspot_express.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
