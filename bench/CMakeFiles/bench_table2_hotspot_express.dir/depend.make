# Empty dependencies file for bench_table2_hotspot_express.
# This may be replaced when dependencies are built.
