file(REMOVE_RECURSE
  "CMakeFiles/bench_lowdiameter.dir/bench_lowdiameter.cpp.o"
  "CMakeFiles/bench_lowdiameter.dir/bench_lowdiameter.cpp.o.d"
  "bench_lowdiameter"
  "bench_lowdiameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lowdiameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
