# Empty compiler generated dependencies file for bench_lowdiameter.
# This may be replaced when dependencies are built.
