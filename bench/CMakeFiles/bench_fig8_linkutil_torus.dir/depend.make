# Empty dependencies file for bench_fig8_linkutil_torus.
# This may be replaced when dependencies are built.
