file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_linkutil_torus.dir/bench_fig8_linkutil_torus.cpp.o"
  "CMakeFiles/bench_fig8_linkutil_torus.dir/bench_fig8_linkutil_torus.cpp.o.d"
  "bench_fig8_linkutil_torus"
  "bench_fig8_linkutil_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_linkutil_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
