# Empty compiler generated dependencies file for bench_table3_hotspot_cplant.
# This may be replaced when dependencies are built.
