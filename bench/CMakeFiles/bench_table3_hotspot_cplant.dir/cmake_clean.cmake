file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_hotspot_cplant.dir/bench_table3_hotspot_cplant.cpp.o"
  "CMakeFiles/bench_table3_hotspot_cplant.dir/bench_table3_hotspot_cplant.cpp.o.d"
  "bench_table3_hotspot_cplant"
  "bench_table3_hotspot_cplant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_hotspot_cplant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
