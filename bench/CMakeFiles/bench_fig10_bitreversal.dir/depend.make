# Empty dependencies file for bench_fig10_bitreversal.
# This may be replaced when dependencies are built.
