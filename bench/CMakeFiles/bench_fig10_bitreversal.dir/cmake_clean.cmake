file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bitreversal.dir/bench_fig10_bitreversal.cpp.o"
  "CMakeFiles/bench_fig10_bitreversal.dir/bench_fig10_bitreversal.cpp.o.d"
  "bench_fig10_bitreversal"
  "bench_fig10_bitreversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bitreversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
