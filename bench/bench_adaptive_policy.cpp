// Future-work extension (§5): "new route selection algorithms that
// implement some adaptivity at the source host".  Compares the paper's
// SP/RR policies against two extensions — uniformly random selection and
// latency-feedback adaptive selection — on all three networks under
// uniform traffic.
#include "bench_common.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Adaptive policy extension",
               "SP vs RR vs RND vs ADAPT (uniform traffic)");

  for (const char* name : {"torus", "express", "cplant"}) {
    Testbed tb = make_testbed(name);
    UniformPattern pattern(tb.topo().num_hosts());
    std::printf("\n--- %s ---\n", name);
    TextTable t({"policy", "saturation", "lat @ 60% of U/D sat (ns)"});
    for (const RoutingScheme scheme :
         {RoutingScheme::kItbSp, RoutingScheme::kItbRr, RoutingScheme::kItbRnd,
          RoutingScheme::kItbAdapt}) {
      RunConfig cfg = default_config(opts);
      const auto sat = find_saturation(tb, scheme, pattern, cfg,
                                       start_load(name), opts.fast ? 1.5 : 1.3,
                                       opts.fast ? 9 : 14);
      cfg.load_flits_per_ns_per_switch = start_load(name);
      const RunResult low = run_point(tb, scheme, pattern, cfg);
      t.add_row({to_string(scheme), fmt_load(sat.throughput),
                 fmt_ns(low.avg_latency_ns)});
    }
    t.print(std::cout);
  }
  return 0;
}
