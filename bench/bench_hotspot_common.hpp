// Shared machinery for the hotspot throughput tables (Tables 1-3): pick
// seeded random hotspot locations, find each scheme's saturation
// throughput, and print a paper-style table plus averages.
//
// The (fraction × location × scheme) cells are independent simulations;
// they run concurrently across opts.jobs workers (one shared, warmed
// Testbed) and the tables are printed from the index-ordered results, so
// the output matches a serial run exactly.
#pragma once

#include "bench_common.hpp"

#include <memory>

#include "sim/rng.hpp"

namespace itb::bench {

inline std::vector<HostId> hotspot_locations(int num_hosts, int count,
                                             std::uint64_t seed = 2000) {
  Rng rng(seed);
  std::vector<HostId> out;
  while (static_cast<int>(out.size()) < count) {
    const auto h = static_cast<HostId>(
        rng.next_below(static_cast<std::uint64_t>(num_hosts)));
    if (std::find(out.begin(), out.end(), h) == out.end()) out.push_back(h);
  }
  return out;
}

struct HotspotTableResult {
  // [fraction][scheme] -> average saturation throughput over locations.
  std::vector<std::vector<double>> avg;
};

/// Runs the full table for one testbed: for each hotspot traffic fraction
/// and each location, the saturation throughput of every scheme.
inline HotspotTableResult run_hotspot_table(
    const std::string& testbed_name, const std::vector<double>& fractions,
    const BenchOptions& opts, std::uint64_t location_seed = 2000) {
  Testbed tb = make_testbed(testbed_name);
  tb.warm_all();
  const int locations = opts.fast ? 3 : 10;
  const auto spots =
      hotspot_locations(tb.topo().num_hosts(), locations, location_seed);

  const int schemes = static_cast<int>(paper_schemes().size());
  const int cells_per_fraction = locations * schemes;
  const int cells = static_cast<int>(fractions.size()) * cells_per_fraction;

  // Patterns are immutable once built; share one per (fraction, location).
  std::vector<std::unique_ptr<HotspotPattern>> patterns;
  for (const double frac : fractions) {
    for (const HostId spot : spots) {
      patterns.push_back(std::make_unique<HotspotPattern>(
          tb.topo().num_hosts(), spot, frac));
    }
  }

  const auto sats = run_grid<SaturationResult>(cells, opts, [&](int cell) {
    const int fi = cell / cells_per_fraction;
    const int li = (cell % cells_per_fraction) / schemes;
    const int si = cell % schemes;
    RunConfig cfg = default_config(opts);
    return find_saturation(tb, paper_schemes()[static_cast<std::size_t>(si)],
                           *patterns[static_cast<std::size_t>(
                               fi * locations + li)],
                           cfg, start_load(testbed_name) * 0.7,
                           opts.fast ? 1.5 : 1.3, opts.fast ? 9 : 14);
  });

  HotspotTableResult result;
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    std::printf("\n%.0f %% hotspot traffic, %s:\n", fractions[fi] * 100.0,
                testbed_name.c_str());
    TextTable table({"Hotspot", "U/D", "ITB-SP", "ITB-RR"});
    std::vector<double> sums(paper_schemes().size(), 0.0);
    for (int li = 0; li < locations; ++li) {
      std::vector<std::string> row{std::to_string(li + 1)};
      for (int si = 0; si < schemes; ++si) {
        const SaturationResult& sat =
            sats[static_cast<std::size_t>(fi) * cells_per_fraction +
                 static_cast<std::size_t>(li * schemes + si)];
        sums[static_cast<std::size_t>(si)] += sat.throughput;
        row.push_back(fmt_load(sat.throughput));
      }
      table.add_row(std::move(row));
    }
    std::vector<std::string> avg_row{"Avg"};
    std::vector<double> avgs;
    for (const double s : sums) {
      avgs.push_back(s / static_cast<double>(spots.size()));
      avg_row.push_back(fmt_load(avgs.back()));
    }
    table.add_row(std::move(avg_row));
    table.print(std::cout);
    result.avg.push_back(std::move(avgs));
  }
  return result;
}

}  // namespace itb::bench
