// Shared setup for the reproduction benches: paper topologies, default
// measurement windows, and printing helpers.
//
// Every bench binary accepts --fast / --full / --csv FILE and honours the
// ITB_BENCH_FAST environment variable.  FAST mode shrinks the simulated
// windows and sweep resolution so the whole suite smoke-tests in well
// under a minute; FULL mode (the default) uses windows long enough for
// stable averages at the paper's scale.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sim/pool.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb::bench {

/// The three evaluation networks of §4.1, plus the low-diameter frontier
/// cells of bench_lowdiameter (auto-rooted: a corner root would needlessly
/// deepen the up*/down* tree on these dense graphs).
inline Testbed make_testbed(const std::string& name) {
  if (name == "torus") return Testbed(make_torus_2d(8, 8, 8));
  if (name == "express") return Testbed(make_torus_2d_express(8, 8, 8));
  if (name == "cplant") return Testbed(make_cplant());
  if (name == "hyperx8x8") return Testbed(make_hyperx({8, 8}, 8), kAutoRoot);
  if (name == "hyperx16x16") {
    return Testbed(make_hyperx({16, 16}, 8), kAutoRoot);
  }
  if (name == "hyperx32x32") {
    return Testbed(make_hyperx({32, 32}, 8), kAutoRoot);
  }
  if (name == "dragonfly4") return Testbed(make_dragonfly(4, 4, 2), kAutoRoot);
  if (name == "dragonfly8") return Testbed(make_dragonfly(8, 8, 4), kAutoRoot);
  if (name == "dragonfly16") {
    return Testbed(make_dragonfly(16, 8, 8), kAutoRoot);
  }
  if (name == "fullmesh16") return Testbed(make_full_mesh(16, 8), kAutoRoot);
  if (name == "fullmesh64") return Testbed(make_full_mesh(64, 8), kAutoRoot);
  throw std::invalid_argument("unknown testbed: " + name);
}

inline RunConfig default_config(const BenchOptions& opts) {
  RunConfig cfg;
  cfg.payload_bytes = 512;
  if (opts.fast) {
    cfg.warmup = us(60);
    cfg.measure = us(150);
  } else {
    cfg.warmup = us(150);
    cfg.measure = us(400);
  }
  return cfg;
}

/// Sensible saturation-sweep starting loads (flits/ns/switch) per network:
/// roughly 40% of the UP/DOWN saturation point so ladders stay short.
inline double start_load(const std::string& testbed) {
  if (testbed == "torus") return 0.006;
  if (testbed == "express") return 0.02;
  return 0.015;  // cplant
}

inline const std::vector<RoutingScheme>& paper_schemes() {
  static const std::vector<RoutingScheme> kSchemes = {
      RoutingScheme::kUpDown, RoutingScheme::kItbSp, RoutingScheme::kItbRr};
  return kSchemes;
}

/// Print a measured-vs-paper anchor line.
inline void print_anchor(const char* label, double measured, double paper) {
  std::printf("  %-28s measured %.4f   paper %.4f   ratio %.2f\n", label,
              measured, paper, paper > 0 ? measured / paper : 0.0);
}

inline void print_header(const char* experiment, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("==============================================================\n");
}

/// Parallel grid runner: evaluate `fn(i)` for each of `n` independent
/// (testbed × scheme × pattern) cells across `opts.jobs` workers and
/// return the results in cell order.  Each cell must construct all of its
/// mutable state inside `fn` (shared Testbeds must be warmed first), so
/// the results are identical to running the cells serially — printing is
/// then done from the ordered results, keeping output byte-stable.
template <typename R, typename Fn>
[[nodiscard]] std::vector<R> run_grid(int n, const BenchOptions& opts,
                                      Fn&& fn) {
  return parallel_map<R>(n, opts.jobs, std::forward<Fn>(fn));
}

}  // namespace itb::bench
