// §4.2 ablation: the paper simulated 32-, 512- and 1024-byte messages and
// reports that the results are qualitatively similar (only 512-byte plots
// are shown).  This bench regenerates the torus/uniform saturation
// comparison for all three sizes.
#include "bench_common.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Message-size ablation",
               "torus, uniform: saturation for 32/512/1024-byte messages");

  Testbed tb = make_testbed("torus");
  UniformPattern pattern(tb.topo().num_hosts());
  TextTable table({"payload", "U/D", "ITB-SP", "ITB-RR", "RR/U-D"});
  for (const int payload : {32, 512, 1024}) {
    std::vector<double> sat;
    for (const RoutingScheme scheme : paper_schemes()) {
      RunConfig cfg = default_config(opts);
      cfg.payload_bytes = payload;
      // Small messages saturate earlier per flit (routing dominates).
      const double start = payload <= 32 ? 0.002 : start_load("torus");
      const auto res = find_saturation(tb, scheme, pattern, cfg, start,
                                       opts.fast ? 1.5 : 1.3,
                                       opts.fast ? 10 : 16);
      sat.push_back(res.throughput);
    }
    table.add_row({std::to_string(payload) + "B", fmt_load(sat[0]),
                   fmt_load(sat[1]), fmt_load(sat[2]),
                   fmt_ratio(sat[2] / sat[0])});
  }
  table.print(std::cout);
  std::printf(
      "\npaper: \"the obtained results are qualitatively similar\" across\n"
      "sizes — the ITB advantage must persist for 512B/1024B and the\n"
      "ordering must not invert dramatically for 32B (where the fixed\n"
      "475 ns in-transit overhead is large relative to the message).\n");
  return 0;
}
