// Figure 10: latency vs accepted traffic under the bit-reversal
// permutation, for (a) the 2-D torus and (b) the torus with express
// channels.  CPLANT is excluded (400 hosts is not a power of two), as in
// the paper.
#include "bench_common.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

struct Anchor {
  const char* testbed;
  double updown, itb_rr;  // paper's saturation throughputs
};

constexpr Anchor kAnchors[] = {
    {"torus", 0.017, 0.032},
    {"express", 0.070, 0.110},
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Figure 10", "bit-reversal traffic: latency vs accepted traffic");

  for (const Anchor& anchor : kAnchors) {
    Testbed tb = make_testbed(anchor.testbed);
    BitReversalPattern pattern(tb.topo().num_hosts());
    std::printf("\n--- %s ---\n", anchor.testbed);
    double sat[3] = {0, 0, 0};
    for (std::size_t i = 0; i < paper_schemes().size(); ++i) {
      const RoutingScheme scheme = paper_schemes()[i];
      RunConfig cfg = default_config(opts);
      const auto res =
          find_saturation(tb, scheme, pattern, cfg, start_load(anchor.testbed),
                          opts.fast ? 1.45 : 1.25, opts.fast ? 10 : 18);
      sat[i] = res.throughput;
      print_series(std::cout,
                   std::string("fig10 ") + anchor.testbed + " bit-reversal",
                   to_string(scheme), res.trace);
      append_series_csv(opts.csv, std::string("fig10_") + anchor.testbed,
                        to_string(scheme), res.trace);
    }
    std::printf("\nsaturation throughput, %s (bit-reversal):\n",
                anchor.testbed);
    print_anchor("UP/DOWN", sat[0], anchor.updown);
    print_anchor("ITB-RR", sat[2], anchor.itb_rr);
    std::printf("  ITB-RR / UP-DOWN improvement: %.2fx (paper %.2fx)\n",
                sat[2] / sat[0], anchor.itb_rr / anchor.updown);
  }
  return 0;
}
