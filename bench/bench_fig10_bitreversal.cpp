// Figure 10: latency vs accepted traffic under the bit-reversal
// permutation, for (a) the 2-D torus and (b) the torus with express
// channels.  CPLANT is excluded (400 hosts is not a power of two), as in
// the paper.
#include "bench_common.hpp"

#include <memory>

using namespace itb;
using namespace itb::bench;

namespace {

struct Anchor {
  const char* testbed;
  double updown, itb_rr;  // paper's saturation throughputs
};

constexpr Anchor kAnchors[] = {
    {"torus", 0.017, 0.032},
    {"express", 0.070, 0.110},
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Figure 10", "bit-reversal traffic: latency vs accepted traffic");

  constexpr int kNetworks = 2;
  const int schemes = static_cast<int>(paper_schemes().size());

  std::vector<Testbed> testbeds;
  std::vector<std::unique_ptr<BitReversalPattern>> patterns;
  for (const Anchor& anchor : kAnchors) {
    testbeds.push_back(make_testbed(anchor.testbed));
    testbeds.back().warm_all();
    patterns.push_back(std::make_unique<BitReversalPattern>(
        testbeds.back().topo().num_hosts()));
  }

  const auto results = run_grid<SaturationResult>(
      kNetworks * schemes, opts, [&](int cell) {
        const int ti = cell / schemes;
        const int si = cell % schemes;
        RunConfig cfg = default_config(opts);
        return find_saturation(testbeds[ti], paper_schemes()[si],
                               *patterns[ti], cfg,
                               start_load(kAnchors[ti].testbed),
                               opts.fast ? 1.45 : 1.25, opts.fast ? 10 : 18);
      });

  for (int ti = 0; ti < kNetworks; ++ti) {
    const Anchor& anchor = kAnchors[ti];
    std::printf("\n--- %s ---\n", anchor.testbed);
    double sat[3] = {0, 0, 0};
    for (int si = 0; si < schemes; ++si) {
      const SaturationResult& res = results[ti * schemes + si];
      sat[si] = res.throughput;
      print_series(std::cout,
                   std::string("fig10 ") + anchor.testbed + " bit-reversal",
                   to_string(paper_schemes()[si]), res.trace);
      append_series_csv(opts.csv, std::string("fig10_") + anchor.testbed,
                        to_string(paper_schemes()[si]), res.trace);
    }
    std::printf("\nsaturation throughput, %s (bit-reversal):\n",
                anchor.testbed);
    print_anchor("UP/DOWN", sat[0], anchor.updown);
    print_anchor("ITB-RR", sat[2], anchor.itb_rr);
    std::printf("  ITB-RR / UP-DOWN improvement: %.2fx (paper %.2fx)\n",
                sat[2] / sat[0], anchor.itb_rr / anchor.updown);
  }
  return 0;
}
