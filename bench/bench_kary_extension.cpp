// Extension experiment: does the in-transit buffer result generalise to
// other regular topologies?  The paper evaluates three networks; here the
// same comparison runs on additional k-ary n-cube family members at the
// paper's scale (64 switches, 512 hosts):
//   * 3-D torus (4-ary 3-cube) — denser, shorter paths than the 2-D torus;
//   * 6-cube hypercube (2-ary 6-cube) — up*/down* is famously mild here;
//   * 16-ary 1-cube ring of 16 switches (128 hosts) — the tightest cycle.
#include "bench_common.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("k-ary n-cube extension",
               "ITB vs UP/DOWN beyond the paper's three networks");

  struct Case {
    const char* label;
    int k, n, hosts;
    double start;
  };
  const Case cases[] = {
      {"3-D torus 4x4x4", 4, 3, 8, 0.01},
      {"hypercube 2^6", 2, 6, 8, 0.02},
      {"ring of 16", 16, 1, 8, 0.004},
  };

  for (const Case& c : cases) {
    Testbed tb(make_kary_ncube(c.k, c.n, c.hosts));
    UniformPattern pattern(tb.topo().num_hosts());
    std::printf("\n--- %s: %d switches, %d hosts ---\n", c.label,
                tb.topo().num_switches(), tb.topo().num_hosts());
    double sat[3] = {0, 0, 0};
    for (std::size_t i = 0; i < paper_schemes().size(); ++i) {
      RunConfig cfg = default_config(opts);
      const auto res =
          find_saturation(tb, paper_schemes()[i], pattern, cfg, c.start,
                          opts.fast ? 1.5 : 1.3, opts.fast ? 9 : 14);
      sat[i] = res.throughput;
      std::printf("  %-8s saturation %.4f flits/ns/switch\n",
                  to_string(paper_schemes()[i]), res.throughput);
    }
    std::printf("  gains: ITB-SP %.2fx, ITB-RR %.2fx over UP/DOWN\n",
                sat[1] / sat[0], sat[2] / sat[0]);
  }
  std::printf(
      "\nreading: the mechanism is topology-agnostic — wherever up*/down*\n"
      "forbids minimal paths or funnels traffic toward the root (3-D torus,\n"
      "hypercube), in-transit buffers recover 1.6-2.2x throughput; on the\n"
      "ring, where only two paths exist and the in-transit detour saves\n"
      "little, the gain shrinks toward parity — mirroring the paper's\n"
      "local-traffic observation that the mechanism never loses badly.\n");
  return 0;
}
