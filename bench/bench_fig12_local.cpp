// Figure 12: latency vs accepted traffic under the local distribution
// (destinations at most 3 switches away) for the 2-D torus, the torus
// with express channels and CPLANT, plus the 4-switch variant mentioned
// in §4.2.  The paper's point: with local traffic up*/down* is already
// nearly minimal and well balanced, so the ITB gain shrinks (torus) or
// vanishes (express, CPLANT) — but ITB never *hurts*.
#include "bench_common.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

struct Anchor {
  const char* testbed;
  double updown, itb;  // paper's approximate saturation values
};

constexpr Anchor kAnchors[] = {
    {"torus", 0.10, 0.13},
    {"express", 0.15, 0.15},  // "UP/DOWN performs as ITB-RR"
    {"cplant", 0.12, 0.13},   // "small benefits"
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Figure 12", "local traffic (<=3 switches): latency vs traffic");

  for (const Anchor& anchor : kAnchors) {
    Testbed tb = make_testbed(anchor.testbed);
    LocalPattern pattern(tb.topo(), 3);
    std::printf("\n--- %s, destinations <= 3 switches away ---\n",
                anchor.testbed);
    double sat[3] = {0, 0, 0};
    for (std::size_t i = 0; i < paper_schemes().size(); ++i) {
      RunConfig cfg = default_config(opts);
      const auto res = find_saturation(tb, paper_schemes()[i], pattern, cfg,
                                       0.04, opts.fast ? 1.5 : 1.3,
                                       opts.fast ? 9 : 14);
      sat[i] = res.throughput;
      print_series(std::cout, std::string("fig12 ") + anchor.testbed + " local3",
                   to_string(paper_schemes()[i]), res.trace);
      append_series_csv(opts.csv, std::string("fig12_") + anchor.testbed,
                        to_string(paper_schemes()[i]), res.trace);
    }
    std::printf("saturation: UP/DOWN %.4f  ITB-SP %.4f  ITB-RR %.4f "
                "(paper ~%.2f vs ~%.2f)\n",
                sat[0], sat[1], sat[2], anchor.updown, anchor.itb);
    std::printf("ITB-RR / UP-DOWN: %.2fx — ITB must not lose: %s\n",
                sat[2] / sat[0], sat[2] >= 0.9 * sat[0] ? "OK" : "VIOLATED");
  }

  // §4.2 variant: local distribution with 4-switch radius on the torus.
  {
    Testbed tb = make_testbed("torus");
    LocalPattern pattern(tb.topo(), 4);
    std::printf("\n--- torus, destinations <= 4 switches away ---\n");
    for (const RoutingScheme scheme : paper_schemes()) {
      RunConfig cfg = default_config(opts);
      const auto res = find_saturation(tb, scheme, pattern, cfg, 0.02,
                                       opts.fast ? 1.5 : 1.3,
                                       opts.fast ? 9 : 14);
      std::printf("  %-8s saturation %.4f\n", to_string(scheme),
                  res.throughput);
      append_series_csv(opts.csv, "fig12_torus_local4", to_string(scheme),
                        res.trace);
    }
  }
  return 0;
}
