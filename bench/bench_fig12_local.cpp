// Figure 12: latency vs accepted traffic under the local distribution
// (destinations at most 3 switches away) for the 2-D torus, the torus
// with express channels and CPLANT, plus the 4-switch variant mentioned
// in §4.2.  The paper's point: with local traffic up*/down* is already
// nearly minimal and well balanced, so the ITB gain shrinks (torus) or
// vanishes (express, CPLANT) — but ITB never *hurts*.
#include "bench_common.hpp"

#include <memory>

using namespace itb;
using namespace itb::bench;

namespace {

struct Anchor {
  const char* testbed;
  double updown, itb;  // paper's approximate saturation values
};

constexpr Anchor kAnchors[] = {
    {"torus", 0.10, 0.13},
    {"express", 0.15, 0.15},  // "UP/DOWN performs as ITB-RR"
    {"cplant", 0.12, 0.13},   // "small benefits"
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Figure 12", "local traffic (<=3 switches): latency vs traffic");

  // Grid cells: 3 networks × 3 schemes at radius 3, plus the §4.2
  // torus/radius-4 variant as 3 extra cells — all concurrent.
  constexpr int kNetworks = 3;
  const int schemes = static_cast<int>(paper_schemes().size());

  std::vector<Testbed> testbeds;
  std::vector<std::unique_ptr<LocalPattern>> patterns;
  for (const Anchor& anchor : kAnchors) {
    testbeds.push_back(make_testbed(anchor.testbed));
    testbeds.back().warm_all();
    patterns.push_back(std::make_unique<LocalPattern>(
        testbeds.back().topo(), 3));
  }
  Testbed torus4 = make_testbed("torus");
  torus4.warm_all();
  LocalPattern torus4_pattern(torus4.topo(), 4);

  const int grid_cells = kNetworks * schemes;
  const auto results = run_grid<SaturationResult>(
      grid_cells + schemes, opts, [&](int cell) {
        RunConfig cfg = default_config(opts);
        if (cell < grid_cells) {
          const int ti = cell / schemes;
          const int si = cell % schemes;
          return find_saturation(testbeds[ti], paper_schemes()[si],
                                 *patterns[ti], cfg, 0.04,
                                 opts.fast ? 1.5 : 1.3, opts.fast ? 9 : 14);
        }
        const int si = cell - grid_cells;
        return find_saturation(torus4, paper_schemes()[si], torus4_pattern,
                               cfg, 0.02, opts.fast ? 1.5 : 1.3,
                               opts.fast ? 9 : 14);
      });

  for (int ti = 0; ti < kNetworks; ++ti) {
    const Anchor& anchor = kAnchors[ti];
    std::printf("\n--- %s, destinations <= 3 switches away ---\n",
                anchor.testbed);
    double sat[3] = {0, 0, 0};
    for (int si = 0; si < schemes; ++si) {
      const SaturationResult& res = results[ti * schemes + si];
      sat[si] = res.throughput;
      print_series(std::cout, std::string("fig12 ") + anchor.testbed + " local3",
                   to_string(paper_schemes()[si]), res.trace);
      append_series_csv(opts.csv, std::string("fig12_") + anchor.testbed,
                        to_string(paper_schemes()[si]), res.trace);
    }
    std::printf("saturation: UP/DOWN %.4f  ITB-SP %.4f  ITB-RR %.4f "
                "(paper ~%.2f vs ~%.2f)\n",
                sat[0], sat[1], sat[2], anchor.updown, anchor.itb);
    std::printf("ITB-RR / UP-DOWN: %.2fx — ITB must not lose: %s\n",
                sat[2] / sat[0], sat[2] >= 0.9 * sat[0] ? "OK" : "VIOLATED");
  }

  std::printf("\n--- torus, destinations <= 4 switches away ---\n");
  for (int si = 0; si < schemes; ++si) {
    const SaturationResult& res = results[grid_cells + si];
    std::printf("  %-8s saturation %.4f\n", to_string(paper_schemes()[si]),
                res.throughput);
    append_series_csv(opts.csv, "fig12_torus_local4",
                      to_string(paper_schemes()[si]), res.trace);
  }
  return 0;
}
