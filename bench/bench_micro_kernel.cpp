// Microbenchmarks (google-benchmark) for the simulator substrate: event
// queue, RNG, routing-table construction and end-to-end simulation rate.
#include <benchmark/benchmark.h>

#include "core/route_builder.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "route/updown.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace {

using namespace itb;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<TimePs> times(n);
  for (auto& t : times) t = static_cast<TimePs>(rng.next_below(1'000'000));
  for (auto _ : state) {
    EventQueue q;
    for (const TimePs t : times) q.push(t, [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().first);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(512));
}
BENCHMARK(BM_RngNextBelow);

void BM_UpDownConstruction(benchmark::State& state) {
  const Topology topo = make_torus_2d(8, 8, 8);
  for (auto _ : state) {
    UpDown ud(topo, 0);
    benchmark::DoNotOptimize(ud.root());
  }
}
BENCHMARK(BM_UpDownConstruction);

void BM_SimpleRoutesTorus(benchmark::State& state) {
  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);
  for (auto _ : state) {
    SimpleRoutes sr(topo, ud);
    benchmark::DoNotOptimize(sr.channel_weights().size());
  }
}
BENCHMARK(BM_SimpleRoutesTorus);

void BM_ItbRoutesTorus(benchmark::State& state) {
  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);
  for (auto _ : state) {
    RouteSet rs = build_itb_routes(topo, ud);
    benchmark::DoNotOptimize(rs.alternatives(0, 63).size());
  }
}
BENCHMARK(BM_ItbRoutesTorus);

void BM_SimulationEventRate(benchmark::State& state) {
  // End-to-end events/second at a moderate uniform load on the torus.
  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);
  const RouteSet routes = build_itb_routes(topo, ud);
  std::uint64_t events = 0;
  for (auto _ : state) {
    Simulator sim;
    MyrinetParams params;
    Network net(sim, topo, routes, params, PathPolicy::kRoundRobin, 3);
    UniformPattern pattern(topo.num_hosts());
    TrafficConfig tc;
    tc.load_flits_per_ns_per_switch = 0.02;
    TrafficGenerator gen(sim, net, pattern, tc);
    gen.start();
    sim.run_until(us(100));
    events += sim.events_executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulationEventRate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
