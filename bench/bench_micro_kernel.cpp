// Microbenchmarks for the simulator substrate: event queues, RNG, routing
// table construction and end-to-end simulation rate.
//
// Two modes:
//  - default: the google-benchmark suite below.
//  - `--json FILE [--fast]`: the PR perf record.  Runs the engine-kernel
//    A/B (legacy std::function + 4-ary heap vs POD events + calendar
//    queue, identical schedule shapes), an end-to-end cross-engine
//    run_point comparison, and the invariant-layer cost A/B (ledgers
//    off / ledgers on / full checked mode), then writes the `micro_kernel`
//    section consumed by tools/perf_check.py.  Run this binary first when
//    regenerating BENCH_*.json — it starts the file fresh;
//    bench_parallel_scaling merges its section afterwards.
//  - `--shard-ab-only [--fast]`: just the serial-vs-sharded engine A/B
//    with its determinism cross-check (the TSan CI lane's entry point).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "core/route_builder.hpp"
#include "harness/json.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "route/updown.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/workspace.hpp"
#include "topo/generators.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace {

using namespace itb;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<TimePs> times(n);
  for (auto& t : times) t = static_cast<TimePs>(rng.next_below(1'000'000));
  for (auto _ : state) {
    EventQueue q;
    for (const TimePs t : times) q.push(t, [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().first);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_CalendarQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<TimePs> times(n);
  for (auto& t : times) t = static_cast<TimePs>(rng.next_below(1'000'000));
  for (auto _ : state) {
    CalendarQueue q;
    for (const TimePs t : times) {
      q.push(t, EventKind::kCallback, 0, 0, nullptr);
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().at);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CalendarQueuePushPop)->Arg(1024)->Arg(65536);

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(512));
}
BENCHMARK(BM_RngNextBelow);

void BM_UpDownConstruction(benchmark::State& state) {
  const Topology topo = make_torus_2d(8, 8, 8);
  for (auto _ : state) {
    UpDown ud(topo, 0);
    benchmark::DoNotOptimize(ud.root());
  }
}
BENCHMARK(BM_UpDownConstruction);

void BM_SimpleRoutesTorus(benchmark::State& state) {
  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);
  for (auto _ : state) {
    SimpleRoutes sr(topo, ud);
    benchmark::DoNotOptimize(sr.channel_weights().size());
  }
}
BENCHMARK(BM_SimpleRoutesTorus);

void BM_ItbRoutesTorus(benchmark::State& state) {
  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);
  for (auto _ : state) {
    RouteSet rs = build_itb_routes(topo, ud);
    benchmark::DoNotOptimize(rs.alternatives(0, 63).size());
  }
}
BENCHMARK(BM_ItbRoutesTorus);

void BM_SimulationEventRate(benchmark::State& state) {
  // End-to-end events/second at a moderate uniform load on the torus.
  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);
  const RouteSet routes = build_itb_routes(topo, ud);
  std::uint64_t events = 0;
  for (auto _ : state) {
    Simulator sim;
    MyrinetParams params;
    Network net(sim, topo, routes, params, PathPolicy::kRoundRobin, 3);
    UniformPattern pattern(topo.num_hosts());
    TrafficConfig tc;
    tc.load_flits_per_ns_per_switch = 0.02;
    TrafficGenerator gen(sim, net, pattern, tc);
    gen.start();
    sim.run_until(us(100));
    events += sim.events_executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulationEventRate)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: the engine-kernel A/B and end-to-end comparison behind the
// committed BENCH_*.json perf record.
// ---------------------------------------------------------------------------

/// Steady-state churn shape shared by both kernels: hold `held` pending
/// events, then `ops` times pop the minimum, dispatch it, and push one
/// replacement a pseudo-random (precomputed, identical for both engines)
/// delay later — the pop/push/dispatch mix of the simulation hot loop.
constexpr std::size_t kHeld = 1024;
constexpr std::size_t kDeltaMask = 8191;

std::vector<TimePs> make_deltas() {
  Rng rng(1234);
  std::vector<TimePs> deltas(kDeltaMask + 1);
  // Typical engine delays: chunk times ~50 ns, propagation ~50 ns, routing
  // 150 ns => a handful of calendar buckets at 1024 ps per bucket.
  for (auto& d : deltas) d = static_cast<TimePs>(rng.next_below(200'000));
  return deltas;
}

struct KernelCtx {
  std::uint64_t sink = 0;
  void dispatch(std::int32_t ch, std::int32_t a) {
    sink += static_cast<std::uint64_t>(ch) + static_cast<std::uint64_t>(a);
  }
};

double legacy_kernel_ops_per_sec(std::uint64_t ops,
                                 const std::vector<TimePs>& deltas) {
  EventQueue q;
  KernelCtx ctx;
  std::size_t d = 0;
  TimePs now = 0;
  // Captures mirror the network's real closures ([this, ch, a]) and stay
  // within std::function's small-buffer optimisation.
  auto push = [&](TimePs at, std::int32_t ch, std::int32_t a) {
    KernelCtx* c = &ctx;
    q.push(at, [c, ch, a] { c->dispatch(ch, a); });
  };
  for (std::size_t i = 0; i < kHeld; ++i) {
    push(deltas[d++ & kDeltaMask], static_cast<std::int32_t>(i), 1);
  }
  TimePs at = 0;
  EventFn fn;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    q.pop_into(at, fn);
    fn();
    now = at;
    push(now + deltas[d++ & kDeltaMask], static_cast<std::int32_t>(i & 1023),
         2);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(ctx.sink);
  return static_cast<double>(ops) / secs;
}

double pod_kernel_ops_per_sec(std::uint64_t ops,
                              const std::vector<TimePs>& deltas) {
  CalendarQueue q;
  KernelCtx ctx;
  std::size_t d = 0;
  for (std::size_t i = 0; i < kHeld; ++i) {
    q.push(deltas[d++ & kDeltaMask], EventKind::kChunkSent,
           static_cast<std::int32_t>(i), 1, nullptr);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const Event e = q.pop();
    // The network's dispatch switch, reduced to its shape.
    switch (e.kind) {
      case EventKind::kChunkSent:
      case EventKind::kChunkArrived:
      case EventKind::kGoArrived:
        ctx.dispatch(e.ch, e.a);
        break;
      default:
        ctx.dispatch(e.ch, -e.a);
        break;
    }
    const EventKind next = (i & 7) != 0U           ? EventKind::kChunkSent
                           : ((i & 15) != 0U)      ? EventKind::kChunkArrived
                                                   : EventKind::kGoArrived;
    q.push(e.at + deltas[d++ & kDeltaMask], next,
           static_cast<std::int32_t>(i & 1023), 2, nullptr);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(ctx.sink);
  return static_cast<double>(ops) / secs;
}

RunResult end_to_end_point(const Testbed& tb, EngineKind engine,
                           const BenchOptions& opts) {
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = opts.fast ? us(40) : us(150);
  cfg.measure = opts.fast ? us(100) : us(400);
  cfg.engine = engine;
  // Best events/sec of 3 (the simulated outcome is deterministic; only the
  // wall clock varies) — the committed record's rates would otherwise carry
  // one run's scheduling luck.
  const int reps = 3;
  RunResult best = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  for (int i = 1; i < reps; ++i) {
    RunResult r = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
    if (r.events_per_sec > best.events_per_sec) best = std::move(r);
  }
  return best;
}

/// One end-to-end point for the invariant-layer cost A/B: the same workload
/// as end_to_end_point on the POD engine, with the always-on ledgers and the
/// deep checked mode toggled independently.  Best events/sec of `reps` runs
/// (the simulated outcome is deterministic; only the wall clock varies).
RunResult overhead_point(const Testbed& tb, const BenchOptions& opts,
                         bool ledgers, bool checked) {
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = opts.fast ? us(40) : us(150);
  cfg.measure = opts.fast ? us(100) : us(400);
  cfg.engine = EngineKind::kPod;
  cfg.params.ledger_checks = ledgers;
  cfg.checked = checked;
  const int reps = 3;
  RunResult best = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  for (int i = 1; i < reps; ++i) {
    RunResult r = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
    if (r.events_per_sec > best.events_per_sec) best = std::move(r);
  }
  return best;
}

/// Workspace reuse A/B: the same POD point run in fresh workspaces vs one
/// reused (warmed) workspace.  Bit-identity is the contract (enforced by
/// test_workspace; re-checked here); the reused run's
/// heap_allocs_steady_state dropping to zero is the arena layer's headline
/// property.  Best of `reps` for the rates, like overhead_point.
struct WorkspaceAb {
  RunResult fresh;
  RunResult reused;
  bool identical = false;
};

/// One end-to-end point for the telemetry cost A/B: the same POD workload
/// with one telemetry channel (tracing / sampling / profiling) switched on
/// by `tweak`.  Best of `reps` like overhead_point.
RunResult telemetry_point(const Testbed& tb, const BenchOptions& opts,
                          void (*tweak)(RunConfig&)) {
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = opts.fast ? us(40) : us(150);
  cfg.measure = opts.fast ? us(100) : us(400);
  cfg.engine = EngineKind::kPod;
  tweak(cfg);
  const int reps = 3;
  RunResult best = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  for (int i = 1; i < reps; ++i) {
    RunResult r = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
    if (r.events_per_sec > best.events_per_sec) best = std::move(r);
  }
  return best;
}

WorkspaceAb workspace_ab(const Testbed& tb, const BenchOptions& opts) {
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = opts.fast ? us(40) : us(150);
  cfg.measure = opts.fast ? us(100) : us(400);
  cfg.engine = EngineKind::kPod;
  const int reps = 3;
  WorkspaceAb ab;
  {
    SimWorkspace ws;  // never reused: every rep below gets its own
    ab.fresh = run_point_in(ws, tb, RoutingScheme::kItbRr, pat, cfg);
  }
  for (int i = 1; i < reps; ++i) {
    SimWorkspace ws;
    RunResult r = run_point_in(ws, tb, RoutingScheme::kItbRr, pat, cfg);
    if (r.events_per_sec > ab.fresh.events_per_sec) ab.fresh = std::move(r);
  }
  SimWorkspace warm;
  (void)run_point_in(warm, tb, RoutingScheme::kItbRr, pat, cfg);
  ab.reused = run_point_in(warm, tb, RoutingScheme::kItbRr, pat, cfg);
  for (int i = 1; i < reps; ++i) {
    RunResult r = run_point_in(warm, tb, RoutingScheme::kItbRr, pat, cfg);
    if (r.events_per_sec > ab.reused.events_per_sec) ab.reused = std::move(r);
  }
  ab.identical = same_simulated_metrics(ab.fresh, ab.reused);
  return ab;
}

/// Route-store A/B: legacy nested staging vs the compressed contiguous
/// store, on the 512-host torus the other sections use.  Records build
/// time (nested, flat serial, flat parallel), table memory, and the dedup
/// count; build times are best of `reps` (construction is deterministic,
/// only the wall clock varies).
struct RouteStoreAb {
  double nested_build_ms = 0.0;
  double flat_build_jobs1_ms = 0.0;
  double flat_build_jobsn_ms = 0.0;
  int parallel_jobs = 0;
  std::uint64_t nested_bytes = 0;
  std::uint64_t flat_bytes = 0;
  std::uint64_t segments_shared = 0;
  std::uint64_t num_routes = 0;
  bool parallel_identical = false;
};

RouteStoreAb route_store_ab(const Topology& topo, const UpDown& ud) {
  const int reps = 3;
  RouteStoreAb ab;
  ab.parallel_jobs = 8;

  auto best_ms = [&](auto&& build) {
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      build();
      const std::chrono::duration<double, std::milli> dt =
          std::chrono::steady_clock::now() - t0;
      if (i == 0 || dt.count() < best) best = dt.count();
    }
    return best;
  };

  const NestedRouteTable nested = build_itb_routes_nested(topo, ud);
  ab.nested_bytes = nested_table_bytes(nested);
  ab.nested_build_ms =
      best_ms([&] { (void)build_itb_routes_nested(topo, ud); });

  const RouteSet flat1 = build_itb_routes(topo, ud, {}, 1);
  ab.flat_bytes = flat1.table_bytes();
  ab.segments_shared = flat1.segments_shared();
  ab.num_routes = flat1.store().num_routes();
  ab.flat_build_jobs1_ms =
      best_ms([&] { (void)build_itb_routes(topo, ud, {}, 1); });
  ab.flat_build_jobsn_ms = best_ms(
      [&] { (void)build_itb_routes(topo, ud, {}, ab.parallel_jobs); });

  const RouteSet flatn = build_itb_routes(topo, ud, {}, ab.parallel_jobs);
  const auto same = [](auto a, auto b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size_bytes()) == 0);
  };
  ab.parallel_identical =
      same(flat1.store().port_pool(), flatn.store().port_pool()) &&
      same(flat1.store().walks(), flatn.store().walks()) &&
      same(flat1.store().route_walks(), flatn.store().route_walks()) &&
      same(flat1.store().core_routes(), flatn.store().core_routes()) &&
      same(flat1.store().alt_routes(), flatn.store().alt_routes()) &&
      same(flat1.store().altlists(), flatn.store().altlists()) &&
      same(flat1.store().pair_altlist(), flatn.store().pair_altlist());
  return ab;
}

/// Serial-vs-sharded A/B: the same end-to-end point on the serial POD
/// engine and on the conservative window engine at K = 2/4/8 lanes.
/// Bit-identical simulated metrics is the contract (the differential suite
/// in tests/test_parallel_engine.cpp enforces it; re-checked here so the
/// perf record can't carry rates from diverged simulations).  Rates are
/// best of `reps`; on a single-core bench box the sharded rates sit below
/// serial — the record tracks them anyway so a multicore box shows the
/// speedup and a regression shows up as a ratio shift, not an absolute.
struct ShardAb {
  RunResult serial;
  std::vector<std::pair<int, RunResult>> sharded;  // {K, best run}
  bool identical = true;
};

ShardAb shard_ab(const Testbed& tb, const BenchOptions& opts) {
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = opts.fast ? us(40) : us(150);
  cfg.measure = opts.fast ? us(100) : us(400);
  cfg.engine = EngineKind::kPod;
  const int reps = 3;
  ShardAb ab;
  ab.serial = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  for (int i = 1; i < reps; ++i) {
    RunResult r = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
    if (r.events_per_sec > ab.serial.events_per_sec) ab.serial = std::move(r);
  }
  cfg.engine = EngineKind::kPodParallel;
  for (const int k : {2, 4, 8}) {
    cfg.shards = k;
    RunResult best = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
    for (int i = 1; i < reps; ++i) {
      RunResult r = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
      if (r.events_per_sec > best.events_per_sec) best = std::move(r);
    }
    // peak_event_queue_len is the one field legitimately different in a
    // sharded run (sum of per-lane peaks); normalize it like the tests do.
    RunResult cmp = best;
    cmp.peak_event_queue_len = ab.serial.peak_event_queue_len;
    if (!same_simulated_metrics(ab.serial, cmp) ||
        best.events != ab.serial.events) {
      ab.identical = false;
    }
    ab.sharded.emplace_back(k, std::move(best));
  }
  return ab;
}

void print_shard_ab(const ShardAb& ab) {
  std::printf("sharded engine (POD serial vs pod_parallel, best of 3):\n");
  std::printf("  serial  %8.2f Mev/s\n", ab.serial.events_per_sec / 1e6);
  for (const auto& [k, r] : ab.sharded) {
    std::printf("  K=%d     %8.2f Mev/s   speedup %.2fx   windows %llu   "
                "boundary %llu (ties %llu)\n",
                k, r.events_per_sec / 1e6,
                r.events_per_sec / ab.serial.events_per_sec,
                static_cast<unsigned long long>(r.windows_executed),
                static_cast<unsigned long long>(r.boundary_events),
                static_cast<unsigned long long>(r.boundary_ties));
  }
  std::printf("  bit-identical %s\n", ab.identical ? "yes" : "NO");
}

/// `--shard-ab-only`: just the serial-vs-sharded determinism/perf A/B, for
/// the TSan CI lane (the full --json record would re-run every section
/// under TSan's ~10x slowdown for no extra thread coverage).
int run_shard_ab_only(const BenchOptions& opts) {
  Testbed tb(make_torus_2d(8, 8, 8));
  tb.warm_all();
  const ShardAb ab = shard_ab(tb, opts);
  print_shard_ab(ab);
  if (!ab.identical) {
    std::printf("SHARD A/B MISMATCH: sharded run differs from serial\n");
    return 1;
  }
  return 0;
}

int run_json_mode(const BenchOptions& opts) {
  const std::vector<TimePs> deltas = make_deltas();
  const std::uint64_t ops = opts.fast ? 1'000'000 : 4'000'000;
  // Warm both kernels once, then measure (first touch pages the calendar
  // ring and the heap storage).
  (void)legacy_kernel_ops_per_sec(ops / 10, deltas);
  (void)pod_kernel_ops_per_sec(ops / 10, deltas);
  const double legacy_ops = legacy_kernel_ops_per_sec(ops, deltas);
  const double pod_ops = pod_kernel_ops_per_sec(ops, deltas);

  Testbed tb(make_torus_2d(8, 8, 8));
  tb.warm_all();
  const RunResult legacy_e2e = end_to_end_point(tb, EngineKind::kLegacy, opts);
  const RunResult pod_e2e = end_to_end_point(tb, EngineKind::kPod, opts);

  // Invariant-layer cost A/B (same POD workload): ledgers off, ledgers on
  // (the shipped default), and full checked mode (route verification +
  // deadlock watchdog).  The ledger delta is the always-on price and is
  // budgeted at <=5% (tests/docs cite the number recorded here).
  const RunResult ledger_off = overhead_point(tb, opts, false, false);
  const RunResult ledger_on = overhead_point(tb, opts, true, false);
  const RunResult checked_on = overhead_point(tb, opts, true, true);
  const double ledger_overhead =
      1.0 - ledger_on.events_per_sec / ledger_off.events_per_sec;
  const double checked_overhead =
      1.0 - checked_on.events_per_sec / ledger_off.events_per_sec;

  const WorkspaceAb ws_ab = workspace_ab(tb, opts);

  const RouteStoreAb rs_ab = route_store_ab(tb.topo(), tb.updown());

  const ShardAb sh_ab = shard_ab(tb, opts);

  // Telemetry cost A/B (same POD workload): the tracer/sampler/profiler
  // hooks are compiled into the hot path unconditionally and gated by null
  // pointers, so the disabled baseline IS the ledgers-on run above — the
  // end-to-end rate perf_check.py holds to the <=2% tracing-disabled
  // budget.  Each channel is then switched on in turn to record its
  // enabled cost.
  const RunResult& tele_off = ledger_on;
  const RunResult traced =
      telemetry_point(tb, opts, [](RunConfig& c) { c.trace = true; });
  const RunResult sampled = telemetry_point(tb, opts, [](RunConfig& c) {
    c.sample_period = c.measure / 20;
    c.sample_link_util = true;
  });
  const RunResult profiled =
      telemetry_point(tb, opts, [](RunConfig& c) { c.profile = true; });
  const double traced_overhead =
      1.0 - traced.events_per_sec / tele_off.events_per_sec;
  const double sampled_overhead =
      1.0 - sampled.events_per_sec / tele_off.events_per_sec;
  const double profiled_overhead =
      1.0 - profiled.events_per_sec / tele_off.events_per_sec;

  // Sharded telemetry A/B: tracing/profiling no longer fall back to
  // serial, so their cost under the parallel engine is a perf surface of
  // its own — per-lane rings + the keyed record path + the harvest merge.
  // The disabled sharded baseline is measured fresh (same tweak shape) so
  // the overhead fraction isolates telemetry, not sharding.
  const auto sharded_tweak = [](RunConfig& c) {
    c.engine = EngineKind::kPodParallel;
    c.shards = 4;
  };
  const RunResult sh_off = telemetry_point(tb, opts, sharded_tweak);
  const RunResult sh_traced = telemetry_point(tb, opts, [](RunConfig& c) {
    c.engine = EngineKind::kPodParallel;
    c.shards = 4;
    c.trace = true;
  });
  const RunResult sh_profiled = telemetry_point(tb, opts, [](RunConfig& c) {
    c.engine = EngineKind::kPodParallel;
    c.shards = 4;
    c.profile = true;
  });
  const double sh_traced_overhead =
      1.0 - sh_traced.events_per_sec / sh_off.events_per_sec;
  const double sh_profiled_overhead =
      1.0 - sh_profiled.events_per_sec / sh_off.events_per_sec;

  std::printf("engine kernel (%zu held, %llu ops):\n", kHeld,
              static_cast<unsigned long long>(ops));
  std::printf("  legacy  %8.2f Mops/s\n", legacy_ops / 1e6);
  std::printf("  pod     %8.2f Mops/s   speedup %.2fx\n", pod_ops / 1e6,
              pod_ops / legacy_ops);
  std::printf("end-to-end run_point (torus, ITB-RR, uniform 0.02):\n");
  std::printf("  legacy  %8.2f Mev/s\n", legacy_e2e.events_per_sec / 1e6);
  std::printf("  pod     %8.2f Mev/s   speedup %.2fx   coalesced %llu\n",
              pod_e2e.events_per_sec / 1e6,
              pod_e2e.events_per_sec / legacy_e2e.events_per_sec,
              static_cast<unsigned long long>(pod_e2e.events_coalesced));
  std::printf("invariant-layer cost (POD, best of 3):\n");
  std::printf("  ledgers off %8.2f Mev/s\n", ledger_off.events_per_sec / 1e6);
  std::printf("  ledgers on  %8.2f Mev/s   overhead %+.1f%%\n",
              ledger_on.events_per_sec / 1e6, ledger_overhead * 100.0);
  std::printf("  checked     %8.2f Mev/s   overhead %+.1f%%\n",
              checked_on.events_per_sec / 1e6, checked_overhead * 100.0);
  std::printf("telemetry cost (POD, best of 3; disabled == ledgers-on):\n");
  std::printf("  traced   %8.2f Mev/s   overhead %+.1f%%   records %llu\n",
              traced.events_per_sec / 1e6, traced_overhead * 100.0,
              static_cast<unsigned long long>(traced.trace_records));
  std::printf("  sampled  %8.2f Mev/s   overhead %+.1f%%   windows %zu\n",
              sampled.events_per_sec / 1e6, sampled_overhead * 100.0,
              sampled.samples.size());
  std::printf("  profiled %8.2f Mev/s   overhead %+.1f%%\n",
              profiled.events_per_sec / 1e6, profiled_overhead * 100.0);
  std::printf("telemetry cost sharded (pod_parallel K=%llu, best of 3):\n",
              static_cast<unsigned long long>(sh_off.shards));
  std::printf("  disabled %8.2f Mev/s\n", sh_off.events_per_sec / 1e6);
  std::printf("  traced   %8.2f Mev/s   overhead %+.1f%%   records %llu   "
              "barrier %.1f ms\n",
              sh_traced.events_per_sec / 1e6, sh_traced_overhead * 100.0,
              static_cast<unsigned long long>(sh_traced.trace_records),
              sh_traced.barrier_wait_ms);
  std::printf("  profiled %8.2f Mev/s   overhead %+.1f%%   imbalance %.2f\n",
              sh_profiled.events_per_sec / 1e6, sh_profiled_overhead * 100.0,
              sh_profiled.lane_imbalance);
  std::printf("route store (ITB table, 512-host torus, best of 3):\n");
  std::printf("  nested build %8.2f ms   %8.2f KiB\n", rs_ab.nested_build_ms,
              static_cast<double>(rs_ab.nested_bytes) / 1024.0);
  std::printf("  flat jobs=1  %8.2f ms   %8.2f KiB   shrink %.2fx   "
              "shared segs %llu\n",
              rs_ab.flat_build_jobs1_ms,
              static_cast<double>(rs_ab.flat_bytes) / 1024.0,
              static_cast<double>(rs_ab.nested_bytes) /
                  static_cast<double>(rs_ab.flat_bytes),
              static_cast<unsigned long long>(rs_ab.segments_shared));
  std::printf("  flat jobs=%d  %8.2f ms   build speedup %.2fx   "
              "bit-identical %s\n",
              rs_ab.parallel_jobs, rs_ab.flat_build_jobsn_ms,
              rs_ab.flat_build_jobs1_ms / rs_ab.flat_build_jobsn_ms,
              rs_ab.parallel_identical ? "yes" : "NO");
  print_shard_ab(sh_ab);
  std::printf("workspace reuse (POD, best of 3):\n");
  std::printf("  fresh   %8.2f Mev/s   run allocs %llu\n",
              ws_ab.fresh.events_per_sec / 1e6,
              static_cast<unsigned long long>(
                  ws_ab.fresh.heap_allocs_steady_state));
  std::printf("  reused  %8.2f Mev/s   run allocs %llu   speedup %.2fx   "
              "bit-identical %s\n",
              ws_ab.reused.events_per_sec / 1e6,
              static_cast<unsigned long long>(
                  ws_ab.reused.heap_allocs_steady_state),
              ws_ab.reused.events_per_sec / ws_ab.fresh.events_per_sec,
              ws_ab.identical ? "yes" : "NO");

  JsonWriter w;
  w.begin_object();
  w.key("engine_kernel").begin_object();
  w.key("held_events").value(static_cast<std::uint64_t>(kHeld));
  w.key("ops").value(ops);
  w.key("legacy_ops_per_sec").value(legacy_ops);
  w.key("pod_ops_per_sec").value(pod_ops);
  w.key("speedup").value(pod_ops / legacy_ops);
  w.end_object();
  w.key("end_to_end").begin_object();
  w.key("testbed").value("torus");
  w.key("scheme").value("ITB-RR");
  w.key("load").value(0.02);
  w.key("legacy_events_per_sec").value(legacy_e2e.events_per_sec);
  w.key("pod_events_per_sec").value(pod_e2e.events_per_sec);
  w.key("speedup").value(pod_e2e.events_per_sec / legacy_e2e.events_per_sec);
  w.key("legacy_events").value(legacy_e2e.events);
  w.key("pod_events").value(pod_e2e.events);
  w.key("pod_events_coalesced").value(pod_e2e.events_coalesced);
  w.key("pod_peak_event_queue_len").value(pod_e2e.peak_event_queue_len);
  w.key("legacy_peak_event_queue_len").value(legacy_e2e.peak_event_queue_len);
  w.end_object();
  w.key("checked_overhead").begin_object();
  w.key("ledger_off_events_per_sec").value(ledger_off.events_per_sec);
  w.key("ledger_on_events_per_sec").value(ledger_on.events_per_sec);
  w.key("checked_events_per_sec").value(checked_on.events_per_sec);
  w.key("ledger_overhead_frac").value(ledger_overhead);
  w.key("checked_overhead_frac").value(checked_overhead);
  w.end_object();
  w.key("telemetry").begin_object();
  w.key("disabled_events_per_sec").value(tele_off.events_per_sec);
  w.key("traced_events_per_sec").value(traced.events_per_sec);
  w.key("sampled_events_per_sec").value(sampled.events_per_sec);
  w.key("profiled_events_per_sec").value(profiled.events_per_sec);
  w.key("traced_overhead_frac").value(traced_overhead);
  w.key("sampled_overhead_frac").value(sampled_overhead);
  w.key("profiled_overhead_frac").value(profiled_overhead);
  w.key("trace_records").value(traced.trace_records);
  w.key("trace_dropped").value(traced.trace_dropped);
  w.key("sample_windows")
      .value(static_cast<std::uint64_t>(sampled.samples.size()));
  w.key("sharded_shards").value(sh_off.shards);
  w.key("sharded_disabled_events_per_sec").value(sh_off.events_per_sec);
  w.key("sharded_traced_events_per_sec").value(sh_traced.events_per_sec);
  w.key("sharded_profiled_events_per_sec").value(sh_profiled.events_per_sec);
  w.key("sharded_traced_overhead_frac").value(sh_traced_overhead);
  w.key("sharded_profiled_overhead_frac").value(sh_profiled_overhead);
  w.key("sharded_trace_records").value(sh_traced.trace_records);
  w.key("sharded_barrier_wait_ms").value(sh_traced.barrier_wait_ms);
  w.key("sharded_lane_imbalance").value(sh_traced.lane_imbalance);
  w.end_object();
  w.key("route_store").begin_object();
  w.key("testbed").value("torus 8x8, 8 hosts/switch (512 hosts)");
  w.key("nested_build_ms").value(rs_ab.nested_build_ms);
  w.key("flat_build_jobs1_ms").value(rs_ab.flat_build_jobs1_ms);
  w.key("flat_build_jobs8_ms").value(rs_ab.flat_build_jobsn_ms);
  w.key("parallel_jobs").value(static_cast<std::uint64_t>(rs_ab.parallel_jobs));
  w.key("parallel_build_speedup")
      .value(rs_ab.flat_build_jobs1_ms / rs_ab.flat_build_jobsn_ms);
  w.key("nested_table_bytes").value(rs_ab.nested_bytes);
  w.key("flat_table_bytes").value(rs_ab.flat_bytes);
  w.key("table_shrink")
      .value(static_cast<double>(rs_ab.nested_bytes) /
             static_cast<double>(rs_ab.flat_bytes));
  w.key("segments_shared").value(rs_ab.segments_shared);
  w.key("num_routes").value(rs_ab.num_routes);
  w.key("parallel_bit_identical").value(rs_ab.parallel_identical);
  // The end_to_end section's pod rate IS the flat-store e2e number;
  // perf_check compares it against the nested-era baseline in BENCH_pr5.
  w.key("flat_e2e_events_per_sec").value(pod_e2e.events_per_sec);
  w.end_object();
  w.key("shard_ab").begin_object();
  w.key("serial_events_per_sec").value(sh_ab.serial.events_per_sec);
  w.key("shards").begin_array();
  for (const auto& [k, r] : sh_ab.sharded) {
    w.begin_object();
    w.key("shards").value(k);
    w.key("events_per_sec").value(r.events_per_sec);
    w.key("speedup").value(r.events_per_sec / sh_ab.serial.events_per_sec);
    w.key("window_ns").value(r.window_ns);
    w.key("windows_executed").value(r.windows_executed);
    w.key("boundary_events").value(r.boundary_events);
    w.key("boundary_ties").value(r.boundary_ties);
    w.end_object();
  }
  w.end_array();
  w.key("bit_identical").value(sh_ab.identical);
  w.end_object();
  w.key("workspace").begin_object();
  w.key("fresh_events_per_sec").value(ws_ab.fresh.events_per_sec);
  w.key("reused_events_per_sec").value(ws_ab.reused.events_per_sec);
  w.key("speedup").value(ws_ab.reused.events_per_sec /
                         ws_ab.fresh.events_per_sec);
  w.key("fresh_heap_allocs").value(ws_ab.fresh.heap_allocs_steady_state);
  w.key("reused_heap_allocs_steady_state")
      .value(ws_ab.reused.heap_allocs_steady_state);
  w.key("arena_bytes_peak").value(ws_ab.reused.arena_bytes_peak);
  w.key("bit_identical").value(ws_ab.identical);
  w.end_object();
  w.end_object();
  write_json_section(opts.json, "micro_kernel", w.str());
  std::printf("wrote micro_kernel section to %s\n", opts.json.c_str());

  // Cross-engine sanity: same simulated outcome, or the numbers above are
  // comparing different simulations.
  if (legacy_e2e.delivered != pod_e2e.delivered ||
      legacy_e2e.avg_latency_ns != pod_e2e.avg_latency_ns ||
      pod_e2e.fc_violations != 0) {
    std::printf("CROSS-ENGINE MISMATCH: results differ between engines\n");
    return 1;
  }
  // The ledgers are pure observers: toggling them must not change the
  // simulation, only its wall clock.  (The checked run adds watchdog
  // sampling events, so its event count is intentionally not compared.)
  if (!same_simulated_metrics(ledger_off, ledger_on) ||
      ledger_on.invariant_violations != 0 ||
      checked_on.invariant_violations != 0 ||
      checked_on.delivered != ledger_on.delivered ||
      checked_on.avg_latency_ns != ledger_on.avg_latency_ns) {
    std::printf("LEDGER A/B MISMATCH: invariant layer changed the results\n");
    return 1;
  }
  // Telemetry must be a pure observer: tracing, sampling (samples cleared
  // for the comparison — the baseline did not sample), and profiling all
  // leave every simulated metric bit-identical.
  RunResult sampled_cmp = sampled;
  sampled_cmp.samples.clear();
  if (!same_simulated_metrics(tele_off, traced) ||
      !same_simulated_metrics(tele_off, sampled_cmp) ||
      !same_simulated_metrics(tele_off, profiled)) {
    std::printf("TELEMETRY A/B MISMATCH: tracing/sampling/profiling changed "
                "the results\n");
    return 1;
  }
  // Workspace reuse must not change the simulation.
  if (!ws_ab.identical) {
    std::printf("WORKSPACE A/B MISMATCH: reused run differs from fresh\n");
    return 1;
  }
  // Sharding must not change the simulation either — the record's sharded
  // rates are only meaningful if they ran the identical simulation.
  if (!sh_ab.identical) {
    std::printf("SHARD A/B MISMATCH: sharded run differs from serial\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool shard_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shard-ab-only") == 0) {
      shard_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (shard_only) return run_shard_ab_only(itb::parse_bench_args(argc, argv));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return run_json_mode(itb::parse_bench_args(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
