// Figure 9: link utilization on the 2-D torus with express channels at
// UP/DOWN's saturation point (0.066 flits/ns/switch), UP/DOWN vs ITB-RR.
//
// Besides the per-switch map, reports the express-channel vs regular-link
// utilization split the paper highlights (express ~25%, others ~10% under
// ITB-RR, because express channels provide the shortcuts and the regular
// links mostly deliver the final hop).
#include "bench_common.hpp"

#include "metrics/link_util.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

// Express cables are the second-order ones: endpoints two grid steps
// apart (mod 8).
bool is_express(const Topology& topo, const ChannelUtil& u) {
  if (u.to_host || u.from_sw == kNoSwitch || u.to_sw == kNoSwitch) return false;
  const SwitchPos a = topo.pos(u.from_sw);
  const SwitchPos b = topo.pos(u.to_sw);
  const int dx = std::min((a.x - b.x + 8) % 8, (b.x - a.x + 8) % 8);
  const int dy = std::min((a.y - b.y + 8) % 8, (b.y - a.y + 8) % 8);
  return dx == 2 || dy == 2;
}

void one_map(Testbed& tb, RoutingScheme scheme, double load,
             const BenchOptions& opts) {
  UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg = default_config(opts);
  cfg.load_flits_per_ns_per_switch = load;
  cfg.collect_link_util = true;
  const RunResult r = run_point(tb, scheme, pattern, cfg);
  const auto s = summarize_link_utilization(r.link_util, tb.topo(), 0);
  double express_sum = 0, regular_sum = 0, express_max = 0, regular_max = 0;
  int express_n = 0, regular_n = 0;
  for (const auto& u : r.link_util) {
    if (is_express(tb.topo(), u)) {
      express_sum += u.utilization;
      express_max = std::max(express_max, u.utilization);
      ++express_n;
    } else if (!u.to_host) {
      regular_sum += u.utilization;
      regular_max = std::max(regular_max, u.utilization);
      ++regular_n;
    }
  }
  std::printf("\n--- %s at %.3f flits/ns/switch (accepted %.4f) ---\n",
              to_string(scheme), load, r.accepted);
  std::printf("  max util %.0f%%  near-root max %.0f%%  elsewhere max %.0f%%\n",
              100 * s.max_utilization, 100 * s.max_near_root,
              100 * s.max_far_from_root);
  std::printf("  express channels: avg %.1f%%  max %.1f%%  (%d channels)\n",
              100 * express_sum / express_n, 100 * express_max, express_n);
  std::printf("  regular links:    avg %.1f%%  max %.1f%%  (%d channels)\n",
              100 * regular_sum / regular_n, 100 * regular_max, regular_n);
  std::printf("  links under 10%%: %.0f%%\n", 100 * s.fraction_below_10pct);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Figure 9",
               "torus+express link utilization at UP/DOWN saturation (0.066)");
  Testbed tb = make_testbed("express");
  one_map(tb, RoutingScheme::kUpDown, 0.066, opts);
  one_map(tb, RoutingScheme::kItbRr, 0.066, opts);
  std::printf(
      "\npaper: UP/DOWN concentrates ~50%% utilization near the root while\n"
      "       most links idle; ITB-RR keeps all links <30%%, with express\n"
      "       channels ~25%% and regular links ~10%%.\n");
  return 0;
}
