// Table 1: saturation throughput on the 2-D torus with hotspot traffic —
// 10 random hotspot locations, 5% and 10% hotspot fractions, for UP/DOWN,
// ITB-SP and ITB-RR.
#include "bench_hotspot_common.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Table 1", "hotspot throughput, 2-D torus");
  const auto result = run_hotspot_table("torus", {0.05, 0.10}, opts);

  std::printf("\naverages vs paper:\n");
  std::printf("5%% hotspot:\n");
  print_anchor("UP/DOWN", result.avg[0][0], 0.0125);
  print_anchor("ITB-SP", result.avg[0][1], 0.0267);
  print_anchor("ITB-RR", result.avg[0][2], 0.0274);
  std::printf("10%% hotspot:\n");
  print_anchor("UP/DOWN", result.avg[1][0], 0.0123);
  print_anchor("ITB-SP", result.avg[1][1], 0.0173);
  print_anchor("ITB-RR", result.avg[1][2], 0.0183);
  std::printf(
      "\npaper: at 5%% ITB-SP/RR improve UP/DOWN by 2.13x/2.19x; at 10%%\n"
      "       the gain shrinks to 1.40x/1.48x (the hotspot itself becomes\n"
      "       the bottleneck).  measured: %.2fx/%.2fx and %.2fx/%.2fx\n",
      result.avg[0][1] / result.avg[0][0], result.avg[0][2] / result.avg[0][0],
      result.avg[1][1] / result.avg[1][0], result.avg[1][2] / result.avg[1][0]);
  return 0;
}
