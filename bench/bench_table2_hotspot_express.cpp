// Table 2: saturation throughput on the 2-D torus with express channels,
// hotspot traffic at 3% and 5% (paper reports the average row over the
// hotspot locations).
#include "bench_hotspot_common.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Table 2", "hotspot throughput, 2-D torus with express channels");
  const auto result = run_hotspot_table("express", {0.03, 0.05}, opts);

  std::printf("\naverages vs paper:\n");
  std::printf("3%% hotspot:\n");
  print_anchor("UP/DOWN", result.avg[0][0], 0.0483);
  print_anchor("ITB-SP", result.avg[0][1], 0.0546);
  print_anchor("ITB-RR", result.avg[0][2], 0.0542);
  std::printf("5%% hotspot:\n");
  print_anchor("UP/DOWN", result.avg[1][0], 0.0334);
  print_anchor("ITB-SP", result.avg[1][1], 0.0363);
  print_anchor("ITB-RR", result.avg[1][2], 0.0359);
  std::printf(
      "\npaper: gains shrink to 1.13x/1.12x (3%%) and 1.08x/1.07x (5%%) —\n"
      "       with express channels the hotspot, not the root, limits\n"
      "       throughput.  measured: %.2fx/%.2fx and %.2fx/%.2fx\n",
      result.avg[0][1] / result.avg[0][0], result.avg[0][2] / result.avg[0][0],
      result.avg[1][1] / result.avg[1][0], result.avg[1][2] / result.avg[1][0]);
  return 0;
}
