// Reproduction gate: a fast, binary pass/fail check of the paper's core
// qualitative claims, meant for CI.  Runs scaled-down experiments and
// exits non-zero if any claim fails:
//
//   G1  torus/uniform: ITB-RR saturation >= 1.4x UP/DOWN
//   G2  torus/uniform: ITB-SP saturation >= 1.2x UP/DOWN
//   G3  UP/DOWN @0.015 concentrates near the root; ITB-RR does not
//   G4  torus static route facts: 4.57 / 4.06 avg hops, ~80% minimal
//   G5  hotspot 10%: ITB gain smaller than at 5% (hotspot limits ITB)
//   G6  local traffic: ITB never loses (>= 0.9x UP/DOWN)
//   G7  flow control: no slack overflow anywhere above
#include "bench_hotspot_common.hpp"

#include "core/route_stats.hpp"
#include "metrics/link_util.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

int failures = 0;

void gate(const char* id, bool ok, const std::string& detail) {
  std::printf("[%s] %-4s %s\n", ok ? "PASS" : "FAIL", id, detail.c_str());
  if (!ok) ++failures;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = parse_bench_args(argc, argv);
  opts.fast = true;  // the gate always runs at smoke speed
  print_header("Reproduction gate", "pass/fail on the paper's core claims");

  Testbed tb = make_testbed("torus");
  UniformPattern uniform(tb.topo().num_hosts());
  RunConfig cfg = default_config(opts);

  std::uint64_t fc_violations = 0;

  // G1/G2: saturation ordering under uniform traffic.
  double sat[3];
  for (std::size_t i = 0; i < paper_schemes().size(); ++i) {
    const auto res = find_saturation(tb, paper_schemes()[i], uniform, cfg,
                                     start_load("torus"), 1.4, 10);
    sat[i] = res.throughput;
    for (const auto& p : res.trace) fc_violations += p.result.fc_violations;
  }
  gate("G1", sat[2] >= 1.4 * sat[0],
       "ITB-RR/UP-DOWN = " + fmt_ratio(sat[2] / sat[0]) + " (>= 1.40)");
  gate("G2", sat[1] >= 1.2 * sat[0],
       "ITB-SP/UP-DOWN = " + fmt_ratio(sat[1] / sat[0]) + " (>= 1.20)");

  // G3: root concentration.
  {
    RunConfig lc = cfg;
    lc.load_flits_per_ns_per_switch = 0.015;
    lc.collect_link_util = true;
    const RunResult ud = run_point(tb, RoutingScheme::kUpDown, uniform, lc);
    const RunResult rr = run_point(tb, RoutingScheme::kItbRr, uniform, lc);
    fc_violations += ud.fc_violations + rr.fc_violations;
    const auto s_ud = summarize_link_utilization(ud.link_util, tb.topo(), 0);
    const auto s_rr = summarize_link_utilization(rr.link_util, tb.topo(), 0);
    gate("G3",
         s_ud.max_near_root > 1.4 * s_ud.max_far_from_root &&
             s_rr.max_utilization < 0.25,
         "UP/DOWN root " + fmt_pct(s_ud.max_near_root) + " vs elsewhere " +
             fmt_pct(s_ud.max_far_from_root) + "; ITB-RR max " +
             fmt_pct(s_rr.max_utilization));
  }

  // G4: static route facts.
  {
    const auto st_ud = analyze_routes(tb.topo(), tb.routes(RoutingScheme::kUpDown));
    const auto st_itb = analyze_routes(tb.topo(), tb.routes(RoutingScheme::kItbSp));
    const bool ok = std::abs(st_ud.avg_hops_sp - 4.57) < 0.05 &&
                    std::abs(st_itb.avg_hops_sp - 4.06) < 0.05 &&
                    std::abs(st_ud.minimal_fraction_sp - 0.80) < 0.06 &&
                    st_itb.minimal_fraction_sp == 1.0;
    gate("G4", ok,
         "hops " + fmt_ratio(st_ud.avg_hops_sp) + "/" +
             fmt_ratio(st_itb.avg_hops_sp) + ", minimal " +
             fmt_pct(st_ud.minimal_fraction_sp));
  }

  // G5: hotspot sensitivity — a strong hotspot (20%) must depress the ITB
  // gain relative to a mild one (5%).  Averaged over 3 locations; a single
  // location at smoke resolution is too noisy for a strict inequality.
  {
    const auto spots = hotspot_locations(tb.topo().num_hosts(), 3);
    auto mean_gain = [&](double frac) {
      double sum = 0;
      for (const HostId spot : spots) {
        HotspotPattern h(tb.topo().num_hosts(), spot, frac);
        sum += find_saturation(tb, RoutingScheme::kItbRr, h, cfg, 0.005, 1.4,
                               10)
                   .throughput /
               find_saturation(tb, RoutingScheme::kUpDown, h, cfg, 0.005,
                               1.4, 10)
                   .throughput;
      }
      return sum / static_cast<double>(spots.size());
    };
    const double g5 = mean_gain(0.05);
    const double g20 = mean_gain(0.20);
    gate("G5", g20 < g5 && g20 > 0.8,
         "gain 5% = " + fmt_ratio(g5) + ", 20% = " + fmt_ratio(g20));
  }

  // G6: local traffic never loses.
  {
    LocalPattern local(tb.topo(), 3);
    const double ud =
        find_saturation(tb, RoutingScheme::kUpDown, local, cfg, 0.03, 1.4, 10)
            .throughput;
    const double rr =
        find_saturation(tb, RoutingScheme::kItbRr, local, cfg, 0.03, 1.4, 10)
            .throughput;
    gate("G6", rr >= 0.9 * ud, "local ITB-RR/UP-DOWN = " + fmt_ratio(rr / ud));
  }

  gate("G7", fc_violations == 0,
       "slack-buffer overflows = " + std::to_string(fc_violations));

  std::printf("\n%s (%d failure%s)\n",
              failures == 0 ? "REPRODUCTION GATE PASSED"
                            : "REPRODUCTION GATE FAILED",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
