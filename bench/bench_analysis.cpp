// Model-vs-simulation cross-validation:
//   * zero-load latency: closed-form pipeline model vs the simulator's
//     average at a very light load, per network and scheme;
//   * bottleneck bound: the static channel-load model's throughput bound
//     vs the measured saturation point — the bound must dominate, and its
//     ordering across schemes must match the simulator's.
#include "bench_common.hpp"

#include "analysis/channel_load.hpp"
#include "analysis/zero_load.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Analysis cross-check",
               "closed-form models vs the discrete-event simulator");

  for (const char* name : {"torus", "express", "cplant"}) {
    Testbed tb = make_testbed(name);
    UniformPattern pattern(tb.topo().num_hosts());
    std::printf("\n--- %s, uniform ---\n", name);
    TextTable t({"scheme", "lat model(ns)", "lat sim(ns)", "bound",
                 "measured sat", "sat/bound"});
    for (const RoutingScheme scheme : paper_schemes()) {
      const MyrinetParams params;
      const double model_lat = average_zero_load_latency_ns(
          tb.topo(), tb.routes(scheme), 512, params);
      RunConfig cfg = default_config(opts);
      cfg.load_flits_per_ns_per_switch = start_load(name) * 0.3;
      const RunResult light = run_point(tb, scheme, pattern, cfg);
      const auto load_model = compute_channel_load(
          tb.topo(), tb.routes(scheme), policy_of(scheme), pattern, 1,
          opts.fast ? 50000 : 200000);
      const auto sat = find_saturation(tb, scheme, pattern, cfg,
                                       start_load(name),
                                       opts.fast ? 1.5 : 1.3,
                                       opts.fast ? 9 : 14);
      t.add_row({to_string(scheme), fmt_ns(model_lat),
                 fmt_ns(light.avg_latency_ns),
                 fmt_load(load_model.throughput_bound),
                 fmt_load(sat.throughput),
                 fmt_pct(sat.throughput / load_model.throughput_bound)});
    }
    t.print(std::cout);
  }
  std::printf(
      "\nreading: the latency model is exact at zero load (light-load sim\n"
      "numbers include a little queueing); measured saturation lands well\n"
      "below the static bound because wormhole blocking, 150 ns routing\n"
      "and stop&go stalls consume capacity the bound ignores.\n");
  return 0;
}
