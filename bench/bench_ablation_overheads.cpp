// Design-choice ablations for the ITB mechanism (DESIGN.md §2):
//   * in-transit overhead (275 ns detect + 200 ns DMA) scaled 0x..4x —
//     the paper's future work includes "reducing the latency overhead";
//   * ITB pool size (spill behaviour);
//   * slack-buffer size (40/80/160 bytes) — the paper blames the small
//     80-byte slack plus 150 ns routing for early saturation;
//   * switch routing delay (75/150/300 ns).
// Each knob is evaluated as ITB-RR saturation throughput (and UP/DOWN
// where the knob affects it too) on the torus under uniform traffic.
#include "bench_common.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

double sat_with(Testbed& tb, RoutingScheme scheme,
                const DestinationPattern& pattern, const BenchOptions& opts,
                MyrinetParams params) {
  RunConfig cfg = default_config(opts);
  cfg.params = params;
  return find_saturation(tb, scheme, pattern, cfg, start_load("torus"),
                         opts.fast ? 1.5 : 1.3, opts.fast ? 9 : 14)
      .throughput;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Ablations", "ITB overhead / pool / slack / routing delay");
  Testbed tb = make_testbed("torus");
  UniformPattern pattern(tb.topo().num_hosts());

  {
    std::printf("\nITB overhead scaling (detect+DMA = scale * 475 ns):\n");
    TextTable t({"scale", "ITB-RR sat", "zero-load lat(ns)"});
    for (const double scale : {0.0, 0.5, 1.0, 2.0, 4.0}) {
      MyrinetParams p;
      p.itb_detect_delay = static_cast<TimePs>(275000 * scale);
      p.itb_dma_delay = static_cast<TimePs>(200000 * scale);
      const double sat = sat_with(tb, RoutingScheme::kItbRr, pattern, opts, p);
      RunConfig cfg = default_config(opts);
      cfg.params = p;
      cfg.load_flits_per_ns_per_switch = 0.004;
      const RunResult low = run_point(tb, RoutingScheme::kItbRr, pattern, cfg);
      t.add_row({fmt_ratio(scale), fmt_load(sat), fmt_ns(low.avg_latency_ns)});
    }
    t.print(std::cout);
  }

  {
    std::printf("\nITB pool size (spills force the host-memory path):\n");
    TextTable t({"pool", "ITB-RR sat", "spilled deliveries"});
    for (const std::int64_t pool : {std::int64_t{1024}, std::int64_t{9216},
                                    std::int64_t{92160},
                                    std::int64_t{1} << 30}) {
      MyrinetParams p;
      p.itb_pool_bytes = pool;
      RunConfig cfg = default_config(opts);
      cfg.params = p;
      cfg.load_flits_per_ns_per_switch = 0.02;
      const RunResult r = run_point(tb, RoutingScheme::kItbRr, pattern, cfg);
      const double sat = sat_with(tb, RoutingScheme::kItbRr, pattern, opts, p);
      t.add_row({std::to_string(pool) + "B", fmt_load(sat),
                 std::to_string(r.spills)});
    }
    t.print(std::cout);
  }

  {
    std::printf("\nslack buffer size (stop/go thresholds scale with it):\n");
    TextTable t({"slack", "U/D sat", "ITB-RR sat"});
    for (const int slack : {40, 80, 160}) {
      MyrinetParams p;
      p.slack_buffer_flits = slack;
      p.stop_threshold_flits = slack * 56 / 80;
      p.go_threshold_flits = slack * 40 / 80;
      const double ud = sat_with(tb, RoutingScheme::kUpDown, pattern, opts, p);
      const double rr = sat_with(tb, RoutingScheme::kItbRr, pattern, opts, p);
      t.add_row({std::to_string(slack) + "B", fmt_load(ud), fmt_load(rr)});
    }
    t.print(std::cout);
  }

  {
    std::printf("\nswitch routing delay:\n");
    TextTable t({"routing", "U/D sat", "ITB-RR sat"});
    for (const std::int64_t r_ns : {std::int64_t{75}, std::int64_t{150},
                                    std::int64_t{300}}) {
      MyrinetParams p;
      p.routing_delay = ns(r_ns);
      const double ud = sat_with(tb, RoutingScheme::kUpDown, pattern, opts, p);
      const double rr = sat_with(tb, RoutingScheme::kItbRr, pattern, opts, p);
      t.add_row({std::to_string(r_ns) + "ns", fmt_load(ud), fmt_load(rr)});
    }
    t.print(std::cout);
  }
  return 0;
}
