// Low-diameter frontier: HyperX, Dragonfly and full-mesh cells comparing
// structured minimal source routes (MIN) against up*/down* and the ITB
// schemes, at the scale where the up*/down* tree visibly collapses.
//
// Two sections:
//   1. A (testbed x scheme x load) grid over the small/medium cells,
//      recording accepted traffic and latency per point plus the route
//      table footprint (compressed table_bytes, build_ms) per table.
//      UP/DOWN rides only on cells up to 256 switches — SimpleRoutes'
//      candidate enumeration is the paper's algorithm and is quadratic in
//      switches, which is exactly the story this bench tells.
//   2. A scale/acceptance section: >= 1024-switch cells (hyperx 32x32;
//      plus dragonfly a=16 p=8 h=8 in --full) run checked (route verifier
//      + deadlock watchdog) with ITB-RR, serially and sharded across the
//      conservative parallel engine at 4 and 8 lanes, holding every
//      sharded run to bit-identical simulated metrics and zero invariant
//      violations.  The partition plan's per-lane cut degrees are
//      reported: dense graphs cut almost everything, and the plan (not
//      the engine) is what has to absorb that irregularity.
//
// Exit status is the acceptance gate: non-zero if any sharded run
// diverges from its serial twin or any checked run records a violation.
#include "bench_common.hpp"

#include <algorithm>

#include "harness/json.hpp"
#include "net/params.hpp"
#include "sim/partition.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

struct GridSpec {
  std::string testbed;
  RoutingScheme scheme;
  double load;
};

struct TableStat {
  std::string testbed;
  RoutingScheme scheme;
  int switches;
  int hosts;
  std::uint64_t table_bytes;
  double build_ms;
};

constexpr char kSection[] = "lowdiameter";
constexpr char kScaleSection[] = "lowdiameter_scale";

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Low-diameter frontier",
               "HyperX / Dragonfly / full-mesh: MIN vs UP/DOWN vs ITB");

  // ---------------------------------------------------------------- grid
  const std::vector<std::string> grid_beds =
      opts.fast ? std::vector<std::string>{"hyperx8x8", "dragonfly4",
                                           "fullmesh16"}
                : std::vector<std::string>{"hyperx8x8", "hyperx16x16",
                                           "dragonfly4", "dragonfly8",
                                           "fullmesh16", "fullmesh64"};
  const std::vector<double> loads = opts.fast
                                        ? std::vector<double>{0.005, 0.02}
                                        : std::vector<double>{0.005, 0.015,
                                                              0.03};

  std::vector<Testbed> beds;
  beds.reserve(grid_beds.size());
  std::vector<std::vector<RoutingScheme>> bed_schemes;
  std::vector<TableStat> tables;
  for (const std::string& name : grid_beds) {
    beds.push_back(make_testbed(name));
    const Testbed& tb = beds.back();
    std::vector<RoutingScheme> schemes = {RoutingScheme::kMinimal};
    // The paper's up*/down* candidate search is quadratic in switches;
    // keep it to the cells where it is the honest baseline, not a stall.
    if (tb.topo().num_switches() <= 256) {
      schemes.push_back(RoutingScheme::kUpDown);
    }
    schemes.push_back(RoutingScheme::kItbSp);
    schemes.push_back(RoutingScheme::kItbRr);
    for (const RoutingScheme s : schemes) tb.warm(s, opts.jobs);
    for (const RoutingScheme s : schemes) {
      // ITB-SP and ITB-RR share one table; record it once.
      if (s == RoutingScheme::kItbRr) continue;
      const RouteSet& r = tb.routes(s);
      tables.push_back({name, s, tb.topo().num_switches(),
                        tb.topo().num_hosts(), r.table_bytes(),
                        r.build_ms()});
    }
    bed_schemes.push_back(std::move(schemes));
  }

  std::vector<GridSpec> cells;
  std::vector<const Testbed*> cell_bed;
  for (std::size_t b = 0; b < beds.size(); ++b) {
    for (const RoutingScheme s : bed_schemes[b]) {
      for (const double load : loads) {
        cells.push_back({grid_beds[b], s, load});
        cell_bed.push_back(&beds[b]);
      }
    }
  }

  RunConfig base = default_config(opts);
  if (opts.fast) {
    base.warmup = us(40);
    base.measure = us(100);
  }
  const std::vector<RunResult> grid = run_grid<RunResult>(
      static_cast<int>(cells.size()), opts, [&](int i) {
        const GridSpec& c = cells[static_cast<std::size_t>(i)];
        const Testbed& tb = *cell_bed[static_cast<std::size_t>(i)];
        UniformPattern pattern(tb.topo().num_hosts());
        RunConfig cfg = base;
        cfg.load_flits_per_ns_per_switch = c.load;
        return run_point(tb, c.scheme, pattern, cfg);
      });

  TextTable table({"testbed", "scheme", "load", "offered", "accepted",
                   "lat(ns)", "p99(ns)", "itbs"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const GridSpec& c = cells[i];
    const RunResult& r = grid[i];
    char load[32], off[32], acc[32], lat[32], p99[32], itbs[32];
    std::snprintf(load, sizeof load, "%.3f", c.load);
    std::snprintf(off, sizeof off, "%.4f", r.offered);
    std::snprintf(acc, sizeof acc, "%.4f", r.accepted);
    std::snprintf(lat, sizeof lat, "%.0f", r.avg_latency_ns);
    std::snprintf(p99, sizeof p99, "%.0f", r.p99_latency_ns);
    std::snprintf(itbs, sizeof itbs, "%.2f", r.avg_itbs);
    table.add_row({c.testbed, to_string(c.scheme), load, off, acc, lat, p99,
                   itbs});
  }
  table.print(std::cout);

  TextTable ttable({"testbed", "sw", "hosts", "table", "bytes", "build(ms)"});
  for (const TableStat& t : tables) {
    char bytes[32], ms[32];
    std::snprintf(bytes, sizeof bytes, "%llu",
                  static_cast<unsigned long long>(t.table_bytes));
    std::snprintf(ms, sizeof ms, "%.1f", t.build_ms);
    ttable.add_row({t.testbed, std::to_string(t.switches),
                    std::to_string(t.hosts), to_string(t.scheme), bytes, ms});
  }
  std::printf("\nroute-table footprint (ITB table shared by SP/RR):\n");
  ttable.print(std::cout);

  // ------------------------------------------------------------- scale
  // Checked >=1k-switch cells: serial POD vs conservative parallel engine
  // at 4 and 8 lanes, bit-identical or bust.
  const std::vector<std::string> scale_beds =
      opts.fast ? std::vector<std::string>{"hyperx32x32"}
                : std::vector<std::string>{"hyperx32x32", "dragonfly16"};
  const std::vector<int> shard_ladder = {4, 8};

  struct ScaleCell {
    std::string testbed;
    int switches = 0;
    int hosts = 0;
    RunResult serial;
    std::vector<RunResult> sharded;   // by shard_ladder
    std::vector<bool> identical;      // by shard_ladder
    PartitionPlan plan;               // at shard_ladder.back()
    std::uint64_t table_bytes = 0;
    double build_ms = 0.0;
  };
  std::vector<ScaleCell> scale;
  bool scale_ok = true;

  for (const std::string& name : scale_beds) {
    Testbed tb = make_testbed(name);
    tb.warm(RoutingScheme::kItbSp, opts.jobs);
    ScaleCell cell;
    cell.testbed = name;
    cell.switches = tb.topo().num_switches();
    cell.hosts = tb.topo().num_hosts();
    const RouteSet& routes = tb.routes(RoutingScheme::kItbRr);
    cell.table_bytes = routes.table_bytes();
    cell.build_ms = routes.build_ms();

    UniformPattern pattern(tb.topo().num_hosts());
    RunConfig cfg = base;
    cfg.checked = true;  // route verifier + deadlock watchdog
    cfg.warmup = us(opts.fast ? 15 : 40);
    cfg.measure = us(opts.fast ? 40 : 120);
    cfg.load_flits_per_ns_per_switch = 0.004;
    cfg.engine = EngineKind::kPod;
    cell.serial = run_point(tb, RoutingScheme::kItbRr, pattern, cfg);
    if (cell.serial.invariant_violations != 0) scale_ok = false;

    cfg.engine = EngineKind::kPodParallel;
    for (const int shards : shard_ladder) {
      cfg.shards = shards;
      RunResult r = run_point(tb, RoutingScheme::kItbRr, pattern, cfg);
      RunResult cmp = r;
      // Per-lane queue peaks sum differently than one serial queue; every
      // other simulated field must match exactly.
      cmp.peak_event_queue_len = cell.serial.peak_event_queue_len;
      const bool same = same_simulated_metrics(cell.serial, cmp) &&
                        r.invariant_violations == 0;
      if (!same) {
        std::printf("DETERMINISM VIOLATION: %s differs at --shards %d\n",
                    name.c_str(), shards);
        scale_ok = false;
      }
      cell.identical.push_back(same);
      cell.sharded.push_back(std::move(r));
    }
    cell.plan = make_contiguous_plan(tb.topo(), cfg.params,
                                     shard_ladder.back());
    scale.push_back(std::move(cell));
  }

  std::printf("\nscale cells (checked, ITB-RR, serial vs pod_parallel):\n");
  TextTable stable({"testbed", "sw", "hosts", "shards", "accepted", "lat(ns)",
                    "windows", "boundary", "cut-min", "cut-max", "identical"});
  for (const ScaleCell& c : scale) {
    char acc[32], lat[32];
    std::snprintf(acc, sizeof acc, "%.4f", c.serial.accepted);
    std::snprintf(lat, sizeof lat, "%.0f", c.serial.avg_latency_ns);
    stable.add_row({c.testbed, std::to_string(c.switches),
                    std::to_string(c.hosts), "1", acc, lat, "-", "-", "-",
                    "-", "-"});
    for (std::size_t k = 0; k < c.sharded.size(); ++k) {
      const RunResult& r = c.sharded[k];
      char sacc[32], slat[32];
      std::snprintf(sacc, sizeof sacc, "%.4f", r.accepted);
      std::snprintf(slat, sizeof slat, "%.0f", r.avg_latency_ns);
      int cut_min = 0, cut_max = 0;
      if (!c.plan.lane_cut_channels.empty()) {
        cut_min = *std::min_element(c.plan.lane_cut_channels.begin(),
                                    c.plan.lane_cut_channels.end());
        cut_max = *std::max_element(c.plan.lane_cut_channels.begin(),
                                    c.plan.lane_cut_channels.end());
      }
      stable.add_row({c.testbed, std::to_string(c.switches),
                      std::to_string(c.hosts),
                      std::to_string(shard_ladder[k]), sacc, slat,
                      std::to_string(r.windows_executed),
                      std::to_string(r.boundary_events),
                      std::to_string(cut_min), std::to_string(cut_max),
                      c.identical[k] ? "yes" : "NO"});
    }
  }
  stable.print(std::cout);
  std::printf("scale determinism: %s\n",
              scale_ok ? "OK (all shard counts bit-identical, 0 violations)"
                       : "VIOLATED");

  if (!opts.json.empty()) {
    {
      JsonWriter w;
      w.begin_object();
      w.key("cells").begin_array();
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const GridSpec& c = cells[i];
        const RunResult& r = grid[i];
        w.begin_object();
        w.key("testbed").value(c.testbed);
        w.key("scheme").value(to_string(c.scheme));
        w.key("load").value(c.load);
        w.key("offered").value(r.offered);
        w.key("accepted").value(r.accepted);
        w.key("avg_latency_ns").value(r.avg_latency_ns);
        w.key("p99_latency_ns").value(r.p99_latency_ns);
        w.key("avg_itbs").value(r.avg_itbs);
        w.key("saturated").value(r.saturated);
        w.end_object();
      }
      w.end_array();
      w.key("tables").begin_array();
      for (const TableStat& t : tables) {
        w.begin_object();
        w.key("testbed").value(t.testbed);
        w.key("scheme").value(to_string(t.scheme));
        w.key("switches").value(t.switches);
        w.key("hosts").value(t.hosts);
        w.key("table_bytes").value(t.table_bytes);
        w.key("build_ms").value(t.build_ms);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      write_json_section(opts.json, kSection, w.str());
    }
    {
      JsonWriter w;
      w.begin_object();
      w.key("deterministic").value(scale_ok);
      w.key("cells").begin_array();
      for (const ScaleCell& c : scale) {
        w.begin_object();
        w.key("testbed").value(c.testbed);
        w.key("switches").value(c.switches);
        w.key("hosts").value(c.hosts);
        w.key("scheme").value(to_string(RoutingScheme::kItbRr));
        w.key("table_bytes").value(c.table_bytes);
        w.key("build_ms").value(c.build_ms);
        w.key("serial").begin_object();
        w.key("accepted").value(c.serial.accepted);
        w.key("avg_latency_ns").value(c.serial.avg_latency_ns);
        w.key("events").value(c.serial.events);
        w.key("invariant_violations").value(c.serial.invariant_violations);
        w.key("checked").value(c.serial.checked);
        w.end_object();
        w.key("plan").begin_object();
        w.key("shards").value(c.plan.shards);
        w.key("lookahead_ps").value(c.plan.lookahead);
        w.key("boundary_channels").value(c.plan.boundary_channels);
        w.key("lane_switches").begin_array();
        for (const int v : c.plan.lane_switches) w.value(v);
        w.end_array();
        w.key("lane_cut_channels").begin_array();
        for (const int v : c.plan.lane_cut_channels) w.value(v);
        w.end_array();
        w.end_object();
        w.key("sharded").begin_array();
        for (std::size_t k = 0; k < c.sharded.size(); ++k) {
          const RunResult& r = c.sharded[k];
          w.begin_object();
          w.key("shards").value(shard_ladder[k]);
          w.key("identical_to_serial").value(
              static_cast<bool>(c.identical[k]));
          w.key("invariant_violations").value(r.invariant_violations);
          w.key("events").value(r.events);
          w.key("window_ns").value(r.window_ns);
          w.key("windows_executed").value(r.windows_executed);
          w.key("boundary_events").value(r.boundary_events);
          w.key("boundary_ties").value(r.boundary_ties);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.end_object();
      write_json_section(opts.json, kScaleSection, w.str());
    }
    std::printf("wrote %s + %s sections to %s\n", kSection, kScaleSection,
                opts.json.c_str());
  }
  return scale_ok ? 0 : 1;
}
