# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(reproduction_gate "/root/repo/bench/bench_reproduction_gate")
set_tests_properties(reproduction_gate PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
