// Static route analysis behind the prose numbers of §4.7.1:
//   * torus: 80% of UP/DOWN paths minimal, avg distance 4.57 vs 4.06,
//     ITB-SP uses 0.43 and ITB-RR 0.54 in-transit buffers per message;
//   * express torus: 94% minimal;
//   * CPLANT: UP/DOWN (nearly) always minimal.
// Also measures the *dynamic* ITBs/message at a moderate uniform load.
#include "bench_common.hpp"

#include "core/route_stats.hpp"

using namespace itb;
using namespace itb::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Path statistics", "static route analysis + ITB usage");

  for (const char* name : {"torus", "express", "cplant"}) {
    Testbed tb = make_testbed(name);
    const auto ud = analyze_routes(tb.topo(), tb.routes(RoutingScheme::kUpDown));
    const auto itb = analyze_routes(tb.topo(), tb.routes(RoutingScheme::kItbSp));
    std::printf("\n--- %s ---\n", name);
    std::printf("  UP/DOWN: avg distance %.2f, minimal paths %.1f%%\n",
                ud.avg_hops_sp, 100 * ud.minimal_fraction_sp);
    std::printf("  ITB:     avg distance %.2f, minimal paths %.1f%%, "
                "alternatives/pair %.1f\n",
                itb.avg_hops_sp, 100 * itb.minimal_fraction_sp,
                itb.avg_alternatives);
    std::printf("  static ITBs/route: alt0 %.2f, all alternatives %.2f\n",
                itb.avg_itbs_sp, itb.avg_itbs_all);

    // Dynamic ITB usage at ~2/3 of UP/DOWN saturation, uniform traffic.
    UniformPattern pattern(tb.topo().num_hosts());
    RunConfig cfg = default_config(opts);
    cfg.load_flits_per_ns_per_switch = start_load(name) * 1.5;
    const RunResult sp = run_point(tb, RoutingScheme::kItbSp, pattern, cfg);
    const RunResult rr = run_point(tb, RoutingScheme::kItbRr, pattern, cfg);
    std::printf("  measured ITBs/message: ITB-SP %.2f, ITB-RR %.2f\n",
                sp.avg_itbs, rr.avg_itbs);
  }
  std::printf(
      "\npaper (torus): UP/DOWN avg 4.57 / 80%% minimal; ITB avg 4.06;\n"
      "ITB-SP 0.43 and ITB-RR 0.54 buffers/message.  express: 94%% minimal.\n"
      "cplant: UP/DOWN always minimal (our reconstruction: see above).\n");
  return 0;
}
