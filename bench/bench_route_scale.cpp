// Route-table scale grid: serial build time, table footprint and lookup
// (compose) cost of the switch-pair factorized store across the topology
// ladder — the 512-host paper torus up to the 2064-switch / 16512-host
// Dragonfly — for every table the scheme set uses (UP/DOWN, MIN, and the
// shared ITB table of ITB-SP/RR).
//
// For the small and medium cells the same table is also re-compressed into
// the explicit (instance-flat, PR 6-style) tier via materialize_nested, so
// the record carries the measured factorized-vs-flat footprint delta; on
// the >=1024-switch cells the instance-flat inflation is the very cost the
// factorized core removes, so the delta there is tracked against the
// committed baseline record (tools/perf_check.py) instead of re-measured.
//
// JSON section: "route_scale" (BENCH_pr9.json).
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>

#include "core/route_builder.hpp"
#include "harness/json.hpp"
#include "route/topo_minimal.hpp"

using namespace itb;
using namespace itb::bench;

namespace {

constexpr char kSection[] = "route_scale";

struct Cell {
  std::string testbed;
  int switches = 0;
  int hosts = 0;
  RoutingScheme scheme = RoutingScheme::kUpDown;
  double build_ms = 0.0;
  std::uint64_t table_bytes = 0;
  std::uint64_t core_bytes = 0;
  std::uint64_t route_instances = 0;
  std::uint64_t distinct_walks = 0;
  std::uint64_t distinct_routes = 0;
  std::uint64_t distinct_altlists = 0;
  std::uint64_t segments_shared = 0;
  double compose_ns_avg = 0.0;
  std::uint64_t explicit_table_bytes = 0;  // 0 when not measured
};

/// Average wall time of one pair lookup + view composition, over a
/// deterministic LCG sample of pairs.  The checksum keeps the compose from
/// being optimized away.
double compose_ns_avg(const RouteSet& rs, int num_switches) {
  const int kSamples = 65536;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSamples; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto s = static_cast<SwitchId>((lcg >> 33) %
                                         static_cast<std::uint64_t>(num_switches));
    const auto d = static_cast<SwitchId>((lcg >> 13) %
                                         static_cast<std::uint64_t>(num_switches));
    const AltsView alts = rs.alternatives(s, d);
    const RouteView v = alts[(lcg >> 3) % alts.size()];
    sink += static_cast<std::uint64_t>(v.total_switch_hops) +
            v.legs.back().ports.size();
  }
  const std::chrono::duration<double, std::nano> dt =
      std::chrono::steady_clock::now() - t0;
  if (sink == 0) std::printf("(unreachable checksum)\n");
  return dt.count() / kSamples;
}

Cell measure(const std::string& name, const Testbed& tb, RoutingScheme scheme,
             bool explicit_baseline, int reps) {
  Cell c;
  c.testbed = name;
  c.switches = tb.topo().num_switches();
  c.hosts = tb.topo().num_hosts();
  c.scheme = scheme;

  auto build = [&]() -> RouteSet {
    if (scheme == RoutingScheme::kUpDown) {
      const SimpleRoutes sr(tb.topo(), tb.updown());
      return build_updown_routes(tb.topo(), sr, 1);
    }
    if (scheme == RoutingScheme::kMinimal) {
      return build_minimal_routes(tb.topo(), 1);
    }
    return build_itb_routes(tb.topo(), tb.updown(), {}, 1);
  };

  RouteSet rs = build();
  c.build_ms = rs.build_ms();
  for (int i = 1; i < reps; ++i) {
    const RouteSet again = build();
    if (again.build_ms() < c.build_ms) c.build_ms = again.build_ms();
  }
  const RouteStore& store = rs.store();
  c.table_bytes = store.table_bytes();
  c.core_bytes = store.core_bytes();
  c.route_instances = store.num_routes();
  c.distinct_walks = store.distinct_walks();
  c.distinct_routes = store.distinct_routes();
  c.distinct_altlists = store.distinct_altlists();
  c.segments_shared = store.segments_shared();
  c.compose_ns_avg = compose_ns_avg(rs, c.switches);
  if (explicit_baseline) {
    const RouteSet exp(rs.materialize_nested());
    c.explicit_table_bytes = exp.table_bytes();
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_args(argc, argv);
  print_header("Route-table scale",
               "factorized store: build / footprint / compose across the "
               "topology ladder");

  // SimpleRoutes' candidate enumeration (the paper's own algorithm) is
  // quadratic in switches; UP/DOWN tables ride only on cells where that is
  // an honest baseline rather than a stall — same rule as bench_lowdiameter.
  const std::vector<std::string> beds =
      opts.fast
          ? std::vector<std::string>{"torus", "hyperx16x16", "dragonfly8"}
          : std::vector<std::string>{"torus", "hyperx16x16", "dragonfly8",
                                     "hyperx32x32", "dragonfly16"};

  std::vector<Cell> cells;
  for (const std::string& name : beds) {
    const Testbed tb = make_testbed(name);
    const int n = tb.topo().num_switches();
    // Re-inflating to the instance-flat tier materializes every route
    // instance; bounded to the cells where that is cheap.
    const bool explicit_baseline = n <= 512;
    const int reps = n <= 512 ? 3 : 1;

    std::vector<RoutingScheme> schemes;
    if (n <= 256) schemes.push_back(RoutingScheme::kUpDown);
    if (has_structured_minimal(tb.topo())) {
      schemes.push_back(RoutingScheme::kMinimal);
    }
    schemes.push_back(RoutingScheme::kItbRr);  // table shared with ITB-SP
    for (const RoutingScheme s : schemes) {
      cells.push_back(measure(name, tb, s, explicit_baseline, reps));
    }
  }

  TextTable table({"testbed", "sw", "hosts", "table", "build(ms)", "bytes",
                   "core", "walks", "routes", "inst", "compose(ns)",
                   "flat-bytes"});
  for (const Cell& c : cells) {
    char ms[32], comp[32];
    std::snprintf(ms, sizeof ms, "%.1f", c.build_ms);
    std::snprintf(comp, sizeof comp, "%.1f", c.compose_ns_avg);
    table.add_row({c.testbed, std::to_string(c.switches),
                   std::to_string(c.hosts), to_string(c.scheme), ms,
                   std::to_string(c.table_bytes),
                   std::to_string(c.core_bytes),
                   std::to_string(c.distinct_walks),
                   std::to_string(c.distinct_routes),
                   std::to_string(c.route_instances), comp,
                   c.explicit_table_bytes
                       ? std::to_string(c.explicit_table_bytes)
                       : std::string("-")});
  }
  table.print(std::cout);

  if (!opts.json.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("cells").begin_array();
    for (const Cell& c : cells) {
      w.begin_object();
      w.key("testbed").value(c.testbed);
      w.key("switches").value(c.switches);
      w.key("hosts").value(c.hosts);
      w.key("scheme").value(to_string(c.scheme));
      w.key("build_ms").value(c.build_ms);
      w.key("table_bytes").value(c.table_bytes);
      w.key("core_bytes").value(c.core_bytes);
      w.key("route_instances").value(c.route_instances);
      w.key("distinct_walks").value(c.distinct_walks);
      w.key("distinct_routes").value(c.distinct_routes);
      w.key("distinct_altlists").value(c.distinct_altlists);
      w.key("segments_shared").value(c.segments_shared);
      w.key("compose_ns_avg").value(c.compose_ns_avg);
      w.key("explicit_table_bytes").value(c.explicit_table_bytes);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    write_json_section(opts.json, kSection, w.str());
    std::printf("wrote %s section to %s\n", kSection, opts.json.c_str());
  }
  return 0;
}
