// Telemetry-layer suite: the PacketTracer ring (wrap/overflow accounting),
// the pure-observer contract (tracing/profiling on vs off is bit-identical
// in every simulated metric), trace determinism across workspace reuse, and
// the Perfetto exporter's structural sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "harness/runner.hpp"
#include "obs/perfetto.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/workspace.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

RunConfig traced_config() {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = us(30);
  cfg.measure = us(80);
  cfg.engine = EngineKind::kPod;
  cfg.trace = true;
  return cfg;
}

bool same_record(const PacketTraceRecord& a, const PacketTraceRecord& b) {
  return a.t == b.t && a.packet == b.packet && a.ch == b.ch && a.sw == b.sw &&
         a.host == b.host && a.kind == b.kind;
}

bool same_trace(const std::vector<PacketTraceRecord>& a,
                const std::vector<PacketTraceRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_record(a[i], b[i])) return false;
  }
  return true;
}

TEST(PacketTracer, RingWrapKeepsNewestAndCountsDropped) {
  PacketTracer tr;
  tr.configure(4);
  EXPECT_TRUE(tr.enabled());
  EXPECT_EQ(tr.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tr.record(static_cast<TimePs>(100 * i), TraceKind::kHeader, i,
              static_cast<ChannelId>(i), 0, 0);
  }
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.stored(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);

  // Snapshot is the newest 4 records, oldest surviving first.
  const auto snap = tr.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].packet, 6u + i);
    EXPECT_EQ(snap[i].t, static_cast<TimePs>(100 * (6 + i)));
  }
}

TEST(PacketTracer, NoWrapSnapshotIsInsertionOrder) {
  PacketTracer tr;
  tr.configure(8);
  for (std::uint64_t i = 0; i < 3; ++i) {
    tr.record(static_cast<TimePs>(i), TraceKind::kInject, i, -1, kNoSwitch, 0);
  }
  EXPECT_EQ(tr.dropped(), 0u);
  const auto snap = tr.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(snap[i].packet, i);
}

TEST(PacketTracer, ZeroCapacityClampsToOne) {
  PacketTracer tr;
  tr.configure(0);
  EXPECT_EQ(tr.capacity(), 1u);
  tr.record(1, TraceKind::kInject, 7, -1, kNoSwitch, 0);
  tr.record(2, TraceKind::kDeliver, 8, -1, kNoSwitch, 0);
  EXPECT_EQ(tr.stored(), 1u);
  EXPECT_EQ(tr.snapshot().front().packet, 8u);
}

TEST(PacketTracer, ReconfigureSameCapacityResetsCountsKeepsStorage) {
  PacketTracer tr;
  tr.configure(16);
  tr.record(1, TraceKind::kInject, 1, -1, kNoSwitch, 0);
  tr.configure(16);
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_EQ(tr.stored(), 0u);
  EXPECT_TRUE(tr.snapshot().empty());
}

TEST(Obs, TracingOnVsOffBitIdentical) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg = traced_config();

  const RunResult traced = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  cfg.trace = false;
  const RunResult plain = run_point(tb, RoutingScheme::kItbRr, pat, cfg);

  EXPECT_GT(traced.delivered, 0u);
  EXPECT_GT(traced.trace_records, 0u);
  EXPECT_FALSE(traced.trace.empty());
  EXPECT_EQ(plain.trace_records, 0u);
  EXPECT_TRUE(plain.trace.empty());
  // The pure-observer contract: every simulated metric agrees bit-exactly.
  EXPECT_TRUE(same_simulated_metrics(traced, plain));
}

TEST(Obs, TraceDeterministicAcrossWorkspaceReuse) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  const RunConfig cfg = traced_config();

  SimWorkspace fresh;
  const RunResult a = run_point_in(fresh, tb, RoutingScheme::kItbRr, pat, cfg);
  SimWorkspace reused;
  (void)run_point_in(reused, tb, RoutingScheme::kItbRr, pat, cfg);
  const RunResult b = run_point_in(reused, tb, RoutingScheme::kItbRr, pat, cfg);

  EXPECT_TRUE(same_simulated_metrics(a, b));
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.trace_dropped, b.trace_dropped);
  EXPECT_TRUE(same_trace(a.trace, b.trace));
}

TEST(Obs, TinyRingOverflowsAndStaysChronological) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg = traced_config();
  cfg.trace_capacity = 64;

  const RunResult r = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  EXPECT_GT(r.trace_dropped, 0u);
  EXPECT_EQ(r.trace.size(), 64u);
  EXPECT_EQ(r.trace_records, r.trace_dropped + r.trace.size());
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i - 1].t, r.trace[i].t);
  }
}

TEST(Obs, PerfettoExportIsStructurallySane) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  const RunConfig cfg = traced_config();
  const RunResult r = run_point(tb, RoutingScheme::kItbRr, pat, cfg);

  // run_point leaves the calling thread's workspace prepared for this
  // point, so its Network still carries the channel labels.
  const Network& net = this_thread_workspace().net();
  const std::string json =
      trace_to_chrome_json(r.trace, net, r.trace_dropped);

  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"dropped_records\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // channel slices
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);  // inject
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);  // deliver
  // Balanced braces/brackets (no strings in the export contain either —
  // channel labels are alphanumeric wiring names).
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  // Export is a pure function of the records: byte-stable across calls.
  EXPECT_EQ(json, trace_to_chrome_json(r.trace, net, r.trace_dropped));

  // The raw CSV carries one row per record plus the header.
  const std::string csv = trace_to_csv(r.trace);
  const std::size_t rows =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, r.trace.size() + 1);
  EXPECT_EQ(csv.rfind("t_ps,kind,packet,channel,switch,host\n", 0), 0u);
}

TEST(Obs, ProfilerPopulatesEveryPhaseAndStaysPureObserver) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg = traced_config();
  cfg.trace = false;
  cfg.profile = true;
  cfg.checked = true;  // exercise the ledger-checks phase too

  const RunResult prof = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  cfg.profile = false;
  const RunResult plain = run_point(tb, RoutingScheme::kItbRr, pat, cfg);

  EXPECT_TRUE(same_simulated_metrics(prof, plain));
  EXPECT_TRUE(plain.profile.empty());
  ASSERT_EQ(prof.profile.size(), PhaseProfiler::kPhases);

  const auto& warm = prof.profile[static_cast<std::size_t>(Phase::kWarmup)];
  const auto& meas = prof.profile[static_cast<std::size_t>(Phase::kMeasure)];
  const auto& disp =
      prof.profile[static_cast<std::size_t>(Phase::kEventDispatch)];
  EXPECT_EQ(warm.calls, 1u);
  EXPECT_EQ(meas.calls, 1u);
  EXPECT_GT(warm.wall_ns, 0);
  EXPECT_GT(meas.wall_ns, 0);
  // Dispatch is called once per engine event and nested inside the
  // warmup/measure scopes (times are inclusive).
  EXPECT_GT(disp.calls, 0u);
  EXPECT_LE(disp.wall_ns, warm.wall_ns + meas.wall_ns);
}

}  // namespace
}  // namespace itb
