// k-ary n-cube generator.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/route_builder.hpp"
#include "route/updown.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

TEST(KaryNcube, TwoDimTorusMatchesDedicatedGenerator) {
  const Topology kary = make_kary_ncube(8, 2, 8);
  const Topology torus = make_torus_2d(8, 8, 8);
  EXPECT_EQ(kary.num_switches(), torus.num_switches());
  EXPECT_EQ(kary.num_hosts(), torus.num_hosts());
  EXPECT_EQ(kary.num_cables(), torus.num_cables());
  // Same degree everywhere and same distance profile from switch 0.
  const auto dk = kary.switch_distances_from(0);
  const auto dt = torus.switch_distances_from(0);
  auto sk = dk, st = dt;
  std::sort(sk.begin(), sk.end());
  std::sort(st.begin(), st.end());
  EXPECT_EQ(sk, st);
}

TEST(KaryNcube, ThreeDTorus) {
  const Topology t = make_kary_ncube(4, 3, 8);
  EXPECT_EQ(t.num_switches(), 64);
  EXPECT_EQ(t.num_hosts(), 512);
  EXPECT_TRUE(t.validate().empty());
  EXPECT_TRUE(t.connected());
  for (SwitchId s = 0; s < 64; ++s) {
    EXPECT_EQ(t.switch_degree(s), 6);  // +-1 in each of 3 dims
  }
  // Max distance = 3 dims * floor(4/2) = 6.
  const auto d = t.switch_distances_from(0);
  EXPECT_EQ(*std::max_element(d.begin(), d.end()), 6);
}

TEST(KaryNcube, KEquals2IsHypercube) {
  const Topology kary = make_kary_ncube(2, 4, 1, 8);
  const Topology cube = make_hypercube(4, 1, 8);
  EXPECT_EQ(kary.num_switches(), cube.num_switches());
  EXPECT_EQ(kary.num_cables(), cube.num_cables());
  for (SwitchId s = 0; s < 16; ++s) {
    auto a = kary.switch_neighbors(s);
    auto b = cube.switch_neighbors(s);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "switch " << s;
  }
}

TEST(KaryNcube, RingIsOneDim) {
  const Topology t = make_kary_ncube(6, 1, 2, 8);
  EXPECT_EQ(t.num_switches(), 6);
  for (SwitchId s = 0; s < 6; ++s) EXPECT_EQ(t.switch_degree(s), 2);
  const auto d = t.switch_distances_from(0);
  EXPECT_EQ(*std::max_element(d.begin(), d.end()), 3);
}

TEST(KaryNcube, Validation) {
  EXPECT_THROW(make_kary_ncube(1, 2, 1), std::invalid_argument);
  EXPECT_THROW(make_kary_ncube(2, 0, 1), std::invalid_argument);
  EXPECT_THROW(make_kary_ncube(10, 5, 1), std::invalid_argument);  // 100k sw
}

TEST(KaryNcube, RoutableWithBothSchemes) {
  const Topology t = make_kary_ncube(4, 3, 2);
  const UpDown ud(t, 0);
  const RouteSet itb = build_itb_routes(t, ud);
  const auto dist = t.all_switch_distances();
  for (SwitchId s = 0; s < t.num_switches(); s += 7) {
    for (SwitchId d = 0; d < t.num_switches(); ++d) {
      const auto& alts = itb.alternatives(s, d);
      ASSERT_FALSE(alts.empty());
      EXPECT_EQ(alts.front().total_switch_hops,
                dist[static_cast<std::size_t>(s) *
                         static_cast<std::size_t>(t.num_switches()) +
                     static_cast<std::size_t>(d)]);
    }
  }
}

}  // namespace
}  // namespace itb
