// Parallel route-table construction must be bit-identical to the serial
// build: staging rows fan out across the thread pool, but compression
// consumes them strictly in (s,d) order, so every array of the store — the
// dedup'd pools included — is a pure function of the route values.  These
// tests build the same tables at jobs 1, 2 and 8 and require the five raw
// arrays to match byte for byte.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/route_builder.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

template <typename T>
::testing::AssertionResult spans_byte_identical(std::span<const T> a,
                                                std::span<const T> b,
                                                const char* what) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << what << ": size " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size_bytes()) != 0) {
    return ::testing::AssertionFailure() << what << ": bytes differ";
  }
  return ::testing::AssertionSuccess();
}

void expect_stores_byte_identical(const RouteSet& a, const RouteSet& b,
                                  const std::string& label) {
  const RouteStore& x = a.store();
  const RouteStore& y = b.store();
  ASSERT_EQ(x.tier(), y.tier()) << label;
  // Factorized-tier arrays (what the builders produce).
  EXPECT_TRUE(spans_byte_identical(x.port_pool(), y.port_pool(),
                                   "port_pool")) << label;
  EXPECT_TRUE(spans_byte_identical(x.walks(), y.walks(), "walks")) << label;
  EXPECT_TRUE(spans_byte_identical(x.route_walks(), y.route_walks(),
                                   "route_walks")) << label;
  EXPECT_TRUE(spans_byte_identical(x.core_routes(), y.core_routes(),
                                   "core_routes")) << label;
  EXPECT_TRUE(spans_byte_identical(x.alt_routes(), y.alt_routes(),
                                   "alt_routes")) << label;
  EXPECT_TRUE(spans_byte_identical(x.altlists(), y.altlists(),
                                   "altlists")) << label;
  EXPECT_TRUE(spans_byte_identical(x.pair_altlist(), y.pair_altlist(),
                                   "pair_altlist")) << label;
  // Explicit-tier arrays (empty on factorized stores, compared anyway so
  // the helper also covers RouteSet(nested)-built stores).
  EXPECT_TRUE(spans_byte_identical(x.switch_pool(), y.switch_pool(),
                                   "switch_pool")) << label;
  EXPECT_TRUE(spans_byte_identical(x.flat_legs(), y.flat_legs(),
                                   "flat_legs")) << label;
  EXPECT_TRUE(spans_byte_identical(x.flat_routes(), y.flat_routes(),
                                   "flat_routes")) << label;
  EXPECT_TRUE(spans_byte_identical(x.pair_index(), y.pair_index(),
                                   "pair_index")) << label;
  EXPECT_EQ(x.table_bytes(), y.table_bytes()) << label;
  EXPECT_EQ(x.segments_shared(), y.segments_shared()) << label;
}

TEST(RouteStoreParallelBuild, ItbTableIdenticalAcrossJobCounts) {
  const Testbed tb(make_torus_2d(8, 8, 2));
  const RouteSet serial = build_itb_routes(tb.topo(), tb.updown(), {}, 1);
  for (const int jobs : {2, 8}) {
    const RouteSet par = build_itb_routes(tb.topo(), tb.updown(), {}, jobs);
    expect_stores_byte_identical(serial, par,
                                 "itb jobs=" + std::to_string(jobs));
  }
}

TEST(RouteStoreParallelBuild, UpDownTableIdenticalAcrossJobCounts) {
  const Testbed tb(make_torus_2d(8, 8, 2));
  const SimpleRoutes sr(tb.topo(), tb.updown());
  const RouteSet serial = build_updown_routes(tb.topo(), sr, 1);
  for (const int jobs : {2, 8}) {
    const RouteSet par = build_updown_routes(tb.topo(), sr, jobs);
    expect_stores_byte_identical(serial, par,
                                 "updown jobs=" + std::to_string(jobs));
  }
}

TEST(RouteStoreParallelBuild, IrregularTopologyIdenticalAcrossJobCounts) {
  // CPLANT exercises the fallback paths (pairs whose minimal candidates
  // are all discarded); the express torus exercises long express links.
  for (const int variant : {0, 1}) {
    const Testbed tb(variant == 0 ? make_cplant()
                                  : make_torus_2d_express(8, 8, 2));
    const RouteSet serial = build_itb_routes(tb.topo(), tb.updown(), {}, 1);
    const RouteSet par = build_itb_routes(tb.topo(), tb.updown(), {}, 8);
    expect_stores_byte_identical(
        serial, par, variant == 0 ? "cplant jobs=8" : "express jobs=8");
  }
}

TEST(RouteStoreParallelBuild, DenseLowDiameterIdenticalAcrossJobCounts) {
  // Dense adjacency stresses the row builders differently than the paper's
  // sparse tori: many equal-length candidates per pair (alternative
  // selection order must not depend on thread schedule) and, for MIN, the
  // structured oracle shared across all workers.
  struct Case {
    std::string name;
    Topology topo;
  };
  std::vector<Case> cases;
  cases.push_back({"hyperx", make_hyperx({4, 4}, 2)});
  cases.push_back({"dragonfly", make_dragonfly(4, 2, 2)});
  cases.push_back({"fullmesh", make_full_mesh(16, 2)});
  for (const Case& c : cases) {
    const Testbed tb(Topology(c.topo), kAutoRoot);
    const RouteSet itb_serial = build_itb_routes(tb.topo(), tb.updown(), {}, 1);
    const RouteSet min_serial = build_minimal_routes(tb.topo(), 1);
    for (const int jobs : {2, 8}) {
      expect_stores_byte_identical(
          itb_serial, build_itb_routes(tb.topo(), tb.updown(), {}, jobs),
          c.name + " itb jobs=" + std::to_string(jobs));
      expect_stores_byte_identical(
          min_serial, build_minimal_routes(tb.topo(), jobs),
          c.name + " min jobs=" + std::to_string(jobs));
    }
  }
}

TEST(RouteStoreParallelBuild, WarmedTestbedServesTheSameTable) {
  // Testbed::warm(scheme, jobs) builds with the pool from the main thread;
  // the table it caches must be the one a cold serial build produces.
  const Testbed cold(make_torus_2d(8, 8, 2));
  const Testbed warm(make_torus_2d(8, 8, 2));
  warm.warm(RoutingScheme::kItbSp, 8);
  expect_stores_byte_identical(cold.routes(RoutingScheme::kItbSp),
                               warm.routes(RoutingScheme::kItbSp),
                               "warm vs cold");
}

}  // namespace
}  // namespace itb
