// Negative tests for the checked-simulation layer: every detector must
// actually fire on the failure mode it exists for, and nothing else.
//
//  * A hand-built illegal routing table (cyclic channel dependencies on a
//    4-switch ring, the textbook wormhole deadlock) must trip the
//    wait-graph watchdog with the exact 4-channel cycle — and a legal
//    workload must not.
//  * Each test_* fault-injection hook corrupts one piece of engine state;
//    the intended ledger — and only that ledger — must catch it.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "check/watchdog.hpp"
#include "core/route_builder.hpp"
#include "net/network.hpp"
#include "route/updown.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture: the 5-switch network from test_network_itb whose pair
// (3 -> 2) needs one in-transit buffer.  Hosts: switch s owns {2s, 2s+1}.
Topology itb_fixture() {
  Topology t(5, 8, "itb-fixture");
  t.connect_auto(0, 1);
  t.connect_auto(0, 2);
  t.connect_auto(1, 3);
  t.connect_auto(2, 4);
  t.connect_auto(3, 4);
  for (SwitchId s = 0; s < 5; ++s) t.attach_hosts(s, 2);
  return t;
}

struct Rig {
  Topology topo;
  UpDown ud;
  RouteSet routes;
  Simulator sim;
  Network net;

  explicit Rig(MyrinetParams p = {})
      : topo(itb_fixture()),
        ud(topo, 0),
        routes(build_itb_routes(topo, ud)),
        net(sim, topo, routes, p, PathPolicy::kSingle) {}
};

/// Host->switch channel of host h (the one its NIC injects into).
ChannelId inject_channel(const Topology& t, HostId h) {
  return t.channel_from(t.host(h).cable, false);
}

// ---------------------------------------------------------------------------
// Deadlock watchdog

/// Output port of switch `a` leading to switch `b`.
PortId port_to(const Topology& t, SwitchId a, SwitchId b) {
  for (PortId p : t.switch_ports_of(a)) {
    if (t.peer(a, p).sw == b) return p;
  }
  ADD_FAILURE() << "no port " << a << "->" << b;
  return kNoPort;
}

TEST(DeadlockWatchdog, CyclicRoutesOnRingAreCaughtWithTheExactCycle) {
  // 4-switch ring, one host each, and clockwise 2-hop routes for the four
  // antipodal pairs.  Every route is minimal — but the channel dependency
  // graph is the 4-cycle sw0->sw1->sw2->sw3->sw0, so once each flow holds
  // its first ring channel and queues for the next, nothing can drain.
  // This is exactly the configuration up*/down* (and ITB splitting) exists
  // to exclude; bypassing the route builder is the only way to create it.
  Topology t(4, 4, "ring4");
  t.connect_auto(0, 1);
  t.connect_auto(1, 2);
  t.connect_auto(2, 3);
  t.connect_auto(3, 0);
  for (SwitchId s = 0; s < 4; ++s) t.attach_hosts(s, 1);

  NestedRouteTable staged(4, RoutingAlgorithm::kUpDown);
  for (SwitchId s = 0; s < 4; ++s) {
    const SwitchId via = (s + 1) % 4;
    const SwitchId d = (s + 2) % 4;
    Route r;
    r.src_switch = s;
    r.dst_switch = d;
    r.switches = {s, via, d};
    r.total_switch_hops = 2;
    RouteLeg leg;
    leg.ports = {port_to(t, s, via), port_to(t, via, d)};
    leg.switch_hops = 2;
    r.legs.push_back(leg);
    staged.mutable_alternatives(s, d).push_back(r);
  }
  const RouteSet routes(staged);

  MyrinetParams p;
  Simulator sim;
  Network net(sim, t, routes, p, PathPolicy::kSingle);
  DeadlockWatchdog dog(sim, net, us(10));
  // 2048-flit packets dwarf the 80-flit slack buffers: each flow wedges.
  for (SwitchId s = 0; s < 4; ++s) {
    net.inject(/*src=*/s, /*dst=*/(s + 2) % 4, 2048);
  }
  sim.run_until(ms(2));

  EXPECT_EQ(net.packets_delivered(), 0u);
  EXPECT_GT(dog.cycles_found(), 0u);
  // The deadlock persists: sampling again still finds it.
  EXPECT_TRUE(dog.sample());
  EXPECT_EQ(dog.last_cycle().size(), 4u);
  // Structured violation: recorded exactly once, with the cycle dumped.
  EXPECT_EQ(net.invariants().count(InvariantKind::kDeadlockCycle), 1u);
  EXPECT_EQ(net.invariants().total(), 1u);
  ASSERT_FALSE(net.invariants().violations().empty());
  const InvariantViolation& v = net.invariants().violations().front();
  EXPECT_EQ(v.kind, InvariantKind::kDeadlockCycle);
  EXPECT_NE(v.detail.find("wait-graph cycle:"), std::string::npos);
  EXPECT_NE(v.detail.find("sw"), std::string::npos);
  // The ledgers stay clean mid-deadlock: stalled, not corrupted.
  net.audit_invariants(false);
  EXPECT_EQ(net.invariants().total(), 1u);
}

TEST(DeadlockWatchdog, LegalItbWorkloadNeverTripsIt) {
  // Same checker, legal table (the up*/down* theorem in executable form):
  // heavy traffic through the ITB fixture must never form a wait cycle.
  Rig rig;
  DeadlockWatchdog dog(rig.sim, rig.net, us(5));
  for (int i = 0; i < 20; ++i) {
    rig.net.inject(6, 4, 1024);
    rig.net.inject(7, 5, 1024);
    rig.net.inject(0, 8, 1024);
  }
  rig.sim.run_until(ms(5));
  EXPECT_EQ(dog.cycles_found(), 0u);
  EXPECT_EQ(rig.net.packets_delivered(), 60u);
  EXPECT_EQ(rig.net.invariants().total(), 0u);
}

TEST(DeadlockWatchdog, IdleNetworkHasEmptyWaitGraph) {
  Rig rig;
  DeadlockWatchdog dog(rig.sim, rig.net, us(10));
  EXPECT_FALSE(dog.sample());
  EXPECT_TRUE(rig.net.wait_graph_edges().empty());
}

// ---------------------------------------------------------------------------
// Seeded faults, one per ledger.  Each asserts the intended InvariantKind
// fired AND that it is the only one — detection must be attributable.

TEST(SeededFault, LostGoCreditIsCaughtByTheCreditLedger) {
  // Two hosts on switch 3 contend for its output: the loser's injection
  // stream fills the input slack buffer and is stopped.  Dropping the "go"
  // that should resume it wedges the packet forever — invisible to every
  // per-event check, but the quiescent audit sees a stopped sender whose
  // receiver has no stop outstanding.
  MyrinetParams p;
  p.chunk_flits = 1;
  // No tail-burst coalescing: the wedged flow would otherwise strand its
  // suppressed arrivals on the wire ledger, a second (truthful, but
  // unattributable) symptom of the same fault.
  p.coalesce_chunk_flow = false;
  Rig rig(p);
  rig.net.test_drop_next_go(inject_channel(rig.topo, 7));
  rig.net.inject(6, 4, 512);
  rig.net.inject(7, 4, 512);
  rig.sim.run_until(ms(50));
  ASSERT_LT(rig.net.packets_delivered(), 2u) << "fault did not take effect";
  EXPECT_EQ(rig.net.invariants().total(), 0u) << "nothing fires mid-run";
  rig.net.audit_invariants(/*quiescent=*/true);
  EXPECT_EQ(rig.net.invariants().count(InvariantKind::kCreditConservation),
            1u);
  EXPECT_EQ(rig.net.invariants().total(), 1u);
}

TEST(SeededFault, DuplicatedGoCreditIsCaughtByTheCreditLedger) {
  Rig rig;
  rig.net.test_force_go(inject_channel(rig.topo, 6));
  EXPECT_EQ(rig.net.invariants().count(InvariantKind::kCreditConservation),
            1u);
  EXPECT_EQ(rig.net.invariants().total(), 1u);
}

TEST(SeededFault, OverfilledItbPoolIsCaughtByThePoolAudit) {
  Rig rig;
  rig.net.audit_invariants(true);
  ASSERT_EQ(rig.net.invariants().total(), 0u);
  rig.net.test_corrupt_itb_pool(8, rig.net.params().itb_pool_bytes + 1);
  rig.net.audit_invariants(true);
  EXPECT_EQ(rig.net.invariants().count(InvariantKind::kItbPoolOverflow), 1u);
  EXPECT_EQ(rig.net.invariants().total(), 1u);
}

TEST(SeededFault, SkewedOccupancyIsCaughtByTheFlitLedger) {
  Rig rig;
  rig.net.test_corrupt_occupancy(inject_channel(rig.topo, 0), 3);
  rig.net.audit_invariants(false);
  EXPECT_EQ(rig.net.invariants().count(InvariantKind::kFlitConservation), 1u);
  EXPECT_EQ(rig.net.invariants().total(), 1u);
}

TEST(SeededFault, SkewedPacketCounterIsCaughtByTheCensus) {
  Rig rig;
  rig.net.test_corrupt_injected(1);
  rig.net.audit_invariants(false);
  EXPECT_EQ(rig.net.invariants().count(InvariantKind::kPacketConservation),
            1u);
  EXPECT_EQ(rig.net.invariants().total(), 1u);
}

TEST(SeededFault, CleanRunAuditsCleanIncludingQuiescence) {
  // Positive control for all of the above: real traffic, no faults, full
  // quiescent audit — zero violations, so the seeded tests prove detection
  // rather than background noise.
  Rig rig;
  for (int i = 0; i < 8; ++i) rig.net.inject(6, 4, 512);
  rig.sim.run_until(ms(20));
  ASSERT_EQ(rig.net.packets_delivered(), 8u);
  rig.net.audit_invariants(/*quiescent=*/true);
  EXPECT_EQ(rig.net.invariants().total(), 0u);
  EXPECT_EQ(rig.sim.causality_violations(), 0u);
}

// ---------------------------------------------------------------------------
// A real find of the invariant layer, pinned as a characterization test:
// with chunked sending (chunk_flits = 8), a flow whose flit count is not a
// multiple of the chunk size ends in a shorter tail chunk, so two send
// commits can fit inside one stop-propagation window and the 56+8+8+8 = 80
// skid-budget proof no longer holds.  Packets small enough to fit entirely
// in the slack buffer stream tail-to-head at saturation and overrun the
// buffer by a few flits.  The ledger must report every overrun (the model
// is never silently wrong), the overrun must stay within two extra chunks,
// and exact flit-level simulation of the same workload must be clean.
TEST(SlackSkid, SubChunkTailsCanOverflowByABoundedMargin) {
  Topology topo = make_torus_2d(4, 4, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  auto run = [&](int chunk_flits) {
    MyrinetParams p;
    p.chunk_flits = chunk_flits;
    Simulator sim;
    Network net(sim, topo, routes, p, PathPolicy::kSingle);
    // Saturating all-to-all bursts of 64-byte packets: 68 flits with
    // header, so every flow ends in a 4-flit tail chunk at chunk 8.
    for (int rep = 0; rep < 40; ++rep) {
      for (HostId h = 0; h < topo.num_hosts(); ++h) {
        net.inject(h, (h + 9) % topo.num_hosts(), 64);
      }
    }
    sim.run_until(ms(5));
    net.audit_invariants(false);
    return std::tuple(net.flow_control_violations(),
                      net.invariants().count(InvariantKind::kBufferOverflow),
                      net.max_buffer_occupancy(),
                      net.packets_delivered());
  };

  const auto [fc8, ledger8, peak8, delivered8] = run(8);
  EXPECT_GT(fc8, 0u) << "artifact gone? tighten the skid-budget comment in "
                        "params.hpp and fold this workload into the fuzz";
  EXPECT_GE(ledger8, fc8) << "every overrun must reach the ledger";
  MyrinetParams defaults;
  EXPECT_GT(peak8, defaults.slack_buffer_flits);
  EXPECT_LE(peak8, defaults.slack_buffer_flits + 2 * defaults.chunk_flits);
  EXPECT_GT(delivered8, 0u);

  const auto [fc1, ledger1, peak1, delivered1] = run(1);
  EXPECT_EQ(fc1, 0u) << "flit-level simulation must respect the skid budget";
  EXPECT_EQ(ledger1, 0u);
  EXPECT_LE(peak1, defaults.slack_buffer_flits);
  EXPECT_GT(delivered1, 0u);
}

// The recorder itself: caps stored detail at 32 but counts everything.
TEST(InvariantRecorder, CountsPastTheStorageCap) {
  InvariantRecorder rec;
  for (int i = 0; i < 100; ++i) {
    rec.record(InvariantKind::kFlitConservation, i, i, "x");
  }
  EXPECT_EQ(rec.total(), 100u);
  EXPECT_EQ(rec.count(InvariantKind::kFlitConservation), 100u);
  EXPECT_EQ(rec.violations().size(), 32u);
  rec.clear();
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_TRUE(rec.violations().empty());
}

}  // namespace
}  // namespace itb
