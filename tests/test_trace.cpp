// Message traces: recording, text round-trip, windows, and paired replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/route_builder.hpp"
#include "harness/testbed.hpp"
#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"
#include "traffic/trace.hpp"

namespace itb {
namespace {

TEST(MessageTrace, AddEnforcesTimeOrder) {
  MessageTrace t;
  t.add({100, 0, 1, 512});
  t.add({100, 1, 0, 512});
  t.add({200, 0, 2, 512});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.duration(), 200);
  EXPECT_THROW(t.add({50, 0, 1, 512}), std::invalid_argument);
}

TEST(MessageTrace, WindowFilters) {
  MessageTrace t;
  for (TimePs at = 0; at < 1000; at += 100) {
    t.add({at, 0, 1, 64});
  }
  const MessageTrace w = t.window(200, 500);
  EXPECT_EQ(w.size(), 3u);  // 200, 300, 400
  EXPECT_EQ(w.records().front().time, 200);
  EXPECT_EQ(w.records().back().time, 400);
}

TEST(MessageTrace, TextRoundTrip) {
  MessageTrace t;
  t.add({0, 3, 7, 512});
  t.add({12345, 1, 2, 1024});
  std::ostringstream os;
  t.write(os);
  std::istringstream is(os.str());
  const MessageTrace back = MessageTrace::read(is);
  EXPECT_EQ(back, t);
}

TEST(MessageTrace, ReadRejectsGarbage) {
  std::istringstream is("12 not-a-host 3 64\n");
  EXPECT_THROW(MessageTrace::read(is), std::runtime_error);
}

TEST(MessageTrace, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/itb_trace_test.trace";
  MessageTrace t;
  t.add({5, 0, 1, 32});
  t.save(path);
  EXPECT_EQ(MessageTrace::load(path), t);
  std::remove(path.c_str());
}

TEST(GeneratorTap, CapturesEveryMessage) {
  Topology topo = make_torus_2d(4, 4, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  UniformPattern pattern(topo.num_hosts());
  TrafficConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  TrafficGenerator gen(sim, net, pattern, cfg);
  MessageTrace trace;
  gen.set_tap([&](TimePs at, HostId src, HostId dst, int bytes) {
    trace.add({at, src, dst, bytes});
  });
  gen.start();
  sim.run_until(ms(1));
  EXPECT_EQ(trace.size(), gen.messages_generated());
  EXPECT_GT(trace.size(), 50u);
}

TEST(TraceReplay, ReproducesTheRecordedRunExactly) {
  Topology topo = make_torus_2d(4, 4, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  MyrinetParams params;

  // Record a generator-driven run.
  MessageTrace trace;
  double recorded_latency = 0;
  std::uint64_t recorded_count = 0;
  {
    Simulator sim;
    Network net(sim, topo, routes, params, PathPolicy::kSingle, 11);
    MetricsCollector m(topo.num_switches());
    m.attach(net);
    UniformPattern pattern(topo.num_hosts());
    TrafficConfig cfg;
    cfg.load_flits_per_ns_per_switch = 0.03;
    cfg.seed = 77;
    TrafficGenerator gen(sim, net, pattern, cfg);
    gen.set_tap([&](TimePs at, HostId src, HostId dst, int bytes) {
      trace.add({at, src, dst, bytes});
    });
    gen.start();
    sim.run_until(us(500));
    gen.stop();
    sim.run_until(sim.now() + ms(5));
    recorded_latency = m.avg_latency_ns();
    recorded_count = m.delivered();
    ASSERT_EQ(net.packets_in_flight(), 0u);
  }

  // Replay the trace into a fresh network: identical deliveries.
  {
    Simulator sim;
    Network net(sim, topo, routes, params, PathPolicy::kSingle, 11);
    MetricsCollector m(topo.num_switches());
    m.attach(net);
    TraceReplayer replay(sim, net, trace);
    replay.start();
    sim.run_until(ms(10));
    EXPECT_EQ(net.packets_in_flight(), 0u);
    EXPECT_EQ(m.delivered(), recorded_count);
    EXPECT_EQ(replay.messages_replayed(), trace.size());
    EXPECT_DOUBLE_EQ(m.avg_latency_ns(), recorded_latency);
  }
}

TEST(TraceReplay, PairedSchemeComparison) {
  // The same trace replayed under UP/DOWN and ITB-RR: a paired experiment
  // where only routing differs.  At a moderate load both deliver all
  // messages; ITB latency must not blow up relative to UP/DOWN.
  Topology topo = make_torus_2d(4, 4, 2);
  UpDown ud(topo, 0);
  RouteSet ud_routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  RouteSet itb_routes = build_itb_routes(topo, ud);
  MyrinetParams params;

  MessageTrace trace;
  {
    Simulator sim;
    Network net(sim, topo, ud_routes, params, PathPolicy::kSingle);
    UniformPattern pattern(topo.num_hosts());
    TrafficConfig cfg;
    cfg.load_flits_per_ns_per_switch = 0.02;
    TrafficGenerator gen(sim, net, pattern, cfg);
    gen.set_tap([&](TimePs at, HostId src, HostId dst, int bytes) {
      trace.add({at, src, dst, bytes});
    });
    gen.start();
    sim.run_until(us(400));
  }

  auto replay_with = [&](const RouteSet& routes, PathPolicy policy) {
    Simulator sim;
    Network net(sim, topo, routes, params, policy);
    MetricsCollector m(topo.num_switches());
    m.attach(net);
    TraceReplayer replay(sim, net, trace);
    replay.start();
    sim.run_until(ms(20));
    EXPECT_EQ(net.packets_in_flight(), 0u);
    return m.avg_latency_ns();
  };
  const double lat_ud = replay_with(ud_routes, PathPolicy::kSingle);
  const double lat_itb = replay_with(itb_routes, PathPolicy::kRoundRobin);
  EXPECT_GT(lat_ud, 0.0);
  EXPECT_GT(lat_itb, 0.0);
  EXPECT_LT(lat_itb, 2.0 * lat_ud);
}

TEST(TraceReplay, SkipsDegenerateRecords) {
  Topology topo = make_mesh_2d(1, 2, 1);
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  MessageTrace trace;
  trace.add({0, 0, 0, 512});   // self: skipped
  trace.add({10, 0, 1, 0});    // empty payload: skipped
  trace.add({20, 0, 1, 512});  // real
  TraceReplayer replay(sim, net, trace);
  replay.start();
  sim.run_until(ms(1));
  EXPECT_EQ(replay.messages_replayed(), 1u);
  EXPECT_EQ(net.packets_delivered(), 1u);
  EXPECT_THROW(replay.start(), std::logic_error);
}

}  // namespace
}  // namespace itb
