# Empty compiler generated dependencies file for test_workspace.
# This may be replaced when dependencies are built.
