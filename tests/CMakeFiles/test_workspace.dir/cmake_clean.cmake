file(REMOVE_RECURSE
  "CMakeFiles/test_workspace.dir/test_workspace.cpp.o"
  "CMakeFiles/test_workspace.dir/test_workspace.cpp.o.d"
  "test_workspace"
  "test_workspace.pdb"
  "test_workspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
