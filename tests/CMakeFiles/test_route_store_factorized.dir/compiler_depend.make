# Empty compiler generated dependencies file for test_route_store_factorized.
# This may be replaced when dependencies are built.
