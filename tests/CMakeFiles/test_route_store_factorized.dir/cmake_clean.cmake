file(REMOVE_RECURSE
  "CMakeFiles/test_route_store_factorized.dir/test_route_store_factorized.cpp.o"
  "CMakeFiles/test_route_store_factorized.dir/test_route_store_factorized.cpp.o.d"
  "test_route_store_factorized"
  "test_route_store_factorized.pdb"
  "test_route_store_factorized[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_store_factorized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
