# Empty compiler generated dependencies file for test_route_properties.
# This may be replaced when dependencies are built.
