file(REMOVE_RECURSE
  "CMakeFiles/test_route_properties.dir/test_route_properties.cpp.o"
  "CMakeFiles/test_route_properties.dir/test_route_properties.cpp.o.d"
  "test_route_properties"
  "test_route_properties.pdb"
  "test_route_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
