file(REMOVE_RECURSE
  "CMakeFiles/test_network_itb.dir/test_network_itb.cpp.o"
  "CMakeFiles/test_network_itb.dir/test_network_itb.cpp.o.d"
  "test_network_itb"
  "test_network_itb.pdb"
  "test_network_itb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_itb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
