# Empty dependencies file for test_network_itb.
# This may be replaced when dependencies are built.
