file(REMOVE_RECURSE
  "CMakeFiles/test_sim_fuzz.dir/test_sim_fuzz.cpp.o"
  "CMakeFiles/test_sim_fuzz.dir/test_sim_fuzz.cpp.o.d"
  "test_sim_fuzz"
  "test_sim_fuzz.pdb"
  "test_sim_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
