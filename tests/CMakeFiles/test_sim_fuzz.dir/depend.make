# Empty dependencies file for test_sim_fuzz.
# This may be replaced when dependencies are built.
