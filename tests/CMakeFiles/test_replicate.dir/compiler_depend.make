# Empty compiler generated dependencies file for test_replicate.
# This may be replaced when dependencies are built.
