file(REMOVE_RECURSE
  "CMakeFiles/test_replicate.dir/test_replicate.cpp.o"
  "CMakeFiles/test_replicate.dir/test_replicate.cpp.o.d"
  "test_replicate"
  "test_replicate.pdb"
  "test_replicate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
