# Empty compiler generated dependencies file for test_route_store_diff.
# This may be replaced when dependencies are built.
