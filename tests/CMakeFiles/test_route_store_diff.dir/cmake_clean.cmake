file(REMOVE_RECURSE
  "CMakeFiles/test_route_store_diff.dir/test_route_store_diff.cpp.o"
  "CMakeFiles/test_route_store_diff.dir/test_route_store_diff.cpp.o.d"
  "test_route_store_diff"
  "test_route_store_diff.pdb"
  "test_route_store_diff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_store_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
