# Empty compiler generated dependencies file for test_result_fields.
# This may be replaced when dependencies are built.
