file(REMOVE_RECURSE
  "CMakeFiles/test_result_fields.dir/test_result_fields.cpp.o"
  "CMakeFiles/test_result_fields.dir/test_result_fields.cpp.o.d"
  "test_result_fields"
  "test_result_fields.pdb"
  "test_result_fields[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_result_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
