file(REMOVE_RECURSE
  "CMakeFiles/test_path_policy.dir/test_path_policy.cpp.o"
  "CMakeFiles/test_path_policy.dir/test_path_policy.cpp.o.d"
  "test_path_policy"
  "test_path_policy.pdb"
  "test_path_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
