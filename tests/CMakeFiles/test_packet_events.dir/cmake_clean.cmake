file(REMOVE_RECURSE
  "CMakeFiles/test_packet_events.dir/test_packet_events.cpp.o"
  "CMakeFiles/test_packet_events.dir/test_packet_events.cpp.o.d"
  "test_packet_events"
  "test_packet_events.pdb"
  "test_packet_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
