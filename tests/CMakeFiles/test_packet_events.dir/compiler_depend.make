# Empty compiler generated dependencies file for test_packet_events.
# This may be replaced when dependencies are built.
