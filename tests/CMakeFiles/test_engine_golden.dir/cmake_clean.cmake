file(REMOVE_RECURSE
  "CMakeFiles/test_engine_golden.dir/test_engine_golden.cpp.o"
  "CMakeFiles/test_engine_golden.dir/test_engine_golden.cpp.o.d"
  "test_engine_golden"
  "test_engine_golden.pdb"
  "test_engine_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
