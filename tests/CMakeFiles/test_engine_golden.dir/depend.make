# Empty dependencies file for test_engine_golden.
# This may be replaced when dependencies are built.
