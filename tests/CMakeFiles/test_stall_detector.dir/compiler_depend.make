# Empty compiler generated dependencies file for test_stall_detector.
# This may be replaced when dependencies are built.
