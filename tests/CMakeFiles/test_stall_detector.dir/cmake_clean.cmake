file(REMOVE_RECURSE
  "CMakeFiles/test_stall_detector.dir/test_stall_detector.cpp.o"
  "CMakeFiles/test_stall_detector.dir/test_stall_detector.cpp.o.d"
  "test_stall_detector"
  "test_stall_detector.pdb"
  "test_stall_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stall_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
