# Empty dependencies file for test_obs_samplers.
# This may be replaced when dependencies are built.
