file(REMOVE_RECURSE
  "CMakeFiles/test_obs_samplers.dir/test_obs_samplers.cpp.o"
  "CMakeFiles/test_obs_samplers.dir/test_obs_samplers.cpp.o.d"
  "test_obs_samplers"
  "test_obs_samplers.pdb"
  "test_obs_samplers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs_samplers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
