file(REMOVE_RECURSE
  "CMakeFiles/test_obs_parallel.dir/test_obs_parallel.cpp.o"
  "CMakeFiles/test_obs_parallel.dir/test_obs_parallel.cpp.o.d"
  "test_obs_parallel"
  "test_obs_parallel.pdb"
  "test_obs_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
