# Empty dependencies file for test_obs_parallel.
# This may be replaced when dependencies are built.
