
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_network_edge.cpp" "tests/CMakeFiles/test_network_edge.dir/test_network_edge.cpp.o" "gcc" "tests/CMakeFiles/test_network_edge.dir/test_network_edge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/harness/CMakeFiles/itb_harness.dir/DependInfo.cmake"
  "/root/repo/src/mapper/CMakeFiles/itb_mapper.dir/DependInfo.cmake"
  "/root/repo/src/analysis/CMakeFiles/itb_analysis.dir/DependInfo.cmake"
  "/root/repo/src/metrics/CMakeFiles/itb_metrics.dir/DependInfo.cmake"
  "/root/repo/src/traffic/CMakeFiles/itb_traffic.dir/DependInfo.cmake"
  "/root/repo/src/check/CMakeFiles/itb_check.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/itb_net.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/itb_core.dir/DependInfo.cmake"
  "/root/repo/src/route/CMakeFiles/itb_route.dir/DependInfo.cmake"
  "/root/repo/src/topo/CMakeFiles/itb_topo.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/itb_sim.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/itb_workspace.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/itb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
