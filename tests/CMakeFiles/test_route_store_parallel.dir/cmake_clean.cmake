file(REMOVE_RECURSE
  "CMakeFiles/test_route_store_parallel.dir/test_route_store_parallel.cpp.o"
  "CMakeFiles/test_route_store_parallel.dir/test_route_store_parallel.cpp.o.d"
  "test_route_store_parallel"
  "test_route_store_parallel.pdb"
  "test_route_store_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_store_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
