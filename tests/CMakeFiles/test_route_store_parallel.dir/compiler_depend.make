# Empty compiler generated dependencies file for test_route_store_parallel.
# This may be replaced when dependencies are built.
