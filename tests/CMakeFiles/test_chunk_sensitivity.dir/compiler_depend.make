# Empty compiler generated dependencies file for test_chunk_sensitivity.
# This may be replaced when dependencies are built.
