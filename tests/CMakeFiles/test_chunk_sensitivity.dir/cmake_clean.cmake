file(REMOVE_RECURSE
  "CMakeFiles/test_chunk_sensitivity.dir/test_chunk_sensitivity.cpp.o"
  "CMakeFiles/test_chunk_sensitivity.dir/test_chunk_sensitivity.cpp.o.d"
  "test_chunk_sensitivity"
  "test_chunk_sensitivity.pdb"
  "test_chunk_sensitivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
