file(REMOVE_RECURSE
  "CMakeFiles/test_route_io.dir/test_route_io.cpp.o"
  "CMakeFiles/test_route_io.dir/test_route_io.cpp.o.d"
  "test_route_io"
  "test_route_io.pdb"
  "test_route_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
