file(REMOVE_RECURSE
  "CMakeFiles/test_checked_grid.dir/test_checked_grid.cpp.o"
  "CMakeFiles/test_checked_grid.dir/test_checked_grid.cpp.o.d"
  "test_checked_grid"
  "test_checked_grid.pdb"
  "test_checked_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checked_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
