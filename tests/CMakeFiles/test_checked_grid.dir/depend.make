# Empty dependencies file for test_checked_grid.
# This may be replaced when dependencies are built.
