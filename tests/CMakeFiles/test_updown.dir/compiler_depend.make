# Empty compiler generated dependencies file for test_updown.
# This may be replaced when dependencies are built.
