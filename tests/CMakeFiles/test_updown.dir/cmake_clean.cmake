file(REMOVE_RECURSE
  "CMakeFiles/test_updown.dir/test_updown.cpp.o"
  "CMakeFiles/test_updown.dir/test_updown.cpp.o.d"
  "test_updown"
  "test_updown.pdb"
  "test_updown[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_updown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
