file(REMOVE_RECURSE
  "CMakeFiles/test_topo_io.dir/test_topo_io.cpp.o"
  "CMakeFiles/test_topo_io.dir/test_topo_io.cpp.o.d"
  "test_topo_io"
  "test_topo_io.pdb"
  "test_topo_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
