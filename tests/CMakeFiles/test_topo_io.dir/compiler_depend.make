# Empty compiler generated dependencies file for test_topo_io.
# This may be replaced when dependencies are built.
