# Empty dependencies file for test_kary.
# This may be replaced when dependencies are built.
