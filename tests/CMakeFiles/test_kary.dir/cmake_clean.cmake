file(REMOVE_RECURSE
  "CMakeFiles/test_kary.dir/test_kary.cpp.o"
  "CMakeFiles/test_kary.dir/test_kary.cpp.o.d"
  "test_kary"
  "test_kary.pdb"
  "test_kary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
