# Empty compiler generated dependencies file for test_json_stats.
# This may be replaced when dependencies are built.
