file(REMOVE_RECURSE
  "CMakeFiles/test_json_stats.dir/test_json_stats.cpp.o"
  "CMakeFiles/test_json_stats.dir/test_json_stats.cpp.o.d"
  "test_json_stats"
  "test_json_stats.pdb"
  "test_json_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
