# Empty dependencies file for test_parallel_engine.
# This may be replaced when dependencies are built.
