file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_engine.dir/test_parallel_engine.cpp.o"
  "CMakeFiles/test_parallel_engine.dir/test_parallel_engine.cpp.o.d"
  "test_parallel_engine"
  "test_parallel_engine.pdb"
  "test_parallel_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
