# Empty dependencies file for test_updown_more.
# This may be replaced when dependencies are built.
