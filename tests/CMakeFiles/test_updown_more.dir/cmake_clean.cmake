file(REMOVE_RECURSE
  "CMakeFiles/test_updown_more.dir/test_updown_more.cpp.o"
  "CMakeFiles/test_updown_more.dir/test_updown_more.cpp.o.d"
  "test_updown_more"
  "test_updown_more.pdb"
  "test_updown_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_updown_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
