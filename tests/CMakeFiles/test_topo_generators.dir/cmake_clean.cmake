file(REMOVE_RECURSE
  "CMakeFiles/test_topo_generators.dir/test_topo_generators.cpp.o"
  "CMakeFiles/test_topo_generators.dir/test_topo_generators.cpp.o.d"
  "test_topo_generators"
  "test_topo_generators.pdb"
  "test_topo_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
