# Empty dependencies file for test_topo_generators.
# This may be replaced when dependencies are built.
