// Unit tests for the discrete-event kernel: event queue ordering, simulator
// clock semantics, RNG determinism and distribution sanity, statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace itb {
namespace {

TEST(Time, ConversionsAreExact) {
  EXPECT_EQ(ns(std::int64_t{150}), 150000);
  EXPECT_EQ(ns(6.25), 6250);
  EXPECT_EQ(ns(4.92), 4920);
  EXPECT_EQ(us(std::int64_t{1}), 1000000);
  EXPECT_EQ(ms(std::int64_t{1}), 1000000000);
  EXPECT_DOUBLE_EQ(to_ns(6250), 6.25);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    q.push(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  Rng rng(7);
  std::vector<TimePs> popped;
  TimePs now = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      q.push(now + static_cast<TimePs>(rng.next_below(1000)), [] {});
    }
    for (int i = 0; i < 10 && !q.empty(); ++i) {
      auto [t, fn] = q.pop();
      EXPECT_GE(t, now);
      now = t;
      popped.push_back(t);
    }
  }
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    EXPECT_GE(t, now);
    now = t;
    popped.push_back(t);
  }
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  EXPECT_EQ(popped.size(), 50u * 20u);
}

TEST(EventQueue, NextTimeReportsHead) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeNever);
  q.push(99, [] {});
  EXPECT_EQ(q.next_time(), 99);
}

// --- CalendarQueue boundary behaviour -------------------------------------
// The parallel engine leans on pop_if_at_most at its window deadlines, so
// the edges matter: a deadline exactly on a bucket boundary, and events
// sitting exactly at the near-ring horizon (the near/far split).

TEST(CalendarQueue, PopIfAtMostIsInclusiveAtBucketEdge) {
  CalendarQueue q;
  const TimePs width = TimePs{1} << CalendarQueue::kWidthBits;
  // Last picosecond of bucket 0 and first of bucket 1.
  q.push(width - 1, EventKind::kCallback, 0, 0, nullptr);
  q.push(width, EventKind::kCallback, 1, 0, nullptr);

  Event e;
  // A deadline one below the first event leaves the queue untouched.
  EXPECT_FALSE(q.pop_if_at_most(width - 2, e));
  EXPECT_EQ(q.size(), 2u);
  // A deadline exactly on the event's time pops it (inclusive contract,
  // same as Simulator::run_until), but not its bucket-1 neighbour.
  ASSERT_TRUE(q.pop_if_at_most(width - 1, e));
  EXPECT_EQ(e.at, width - 1);
  EXPECT_FALSE(q.pop_if_at_most(width - 1, e));
  ASSERT_TRUE(q.pop_if_at_most(width, e));
  EXPECT_EQ(e.at, width);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PopIfAtMostAtTheNearFarHorizon) {
  CalendarQueue q;
  // kHorizonPs falls outside the near ring when base_ is at zero, so this
  // event lands in the far heap; its neighbour one ps earlier lands in the
  // ring's last bucket.
  q.push(CalendarQueue::kHorizonPs, EventKind::kCallback, 7, 0, nullptr);
  q.push(CalendarQueue::kHorizonPs - 1, EventKind::kCallback, 8, 0, nullptr);

  Event e;
  ASSERT_TRUE(q.pop_if_at_most(CalendarQueue::kHorizonPs - 1, e));
  EXPECT_EQ(e.at, CalendarQueue::kHorizonPs - 1);
  EXPECT_EQ(e.ch, 8);
  // The far event must not pop below its time...
  EXPECT_FALSE(q.pop_if_at_most(CalendarQueue::kHorizonPs - 1, e));
  // ...and must pop at exactly its time, straight from the heap (far
  // events are never migrated into the ring).
  ASSERT_TRUE(q.pop_if_at_most(CalendarQueue::kHorizonPs, e));
  EXPECT_EQ(e.ch, 7);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, EqualTimesAcrossTheHorizonPopInPushOrder) {
  CalendarQueue q;
  const TimePs horizon = CalendarQueue::kHorizonPs;
  // First push at the horizon goes far (base_ = 0).  Popping the filler
  // advances base_ to the ring's last bucket, so the SECOND push at the
  // very same time lands in the near ring.  The (time, seq) contract must
  // still pop them in push order across the two stores.
  q.push(horizon, EventKind::kCallback, 1, 0, nullptr);    // far, seq 0
  q.push(horizon - 1, EventKind::kCallback, 0, 0, nullptr);  // near filler
  Event e;
  ASSERT_TRUE(q.pop_if_at_most(horizon - 1, e));
  q.push(horizon, EventKind::kCallback, 2, 0, nullptr);    // near, seq 2
  ASSERT_TRUE(q.pop_if_at_most(horizon, e));
  EXPECT_EQ(e.ch, 1);  // the far event pushed first wins the tie
  ASSERT_TRUE(q.pop_if_at_most(horizon, e));
  EXPECT_EQ(e.ch, 2);
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, ClockFollowsEvents) {
  Simulator sim;
  TimePs seen = -1;
  sim.schedule_in(100, [&] { seen = sim.now(); });
  sim.run_until();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(200, [&] { ++fired; });
  sim.schedule_at(201, [&] { ++fired; });
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);
  sim.run_until(300);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, DeadlineAdvancesClockWhenQueueIdle) {
  Simulator sim;
  sim.run_until(5000);
  EXPECT_EQ(sim.now(), 5000);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_in(10, chain);
  };
  sim.schedule_in(10, chain);
  sim.run_until();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunWhilePredicateStops) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 100; ++i) sim.schedule_in(i, [&] { ++count; });
  sim.run_while([&] { return count < 7; });
  EXPECT_EQ(count, 7);
}

TEST(Simulator, RequestStopHaltsLoop) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 100; ++i) {
    sim.schedule_in(i, [&] {
      if (++count == 5) sim.request_stop();
    });
  }
  sim.run_until();
  EXPECT_EQ(count, 5);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(42);
  std::vector<int> buckets(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++buckets[static_cast<std::size_t>(v)];
  }
  for (const int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(250.0);
  EXPECT_NEAR(sum / kDraws, 250.0, 5.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork(1);
  Rng a2(5);
  Rng child2 = a2.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // Different salts diverge.
  Rng b(5);
  Rng other = b.fork(2);
  int same = 0;
  Rng c(5);
  Rng base = c.fork(1);
  for (int i = 0; i < 100; ++i) {
    if (base.next_u64() == other.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RunningStats, MeanVarMinMax) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 100.0;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, QuantilesBracketData) {
  Histogram h(10.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100) * 10.0);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.quantile(0.5), 500.0, 20.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 20.0);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OverflowCounted) {
  Histogram h(1.0, 10);
  h.add(5.0);
  h.add(100.0);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 2u);
}

}  // namespace
}  // namespace itb
