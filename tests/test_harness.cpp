// Experiment harness: testbed caching, run_point, sweeps, saturation
// search, and report formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

RunConfig fast_cfg(double load) {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = load;
  cfg.warmup = us(50);
  cfg.measure = us(150);
  return cfg;
}

TEST(Testbed, SchemeNamesAndPolicies) {
  EXPECT_STREQ(to_string(RoutingScheme::kUpDown), "UP/DOWN");
  EXPECT_STREQ(to_string(RoutingScheme::kItbSp), "ITB-SP");
  EXPECT_STREQ(to_string(RoutingScheme::kItbRr), "ITB-RR");
  EXPECT_EQ(policy_of(RoutingScheme::kUpDown), PathPolicy::kSingle);
  EXPECT_EQ(policy_of(RoutingScheme::kItbSp), PathPolicy::kSingle);
  EXPECT_EQ(policy_of(RoutingScheme::kItbRr), PathPolicy::kRoundRobin);
  EXPECT_EQ(policy_of(RoutingScheme::kItbRnd), PathPolicy::kRandom);
  EXPECT_EQ(policy_of(RoutingScheme::kItbAdapt), PathPolicy::kAdaptive);
}

TEST(Testbed, CachesRouteSets) {
  Testbed tb(make_torus_2d(4, 4, 2));
  const RouteSet& a = tb.routes(RoutingScheme::kItbSp);
  const RouteSet& b = tb.routes(RoutingScheme::kItbRr);
  EXPECT_EQ(&a, &b) << "all ITB schemes share one table";
  const RouteSet& u1 = tb.routes(RoutingScheme::kUpDown);
  const RouteSet& u2 = tb.routes(RoutingScheme::kUpDown);
  EXPECT_EQ(&u1, &u2);
  EXPECT_NE(&a, &u1);
}

TEST(RunPoint, LowLoadDeliversOfferedTraffic) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const RunResult r =
      run_point(tb, RoutingScheme::kUpDown, pat, fast_cfg(0.005));
  EXPECT_FALSE(r.saturated);
  EXPECT_NEAR(r.accepted, r.offered, 0.15 * r.offered);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.avg_latency_ns, 3000.0);
  EXPECT_LT(r.avg_latency_ns, 10000.0);
  EXPECT_EQ(r.fc_violations, 0u);
  EXPECT_LE(r.max_buffer_occupancy, 80);
}

TEST(RunPoint, OverloadIsDetectedAsSaturated) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const RunResult r =
      run_point(tb, RoutingScheme::kUpDown, pat, fast_cfg(0.2));
  EXPECT_TRUE(r.saturated);
  EXPECT_LT(r.accepted, r.offered * 0.95);
}

TEST(RunPoint, CollectsLinkUtilOnRequest) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg = fast_cfg(0.01);
  cfg.collect_link_util = true;
  const RunResult r = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  EXPECT_FALSE(r.link_util.empty());
}

TEST(RunPoint, DeterministicPerSeed) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const RunResult a = run_point(tb, RoutingScheme::kItbRr, pat, fast_cfg(0.01));
  const RunResult b = run_point(tb, RoutingScheme::kItbRr, pat, fast_cfg(0.01));
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
  RunConfig other = fast_cfg(0.01);
  other.seed = 777;
  const RunResult c = run_point(tb, RoutingScheme::kItbRr, pat, other);
  EXPECT_NE(a.delivered, c.delivered);
}

TEST(Sweep, StopsAfterFirstSaturatedPoint) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const auto series = sweep_loads(tb, RoutingScheme::kUpDown, pat,
                                  fast_cfg(0), {0.005, 0.01, 0.3, 0.4});
  ASSERT_GE(series.size(), 3u);
  EXPECT_LE(series.size(), 4u);
  EXPECT_TRUE(series[2].result.saturated);
  if (series.size() == 3u) SUCCEED();
}

TEST(Sweep, LoadLadders) {
  const auto g = geometric_loads(0.01, 0.08, 4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_DOUBLE_EQ(g[0], 0.01);
  EXPECT_NEAR(g[3], 0.08, 1e-12);
  EXPECT_NEAR(g[1] / g[0], 2.0, 1e-9);
  const auto l = linear_loads(0.01, 0.04, 4);
  ASSERT_EQ(l.size(), 4u);
  EXPECT_DOUBLE_EQ(l[1], 0.02);
  EXPECT_EQ(geometric_loads(0.5, 1.0, 1).size(), 1u);
}

TEST(Saturation, FindsPlateauOnSmallTorus) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg = fast_cfg(0);
  const auto sat =
      find_saturation(tb, RoutingScheme::kUpDown, pat, cfg, 0.01, 1.4, 12);
  EXPECT_GT(sat.throughput, 0.01);
  EXPECT_LT(sat.throughput, 0.2);
  EXPECT_GE(sat.trace.size(), 2u);
  EXPECT_TRUE(sat.trace[sat.trace.size() - 2].result.saturated ||
              sat.trace.back().result.saturated);
}

TEST(Saturation, ItbBeatsUpdownOnSmallTorus) {
  // Scaled-down version of the paper's headline (full scale runs in the
  // bench binaries): on a 4x4 torus with uniform traffic the ITB-RR
  // saturation throughput must clearly exceed UP/DOWN's.
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg = fast_cfg(0);
  cfg.warmup = us(100);
  cfg.measure = us(250);
  const auto ud =
      find_saturation(tb, RoutingScheme::kUpDown, pat, cfg, 0.01, 1.3, 14);
  const auto rr =
      find_saturation(tb, RoutingScheme::kItbRr, pat, cfg, 0.01, 1.3, 14);
  EXPECT_GT(rr.throughput, 1.2 * ud.throughput);
}

TEST(Report, TextTableAlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Header and rows have identical line lengths (fixed-width columns).
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);
  const auto header_len = line.size();
  while (std::getline(is, line)) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), header_len);
    }
  }
}

TEST(Report, SeriesPrinting) {
  SweepPoint pt;
  pt.load = 0.01;
  pt.result.offered = 0.01;
  pt.result.accepted = 0.0099;
  pt.result.avg_latency_ns = 5000.0;
  std::ostringstream os;
  print_series(os, "test", "UP/DOWN", {pt});
  EXPECT_NE(os.str().find("UP/DOWN"), std::string::npos);
  EXPECT_NE(os.str().find("0.0099"), std::string::npos);
}

TEST(Report, CsvAppendRoundTrip) {
  const std::string path = ::testing::TempDir() + "/itb_report_test.csv";
  std::remove(path.c_str());
  SweepPoint pt;
  pt.load = 0.01;
  pt.result.offered = 0.01;
  pt.result.accepted = 0.009;
  append_series_csv(path, "fig7a", "ITB-RR", {pt});
  append_series_csv(path, "fig7a", "UP/DOWN", {pt});
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  // One header, two data lines.
  EXPECT_EQ(std::count(all.begin(), all.end(), '\n'), 3);
  EXPECT_NE(all.find("experiment,scheme"), std::string::npos);
  EXPECT_NE(all.find("fig7a,ITB-RR"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt_load(0.01234), "0.0123");
  EXPECT_EQ(fmt_ns(1234.56), "1234.6");
  EXPECT_EQ(fmt_ratio(2.129), "2.13");
  EXPECT_EQ(fmt_pct(0.123), "12.3%");
}

TEST(Report, ParseBenchArgs) {
  const char* argv1[] = {"bench", "--fast"};
  auto o1 = parse_bench_args(2, const_cast<char**>(argv1));
  EXPECT_TRUE(o1.fast);
  const char* argv2[] = {"bench", "--csv", "/tmp/x.csv"};
  auto o2 = parse_bench_args(3, const_cast<char**>(argv2));
  EXPECT_EQ(o2.csv, "/tmp/x.csv");
  const char* argv3[] = {"bench"};
  auto o3 = parse_bench_args(1, const_cast<char**>(argv3));
  EXPECT_EQ(o3.csv, "");
}

}  // namespace
}  // namespace itb
