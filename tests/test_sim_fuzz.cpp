// Randomised differential tests of the event kernel against reference
// implementations.
#include <gtest/gtest.h>

#include <memory>
#include <queue>
#include <string>
#include <tuple>
#include <vector>

#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

// Reference: stable-ordered priority queue via (time, seq) pairs.
struct RefQueue {
  using Entry = std::pair<TimePs, std::uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> q;
  std::uint64_t seq = 0;
  void push(TimePs t) { q.emplace(t, seq++); }
  Entry pop() {
    Entry e = q.top();
    q.pop();
    return e;
  }
};

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceOrder) {
  Rng rng(GetParam());
  EventQueue q;
  RefQueue ref;
  std::vector<std::uint64_t> popped_seq;
  std::uint64_t push_seq = 0;
  TimePs now = 0;

  for (int op = 0; op < 20000; ++op) {
    const bool do_push = q.empty() || rng.next_bool(0.55);
    if (do_push) {
      const TimePs t = now + static_cast<TimePs>(rng.next_below(500));
      const std::uint64_t id = push_seq++;
      q.push(t, [&popped_seq, id] { popped_seq.push_back(id); });
      ref.push(t);
    } else {
      auto [t, fn] = q.pop();
      EXPECT_GE(t, now);
      now = t;
      fn();
      const auto [rt, rseq] = ref.pop();
      ASSERT_EQ(t, rt);
      ASSERT_EQ(popped_seq.back(), rseq);
    }
  }
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn();
    const auto [rt, rseq] = ref.pop();
    ASSERT_EQ(t, rt);
    ASSERT_EQ(popped_seq.back(), rseq);
  }
  EXPECT_TRUE(ref.q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Range<std::uint64_t>(400, 408));

class CalendarQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Differential fuzz of the POD calendar queue against the reference order,
// deliberately covering the contract's hard cases: bursts of events sharing
// one timestamp (must pop FIFO in push order), pushes beyond the near-window
// horizon (land in the far heap, never migrated), and pushes that fall into
// the already-scanned base bucket (clamped, but ordered by true time).
TEST_P(CalendarQueueFuzz, MatchesReferenceOrder) {
  Rng rng(GetParam());
  CalendarQueue q;
  RefQueue ref;
  TimePs now = 0;

  auto push = [&](TimePs t) {
    q.push(t, EventKind::kCallback, /*ch=*/0, /*a=*/0, /*p=*/nullptr);
    ref.push(t);
  };
  for (int op = 0; op < 20000; ++op) {
    const bool do_push = q.empty() || rng.next_bool(0.55);
    if (do_push) {
      const std::uint64_t shape = rng.next_below(10);
      if (shape < 6) {  // near future, within a few buckets
        push(now + static_cast<TimePs>(rng.next_below(5000)));
      } else if (shape < 8) {  // equal-timestamp burst
        const TimePs t = now + static_cast<TimePs>(rng.next_below(3000));
        const std::uint64_t n = 1 + rng.next_below(6);
        for (std::uint64_t i = 0; i < n; ++i) push(t);
      } else if (shape == 8) {  // same instant as the clock (base bucket)
        push(now);
      } else {  // beyond the horizon: far heap
        push(now + CalendarQueue::kHorizonPs +
             static_cast<TimePs>(rng.next_below(1u << 20)));
      }
    } else {
      const Event e = q.pop();
      EXPECT_GE(e.at, now);
      now = e.at;
      const auto [rt, rseq] = ref.pop();
      ASSERT_EQ(e.at, rt);
      ASSERT_EQ(e.seq, rseq);
    }
  }
  while (!q.empty()) {
    const Event e = q.pop();
    const auto [rt, rseq] = ref.pop();
    ASSERT_EQ(e.at, rt);
    ASSERT_EQ(e.seq, rseq);
  }
  EXPECT_TRUE(ref.q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarQueueFuzz,
                         ::testing::Range<std::uint64_t>(500, 510));

TEST(CalendarQueue, EqualTimestampBurstPopsInPushOrder) {
  CalendarQueue q;
  for (std::int32_t i = 0; i < 1000; ++i) {
    q.push(ns(std::int64_t{100}), EventKind::kCallback, i, 0, nullptr);
  }
  for (std::int32_t i = 0; i < 1000; ++i) {
    const Event e = q.pop();
    ASSERT_EQ(e.ch, i) << "simultaneous events must pop FIFO";
    ASSERT_EQ(e.seq, static_cast<std::uint64_t>(i));
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, TracksPeakSize) {
  CalendarQueue q;
  for (int i = 0; i < 64; ++i) {
    q.push(static_cast<TimePs>(i), EventKind::kCallback, 0, 0, nullptr);
  }
  for (int i = 0; i < 40; ++i) q.pop();
  q.push(1000, EventKind::kCallback, 0, 0, nullptr);
  EXPECT_EQ(q.size(), 25u);
  EXPECT_EQ(q.peak_size(), 64u);
}

// ---------------------------------------------------------------------------
// Checked-mode traffic fuzz: 300 randomized short simulations — scheme,
// pattern, load, payload size, arrival process and RNG seed all drawn from
// the seed — each with full deep checking on (route verification, deadlock
// watchdog, end-of-window conservation audit, causality ledger).  One
// violation anywhere fails with the recorded detail.  This is the sweep
// that turns the invariant layer into a property-based test of the whole
// engine: whatever state the randomized workload reaches, flits, credits,
// buffers and packets stay conserved.

class CheckedTrafficFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // One shared testbed: routing tables are verified once (clean tables are
  // memoised by the harness) and reused by all 300 instances.
  static const Testbed& testbed() {
    static const Testbed tb(make_torus_2d(4, 4, 2));
    return tb;
  }
};

TEST_P(CheckedTrafficFuzz, RandomWorkloadRunsViolationFree) {
  const std::uint64_t seed = GetParam();
  const Testbed& tb = testbed();
  Rng pick(seed * 0x9e3779b97f4a7c15ull + 1);

  const RoutingScheme schemes[] = {RoutingScheme::kUpDown,
                                   RoutingScheme::kItbSp,
                                   RoutingScheme::kItbRr};
  const RoutingScheme scheme = schemes[pick.next_below(3)];

  const int hosts = tb.topo().num_hosts();
  std::unique_ptr<DestinationPattern> pattern;
  switch (pick.next_below(3)) {
    case 0:
      pattern = std::make_unique<UniformPattern>(hosts);
      break;
    case 1:
      pattern = std::make_unique<BitReversalPattern>(hosts);
      break;
    default:
      pattern = std::make_unique<LocalPattern>(tb.topo(), 3);
      break;
  }

  RunConfig cfg;
  cfg.checked = true;
  cfg.seed = seed;
  // Loads from deep linear region to past saturation.
  const double loads[] = {0.002, 0.01, 0.03, 0.08, 0.2};
  cfg.load_flits_per_ns_per_switch = loads[pick.next_below(5)];
  // Payloads stay at or above 128 bytes: packets that fit entirely in the
  // 80-flit slack buffer hit the known sub-chunk-tail skid overrun, which
  // is characterized separately (SlackSkid in test_invariants.cpp).
  const int payloads[] = {128, 256, 512, 1024, 4096};
  cfg.payload_bytes = payloads[pick.next_below(5)];
  cfg.poisson = pick.next_bool(0.5);
  cfg.warmup = us(5);
  cfg.measure = us(15 + pick.next_below(15));

  const RunResult r = run_point(tb, scheme, *pattern, cfg);
  EXPECT_TRUE(r.checked);
  EXPECT_EQ(r.fc_violations, 0u);
  EXPECT_EQ(r.invariant_violations, 0u)
      << to_string(scheme) << "/" << pattern->name() << "/load="
      << cfg.load_flits_per_ns_per_switch << "/payload=" << cfg.payload_bytes
      << (cfg.poisson ? "/poisson" : "/cbr") << ": first violation: "
      << (r.violations.empty() ? std::string("<none stored>")
                               : r.violations.front().detail);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckedTrafficFuzz,
                         ::testing::Range<std::uint64_t>(1000, 1300));

TEST(SimulatorFuzz, NestedSchedulingKeepsCausality) {
  // Events schedule further events at random offsets; time must never go
  // backwards and every scheduled event must fire exactly once.
  Simulator sim;
  Rng rng(99);
  int fired = 0;
  int scheduled = 1;
  TimePs last = -1;
  std::function<void(int)> spawn = [&](int depth) {
    EXPECT_GE(sim.now(), last);
    last = sim.now();
    ++fired;
    if (depth >= 6) return;
    const int kids = static_cast<int>(rng.next_below(3));
    for (int i = 0; i < kids; ++i) {
      ++scheduled;
      sim.schedule_in(static_cast<TimePs>(rng.next_below(1000)),
                      [&spawn, depth] { spawn(depth + 1); });
    }
  };
  sim.schedule_in(0, [&spawn] { spawn(0); });
  sim.run_until();
  EXPECT_EQ(fired, scheduled);
}

TEST(SimulatorFuzz, RunUntilChunksEquivalentToOneShot) {
  // Driving the same workload in many small run_until slices must produce
  // the same event count and final clock as a single call.
  auto build = [](Simulator& sim, int* counter) {
    for (int i = 0; i < 500; ++i) {
      sim.schedule_at(i * 997, [counter] { ++*counter; });
    }
  };
  Simulator a;
  int ca = 0;
  build(a, &ca);
  a.run_until(ms(1));

  Simulator b;
  int cb = 0;
  build(b, &cb);
  for (TimePs t = 10000; t <= ms(1); t += 10000) b.run_until(t);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.events_executed(), b.events_executed());
}

}  // namespace
}  // namespace itb
