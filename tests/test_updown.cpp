// up*/down* routing: orientation, legality, shortest-legal-path search.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>

#include "route/minimal_paths.hpp"
#include "route/updown.hpp"
#include "sim/rng.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

// A network with the paper's Figure 1 property: some pair has *no* legal
// minimal path (its only minimal route takes a "down" cable and then an
// "up" cable).  Switches 3 and 4 sit at level 2 under different level-1
// parents; the 3-4 cable is oriented with up end 3, so the unique minimal
// path 4 -> 3 -> 1 (up, up) is fine but 3 -> 4 -> 2 is down-then-up.
Topology figure1_like() {
  Topology t(5, 8, "fig1");
  t.connect_auto(0, 1);  // level 1
  t.connect_auto(0, 2);  // level 1
  t.connect_auto(1, 3);  // level 2
  t.connect_auto(2, 4);  // level 2
  t.connect_auto(3, 4);  // cross cable between the level-2 switches
  for (SwitchId s = 0; s < 5; ++s) t.attach_hosts(s, 1);
  return t;
}

TEST(UpDown, LevelsFromRoot) {
  const Topology t = make_torus_2d(4, 4, 1);
  const UpDown ud(t, 0);
  EXPECT_EQ(ud.root(), 0);
  EXPECT_EQ(ud.level(0), 0);
  EXPECT_EQ(ud.level(1), 1);
  EXPECT_EQ(ud.level(5), 2);
  EXPECT_EQ(ud.level(10), 4);
}

TEST(UpDown, RequiresConnected) {
  Topology t(3, 4);
  t.connect_auto(0, 1);
  EXPECT_THROW(UpDown(t, 0), std::invalid_argument);
}

TEST(UpDown, OrientationRules) {
  const Topology t = figure1_like();
  const UpDown ud(t, 0);
  for (CableId c = 0; c < t.num_cables(); ++c) {
    const Cable& cb = t.cable(c);
    if (cb.to_host()) continue;
    const SwitchId up = ud.up_end(c);
    const SwitchId other = (cb.a.sw == up) ? cb.b.sw : cb.a.sw;
    if (ud.level(up) != ud.level(other)) {
      EXPECT_LT(ud.level(up), ud.level(other));
    } else {
      EXPECT_LT(up, other);  // tie -> lower id is the up end
    }
    EXPECT_TRUE(ud.is_up(c, other));
    EXPECT_FALSE(ud.is_up(c, up));
  }
}

TEST(UpDown, UpGraphIsAcyclic) {
  // Following "up" directions must never cycle: topological property that
  // guarantees deadlock freedom.  Check by DFS over several topologies.
  Rng rng(5);
  std::vector<Topology> topos;
  topos.push_back(make_torus_2d(4, 4, 1));
  topos.push_back(make_torus_2d_express(5, 5, 1));
  topos.push_back(make_cplant());
  topos.push_back(make_irregular(12, 2, 5, rng));
  for (const Topology& t : topos) {
    const UpDown ud(t, 0);
    // Kahn's algorithm on the directed "up" graph.
    std::vector<int> outdeg(static_cast<std::size_t>(t.num_switches()), 0);
    // Edge: down_end -> up_end.
    std::vector<std::vector<SwitchId>> rev(
        static_cast<std::size_t>(t.num_switches()));
    int edges = 0;
    for (CableId c = 0; c < t.num_cables(); ++c) {
      if (t.cable(c).to_host()) continue;
      const SwitchId up = ud.up_end(c);
      const Cable& cb = t.cable(c);
      const SwitchId down = (cb.a.sw == up) ? cb.b.sw : cb.a.sw;
      ++outdeg[static_cast<std::size_t>(down)];
      rev[static_cast<std::size_t>(up)].push_back(down);
      ++edges;
    }
    std::deque<SwitchId> q;
    for (SwitchId s = 0; s < t.num_switches(); ++s) {
      if (outdeg[static_cast<std::size_t>(s)] == 0) q.push_back(s);
    }
    int removed = 0;
    int removed_edges = 0;
    while (!q.empty()) {
      const SwitchId u = q.front();
      q.pop_front();
      ++removed;
      for (const SwitchId v : rev[static_cast<std::size_t>(u)]) {
        ++removed_edges;
        if (--outdeg[static_cast<std::size_t>(v)] == 0) q.push_back(v);
      }
    }
    EXPECT_EQ(removed, t.num_switches()) << t.name() << ": up-graph cyclic";
    EXPECT_EQ(removed_edges, edges);
  }
}

TEST(UpDown, LegalChecker) {
  const Topology t = figure1_like();
  const UpDown ud(t, 0);
  // Pure up path 4 -> 2 -> 0 and pure down 0 -> 2 -> 4 are legal.
  for (const auto& p : ud.shortest_legal_paths(4, 0, 10)) {
    EXPECT_TRUE(ud.legal(p));
  }
  for (const auto& p : ud.shortest_legal_paths(0, 4, 10)) {
    EXPECT_TRUE(ud.legal(p));
  }
  // Hand-built down->up walk 3 -> 4 -> 2 must be rejected.
  const CableId c34 = t.peer(3, t.switch_ports_of(3)[1]).cable;
  const CableId c24 = t.peer(2, t.switch_ports_of(2)[1]).cable;
  SwitchPath bad;
  bad.sw = {3, 4, 2};
  bad.cable = {c34, c24};
  ASSERT_TRUE(path_is_consistent(t, bad));
  EXPECT_FALSE(ud.legal(bad));
}

TEST(UpDown, Figure1HasNoLegalMinimalPath) {
  const Topology t = figure1_like();
  const UpDown ud(t, 0);
  // True minimal 3 -> 2 goes through 4 (2 hops), but 3->4 is down (up end
  // of the 3-4 cable is switch 3) and 4->2 is up: illegal.
  const auto dist = t.switch_distances_from(2);
  EXPECT_EQ(dist[3], 2);
  // Legal distance must be longer (back up through the root).
  EXPECT_EQ(ud.legal_distance(3, 2), 3);
  // And every minimal path must be up*/down*-illegal.
  const auto paths = enumerate_minimal_paths(t, 3, 2, 10);
  ASSERT_EQ(paths.size(), 1u);
  for (const auto& p : paths) EXPECT_FALSE(ud.legal(p));
}

TEST(UpDown, ShortestLegalPathsAreLegalMinimalAndConsistent) {
  const Topology t = make_torus_2d(4, 4, 1);
  const UpDown ud(t, 0);
  for (SwitchId s = 0; s < t.num_switches(); ++s) {
    for (SwitchId d = 0; d < t.num_switches(); ++d) {
      const auto paths = ud.shortest_legal_paths(s, d, 8);
      ASSERT_FALSE(paths.empty());
      const int want = ud.legal_distance(s, d);
      std::set<std::vector<CableId>> seen;
      for (const auto& p : paths) {
        EXPECT_TRUE(path_is_consistent(t, p));
        EXPECT_TRUE(ud.legal(p));
        EXPECT_EQ(p.hops(), want);
        EXPECT_EQ(p.src(), s);
        EXPECT_EQ(p.dst(), d);
        EXPECT_TRUE(seen.insert(p.cable).second) << "duplicate path";
      }
    }
  }
}

TEST(UpDown, LegalDistanceAtLeastGraphDistance) {
  const Topology t = make_cplant();
  const UpDown ud(t, 0);
  for (SwitchId s = 0; s < t.num_switches(); s += 7) {
    const auto graph_dist = t.switch_distances_from(s);
    const auto legal_dist = ud.legal_distances_from(s);
    for (SwitchId d = 0; d < t.num_switches(); ++d) {
      EXPECT_GE(legal_dist[static_cast<std::size_t>(d)],
                graph_dist[static_cast<std::size_t>(d)]);
      EXPECT_GE(legal_dist[static_cast<std::size_t>(d)], 0)
          << "legal routing must reach every switch";
    }
  }
}

TEST(UpDown, SelfPathIsTrivial) {
  const Topology t = make_torus_2d(4, 4, 1);
  const UpDown ud(t, 0);
  const auto p = ud.shortest_legal_paths(3, 3, 5);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].hops(), 0);
  EXPECT_EQ(ud.legal_distance(3, 3), 0);
}

TEST(UpDown, MaxPathsCapRespected) {
  const Topology t = make_torus_2d(8, 8, 1);
  const UpDown ud(t, 0);
  const auto p = ud.shortest_legal_paths(0, 36, 3);
  EXPECT_LE(p.size(), 3u);
  EXPECT_FALSE(p.empty());
}

TEST(UpDown, TorusMinimalLegalFractionMatchesPaper) {
  // §4.7.1: "80% of the paths computed by the original Myrinet routing
  // algorithm are minimal" on the 8x8 torus.  The fraction of pairs with
  // a *legal* minimal path is a route-selection-independent upper bound
  // that lands at ~82%.
  const Topology t = make_torus_2d(8, 8, 1);
  const UpDown ud(t, 0);
  const auto all = t.all_switch_distances();
  int minimal = 0, pairs = 0;
  for (SwitchId s = 0; s < 64; ++s) {
    const auto legal = ud.legal_distances_from(s);
    for (SwitchId d = 0; d < 64; ++d) {
      if (s == d) continue;
      ++pairs;
      if (legal[static_cast<std::size_t>(d)] ==
          all[static_cast<std::size_t>(s) * 64 + static_cast<std::size_t>(d)]) {
        ++minimal;
      }
    }
  }
  const double frac = static_cast<double>(minimal) / pairs;
  EXPECT_NEAR(frac, 0.80, 0.04);
}

TEST(UpDown, ExpressTorusMinimalFractionMatchesPaper) {
  // §4.7.1: 94% with express channels.
  const Topology t = make_torus_2d_express(8, 8, 1);
  const UpDown ud(t, 0);
  const auto all = t.all_switch_distances();
  int minimal = 0, pairs = 0;
  for (SwitchId s = 0; s < 64; ++s) {
    const auto legal = ud.legal_distances_from(s);
    for (SwitchId d = 0; d < 64; ++d) {
      if (s == d) continue;
      ++pairs;
      if (legal[static_cast<std::size_t>(d)] ==
          all[static_cast<std::size_t>(s) * 64 + static_cast<std::size_t>(d)]) {
        ++minimal;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(minimal) / pairs, 0.94, 0.04);
}

TEST(UpDown, CplantMostlyMinimal) {
  // §4.7.1 says "UP/DOWN always uses minimal paths in this topology".  Our
  // CPLANT wiring is a documented reconstruction (the paper's figure is
  // not fully specified), on which up*/down* is *almost* always minimal:
  // assert a very high minimal fraction and at most one extra hop.
  const Topology t = make_cplant();
  const UpDown ud(t, 0);
  const auto all = t.all_switch_distances();
  int minimal = 0, pairs = 0, max_excess = 0;
  for (SwitchId s = 0; s < 50; ++s) {
    const auto legal = ud.legal_distances_from(s);
    for (SwitchId d = 0; d < 50; ++d) {
      if (s == d) continue;
      ++pairs;
      const int excess =
          legal[static_cast<std::size_t>(d)] -
          all[static_cast<std::size_t>(s) * 50 + static_cast<std::size_t>(d)];
      EXPECT_GE(excess, 0);
      max_excess = std::max(max_excess, excess);
      if (excess == 0) ++minimal;
    }
  }
  EXPECT_GT(static_cast<double>(minimal) / pairs, 0.85);
  EXPECT_LE(max_excess, 1);
}

class UpDownRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UpDownRandomProperty, InvariantsOnRandomIrregular) {
  Rng rng(GetParam());
  const Topology t = make_irregular(14, 2, 5, rng);
  const UpDown ud(t, 0);
  for (SwitchId s = 0; s < t.num_switches(); ++s) {
    for (SwitchId d = 0; d < t.num_switches(); ++d) {
      const auto paths = ud.shortest_legal_paths(s, d, 4);
      ASSERT_FALSE(paths.empty()) << s << "->" << d;
      for (const auto& p : paths) {
        EXPECT_TRUE(path_is_consistent(t, p));
        EXPECT_TRUE(ud.legal(p));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpDownRandomProperty,
                         ::testing::Range<std::uint64_t>(100, 112));

}  // namespace
}  // namespace itb
