// Chunk-size sensitivity: the engine's chunked execution is a performance
// knob, not a model change — headline quantities must be stable across
// chunk sizes.
#include <gtest/gtest.h>

#include "analysis/zero_load.hpp"
#include "core/route_builder.hpp"
#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

struct Point {
  double accepted;
  double latency_ns;
};

Point run(const Topology& topo, const RouteSet& routes, int chunk,
          double load) {
  Simulator sim;
  MyrinetParams params;
  params.chunk_flits = chunk;
  Network net(sim, topo, routes, params, PathPolicy::kRoundRobin, 21);
  MetricsCollector m(topo.num_switches());
  m.attach(net);
  UniformPattern pattern(topo.num_hosts());
  TrafficConfig tc;
  tc.load_flits_per_ns_per_switch = load;
  tc.seed = 5;
  TrafficGenerator gen(sim, net, pattern, tc);
  gen.start();
  sim.run_until(us(150));
  m.reset_window(sim.now());
  sim.run_until(us(500));
  EXPECT_EQ(net.flow_control_violations(), 0u) << "chunk " << chunk;
  return {m.accepted_flits_per_ns_per_switch(sim.now()), m.avg_latency_ns()};
}

TEST(ChunkSensitivity, ModerateLoadMetricsAgreeAcrossChunks) {
  const Topology topo = make_torus_2d(4, 4, 4);
  const UpDown ud(topo, 0);
  const RouteSet routes = build_itb_routes(topo, ud);
  const Point exact = run(topo, routes, 1, 0.03);
  for (const int chunk : {2, 4, 8}) {
    const Point p = run(topo, routes, chunk, 0.03);
    EXPECT_NEAR(p.accepted, exact.accepted, 0.05 * exact.accepted)
        << "chunk " << chunk;
    EXPECT_NEAR(p.latency_ns, exact.latency_ns, 0.10 * exact.latency_ns)
        << "chunk " << chunk;
  }
}

TEST(ChunkSensitivity, OverloadThroughputAgreesAcrossChunks) {
  // Accepted traffic past saturation is the quantity the paper's tables
  // report; it must not depend on the execution granularity.
  const Topology topo = make_torus_2d(4, 4, 4);
  const UpDown ud(topo, 0);
  const RouteSet routes =
      build_updown_routes(topo, SimpleRoutes(topo, ud));
  const Point exact = run(topo, routes, 1, 0.2);
  const Point chunked = run(topo, routes, 8, 0.2);
  EXPECT_NEAR(chunked.accepted, exact.accepted, 0.10 * exact.accepted);
}

TEST(ChunkSensitivity, ZeroLoadModelBoundsChunkError) {
  // For a single packet the chunked run may differ from the closed form
  // by at most one chunk per channel crossing.
  const Topology topo = make_torus_2d(4, 4, 2);
  const UpDown ud(topo, 0);
  const RouteSet routes = build_itb_routes(topo, ud);
  MyrinetParams params;
  for (const int chunk : {2, 4, 8}) {
    params.chunk_flits = chunk;
    Simulator sim;
    Network net(sim, topo, routes, params, PathPolicy::kSingle);
    TimePs measured = 0;
    net.set_delivery_callback([&](const DeliveryRecord& r) {
      measured = r.deliver_time - r.inject_time;
    });
    net.inject(0, 27, 512);
    sim.run_until(ms(2));
    ASSERT_GT(measured, 0);
    const RouteView route =
        routes.alternatives(topo.host(0).sw, topo.host(27).sw).front();
    MyrinetParams exact_params;  // model is chunk-agnostic
    const TimePs predicted =
        zero_load_latency(topo, route, 512, exact_params);
    const TimePs slack = static_cast<TimePs>(chunk) * params.flit_time *
                         (route.total_switch_hops + 4);
    EXPECT_GE(measured, predicted - slack) << "chunk " << chunk;
    EXPECT_LE(measured, predicted + slack) << "chunk " << chunk;
  }
}

}  // namespace
}  // namespace itb
