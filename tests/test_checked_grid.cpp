// The checked evaluation grid: every paper experiment family — uniform
// (fig. 7), bit-reversal (fig. 10), local (fig. 12) and hotspot
// (tables 1-3) — on every testbed that supports it, for every routing
// scheme, at a moderate and a high load, with full deep checking on
// (route verification + deadlock watchdog + end-of-window audit).  Zero
// invariant violations anywhere is the headline guarantee of PR 3: the
// model conserves flits, credits, buffer space and packets, and the
// paper's routing tables never form a wait cycle.
//
// Windows are short (tens of microseconds) so the whole grid stays in
// test-suite budget; the full-length figures run through the same
// machinery in the experiment binaries.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

struct Cell {
  std::string testbed;
  std::string pattern;
  RoutingScheme scheme;
  double load;
};

class CheckedGrid : public ::testing::Test {
 protected:
  static void expect_clean(const RunResult& r, const Cell& cell) {
    std::ostringstream what;
    what << cell.testbed << "/" << cell.pattern << "/"
         << to_string(cell.scheme) << "/load=" << cell.load;
    EXPECT_TRUE(r.checked) << what.str();
    EXPECT_GT(r.delivered, 0u) << what.str();
    EXPECT_EQ(r.fc_violations, 0u) << what.str();
    EXPECT_EQ(r.invariant_violations, 0u)
        << what.str() << ": first violation: "
        << (r.violations.empty() ? std::string("<none stored>")
                                 : r.violations.front().detail);
  }
};

TEST_F(CheckedGrid, AllExperimentFamiliesRunViolationFree) {
  struct Bed {
    std::string name;
    Testbed tb;
    bool power_of_two_hosts;
  };
  std::vector<Bed> beds;
  beds.push_back({"torus4x4", Testbed(make_torus_2d(4, 4, 2)), true});
  beds.push_back({"express5x5", Testbed(make_torus_2d_express(5, 5, 2)), false});
  beds.push_back({"cplant", Testbed(make_cplant()), false});

  const RoutingScheme schemes[] = {RoutingScheme::kUpDown,
                                   RoutingScheme::kItbSp,
                                   RoutingScheme::kItbRr};
  // One load in the linear region, one near/past saturation — the
  // interesting regime for conservation bugs (full buffers, spills,
  // stop/go storms).
  const double loads[] = {0.005, 0.05};

  for (const Bed& bed : beds) {
    const int hosts = bed.tb.topo().num_hosts();
    std::vector<std::pair<std::string, std::unique_ptr<DestinationPattern>>>
        patterns;
    patterns.emplace_back("uniform", std::make_unique<UniformPattern>(hosts));
    if (bed.power_of_two_hosts) {
      patterns.emplace_back("bit-reversal",
                            std::make_unique<BitReversalPattern>(hosts));
    }
    patterns.emplace_back("local3",
                          std::make_unique<LocalPattern>(bed.tb.topo(), 3));
    patterns.emplace_back(
        "hotspot", std::make_unique<HotspotPattern>(hosts, hosts / 2, 0.2));

    for (const auto& [pname, pattern] : patterns) {
      for (const RoutingScheme scheme : schemes) {
        for (const double load : loads) {
          RunConfig cfg;
          cfg.checked = true;
          cfg.load_flits_per_ns_per_switch = load;
          cfg.warmup = us(10);
          cfg.measure = us(40);
          cfg.seed = 7;
          const RunResult r = run_point(bed.tb, scheme, *pattern, cfg);
          expect_clean(r, {bed.name, pname, scheme, load});
        }
      }
    }
  }
}

TEST_F(CheckedGrid, CheckedModeDoesNotChangeSimulatedMetrics) {
  // The watchdog and audits observe; they must not perturb.  Same point,
  // checked on vs off: every paper metric identical (events differ — the
  // watchdog's sampling callbacks are events — so compare fields, not
  // same_simulated_metrics).
  const Testbed tb(make_torus_2d(4, 4, 2));
  const UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.warmup = us(20);
  cfg.measure = us(80);
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.checked = false;
  const RunResult off = run_point(tb, RoutingScheme::kItbRr, pattern, cfg);
  cfg.checked = true;
  const RunResult on = run_point(tb, RoutingScheme::kItbRr, pattern, cfg);
  EXPECT_EQ(on.delivered, off.delivered);
  EXPECT_EQ(on.offered, off.offered);
  EXPECT_EQ(on.accepted, off.accepted);
  EXPECT_EQ(on.avg_latency_ns, off.avg_latency_ns);
  EXPECT_EQ(on.p99_latency_ns, off.p99_latency_ns);
  EXPECT_EQ(on.spills, off.spills);
  EXPECT_EQ(on.invariant_violations, 0u);
  EXPECT_EQ(off.invariant_violations, 0u);
  EXPECT_TRUE(on.checked);
  EXPECT_FALSE(off.checked);
}

TEST_F(CheckedGrid, LowDiameterFamiliesRunViolationFree) {
  // The PR 8 frontier: HyperX (dimension-order MIN is deadlock-free),
  // full mesh (direct MIN is deadlock-free) and Dragonfly.  MIN-dragonfly
  // is deliberately absent: minimal l-g-l can deadlock without VCs — that
  // is the baseline the ITB schemes fix, not an invariant bug — so only
  // the provably deadlock-free tables are held to zero violations.
  struct Bed {
    std::string name;
    Testbed tb;
    bool min_deadlock_free;
  };
  std::vector<Bed> beds;
  beds.push_back({"hyperx4x4", Testbed(make_hyperx({4, 4}, 2), kAutoRoot),
                  true});
  beds.push_back({"dragonfly422", Testbed(make_dragonfly(4, 2, 2), kAutoRoot),
                  false});
  beds.push_back({"fullmesh16", Testbed(make_full_mesh(16, 2), kAutoRoot),
                  true});

  const double loads[] = {0.005, 0.05};
  for (const Bed& bed : beds) {
    std::vector<RoutingScheme> schemes = {RoutingScheme::kUpDown,
                                          RoutingScheme::kItbSp,
                                          RoutingScheme::kItbRr};
    if (bed.min_deadlock_free) schemes.push_back(RoutingScheme::kMinimal);
    const UniformPattern uniform(bed.tb.topo().num_hosts());
    const HotspotPattern hotspot(bed.tb.topo().num_hosts(),
                                 bed.tb.topo().num_hosts() / 2, 0.2);
    for (const RoutingScheme scheme : schemes) {
      for (const double load : loads) {
        for (const auto* pattern :
             std::initializer_list<const DestinationPattern*>{&uniform,
                                                              &hotspot}) {
          RunConfig cfg;
          cfg.checked = true;
          cfg.load_flits_per_ns_per_switch = load;
          cfg.warmup = us(10);
          cfg.measure = us(40);
          cfg.seed = 7;
          const RunResult r = run_point(bed.tb, scheme, *pattern, cfg);
          expect_clean(r, {bed.name,
                           pattern == &uniform ? "uniform" : "hotspot",
                           scheme, load});
        }
      }
    }
  }
}

TEST_F(CheckedGrid, HundredSeedFuzzPerLowDiameterTopology) {
  // 100 random seeds per family through full deep checking: different
  // seeds shift every injection time and destination draw, so this sweeps
  // phase alignments the fixed-seed grid can't.  Zero InvariantViolation
  // across all 300 runs, including the deadlock watchdog.
  struct Bed {
    std::string name;
    Testbed tb;
    RoutingScheme scheme;
  };
  std::vector<Bed> beds;
  beds.push_back({"hyperx4x4", Testbed(make_hyperx({4, 4}, 2), kAutoRoot),
                  RoutingScheme::kItbRr});
  beds.push_back({"dragonfly422", Testbed(make_dragonfly(4, 2, 2), kAutoRoot),
                  RoutingScheme::kItbRr});
  beds.push_back({"fullmesh16", Testbed(make_full_mesh(16, 2), kAutoRoot),
                  RoutingScheme::kMinimal});
  for (const Bed& bed : beds) {
    bed.tb.warm(bed.scheme);
    const UniformPattern pattern(bed.tb.topo().num_hosts());
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
      RunConfig cfg;
      cfg.checked = true;
      cfg.load_flits_per_ns_per_switch = 0.03;
      cfg.warmup = us(3);
      cfg.measure = us(12);
      cfg.seed = seed;
      const RunResult r = run_point(bed.tb, bed.scheme, pattern, cfg);
      EXPECT_EQ(r.invariant_violations, 0u)
          << bed.name << " seed " << seed << ": "
          << (r.violations.empty() ? std::string("<none stored>")
                                   : r.violations.front().detail);
      EXPECT_EQ(r.fc_violations, 0u) << bed.name << " seed " << seed;
    }
  }
}

TEST_F(CheckedGrid, SaturatedRunStaysConservative) {
  // Far past saturation: buffers pinned full, source queues growing, ITB
  // pools under pressure.  Conservation must still hold exactly.
  const Testbed tb(make_torus_2d(4, 4, 2));
  const UniformPattern pattern(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.checked = true;
  cfg.load_flits_per_ns_per_switch = 0.5;
  cfg.warmup = us(10);
  cfg.measure = us(50);
  const RunResult r = run_point(tb, RoutingScheme::kItbSp, pattern, cfg);
  EXPECT_TRUE(r.saturated);
  EXPECT_EQ(r.invariant_violations, 0u)
      << (r.violations.empty() ? std::string()
                               : r.violations.front().detail);
}

}  // namespace
}  // namespace itb
