// Path-selection policies (ITB-SP / ITB-RR and the adaptive extensions).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/path_policy.hpp"

namespace itb {
namespace {

TEST(PathPolicy, Names) {
  EXPECT_STREQ(to_string(PathPolicy::kSingle), "SP");
  EXPECT_STREQ(to_string(PathPolicy::kRoundRobin), "RR");
  EXPECT_STREQ(to_string(PathPolicy::kRandom), "RND");
  EXPECT_STREQ(to_string(PathPolicy::kAdaptive), "ADAPT");
}

TEST(PathPolicy, SingleAlwaysZero) {
  PathSelector s(PathPolicy::kSingle, 8, 1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s.pick(3, 7), 0);
}

TEST(PathPolicy, SingleAlternativeShortCircuits) {
  for (const PathPolicy p : {PathPolicy::kSingle, PathPolicy::kRoundRobin,
                             PathPolicy::kRandom, PathPolicy::kAdaptive}) {
    PathSelector s(p, 8, 1);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(s.pick(2, 1), 0);
  }
}

TEST(PathPolicy, RoundRobinCyclesThroughAllAlternatives) {
  PathSelector s(PathPolicy::kRoundRobin, 8, 42);
  const int first = s.pick(5, 4);
  std::vector<int> seq;
  for (int i = 0; i < 8; ++i) seq.push_back(s.pick(5, 4));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(seq[static_cast<std::size_t>(i)], (first + 1 + i) % 4);
  }
}

TEST(PathPolicy, RoundRobinPerDestinationIndependent) {
  PathSelector s(PathPolicy::kRoundRobin, 8, 42);
  const int a0 = s.pick(1, 5);
  s.pick(2, 5);  // different destination: must not advance dst 1's counter
  s.pick(2, 5);
  EXPECT_EQ(s.pick(1, 5), (a0 + 1) % 5);
}

TEST(PathPolicy, RoundRobinOffsetsVaryBySeed) {
  // Random starting offsets are what spreads alternatives across sources.
  std::set<int> firsts;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    PathSelector s(PathPolicy::kRoundRobin, 8, seed);
    firsts.insert(s.pick(0, 10));
  }
  EXPECT_GT(firsts.size(), 3u);
}

TEST(PathPolicy, RandomInRangeAndDeterministic) {
  PathSelector a(PathPolicy::kRandom, 8, 7);
  PathSelector b(PathPolicy::kRandom, 8, 7);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    const int va = a.pick(0, 6);
    EXPECT_EQ(va, b.pick(0, 6));
    ASSERT_GE(va, 0);
    ASSERT_LT(va, 6);
    seen.insert(va);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(PathPolicy, AdaptiveExploresUnseenFirst) {
  PathSelector s(PathPolicy::kAdaptive, 8, 3);
  std::set<int> first_picks;
  for (int i = 0; i < 4; ++i) {
    const int alt = s.pick(0, 4);
    first_picks.insert(alt);
    s.feedback(0, alt, ns(std::int64_t{1000}));
  }
  // With every alternative given feedback, all four must have been tried
  // (unexplored-first rule), modulo occasional epsilon exploration repeats.
  EXPECT_GE(first_picks.size(), 3u);
}

TEST(PathPolicy, AdaptiveConvergesToFastAlternative) {
  PathSelector s(PathPolicy::kAdaptive, 8, 3);
  // Feed strong signal: alternative 2 is 10x faster.
  for (int round = 0; round < 50; ++round) {
    const int alt = s.pick(1, 4);
    s.feedback(1, alt, alt == 2 ? ns(std::int64_t{500})
                                : ns(std::int64_t{5000}));
  }
  int picks2 = 0;
  for (int i = 0; i < 100; ++i) {
    const int alt = s.pick(1, 4);
    if (alt == 2) ++picks2;
    s.feedback(1, alt, alt == 2 ? ns(std::int64_t{500})
                                : ns(std::int64_t{5000}));
  }
  EXPECT_GT(picks2, 70);  // mostly exploits, epsilon = 10%
}

TEST(PathPolicy, AdaptiveFeedbackIgnoredByOtherPolicies) {
  PathSelector s(PathPolicy::kRoundRobin, 8, 3);
  s.feedback(0, 1, ns(std::int64_t{100}));  // must not crash or affect state
  const int first = s.pick(0, 3);
  EXPECT_EQ(s.pick(0, 3), (first + 1) % 3);
}

}  // namespace
}  // namespace itb
