// Parallel experiment engine: the thread pool, the deterministic
// parallel-for, and the serial-vs-parallel bit-identity contract of
// run_replicated / sweep_loads.  These tests are the ones the TSan CI job
// runs (ctest -R Parallel) to catch data races in the pool and in the
// shared Testbed.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "sim/pool.hpp"
#include "harness/replicate.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

RunConfig fast_cfg(double load) {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = load;
  cfg.warmup = us(40);
  cfg.measure = us(120);
  return cfg;
}

TEST(ParallelPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ParallelPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 2);
}

TEST(ParallelPool, ParallelForCoversRangeExactlyOnce) {
  constexpr int kN = 257;
  std::vector<int> hits(kN, 0);  // each slot written only by its own index
  std::atomic<int> calls{0};
  parallel_for_n(kN, 4, [&](int i) {
    ++hits[static_cast<std::size_t>(i)];
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), kN);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(ParallelPool, SingleJobRunsInlineInIndexOrder) {
  const auto caller = std::this_thread::get_id();
  std::vector<int> order;
  parallel_for_n(8, 1, [&](int i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelPool, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for_n(16, 4,
                     [](int i) {
                       if (i == 5) throw std::runtime_error("boom");
                     }),
      std::runtime_error);
}

TEST(ParallelPool, ParallelMapKeepsIndexOrder) {
  const auto out = parallel_map<int>(50, 4, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelPool, DefaultJobsHonoursEnvironment) {
  ::setenv("ITB_BENCH_JOBS", "3", 1);
  EXPECT_EQ(default_jobs(), 3);
  ::setenv("ITB_BENCH_JOBS", "not-a-number", 1);
  EXPECT_GE(default_jobs(), 1);  // falls back to hardware concurrency
  ::unsetenv("ITB_BENCH_JOBS");
  EXPECT_GE(default_jobs(), 1);
}

TEST(ParallelPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // Regression: parallel_for_n nested inside a pooled job must run inline
  // on the calling worker — fanning out again could deadlock wait_idle or
  // recruit workers whose thread_local workspaces are mid-point.  Before
  // the re-entrancy guard, a cold Testbed::routes() inside a driver was
  // forced onto the serial build path for exactly this reason.
  std::atomic<int> inner_total{0};
  parallel_for_n(4, 4, [&](int) {
    const std::thread::id outer = std::this_thread::get_id();
    parallel_for_n(8, 4, [&](int) {
      // Inline contract: the nested range runs on the worker itself.
      EXPECT_EQ(std::this_thread::get_id(), outer);
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ParallelTestbed, ColdRoutesBuildFromInsideAPooledJobIsSafe) {
  // Satellite of the same regression: routes() now fans its row build out
  // across default_jobs(), so a cold call from a pool worker exercises the
  // nested-pooled_for path end to end and must produce the same table a
  // main-thread build does.
  Testbed warm_tb(make_torus_2d(4, 4, 4));
  warm_tb.warm(RoutingScheme::kItbSp);
  const RouteSet& reference = warm_tb.routes(RoutingScheme::kItbSp);

  Testbed cold_tb(make_torus_2d(4, 4, 4));
  std::atomic<const RouteSet*> seen{nullptr};
  parallel_for_n(4, 4, [&](int) {
    const RouteSet& r = cold_tb.routes(RoutingScheme::kItbSp);
    const RouteSet* expected = nullptr;
    seen.compare_exchange_strong(expected, &r);
    EXPECT_EQ(seen.load(), &r);  // every worker sees the one shared table
  });
  ASSERT_NE(seen.load(), nullptr);
  EXPECT_EQ(seen.load()->table_bytes(), reference.table_bytes());
  EXPECT_EQ(seen.load()->segments_shared(), reference.segments_shared());
}

TEST(ParallelTestbed, ConcurrentRoutesShareOneTable) {
  Testbed tb(make_torus_2d(4, 4, 2));
  std::vector<const RouteSet*> seen(16, nullptr);
  parallel_for_n(16, 4, [&](int i) {
    seen[static_cast<std::size_t>(i)] = &tb.routes(RoutingScheme::kItbRr);
  });
  for (const RouteSet* p : seen) EXPECT_EQ(p, seen[0]);
  // warm() is idempotent and const.
  const Testbed& ctb = tb;
  ctb.warm(RoutingScheme::kUpDown);
  EXPECT_EQ(&ctb.routes(RoutingScheme::kUpDown),
            &ctb.routes(RoutingScheme::kUpDown));
}

TEST(ParallelDeterminism, RunPointReportsWallClock) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const RunResult r =
      run_point(tb, RoutingScheme::kItbRr, pat, fast_cfg(0.01));
  EXPECT_GT(r.events, 0u);
  EXPECT_GE(r.wall_ms, 0.0);
  EXPECT_GT(r.events_per_sec, 0.0);
}

TEST(ParallelDeterminism, ReplicatedMatchesSerialBitForBit) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const auto serial = run_replicated(tb, RoutingScheme::kItbRr, pat,
                                     fast_cfg(0.01), 8, /*jobs=*/1);
  const auto parallel = run_replicated(tb, RoutingScheme::kItbRr, pat,
                                       fast_cfg(0.01), 8, /*jobs=*/4);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t k = 0; k < serial.runs.size(); ++k) {
    EXPECT_TRUE(same_simulated_metrics(serial.runs[k], parallel.runs[k]))
        << "replication " << k << " differs under parallel execution";
  }
  // Aggregates accumulate in index order, so they are bit-identical too.
  EXPECT_EQ(serial.accepted.mean(), parallel.accepted.mean());
  EXPECT_EQ(serial.accepted.variance(), parallel.accepted.variance());
  EXPECT_EQ(serial.latency_ns.mean(), parallel.latency_ns.mean());
  EXPECT_EQ(serial.saturated_count, parallel.saturated_count);
}

TEST(ParallelDeterminism, SweepMatchesSerialBitForBit) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  // Ladder crossing the knee: serial stops at the first saturated point.
  const std::vector<double> loads = {0.004, 0.006, 0.009, 0.013, 0.02,
                                     0.05, 0.2, 0.3};
  const auto serial =
      sweep_loads(tb, RoutingScheme::kUpDown, pat, fast_cfg(0), loads, 1);
  const auto parallel =
      sweep_loads(tb, RoutingScheme::kUpDown, pat, fast_cfg(0), loads, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].load, parallel[i].load);
    EXPECT_TRUE(same_simulated_metrics(serial[i].result, parallel[i].result))
        << "sweep point " << i << " differs under parallel execution";
  }
}

TEST(ParallelSweep, KeepsExactlyOneSaturatedPoint) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  // Several loads past the knee: the speculative parallel sweep must trim
  // back to the serial early-stop shape.
  const std::vector<double> loads = {0.005, 0.2, 0.3, 0.4, 0.5};
  const auto series =
      sweep_loads(tb, RoutingScheme::kUpDown, pat, fast_cfg(0), loads, 4);
  int saturated = 0;
  for (const SweepPoint& p : series) saturated += p.result.saturated ? 1 : 0;
  EXPECT_EQ(saturated, 1);
  EXPECT_TRUE(series.back().result.saturated);
  EXPECT_LT(series.size(), loads.size());
}

TEST(ParallelSweep, SaturationExhaustionReportsLastLoadRun) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  // Loads far below the knee: the ladder must exhaust without saturating
  // and report the last load actually simulated, not the next rung.
  const auto res = find_saturation(tb, RoutingScheme::kItbRr, pat,
                                   fast_cfg(0), 0.001, 1.2, 3);
  EXPECT_FALSE(res.saturated);
  ASSERT_EQ(res.trace.size(), 3u);
  EXPECT_DOUBLE_EQ(res.saturating_load, res.trace.back().load);
  EXPECT_NEAR(res.saturating_load, 0.001 * 1.2 * 1.2, 1e-12);
}

TEST(ParallelSweep, SaturationPlateauProbeShapesTrace) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const auto res = find_saturation(tb, RoutingScheme::kUpDown, pat,
                                   fast_cfg(0), 0.01, 1.4, 12);
  ASSERT_TRUE(res.saturated);
  ASSERT_GE(res.trace.size(), 2u);
  // The second-to-last point is the first saturated rung; the last is the
  // 1.5x overload probe confirming the plateau.
  EXPECT_TRUE(res.trace[res.trace.size() - 2].result.saturated);
  EXPECT_DOUBLE_EQ(res.trace[res.trace.size() - 2].load, res.saturating_load);
  EXPECT_DOUBLE_EQ(res.trace.back().load, res.saturating_load * 1.5);
}

TEST(ParallelOptions, ParseJobsFlag) {
  const char* argv1[] = {"bench", "--jobs", "4"};
  const auto o1 = parse_bench_args(3, const_cast<char**>(argv1));
  EXPECT_EQ(o1.jobs, 4);
  const char* argv2[] = {"bench"};
  const auto o2 = parse_bench_args(1, const_cast<char**>(argv2));
  EXPECT_GE(o2.jobs, 1);  // defaults to hardware concurrency
}

}  // namespace
}  // namespace itb
