// JSON emission and batch-means confidence intervals.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/json.hpp"
#include "metrics/batch_means.hpp"
#include "sim/rng.hpp"

namespace itb {
namespace {

TEST(Json, QuoteEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json_quote(std::string("a") + '\x01' + "b"), "\"a\\u0001b\"");
}

TEST(Json, ObjectAndArrayShapes) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("x");
  w.key("n").value(std::int64_t{3});
  w.key("ok").value(true);
  w.key("arr").begin_array();
  w.value(1.5).value(std::int64_t{2});
  w.begin_object();
  w.key("inner").value(false);
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"x","n":3,"ok":true,"arr":[1.5,2,{"inner":false}]})");
}

TEST(Json, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, RunResultRoundTripsKeyFields) {
  RunResult r;
  r.offered = 0.01;
  r.accepted = 0.0099;
  r.avg_latency_ns = 5123.4;
  r.delivered = 321;
  r.saturated = true;
  const std::string j = run_result_to_json(r);
  EXPECT_NE(j.find("\"accepted\":0.0099"), std::string::npos);
  EXPECT_NE(j.find("\"delivered\":321"), std::string::npos);
  EXPECT_NE(j.find("\"saturated\":true"), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(Json, SeriesDocument) {
  SweepPoint p;
  p.load = 0.02;
  p.result.offered = 0.02;
  const std::string j = series_to_json("fig7a", "ITB-RR", {p, p});
  EXPECT_NE(j.find("\"experiment\":\"fig7a\""), std::string::npos);
  EXPECT_NE(j.find("\"scheme\":\"ITB-RR\""), std::string::npos);
  // Two points in the array.
  std::size_t count = 0, at = 0;
  while ((at = j.find("\"offered\"", at)) != std::string::npos) {
    ++count;
    ++at;
  }
  EXPECT_EQ(count, 2u);
}

TEST(BatchMeansStats, MeanMatches) {
  BatchMeans bm;
  for (int i = 1; i <= 100; ++i) bm.add(i);
  EXPECT_DOUBLE_EQ(bm.mean(), 50.5);
  EXPECT_EQ(bm.count(), 100u);
}

TEST(BatchMeansStats, TooFewSamplesGiveZeroCi) {
  BatchMeans bm;
  bm.add(1);
  bm.add(2);
  bm.add(3);
  EXPECT_EQ(bm.ci95_halfwidth(), 0.0);
}

TEST(BatchMeansStats, ConstantSequenceHasZeroWidth) {
  BatchMeans bm;
  for (int i = 0; i < 1000; ++i) bm.add(42.0);
  EXPECT_DOUBLE_EQ(bm.ci95_halfwidth(), 0.0);
  EXPECT_DOUBLE_EQ(bm.mean(), 42.0);
}

TEST(BatchMeansStats, IidCiShrinksWithSampleSize) {
  Rng rng(5);
  BatchMeans small, large;
  for (int i = 0; i < 400; ++i) small.add(rng.next_double());
  Rng rng2(5);
  for (int i = 0; i < 40000; ++i) large.add(rng2.next_double());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_GT(large.ci95_halfwidth(), 0.0);
  // For iid U(0,1) the true mean 0.5 must be covered.
  EXPECT_NEAR(large.mean(), 0.5, large.ci95_halfwidth() * 3);
}

TEST(BatchMeansStats, CoversTrueMeanMostOfTheTime) {
  // Frequentist sanity: over 60 independent experiments the 95% interval
  // should cover the true mean in the vast majority of cases.
  int covered = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed * 7 + 1);
    BatchMeans bm;
    for (int i = 0; i < 2000; ++i) bm.add(rng.next_double() * 10.0);
    if (std::abs(bm.mean() - 5.0) <= bm.ci95_halfwidth()) ++covered;
  }
  EXPECT_GE(covered, 50);
}

TEST(BatchMeansStats, BatchCountAdaptsToSampleCount) {
  BatchMeans bm(20);
  for (int i = 0; i < 10; ++i) bm.add(i);
  const auto means = bm.batch_means();
  EXPECT_GE(means.size(), 2u);
  EXPECT_LE(means.size(), 5u);  // at least 2 samples per batch
}

}  // namespace
}  // namespace itb
