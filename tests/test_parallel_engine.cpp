// Conservative parallel engine suite: the headline contract is that a
// simulation sharded across K lanes (sim/parallel_engine.hpp) produces
// IDENTICAL simulated metrics to the serial POD engine — not statistically
// close, bit-for-bit equal — for K = 1, 2 and 8, on every testbed, with
// deep checks on.  The only field exempted is peak_event_queue_len: the
// sharded value is a sum of per-lane high-water marks, which bounds but
// does not equal the serial queue's peak (same normalization the PR-2
// cross-engine goldens apply to engine-specific observability).
//
// The suite also pins the partition plan's invariants (contiguity,
// host-follows-switch, lookahead derivation) and the order-tie telemetry
// that backs the determinism claim: on these configurations no two
// cross-lane events share a picosecond, so boundary_ties must be zero and
// the merged event order is fully forced.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "net/params.hpp"
#include "sim/partition.hpp"
#include "sim/workspace.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

RunConfig small_config(EngineKind engine, int shards) {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = us(30);
  cfg.measure = us(80);
  cfg.engine = engine;
  cfg.shards = shards;
  cfg.checked = true;            // watchdog + route verify ride along
  cfg.collect_link_util = true;  // widest determinism surface
  return cfg;
}

/// Serial-vs-sharded comparison with the one legitimate difference
/// normalized away (see the header comment).  `expect_zero_ties`: on
/// single-path schemes over the torus no two cross-lane events share a
/// picosecond, so the (time, lane, push-order) key provably forces the
/// serial order; schemes/topologies with same-instant cross-lane pushes
/// report them in boundary_ties instead (the order is still deterministic,
/// broken by lane id, and the metrics must STILL match serial).
void expect_matches_serial(const RunResult& serial, RunResult sharded,
                           int shards, bool expect_zero_ties) {
  EXPECT_EQ(sharded.shards, static_cast<std::uint64_t>(shards));
  EXPECT_GE(sharded.peak_event_queue_len, serial.peak_event_queue_len);
  sharded.peak_event_queue_len = serial.peak_event_queue_len;
  EXPECT_TRUE(same_simulated_metrics(serial, sharded));
  // Lane + coordinator events reproduce the serial count exactly — every
  // serial event executes on exactly one lane (or the coordinator clock).
  EXPECT_EQ(sharded.events, serial.events);
  EXPECT_EQ(sharded.invariant_violations, 0u);
  if (shards == 1 || expect_zero_ties) {
    EXPECT_EQ(sharded.boundary_ties, 0u);
  }
  if (shards > 1) {
    EXPECT_GT(sharded.windows_executed, 0u);
    EXPECT_GT(sharded.boundary_events, 0u);
    EXPECT_GT(sharded.window_ns, 0.0);
  }
}

void expect_sharding_invisible(const Testbed& tb, RoutingScheme scheme,
                               bool expect_zero_ties) {
  UniformPattern pat(tb.topo().num_hosts());
  SimWorkspace ws;
  const RunResult serial =
      run_point_in(ws, tb, scheme, pat, small_config(EngineKind::kPod, 1));
  ASSERT_GT(serial.delivered, 0u);
  ASSERT_EQ(serial.invariant_violations, 0u);
  for (const int shards : {1, 2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    SimWorkspace pws;
    const RunResult sharded = run_point_in(
        pws, tb, scheme, pat, small_config(EngineKind::kPodParallel, shards));
    expect_matches_serial(serial, sharded, shards, expect_zero_ties);
  }
}

TEST(ParallelEngine, TorusMatchesSerialAllSchemes) {
  Testbed tb(make_torus_2d(4, 4, 4));
  expect_sharding_invisible(tb, RoutingScheme::kUpDown,
                            /*expect_zero_ties=*/true);
  expect_sharding_invisible(tb, RoutingScheme::kItbSp,
                            /*expect_zero_ties=*/true);
  // Round-robin alternates packets across physical paths, which CAN land
  // two cross-lane pushes on one picosecond — ties are reported, the order
  // stays deterministic, and the metrics still match serial exactly.
  expect_sharding_invisible(tb, RoutingScheme::kItbRr,
                            /*expect_zero_ties=*/false);
}

TEST(ParallelEngine, ExpressTorusMatchesSerial) {
  Testbed tb(make_torus_2d_express(5, 5, 4));
  expect_sharding_invisible(tb, RoutingScheme::kItbSp,
                            /*expect_zero_ties=*/false);
}

TEST(ParallelEngine, CplantMatchesSerial) {
  Testbed tb(make_cplant());
  expect_sharding_invisible(tb, RoutingScheme::kItbRr,
                            /*expect_zero_ties=*/false);
}

// A sharded workspace obeys the same reuse contract as a serial one: the
// second and third points in one workspace are bit-identical to the first,
// and the engine's lanes/threads/arenas are retained across points.
TEST(ParallelEngine, ReuseBitIdenticalAcrossPoints) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  const RunConfig cfg = small_config(EngineKind::kPodParallel, 4);

  SimWorkspace ws;
  const RunResult a = run_point_in(ws, tb, RoutingScheme::kItbRr, pat, cfg);
  const RunResult b = run_point_in(ws, tb, RoutingScheme::kItbRr, pat, cfg);
  const RunResult c = run_point_in(ws, tb, RoutingScheme::kItbRr, pat, cfg);
  EXPECT_TRUE(same_simulated_metrics(a, b));
  EXPECT_TRUE(same_simulated_metrics(a, c));
  EXPECT_EQ(a.windows_executed, b.windows_executed);
  EXPECT_EQ(a.boundary_events, b.boundary_events);
  EXPECT_EQ(c.workspace_reuses, 2u);
}

// Sliced (time-series-sampled) sharded runs execute the same per-lane
// event order as unsliced ones: sampling must not perturb the simulation
// in parallel mode either.  peak_event_queue_len is normalized like the
// serial comparison's: slicing re-anchors the barrier-window grid, which
// moves WHEN mailbox messages enter a lane's calendar (execution
// telemetry) without moving any event's execution order or time.
TEST(ParallelEngine, SamplingDoesNotPerturbShardedRuns) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig plain = small_config(EngineKind::kPodParallel, 4);
  RunConfig sampled = plain;
  sampled.sample_period = us(10);

  SimWorkspace ws1;
  const RunResult a = run_point_in(ws1, tb, RoutingScheme::kItbSp, pat, plain);
  SimWorkspace ws2;
  RunResult b = run_point_in(ws2, tb, RoutingScheme::kItbSp, pat, sampled);
  EXPECT_EQ(b.samples.size(), 8u);
  b.samples.clear();  // sampled-vs-plain differs only in the series itself
  b.peak_event_queue_len = a.peak_event_queue_len;
  EXPECT_TRUE(same_simulated_metrics(a, b));
}

// Tracing runs SHARDED: a traced kPodParallel run keeps all its lanes
// (shards == K, not the old serial fallback), records into per-lane rings,
// and the merged stream is record-identical to a serial traced run of the
// same point (the deep differential lives in test_obs_parallel; this pins
// the engine-selection contract).
TEST(ParallelEngine, TracingRunsSharded) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg = small_config(EngineKind::kPodParallel, 4);
  cfg.trace = true;

  SimWorkspace ws;
  const RunResult r = run_point_in(ws, tb, RoutingScheme::kItbSp, pat, cfg);
  EXPECT_EQ(r.shards, 4u);
  EXPECT_GT(r.trace_records, 0u);
  EXPECT_FALSE(r.trace.empty());

  RunConfig serial = small_config(EngineKind::kPod, 1);
  serial.trace = true;
  SimWorkspace ws2;
  RunResult s = run_point_in(ws2, tb, RoutingScheme::kItbSp, pat, serial);
  EXPECT_EQ(r.delivered, s.delivered);
  EXPECT_EQ(r.avg_latency_ns, s.avg_latency_ns);
  EXPECT_EQ(r.trace_records, s.trace_records);
}

// The adaptive selector's latency-feedback loop is inherently serial; the
// runner must execute kItbAdaptive points on one lane even when asked for
// more.
TEST(ParallelEngine, AdaptivePolicyFallsBackToSerial) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  const RunConfig cfg = small_config(EngineKind::kPodParallel, 4);
  SimWorkspace ws;
  const RunResult r =
      run_point_in(ws, tb, RoutingScheme::kItbAdapt, pat, cfg);
  EXPECT_EQ(r.shards, 0u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
}

// --- Partition-plan invariants --------------------------------------------

TEST(PartitionPlan, ContiguousBlocksCoverEverySwitchAndHost) {
  Testbed tb(make_torus_2d(4, 4, 4));
  const MyrinetParams params;
  const PartitionPlan plan = make_contiguous_plan(tb.topo(), params, 4);
  ASSERT_EQ(plan.shards, 4);
  // Contiguity: lane ids are non-decreasing over switch ids, every lane
  // non-empty, and each host lives on its switch's lane.
  int prev = 0;
  for (SwitchId s = 0; s < tb.topo().num_switches(); ++s) {
    const int lane = plan.lane_of_switch(s);
    ASSERT_GE(lane, prev);
    ASSERT_LT(lane, plan.shards);
    prev = lane;
  }
  EXPECT_EQ(plan.lane_of_switch(0), 0);
  EXPECT_EQ(plan.lane_of_switch(tb.topo().num_switches() - 1),
            plan.shards - 1);
  for (HostId h = 0; h < tb.topo().num_hosts(); ++h) {
    EXPECT_EQ(plan.lane_of_host(h),
              plan.lane_of_switch(tb.topo().host(h).sw));
  }
}

TEST(PartitionPlan, ShardCountClampedToSwitches) {
  Testbed tb(make_torus_2d(2, 2, 4));  // 4 switches
  const MyrinetParams params;
  const PartitionPlan plan = make_contiguous_plan(tb.topo(), params, 64);
  EXPECT_EQ(plan.shards, 4);
}

TEST(PartitionPlan, LookaheadIsMinCutCableLatency) {
  Testbed tb(make_torus_2d(4, 4, 4));
  const MyrinetParams params;
  const PartitionPlan cut = make_contiguous_plan(tb.topo(), params, 4);
  // Conservative window: no cut cable may deliver sooner than the
  // lookahead, and a cut exists at K=4 on a 16-switch torus.  All torus
  // cables share one length, so the min IS the common propagation delay.
  EXPECT_GT(cut.boundary_channels, 0);
  EXPECT_GE(cut.lookahead, 1);
  EXPECT_EQ(cut.lookahead, params.cable_prop_delay(10.0));

  // K=1: nothing is cut, the window degenerates to min over all cables.
  const PartitionPlan whole = make_contiguous_plan(tb.topo(), params, 1);
  EXPECT_EQ(whole.boundary_channels, 0);
  EXPECT_GE(whole.lookahead, 1);
}

}  // namespace
}  // namespace itb
