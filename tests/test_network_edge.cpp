// Engine edge cases: tiny payloads, multiple packets resident in one
// slack buffer, parallel cables, long chains, concurrent in-transit use
// of a destination host, and stop&go boundary behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "core/route_builder.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

constexpr TimePs F = 6250;
constexpr TimePs W = 49200;
constexpr TimePs R = 150000;

struct Capture {
  std::vector<DeliveryRecord> records;
  void attach(Network& net) {
    net.set_delivery_callback(
        [this](const DeliveryRecord& r) { records.push_back(r); });
  }
};

TEST(EdgeCases, OneBytePayload) {
  MyrinetParams p;
  p.chunk_flits = 1;
  Topology topo = make_mesh_2d(1, 2, 1);
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(0, 1, 1);
  sim.run_until(ms(1));
  ASSERT_EQ(cap.records.size(), 1u);
  // k = 1 hop: latency = 3(F+W) + 2R + 1*F.
  EXPECT_EQ(cap.records[0].deliver_time, 3 * (F + W) + 2 * R + 1 * F);
}

TEST(EdgeCases, TinyMessagesShareOneSlackBuffer) {
  // 32-byte messages are ~37 flits on the wire: a stalled 80-flit buffer
  // holds two of them.  Head-of-line FIFO order must be preserved and all
  // must drain.
  MyrinetParams p;
  p.chunk_flits = 1;
  Topology topo = make_mesh_2d(1, 3, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  // Hosts 0,1 on switch 0; 2,3 on switch 1; 4,5 on switch 2.  Flood the
  // middle switch's host from both sides with tiny messages so its input
  // buffers hold several packets back to back.
  for (int i = 0; i < 40; ++i) {
    net.inject(0, 2, 32);
    net.inject(4, 2, 32);
    net.inject(1, 3, 32);
  }
  sim.run_until(ms(5));
  EXPECT_EQ(cap.records.size(), 120u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(net.flow_control_violations(), 0u);
  // Per-source FIFO delivery order.
  TimePs last0 = -1, last4 = -1;
  for (const auto& r : cap.records) {
    if (r.src == 0) {
      EXPECT_GT(r.deliver_time, last0);
      last0 = r.deliver_time;
    }
    if (r.src == 4) {
      EXPECT_GT(r.deliver_time, last4);
      last4 = r.deliver_time;
    }
  }
}

TEST(EdgeCases, ParallelCablesBetweenTwoSwitches) {
  // Two cables between the same pair of switches: both must be usable and
  // arbitration must keep them independent.
  Topology topo(2, 8, "parallel");
  topo.connect(0, 0, 1, 0);
  topo.connect(0, 1, 1, 1);
  topo.attach_hosts(0, 2);
  topo.attach_hosts(1, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  // Both parallel cables give a minimal path; alternatives must include
  // both.
  EXPECT_EQ(routes.alternatives(0, 1).size(), 2u);

  MyrinetParams p;
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kRoundRobin, 3);
  Capture cap;
  cap.attach(net);
  for (int i = 0; i < 10; ++i) {
    net.inject(0, 2, 512);
    net.inject(1, 3, 512);
  }
  sim.run_until(ms(2));
  EXPECT_EQ(cap.records.size(), 20u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
  // With round-robin over the two cables, both fabric channels must have
  // carried traffic.
  const ChannelId ch0 = topo.channel_from(0, true);
  const ChannelId ch1 = topo.channel_from(1, true);
  EXPECT_GT(net.channel_busy_time(ch0), 0);
  EXPECT_GT(net.channel_busy_time(ch1), 0);
}

TEST(EdgeCases, LongChainWormSpansManySwitches) {
  // A 512-flit worm across a 10-switch chain spans every slack buffer on
  // the path when the head stalls; on an idle network it streams at full
  // rate end to end.
  MyrinetParams p;
  p.chunk_flits = 1;
  Topology topo = make_mesh_2d(1, 10, 1);
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(0, 9, 512);
  sim.run_until(ms(2));
  ASSERT_EQ(cap.records.size(), 1u);
  // k = 9 cables: latency = 11(F+W) + 10R + 512F.
  EXPECT_EQ(cap.records[0].deliver_time, 11 * (F + W) + 10 * R + 512 * F);
  EXPECT_EQ(net.flow_control_violations(), 0u);
}

TEST(EdgeCases, DestinationHostAlsoServesAsInTransit) {
  // The ITB host of one flow can simultaneously be the destination of
  // another: the NIC must keep ejection entries and deliveries separate.
  Topology topo(5, 8, "itb-shared");
  topo.connect_auto(0, 1);
  topo.connect_auto(0, 2);
  topo.connect_auto(1, 3);
  topo.connect_auto(2, 4);
  topo.connect_auto(3, 4);
  for (SwitchId s = 0; s < 5; ++s) topo.attach_hosts(s, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  const HostId itb_host = routes.alternatives(3, 2)[0].legs[0].end_host;
  ASSERT_NE(itb_host, kNoHost);

  MyrinetParams p;
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle, 5);
  Capture cap;
  cap.attach(net);
  // Flow A: host 6 (switch 3) -> host 4 (switch 2), through the ITB host.
  // Flow B: host 0 (switch 0) -> the ITB host itself, repeatedly.
  for (int i = 0; i < 5; ++i) {
    net.inject(6, 4, 512);
    net.inject(0, itb_host, 512);
  }
  sim.run_until(ms(5));
  EXPECT_EQ(cap.records.size(), 10u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
  int itb_used = 0;
  for (const auto& r : cap.records) {
    if (r.src == 6) {
      EXPECT_EQ(r.itbs_used, 1);
      ++itb_used;
    } else {
      EXPECT_EQ(r.itbs_used, 0);
    }
  }
  EXPECT_EQ(itb_used, 5);
}

TEST(EdgeCases, StopGoBoundaryNeverOverflowsAnyChunkSize) {
  // Aggressive fan-in onto one output with every chunk size: occupancy
  // must never exceed the 80-flit slack even transiently.
  for (const int chunk : {1, 2, 4, 8}) {
    MyrinetParams p;
    p.chunk_flits = chunk;
    Topology topo = make_mesh_2d(1, 3, 4);
    UpDown ud(topo, 0);
    RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
    Simulator sim;
    Network net(sim, topo, routes, p, PathPolicy::kSingle, 9);
    // All eight outer hosts flood the four middle-switch hosts.
    for (int i = 0; i < 20; ++i) {
      for (const HostId src : {0, 1, 2, 3, 8, 9, 10, 11}) {
        net.inject(src, static_cast<HostId>(4 + (src + i) % 4), 512);
      }
    }
    sim.run_until(ms(10));
    EXPECT_EQ(net.packets_in_flight(), 0u) << "chunk " << chunk;
    EXPECT_EQ(net.flow_control_violations(), 0u) << "chunk " << chunk;
    EXPECT_LE(net.max_buffer_occupancy(), 80) << "chunk " << chunk;
  }
}

TEST(EdgeCases, SmallestPossibleNetwork) {
  // One switch, two hosts: pure NIC-switch-NIC operation.
  Topology topo(1, 4, "tiny");
  topo.attach_hosts(0, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  MyrinetParams p;
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(0, 1, 512);
  net.inject(1, 0, 512);
  sim.run_until(ms(1));
  EXPECT_EQ(cap.records.size(), 2u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST(EdgeCases, ManySimultaneousInjectionsAtTimeZero) {
  // Every host injects at t = 0: the deterministic tie-break must produce
  // a reproducible, deadlock-free schedule.
  Topology topo = make_torus_2d(4, 4, 4);
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  auto run_once = [&] {
    MyrinetParams p;
    Simulator sim;
    Network net(sim, topo, routes, p, PathPolicy::kRoundRobin, 77);
    Capture cap;
    cap.attach(net);
    for (HostId h = 0; h < topo.num_hosts(); ++h) {
      net.inject(h, static_cast<HostId>((h + 17) % topo.num_hosts()), 512);
    }
    sim.run_until(ms(10));
    EXPECT_EQ(net.packets_in_flight(), 0u);
    TimePs sum = 0;
    for (const auto& r : cap.records) sum += r.deliver_time;
    return sum;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace itb
