// Differential verification of the compressed route store: the flat
// builders must produce, pair for pair and alternative for alternative,
// exactly the Routes the legacy nested builders stage — on all three paper
// testbeds, for both the UP/DOWN and the ITB table.  A second suite checks
// the dedup machinery from the raw arrays: every interned segment must
// reconstruct the original port/switch sequences byte for byte, and the
// compressed table must actually be smaller than the nested one it
// replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/route_builder.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

struct NamedTestbed {
  std::string name;
  Testbed tb;
};

std::vector<NamedTestbed> paper_testbeds() {
  std::vector<NamedTestbed> out;
  out.push_back({"torus", Testbed(make_torus_2d(8, 8, 2))});
  out.push_back({"express", Testbed(make_torus_2d_express(8, 8, 2))});
  out.push_back({"cplant", Testbed(make_cplant())});
  return out;
}

/// Dense low-diameter graphs (PR 8): short routes, huge alternative
/// fan-out, heavy segment sharing — the opposite corner of the store's
/// input space from the sparse tori above.
std::vector<NamedTestbed> lowdiameter_testbeds() {
  std::vector<NamedTestbed> out;
  out.push_back({"hyperx4x4", Testbed(make_hyperx({4, 4}, 2), kAutoRoot)});
  out.push_back(
      {"dragonfly422", Testbed(make_dragonfly(4, 2, 2), kAutoRoot)});
  out.push_back({"fullmesh16", Testbed(make_full_mesh(16, 2), kAutoRoot)});
  return out;
}

std::vector<NamedTestbed> all_testbeds() {
  std::vector<NamedTestbed> out = paper_testbeds();
  for (NamedTestbed& t : lowdiameter_testbeds()) {
    out.push_back(std::move(t));
  }
  return out;
}

/// Every (s,d) pair of `flat` materializes to exactly `nested`'s
/// alternatives, same order, same content (Route has defaulted ==).
void expect_tables_identical(const std::string& name,
                             const NestedRouteTable& nested,
                             const RouteSet& flat) {
  ASSERT_EQ(nested.num_switches(), flat.num_switches()) << name;
  const int n = nested.num_switches();
  for (SwitchId s = 0; s < n; ++s) {
    for (SwitchId d = 0; d < n; ++d) {
      const std::vector<Route>& want = nested.alternatives(s, d);
      const AltsView got = flat.alternatives(s, d);
      ASSERT_EQ(got.size(), want.size())
          << name << ": pair " << s << "->" << d;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(materialize_route(got[i]), want[i])
            << name << ": pair " << s << "->" << d << " alternative " << i;
      }
    }
  }
}

TEST(RouteStoreDifferential, UpDownFlatMatchesNestedOnEveryTestbed) {
  for (const NamedTestbed& t : all_testbeds()) {
    const SimpleRoutes sr(t.tb.topo(), t.tb.updown());
    const NestedRouteTable nested = build_updown_routes_nested(t.tb.topo(), sr);
    const RouteSet flat = build_updown_routes(t.tb.topo(), sr);
    expect_tables_identical(t.name, nested, flat);
  }
}

TEST(RouteStoreDifferential, ItbFlatMatchesNestedOnEveryTestbed) {
  for (const NamedTestbed& t : all_testbeds()) {
    const NestedRouteTable nested =
        build_itb_routes_nested(t.tb.topo(), t.tb.updown());
    const RouteSet flat = build_itb_routes(t.tb.topo(), t.tb.updown());
    expect_tables_identical(t.name, nested, flat);
  }
}

TEST(RouteStoreDifferential, MinimalFlatMatchesNestedOnLowDiameter) {
  for (const NamedTestbed& t : lowdiameter_testbeds()) {
    const NestedRouteTable nested = build_minimal_routes_nested(t.tb.topo());
    const RouteSet flat = build_minimal_routes(t.tb.topo());
    EXPECT_EQ(flat.algorithm(), RoutingAlgorithm::kMinimal) << t.name;
    expect_tables_identical(t.name, nested, flat);
  }
}

TEST(RouteStoreDedup, DenseGraphSharesSegmentsAndRoundTrips) {
  // On a full mesh every route is one hop, so the walk pool should intern
  // aggressively; the round trip through materialize_nested (which lands
  // in the explicit tier) must still be loss-free.
  const Testbed tb(make_full_mesh(16, 2), kAutoRoot);
  const RouteSet& flat = tb.routes(RoutingScheme::kItbSp);
  EXPECT_EQ(flat.store().tier(), StoreTier::kFactorized);
  EXPECT_GT(flat.segments_shared(), 0u);
  const RouteSet again(flat.materialize_nested());
  EXPECT_EQ(again.store().tier(), StoreTier::kExplicit);
  EXPECT_EQ(flat.store().num_routes(), again.store().num_routes());
  // The factorized core holds distinct shapes only — it must be smaller
  // than the instance-flat layout of the same table.
  EXPECT_LT(flat.store().core_bytes(), again.table_bytes());
  expect_tables_identical("fullmesh roundtrip", again.materialize_nested(),
                          flat);
}

TEST(RouteStoreDifferential, MaterializeNestedRoundTrips) {
  // compress(materialize_nested(x)) must reproduce x's arrays for the
  // explicit tier, and the factorized table must materialize to the same
  // values — the representations carry the same information.
  const Testbed tb(make_torus_2d(8, 8, 2));
  const RouteSet& flat = tb.routes(RoutingScheme::kItbSp);
  const RouteSet once(flat.materialize_nested());
  const RouteSet twice(once.materialize_nested());
  const RouteStore& a = once.store();
  const RouteStore& b = twice.store();
  EXPECT_TRUE(std::equal(a.port_pool().begin(), a.port_pool().end(),
                         b.port_pool().begin(), b.port_pool().end()));
  EXPECT_TRUE(std::equal(a.switch_pool().begin(), a.switch_pool().end(),
                         b.switch_pool().begin(), b.switch_pool().end()));
  EXPECT_EQ(a.num_routes(), b.num_routes());
  EXPECT_EQ(a.num_pairs(), b.num_pairs());
  EXPECT_EQ(a.table_bytes(), b.table_bytes());
  expect_tables_identical("torus roundtrip", once.materialize_nested(), flat);
}

// --- dedup property: interned segments reconstruct exactly ---------------

TEST(RouteStoreDedup, SharedSegmentsReconstructByteIdentical) {
  // Build the same table twice: once nested (ground truth sequences), once
  // factorized (interned).  Walk the raw factorized arrays — not the view
  // layer — pair_altlist -> altlists -> alt_routes -> core_routes ->
  // route_walks -> walks -> port_pool, and check every leg's pool slice
  // against the staged vectors.  This catches offset bookkeeping bugs the
  // view-level differential could mask if compose() had a compensating
  // bug.
  const Testbed tb(make_torus_2d(8, 8, 2));
  const NestedRouteTable nested =
      build_itb_routes_nested(tb.topo(), tb.updown());
  const RouteSet flat = build_itb_routes(tb.topo(), tb.updown());
  const RouteStore& store = flat.store();
  ASSERT_EQ(store.tier(), StoreTier::kFactorized);

  // Dedup must actually fire on a regular topology: many pairs share
  // dimension-ordered sub-walks.
  EXPECT_GT(flat.segments_shared(), 0u);
  EXPECT_LT(store.distinct_routes(), store.num_routes());

  const std::span<const PortId> ports = store.port_pool();
  const std::span<const WalkRec> walks = store.walks();
  const std::span<const std::uint32_t> route_walks = store.route_walks();
  const std::span<const RouteRec> core_routes = store.core_routes();
  const std::span<const std::uint32_t> alt_routes = store.alt_routes();
  const std::span<const AltListRec> altlists = store.altlists();
  const std::span<const std::uint32_t> pair_altlist = store.pair_altlist();

  const int n = nested.num_switches();
  for (SwitchId s = 0; s < n; ++s) {
    for (SwitchId d = 0; d < n; ++d) {
      const std::size_t key = static_cast<std::size_t>(s) *
                                  static_cast<std::size_t>(n) +
                              static_cast<std::size_t>(d);
      const AltListRec& al = altlists[pair_altlist[key]];
      const std::vector<Route>& want = nested.alternatives(s, d);
      ASSERT_EQ(al.count, want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        const RouteRec& rr = core_routes[alt_routes[al.first + i]];
        const Route& w = want[i];
        ASSERT_EQ(rr.leg_count, w.legs.size());
        // Default build options keep DFS order, so the baked alternative
        // tag is the slot index.
        EXPECT_EQ(rr.alt_tag, i);
        for (std::size_t li = 0; li < w.legs.size(); ++li) {
          const WalkRec& wk = walks[route_walks[rr.first_walk + li]];
          const RouteLeg& wl = w.legs[li];
          // Interned walks hold switch output ports only; intermediate
          // legs of the nested Route carry one extra trailing eject port.
          const bool final_leg = li + 1 == w.legs.size();
          ASSERT_EQ(wk.port_count, wl.ports.size() - (final_leg ? 0 : 1));
          ASSERT_EQ(wk.port_count, static_cast<std::size_t>(wl.switch_hops));
          for (std::size_t p = 0; p < wk.port_count; ++p) {
            ASSERT_EQ(ports[wk.port_off + p], wl.ports[p])
                << s << "->" << d << " alt " << i << " leg " << li;
          }
        }
      }
    }
  }
}

TEST(RouteStoreDedup, CompressedTableAtLeastHalvesNestedFootprint) {
  // Acceptance bar from the issue: on a 512-host testbed (16x16 torus,
  // 2 hosts/switch) the flat store must cut table memory by at least 2x
  // versus the nested representation it replaced.
  const Testbed tb(make_torus_2d(16, 16, 2));
  const RouteSet& flat = tb.routes(RoutingScheme::kItbSp);
  const std::uint64_t nested_bytes =
      nested_table_bytes(flat.materialize_nested());
  EXPECT_GT(flat.table_bytes(), 0u);
  EXPECT_LE(flat.table_bytes() * 2, nested_bytes)
      << "flat=" << flat.table_bytes() << " nested=" << nested_bytes;
}

}  // namespace
}  // namespace itb
