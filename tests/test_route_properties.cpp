// Property-based verification of every installed routing table: for each
// paper testbed (2-D torus, express torus, CPLANT) the full ITB table
// (shared by ITB-SP and ITB-RR) and the UP/DOWN table are fed through the
// check/route_verify re-derivation — every leg up*/down*-legal, every ITB
// path minimal in the unrestricted graph, in-transit buffers exactly at the
// violating switches, alternatives capped at 10 and pairwise distinct.
// The verifier itself is then tested negatively: seeded table corruptions
// (illegal leg, lost ITB, duplicated alternative, over-cap table) must each
// be flagged.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "check/route_verify.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

struct NamedTestbed {
  std::string name;
  Testbed tb;
};

std::vector<NamedTestbed> paper_testbeds() {
  std::vector<NamedTestbed> out;
  out.push_back({"torus", Testbed(make_torus_2d(8, 8, 2))});
  out.push_back({"express", Testbed(make_torus_2d_express(8, 8, 2))});
  out.push_back({"cplant", Testbed(make_cplant())});
  return out;
}

/// The low-diameter frontier cells (PR 8): dense graphs where the
/// up*/down* tree concentrates, so ITB splitting is exercised hard.  All
/// auto-rooted, like the benches.
std::vector<NamedTestbed> lowdiameter_testbeds() {
  std::vector<NamedTestbed> out;
  out.push_back({"hyperx4x4", Testbed(make_hyperx({4, 4}, 2), kAutoRoot)});
  out.push_back(
      {"dragonfly422", Testbed(make_dragonfly(4, 2, 2), kAutoRoot)});
  out.push_back({"fullmesh16", Testbed(make_full_mesh(16, 2), kAutoRoot)});
  return out;
}

std::vector<NamedTestbed> all_testbeds() {
  std::vector<NamedTestbed> out = paper_testbeds();
  for (NamedTestbed& t : lowdiameter_testbeds()) {
    out.push_back(std::move(t));
  }
  return out;
}

TEST(RouteProperties, ItbTablesVerifyCleanOnEveryTestbed) {
  for (const NamedTestbed& t : all_testbeds()) {
    const RouteSet& routes = t.tb.routes(RoutingScheme::kItbSp);
    // Strict mode: these testbeds all have hosts on every switch, so
    // the legal-shortest fallback must never be needed — every route is
    // genuinely minimal.
    RouteVerifyOptions opts;
    opts.allow_legal_fallback = false;
    const RouteVerifyReport rep =
        verify_route_set(t.tb.topo(), t.tb.updown(), routes, opts);
    EXPECT_TRUE(rep.ok()) << t.name << ": " << rep.violations.size()
                          << " violations; first: "
                          << (rep.violations.empty()
                                  ? ""
                                  : rep.violations.front().detail);
    const int n = t.tb.topo().num_switches();
    EXPECT_EQ(rep.pairs_checked,
              static_cast<std::uint64_t>(n) * (n - 1))
        << t.name;
    EXPECT_GE(rep.routes_checked, rep.pairs_checked) << t.name;
  }
}

TEST(RouteProperties, ItbSpAndItbRrShareOneVerifiedTable) {
  // ITB-SP and ITB-RR differ only in path policy: one verified table
  // covers both schemes by construction.
  for (const NamedTestbed& t : all_testbeds()) {
    EXPECT_EQ(&t.tb.routes(RoutingScheme::kItbSp),
              &t.tb.routes(RoutingScheme::kItbRr))
        << t.name;
  }
}

TEST(RouteProperties, UpDownTablesVerifyCleanOnEveryTestbed) {
  for (const NamedTestbed& t : all_testbeds()) {
    const RouteVerifyReport rep = verify_route_set(
        t.tb.topo(), t.tb.updown(), t.tb.routes(RoutingScheme::kUpDown));
    EXPECT_TRUE(rep.ok()) << t.name << ": "
                          << (rep.violations.empty()
                                  ? ""
                                  : rep.violations.front().detail);
  }
}

TEST(RouteProperties, MinimalTablesVerifyCleanOnLowDiameterTestbeds) {
  // The kMinimal contract in check/route_verify: exactly one alternative
  // per pair, no ITBs, hop count equal to the BFS distance.
  for (const NamedTestbed& t : lowdiameter_testbeds()) {
    const RouteSet& routes = t.tb.routes(RoutingScheme::kMinimal);
    const RouteVerifyReport rep =
        verify_route_set(t.tb.topo(), t.tb.updown(), routes);
    EXPECT_TRUE(rep.ok()) << t.name << ": "
                          << (rep.violations.empty()
                                  ? ""
                                  : rep.violations.front().detail);
    const int n = t.tb.topo().num_switches();
    EXPECT_EQ(rep.pairs_checked, static_cast<std::uint64_t>(n) * (n - 1))
        << t.name;
  }
}

TEST(RouteVerifierNegative, DetectsNonMinimalMinTable) {
  // Stretch one MIN route by a detour: the kMinimal minimality check (not
  // the up*/down* legality check, which MIN tables are exempt from) must
  // fire.
  const Testbed tb(make_full_mesh(8, 2), kAutoRoot);
  NestedRouteTable routes =
      tb.routes(RoutingScheme::kMinimal).materialize_nested();
  auto& alts = routes.mutable_alternatives(0, 1);
  ASSERT_EQ(alts.size(), 1u);
  ASSERT_EQ(alts[0].total_switch_hops, 1);
  const Route via2 = [&] {
    // 0 -> 2 -> 1: both hops exist in a full mesh.
    NestedRouteTable t2 =
        tb.routes(RoutingScheme::kMinimal).materialize_nested();
    Route r = t2.mutable_alternatives(0, 2)[0];
    const Route& second = t2.mutable_alternatives(2, 1)[0];
    r.legs[0].ports.insert(r.legs[0].ports.end(),
                           second.legs[0].ports.begin(),
                           second.legs[0].ports.end());
    r.legs[0].switch_hops += second.legs[0].switch_hops;
    r.total_switch_hops += second.total_switch_hops;
    return r;
  }();
  alts[0] = via2;
  // materialize_nested() preserves kMinimal, so the verifier stays in its
  // minimal-table mode on the round trip.
  const RouteSet flat(routes);
  ASSERT_EQ(flat.algorithm(), RoutingAlgorithm::kMinimal);
  const RouteVerifyReport rep =
      verify_route_set(tb.topo(), tb.updown(), flat);
  EXPECT_FALSE(rep.ok());
}

TEST(RouteProperties, AlternativesCappedAndDistinct) {
  // The verifier covers this, but assert the raw table shape directly so a
  // verifier bug cannot mask a table bug.
  const Testbed tb(make_torus_2d(8, 8, 2));
  const RouteSet& routes = tb.routes(RoutingScheme::kItbRr);
  const int n = tb.topo().num_switches();
  for (SwitchId s = 0; s < n; ++s) {
    for (SwitchId d = 0; d < n; ++d) {
      if (s == d) continue;
      const AltsView alts = routes.alternatives(s, d);
      ASSERT_FALSE(alts.empty());
      EXPECT_LE(alts.size(), 10u);
      for (std::size_t i = 0; i < alts.size(); ++i) {
        for (std::size_t j = i + 1; j < alts.size(); ++j) {
          const Route a = materialize_route(alts[i]);
          const Route b = materialize_route(alts[j]);
          EXPECT_FALSE(a.switches == b.switches && a.legs.size() == b.legs.size())
              << "pair " << s << "->" << d << " alternatives " << i << "/"
              << j << " identical";
        }
      }
    }
  }
}

// --- negative: the verifier must catch seeded table corruptions ---------

Testbed small_testbed() { return Testbed(make_torus_2d(4, 4, 2)); }

// Mutation fixtures inflate the immutable store back into a nested table,
// corrupt it, and re-compress for verification.
NestedRouteTable copy_itb_table(const Testbed& tb) {
  return tb.routes(RoutingScheme::kItbSp).materialize_nested();
}

std::uint64_t verify_count(const Testbed& tb, const NestedRouteTable& routes) {
  return verify_route_set(tb.topo(), tb.updown(), RouteSet(routes))
      .violations.size();
}

TEST(RouteVerifierNegative, DetectsMissingItbSplit) {
  const Testbed tb = small_testbed();
  NestedRouteTable routes = copy_itb_table(tb);
  ASSERT_EQ(verify_count(tb, routes), 0u);
  // Find a split route and fuse its legs into one illegal leg (the
  // down->up path an ITB was supposed to break).
  bool mutated = false;
  for (SwitchId s = 0; s < routes.num_switches() && !mutated; ++s) {
    for (SwitchId d = 0; d < routes.num_switches() && !mutated; ++d) {
      for (Route& r : routes.mutable_alternatives(s, d)) {
        if (r.num_itbs() == 0) continue;
        RouteLeg fused;
        for (std::size_t li = 0; li < r.legs.size(); ++li) {
          const RouteLeg& leg = r.legs[li];
          const bool final_leg = li + 1 == r.legs.size();
          const std::size_t nports =
              leg.ports.size() - (final_leg ? 0 : 1);  // drop eject ports
          fused.ports.insert(fused.ports.end(), leg.ports.begin(),
                             leg.ports.begin() +
                                 static_cast<std::ptrdiff_t>(nports));
          fused.switch_hops += leg.switch_hops;
        }
        r.legs = {fused};
        mutated = true;
        break;
      }
    }
  }
  ASSERT_TRUE(mutated) << "4x4 torus must have at least one split route";
  EXPECT_GT(verify_count(tb, routes), 0u);
}

TEST(RouteVerifierNegative, DetectsCorruptPortWalk) {
  const Testbed tb = small_testbed();
  NestedRouteTable routes = copy_itb_table(tb);
  // Point the first port byte of some multi-hop route at a host port: the
  // walk no longer reaches a switch.
  for (SwitchId s = 0; s < routes.num_switches(); ++s) {
    for (SwitchId d = 0; d < routes.num_switches(); ++d) {
      if (s == d) continue;
      Route& r = routes.mutable_alternatives(s, d)[0];
      if (r.total_switch_hops < 1) continue;
      r.legs[0].ports[0] = tb.topo().host(tb.topo().hosts_of_switch(s)[0]).port;
      EXPECT_GT(verify_count(tb, routes), 0u);
      return;
    }
  }
  FAIL() << "no multi-hop route found";
}

TEST(RouteVerifierNegative, DetectsDuplicateAndOverCapAlternatives) {
  const Testbed tb = small_testbed();
  NestedRouteTable routes = copy_itb_table(tb);
  auto& alts = routes.mutable_alternatives(0, 5);
  ASSERT_FALSE(alts.empty());
  alts.push_back(alts.front());  // duplicate
  EXPECT_GT(verify_count(tb, routes), 0u);
  while (alts.size() <= 10) alts.push_back(alts.front());
  RouteVerifyOptions opts;
  const auto rep =
      verify_route_set(tb.topo(), tb.updown(), RouteSet(routes), opts);
  bool over_cap = false;
  for (const auto& v : rep.violations) {
    if (v.detail.find("cap is") != std::string::npos) over_cap = true;
  }
  EXPECT_TRUE(over_cap);
}

TEST(RouteVerifierNegative, DetectsNonMinimalPath) {
  // On the torus every up*/down* route happens to be minimal, so build the
  // 5-switch fixture from test_network_itb: pair (3 -> 2) has minimal
  // distance 2 (the illegal path through switch 4) but legal distance 3
  // (3-1-0-2).  Swapping the split 2-hop ITB route for the 3-hop up*/down*
  // detour produces exactly the legal-shortest-fallback shape.
  Topology t(5, 8, "itb-fixture");
  t.connect_auto(0, 1);
  t.connect_auto(0, 2);
  t.connect_auto(1, 3);
  t.connect_auto(2, 4);
  t.connect_auto(3, 4);
  for (SwitchId s = 0; s < 5; ++s) t.attach_hosts(s, 2);
  const Testbed tb(std::move(t));
  NestedRouteTable routes = copy_itb_table(tb);
  const Route detour = tb.routes(RoutingScheme::kUpDown).materialize(3, 2, 0);
  ASSERT_EQ(detour.total_switch_hops, 3);
  auto& alts = routes.mutable_alternatives(3, 2);
  ASSERT_EQ(alts[0].total_switch_hops, 2);
  alts.clear();
  alts.push_back(detour);
  // Strict mode must flag it; fallback mode accepts exactly this shape
  // (single legal alternative at legal distance), documenting the
  // build_itb_routes escape hatch for pairs with no usable minimal path.
  const RouteSet flat(routes);
  RouteVerifyOptions strict;
  strict.allow_legal_fallback = false;
  EXPECT_FALSE(verify_route_set(tb.topo(), tb.updown(), flat, strict).ok());
  EXPECT_TRUE(verify_route_set(tb.topo(), tb.updown(), flat).ok());
}

}  // namespace
}  // namespace itb
