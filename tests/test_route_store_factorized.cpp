// Properties specific to the switch-pair factorized tier: on-the-fly
// host-leg composition must agree with compile_route for every pair —
// including non-default ITB host salts and alternative-preference orders —
// the factorized pools must be byte-identical for every jobs value, and a
// full-scale table (the dragonfly16 bench point under ITB_CHECKED) must
// pass the route-legality verifier, which retraces every composed walk
// against the topology.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "check/route_verify.hpp"
#include "core/route_builder.hpp"
#include "harness/testbed.hpp"
#include "route/topo_minimal.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

struct NamedTestbed {
  std::string name;
  Testbed tb;
};

/// Dense low-diameter graphs: many equal-length minimal paths, so ITB
/// tables carry real alternative lists and in-transit legs — the cases
/// where composed host choice actually matters.
std::vector<NamedTestbed> testbeds() {
  std::vector<NamedTestbed> out;
  out.push_back({"hyperx8x8", Testbed(make_hyperx({8, 8}, 2), kAutoRoot)});
  out.push_back({"dragonfly442", Testbed(make_dragonfly(4, 4, 2), kAutoRoot)});
  out.push_back({"torus8x8", Testbed(make_torus_2d(8, 8, 2))});
  return out;
}

void expect_composes_to(const std::string& name,
                        const NestedRouteTable& nested, const RouteSet& flat) {
  ASSERT_EQ(nested.num_switches(), flat.num_switches()) << name;
  const int n = nested.num_switches();
  for (SwitchId s = 0; s < n; ++s) {
    for (SwitchId d = 0; d < n; ++d) {
      const std::vector<Route>& want = nested.alternatives(s, d);
      const AltsView got = flat.alternatives(s, d);
      ASSERT_EQ(got.size(), want.size()) << name << ": " << s << "->" << d;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(materialize_route(got[i]), want[i])
            << name << ": " << s << "->" << d << " alternative " << i;
      }
    }
  }
}

TEST(RouteStoreFactorized, ComposedViewsMatchCompiledRoutesEveryScheme) {
  for (const NamedTestbed& t : testbeds()) {
    const SimpleRoutes sr(t.tb.topo(), t.tb.updown());
    expect_composes_to(t.name + "/updown",
                       build_updown_routes_nested(t.tb.topo(), sr),
                       build_updown_routes(t.tb.topo(), sr));
    expect_composes_to(t.name + "/itb",
                       build_itb_routes_nested(t.tb.topo(), t.tb.updown()),
                       build_itb_routes(t.tb.topo(), t.tb.updown()));
    if (has_structured_minimal(t.tb.topo())) {
      expect_composes_to(t.name + "/minimal",
                         build_minimal_routes_nested(t.tb.topo()),
                         build_minimal_routes(t.tb.topo()));
    }
  }
}

TEST(RouteStoreFactorized, SampledDifferentialOnMediumTestbeds) {
  // The small beds above compare all pairs; the 256-switch bench-ladder
  // beds are compared on a deterministic LCG pair sample so the nested
  // ground-truth build stays cheap enough for the fast suite.
  std::vector<NamedTestbed> beds;
  beds.push_back({"hyperx16x16", Testbed(make_hyperx({16, 16}, 8), kAutoRoot)});
  beds.push_back({"dragonfly884", Testbed(make_dragonfly(8, 8, 4), kAutoRoot)});
  for (const NamedTestbed& t : beds) {
    const NestedRouteTable nested =
        build_itb_routes_nested(t.tb.topo(), t.tb.updown());
    const RouteSet flat = build_itb_routes(t.tb.topo(), t.tb.updown());
    const auto n = static_cast<std::uint64_t>(t.tb.topo().num_switches());
    std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
    for (int i = 0; i < 4096; ++i) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      const auto s = static_cast<SwitchId>((lcg >> 33) % n);
      const auto d = static_cast<SwitchId>((lcg >> 13) % n);
      const std::vector<Route>& want = nested.alternatives(s, d);
      const AltsView got = flat.alternatives(s, d);
      ASSERT_EQ(got.size(), want.size()) << t.name << ": " << s << "->" << d;
      for (std::size_t a = 0; a < want.size(); ++a) {
        ASSERT_EQ(materialize_route(got[a]), want[a])
            << t.name << ": " << s << "->" << d << " alternative " << a;
      }
    }
  }
}

TEST(RouteStoreFactorized, HostMixTracksSaltAndAlternativeOrder) {
  // The in-transit host is not stored — the composer re-derives it from
  // (s, d, baked alternative tag, leg index, salt).  Exercise the two
  // knobs that move it: a non-zero salt, and prefer_fewest_itbs = true,
  // whose stable sort makes alternative slot != DFS tag — the baked tag,
  // not the slot, must drive the mix.
  const Testbed tb(make_hyperx({8, 8}, 2), kAutoRoot);
  for (const bool prefer : {true, false}) {
    for (const std::uint64_t salt :
         {std::uint64_t{0}, std::uint64_t{0x5eedf00d}}) {
      ItbBuildOptions opts;
      opts.prefer_fewest_itbs = prefer;
      opts.itb_host_salt = salt;
      expect_composes_to(
          "hyperx8x8 salt=" + std::to_string(salt) +
              " prefer=" + std::to_string(prefer),
          build_itb_routes_nested(tb.topo(), tb.updown(), opts),
          build_itb_routes(tb.topo(), tb.updown(), opts));
    }
  }
}

template <typename T>
void expect_span_equal(std::span<const T> a, std::span<const T> b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(),
                         [](const T& x, const T& y) {
                           return __builtin_memcmp(&x, &y, sizeof(T)) == 0;
                         }))
      << what;
}

void expect_pools_byte_identical(const RouteStore& a, const RouteStore& b) {
  ASSERT_EQ(a.tier(), StoreTier::kFactorized);
  ASSERT_EQ(b.tier(), StoreTier::kFactorized);
  expect_span_equal(a.port_pool(), b.port_pool(), "port_pool");
  expect_span_equal(a.walks(), b.walks(), "walks");
  expect_span_equal(a.route_walks(), b.route_walks(), "route_walks");
  expect_span_equal(a.core_routes(), b.core_routes(), "core_routes");
  expect_span_equal(a.alt_routes(), b.alt_routes(), "alt_routes");
  expect_span_equal(a.altlists(), b.altlists(), "altlists");
  expect_span_equal(a.pair_altlist(), b.pair_altlist(), "pair_altlist");
  EXPECT_EQ(a.table_bytes(), b.table_bytes());
}

TEST(RouteStoreFactorized, PoolsByteIdenticalAcrossJobCounts) {
  // Global intern ids are first-appearance order over the canonical pair
  // stream — destination-major for ITB, source-major otherwise — so every
  // fan-out must reproduce the serial pools exactly, not just the same
  // route values.
  for (const NamedTestbed& t : testbeds()) {
    const RouteSet serial = build_itb_routes(t.tb.topo(), t.tb.updown(), {}, 1);
    for (const int jobs : {2, 8}) {
      const RouteSet fan = build_itb_routes(t.tb.topo(), t.tb.updown(), {}, jobs);
      SCOPED_TRACE(t.name + " itb jobs=" + std::to_string(jobs));
      expect_pools_byte_identical(serial.store(), fan.store());
    }
    if (has_structured_minimal(t.tb.topo())) {
      const RouteSet ms = build_minimal_routes(t.tb.topo(), 1);
      for (const int jobs : {2, 8}) {
        const RouteSet fan = build_minimal_routes(t.tb.topo(), jobs);
        SCOPED_TRACE(t.name + " minimal jobs=" + std::to_string(jobs));
        expect_pools_byte_identical(ms.store(), fan.store());
      }
    }
  }
}

TEST(RouteStoreFactorized, ScalePointPassesRouteVerifier) {
  // verify_route_set retraces every composed leg against the topology —
  // ports must name real cables, in-transit hosts must be attached to the
  // split switch, legs must be up*/down* legal and minimal.  Running it on
  // a bench-ladder scale point checks the factorized composition where
  // segment sharing is heaviest.  The full dragonfly16 point (2064
  // switches, 8.8M route instances) rides on the ITB_CHECKED build; the
  // fast suite uses the dragonfly8 point.
#ifdef ITB_CHECKED
  const Testbed tb(make_dragonfly(16, 8, 8), kAutoRoot);
#else
  const Testbed tb(make_dragonfly(8, 8, 4), kAutoRoot);
#endif
  const RouteSet rs = build_itb_routes(tb.topo(), tb.updown(), {}, 8);
  ASSERT_EQ(rs.store().tier(), StoreTier::kFactorized);
  const RouteVerifyReport rep = verify_route_set(tb.topo(), tb.updown(), rs);
  EXPECT_TRUE(rep.ok()) << rep.violations.size() << " violations; first: "
                        << (rep.violations.empty()
                                ? std::string()
                                : rep.violations.front().detail);
  // The verifier covers every ordered pair except the trivial diagonal.
  const auto n = static_cast<std::uint64_t>(tb.topo().num_switches());
  EXPECT_EQ(rep.pairs_checked, n * (n - 1));
}

}  // namespace
}  // namespace itb
