// Network engine: exact zero-load latency against hand-computed pipeline
// models (chunk = 1 flit), cut-through pipelining, header stripping,
// arbitration, and determinism.
//
// Notation for the analytic model (all picoseconds):
//   F = flit time (6250), W = wire propagation (49200 for 10 m),
//   R = routing delay (150000), P = payload flits.
// A packet whose current leg crosses k switch-to-switch cables traverses
// k+1 switches and k+2 channels; its wire length at leg start is L0 and
// shrinks by one per switch.  With an idle network the tail reaches the
// destination NIC at
//   t_inject + (k+2)(F+W) + (k+1)R + P*F .
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/route_builder.hpp"
#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

constexpr TimePs F = 6250;
constexpr TimePs W = 49200;
constexpr TimePs R = 150000;

struct Rig {
  Topology topo;
  UpDown ud;
  RouteSet routes;
  Simulator sim;
  MyrinetParams params;

  Rig(Topology t, RoutingAlgorithm algo, MyrinetParams p = {})
      : topo(std::move(t)), ud(topo, 0),
        routes(algo == RoutingAlgorithm::kUpDown
                   ? build_updown_routes(topo, SimpleRoutes(topo, ud))
                   : build_itb_routes(topo, ud)),
        params(p) {}
};

struct Capture {
  std::vector<DeliveryRecord> records;
  void attach(Network& net) {
    net.set_delivery_callback(
        [this](const DeliveryRecord& r) { records.push_back(r); });
  }
};

TEST(WireFormat, LegStartWireFlits) {
  // Two-leg route: leg0 has 2 ports (1 hop + ITB host port), leg1 has 1
  // port plus the appended delivery port.
  Route r;
  r.src_switch = 0;
  r.dst_switch = 0;
  r.legs.resize(2);
  r.legs[0].ports = {PortId{1}, PortId{4}};
  r.legs[0].end_host = 9;
  r.legs[1].ports = {PortId{2}};
  NestedRouteTable staged(1, RoutingAlgorithm::kItb);
  staged.mutable_alternatives(0, 0).push_back(r);
  const RouteSet rs(staged);
  const RouteView v = rs.view(0, 0, 0);
  // Leg 0: payload + type + (2 + 1 + 1 delivery) ports + 1 mark.
  EXPECT_EQ(leg_start_wire_flits(v, 0, 512, 1), 512 + 1 + 4 + 1);
  // Leg 1: payload + type + (1 + 1 delivery) ports, no marks left.
  EXPECT_EQ(leg_start_wire_flits(v, 1, 512, 1), 512 + 1 + 2);
  // Consistency: arrival length after leg 0 (start - ports consumed)
  // minus the mark byte equals leg 1's start length.
  const int arrival0 = leg_start_wire_flits(v, 0, 512, 1) - 2;
  EXPECT_EQ(arrival0 - 1, leg_start_wire_flits(v, 1, 512, 1));
}

TEST(NetworkZeroLoad, SameSwitchDeliveryExact) {
  MyrinetParams p;
  p.chunk_flits = 1;
  Rig rig(make_mesh_2d(1, 2, 2), RoutingAlgorithm::kUpDown, p);
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  // Hosts 0 and 1 both sit on switch 0: k = 0 cables.
  net.inject(0, 1, 512);
  rig.sim.run_until(ms(1));
  ASSERT_EQ(cap.records.size(), 1u);
  const auto& rec = cap.records[0];
  EXPECT_EQ(rec.inject_time, 0);
  EXPECT_EQ(rec.deliver_time, 2 * (F + W) + 1 * R + 512 * F);
  EXPECT_EQ(rec.itbs_used, 0);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST(NetworkZeroLoad, MultiHopDeliveryExact) {
  MyrinetParams p;
  p.chunk_flits = 1;
  // 1x4 mesh: host on switch 0 to host on switch 3 -> k = 3.
  Rig rig(make_mesh_2d(1, 4, 1), RoutingAlgorithm::kUpDown, p);
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(0, 3, 512);
  rig.sim.run_until(ms(1));
  ASSERT_EQ(cap.records.size(), 1u);
  EXPECT_EQ(cap.records[0].deliver_time, 5 * (F + W) + 4 * R + 512 * F);
}

TEST(NetworkZeroLoad, PayloadScalesLatency) {
  for (const int payload : {32, 512, 1024}) {
    MyrinetParams p;
    p.chunk_flits = 1;
    Rig rig(make_mesh_2d(1, 2, 1), RoutingAlgorithm::kUpDown, p);
    Network net(rig.sim, rig.topo, rig.routes, rig.params,
                PathPolicy::kSingle);
    Capture cap;
    cap.attach(net);
    net.inject(0, 1, payload);
    rig.sim.run_until(ms(1));
    ASSERT_EQ(cap.records.size(), 1u);
    EXPECT_EQ(cap.records[0].deliver_time, 3 * (F + W) + 2 * R + payload * F)
        << "payload " << payload;
  }
}

TEST(NetworkZeroLoad, ChunkedTimingCloseToFlitExact) {
  TimePs exact = 0;
  for (const int chunk : {1, 4, 8}) {
    MyrinetParams p;
    p.chunk_flits = chunk;
    Rig rig(make_mesh_2d(1, 4, 1), RoutingAlgorithm::kUpDown, p);
    Network net(rig.sim, rig.topo, rig.routes, rig.params,
                PathPolicy::kSingle);
    Capture cap;
    cap.attach(net);
    net.inject(0, 3, 512);
    rig.sim.run_until(ms(1));
    ASSERT_EQ(cap.records.size(), 1u);
    if (chunk == 1) {
      exact = cap.records[0].deliver_time;
    } else {
      // Chunking only quantises per-hop handoffs: error bounded by one
      // chunk per channel crossing.
      EXPECT_NEAR(static_cast<double>(cap.records[0].deliver_time),
                  static_cast<double>(exact), 5.0 * chunk * F);
    }
  }
}

TEST(NetworkZeroLoad, GenerationQueueingSeparatesLatencies) {
  MyrinetParams p;
  p.chunk_flits = 1;
  Rig rig(make_mesh_2d(1, 2, 1), RoutingAlgorithm::kUpDown, p);
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(0, 1, 512);
  net.inject(0, 1, 512);  // queued behind the first
  rig.sim.run_until(ms(1));
  ASSERT_EQ(cap.records.size(), 2u);
  EXPECT_EQ(cap.records[0].gen_time, cap.records[0].inject_time);
  EXPECT_EQ(cap.records[1].gen_time, 0);
  EXPECT_GT(cap.records[1].inject_time, 0)
      << "second packet waits for the NIC link";
}

TEST(NetworkPipelining, BurstSpacingIsBottleneckServiceTime) {
  // In steady state the slowest pipeline stage is the first switch:
  // service time = (L0 - 1) * F + R per packet.
  MyrinetParams p;
  p.chunk_flits = 1;
  Rig rig(make_mesh_2d(1, 3, 1), RoutingAlgorithm::kUpDown, p);
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  const int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) net.inject(0, 2, 512);
  rig.sim.run_until(ms(5));
  ASSERT_EQ(cap.records.size(), static_cast<std::size_t>(kBurst));
  // L0 = 512 payload + 1 type + 2 fabric ports + 1 delivery port.
  const TimePs L0 = 512 + 1 + 3;
  const TimePs spacing = (L0 - 1) * F + R;
  for (int i = 1; i < kBurst; ++i) {
    EXPECT_EQ(cap.records[static_cast<std::size_t>(i)].deliver_time -
                  cap.records[static_cast<std::size_t>(i - 1)].deliver_time,
              spacing)
        << "packet " << i;
  }
}

TEST(NetworkArbitration, TwoInputsShareOneOutputAlternately) {
  // Hosts 0 and 1 on switches 0 and 2 both send to host on switch 1
  // (1x3 mesh, middle switch).  The output port to the destination host
  // serves the two input ports in round-robin order.
  MyrinetParams p;
  p.chunk_flits = 8;
  Rig rig(make_mesh_2d(1, 3, 1), RoutingAlgorithm::kUpDown, p);
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  for (int i = 0; i < 4; ++i) {
    net.inject(0, 1, 512);
    net.inject(2, 1, 512);
  }
  rig.sim.run_until(ms(20));
  ASSERT_EQ(cap.records.size(), 8u);
  // Deliveries must alternate between the two sources.
  for (std::size_t i = 1; i < cap.records.size(); ++i) {
    EXPECT_NE(cap.records[i].src, cap.records[i - 1].src)
        << "demand-slotted round-robin must alternate";
  }
  EXPECT_EQ(net.flow_control_violations(), 0u);
}

TEST(NetworkBackpressure, SlowConsumerThrottlesToLinkRate) {
  // Saturating one destination: aggregate accepted rate at that host can
  // never exceed one flit per flit-time on its access link.
  MyrinetParams p;
  p.chunk_flits = 8;
  Rig rig(make_mesh_2d(1, 3, 2), RoutingAlgorithm::kUpDown, p);
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  // Both far hosts flood one destination host.
  for (int i = 0; i < 200; ++i) {
    net.inject(0, 2, 512);  // host 0 (switch 0) -> host 2 (switch 1)
    net.inject(4, 2, 512);  // host 4 (switch 2) -> host 2
  }
  rig.sim.run_until(ms(1));
  const auto delivered = cap.records.size();
  // The destination's access port serves one packet per
  // (L=514 flits)*F + R = 3.3625 us; in 1 ms that is at most ~297
  // packets, and the pipeline keeps the port continuously busy.
  EXPECT_GT(delivered, 260u);
  EXPECT_LE(delivered, 300u);
  EXPECT_EQ(net.flow_control_violations(), 0u);
  EXPECT_LE(net.max_buffer_occupancy(), 80);
  rig.sim.run_until(ms(5));
  EXPECT_EQ(net.packets_in_flight(), 0u) << "flood must fully drain";
}

TEST(NetworkDeterminism, IdenticalRunsProduceIdenticalTraces) {
  auto run = [](std::uint64_t seed) {
    MyrinetParams p;
    Rig rig(make_torus_2d(4, 4, 2), RoutingAlgorithm::kItb, p);
    Network net(rig.sim, rig.topo, rig.routes, rig.params,
                PathPolicy::kRoundRobin, seed);
    Capture cap;
    cap.attach(net);
    Rng traffic(seed);
    for (int i = 0; i < 500; ++i) {
      const auto src = static_cast<HostId>(traffic.next_below(32));
      auto dst = static_cast<HostId>(traffic.next_below(32));
      if (dst == src) dst = static_cast<HostId>((dst + 1) % 32);
      net.inject(src, dst, 512);
    }
    rig.sim.run_until(ms(50));
    EXPECT_EQ(net.packets_in_flight(), 0u);
    std::vector<TimePs> times;
    Capture* c = &cap;
    for (const auto& r : c->records) times.push_back(r.deliver_time);
    return times;
  };
  const auto a = run(11);
  const auto b = run(11);
  const auto c = run(12);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(NetworkConfig, RejectsOversizedChunks) {
  MyrinetParams p;
  p.chunk_flits = 16;  // could overflow the slack buffer
  Topology t = make_mesh_2d(1, 2, 1);
  UpDown ud(t, 0);
  RouteSet rs = build_updown_routes(t, SimpleRoutes(t, ud));
  Simulator sim;
  EXPECT_THROW(Network(sim, t, rs, p, PathPolicy::kSingle),
               std::invalid_argument);
  p.chunk_flits = 0;
  EXPECT_THROW(Network(sim, t, rs, p, PathPolicy::kSingle),
               std::invalid_argument);
}

TEST(NetworkStats, BusyTimeMatchesFlitsTransferred) {
  MyrinetParams p;
  p.chunk_flits = 1;
  Rig rig(make_mesh_2d(1, 2, 1), RoutingAlgorithm::kUpDown, p);
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  net.inject(0, 1, 512);
  rig.sim.run_until(ms(1));
  // Channel from host 0's NIC into switch 0 carried the full wire packet:
  // L0 = 512 payload + 1 type + 1 fabric port + 1 delivery port = 515.
  const ChannelId up = rig.topo.channel_from(rig.topo.host(0).cable, false);
  EXPECT_EQ(net.channel_busy_time(up), 515 * F);
  // Fabric link switch0 -> switch1 carried 514 (one header byte stripped).
  const ChannelId fab = rig.topo.channel_from_switch(
      0, rig.topo.peer(0, rig.topo.switch_ports_of(0)[0]).cable);
  EXPECT_EQ(net.channel_busy_time(fab), 514 * F);
  net.reset_channel_stats();
  EXPECT_EQ(net.channel_busy_time(up), 0);
}

}  // namespace
}  // namespace itb
