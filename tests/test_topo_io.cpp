// Topology text-format parsing and serialisation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/rng.hpp"
#include "topo/generators.hpp"
#include "topo/io.hpp"

namespace itb {
namespace {

TEST(TopoIo, ParseMinimal) {
  const Topology t = parse_topology_string(R"(
# a two-switch network
topology tiny
switches 2 4
cable 0 0 1 0
host 0 1
host 1 1 25.0
pos 1 3 4
)");
  EXPECT_EQ(t.name(), "tiny");
  EXPECT_EQ(t.num_switches(), 2);
  EXPECT_EQ(t.ports_per_switch(), 4);
  EXPECT_EQ(t.num_hosts(), 2);
  EXPECT_EQ(t.num_cables(), 3);
  EXPECT_EQ(t.peer(0, 0).sw, 1);
  EXPECT_EQ(t.host(1).sw, 1);
  EXPECT_DOUBLE_EQ(t.cable(t.host(1).cable).length_m, 25.0);
  EXPECT_DOUBLE_EQ(t.cable(t.host(0).cable).length_m, 10.0);
  EXPECT_EQ(t.pos(1).x, 3);
  EXPECT_EQ(t.pos(1).y, 4);
  EXPECT_TRUE(t.validate().empty());
}

TEST(TopoIo, CommentsAndBlankLinesIgnored) {
  const Topology t = parse_topology_string(
      "switches 1 4   # inline comment\n\n# full line\nhost 0 0\n");
  EXPECT_EQ(t.num_hosts(), 1);
}

TEST(TopoIo, ErrorsCarryLineNumbers) {
  try {
    (void)parse_topology_string("switches 2 4\ncable 0 0 9 0\n");
    FAIL() << "expected parse error";
  } catch (const TopologyParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(TopoIo, RejectsMalformedDirectives) {
  EXPECT_THROW(parse_topology_string(""), TopologyParseError);
  EXPECT_THROW(parse_topology_string("frobnicate 1\n"), TopologyParseError);
  EXPECT_THROW(parse_topology_string("switches 2\n"), TopologyParseError);
  EXPECT_THROW(parse_topology_string("switches 0 4\n"), TopologyParseError);
  EXPECT_THROW(parse_topology_string("switches 2 4\nswitches 2 4\n"),
               TopologyParseError);
  EXPECT_THROW(parse_topology_string("cable 0 0 1 0\n"), TopologyParseError);
  EXPECT_THROW(parse_topology_string("host 0 0\n"), TopologyParseError);
  EXPECT_THROW(parse_topology_string("switches 2 4\ncable 0 zero 1 0\n"),
               TopologyParseError);
  EXPECT_THROW(parse_topology_string("switches 2 4\npos 5 0 0\n"),
               TopologyParseError);
  EXPECT_THROW(parse_topology_string("switches 2 4\ntopology late\n"),
               TopologyParseError);
}

TEST(TopoIo, DuplicatePortUseSurfacesAsParseError) {
  EXPECT_THROW(parse_topology_string(
                   "switches 2 4\ncable 0 0 1 0\ncable 0 0 1 1\n"),
               TopologyParseError);
}

TEST(TopoIo, SerializeIsCanonicalAndIdempotent) {
  Rng rng(17);
  const std::vector<Topology> topos = [&] {
    std::vector<Topology> v;
    v.push_back(make_torus_2d(4, 4, 2));
    v.push_back(make_torus_2d_express(5, 5, 2));
    v.push_back(make_cplant());
    v.push_back(make_irregular(10, 2, 4, rng));
    return v;
  }();
  for (const Topology& t : topos) {
    const std::string text = serialize_topology(t);
    const Topology parsed = parse_topology_string(text);
    EXPECT_EQ(parsed.name(), t.name());
    EXPECT_EQ(parsed.num_switches(), t.num_switches());
    EXPECT_EQ(parsed.num_hosts(), t.num_hosts());
    EXPECT_EQ(parsed.num_cables(), t.num_cables());
    EXPECT_TRUE(parsed.validate().empty());
    // Idempotence: re-serialising the parsed topology is a fixed point.
    EXPECT_EQ(serialize_topology(parsed), text) << t.name();
    // Structure preserved: identical port tables and host attachments.
    for (SwitchId s = 0; s < t.num_switches(); ++s) {
      for (PortId p = 0; p < t.ports_per_switch(); ++p) {
        EXPECT_EQ(parsed.peer(s, p).kind, t.peer(s, p).kind);
        if (t.peer(s, p).kind == PeerKind::kSwitch) {
          EXPECT_EQ(parsed.peer(s, p).sw, t.peer(s, p).sw);
          EXPECT_EQ(parsed.peer(s, p).port, t.peer(s, p).port);
        }
        if (t.peer(s, p).kind == PeerKind::kHost) {
          EXPECT_EQ(parsed.peer(s, p).host, t.peer(s, p).host);
        }
      }
      EXPECT_EQ(parsed.pos(s).x, t.pos(s).x);
      EXPECT_EQ(parsed.pos(s).y, t.pos(s).y);
    }
  }
}

TEST(TopoIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/itb_topo_io_test.topo";
  const Topology t = make_mesh_2d(2, 3, 2);
  save_topology(t, path);
  const Topology loaded = load_topology(path);
  EXPECT_EQ(loaded.num_switches(), 6);
  EXPECT_EQ(loaded.num_hosts(), 12);
  EXPECT_EQ(serialize_topology(loaded), serialize_topology(t));
  std::remove(path.c_str());
}

TEST(TopoIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_topology("/nonexistent/itb.topo"), std::runtime_error);
}

}  // namespace
}  // namespace itb
