// Independent-replication aggregation.
#include <gtest/gtest.h>

#include "harness/replicate.hpp"
#include "harness/testbed.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

RunConfig fast_cfg(double load) {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = load;
  cfg.warmup = us(40);
  cfg.measure = us(120);
  return cfg;
}

TEST(Replicate, AggregatesAcrossSeeds) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const auto rep = run_replicated(tb, RoutingScheme::kItbRr, pat,
                                  fast_cfg(0.01), 5);
  ASSERT_EQ(rep.runs.size(), 5u);
  EXPECT_EQ(rep.accepted.count(), 5u);
  EXPECT_NEAR(rep.accepted.mean(), 0.01, 0.002);
  EXPECT_GT(rep.latency_ns.mean(), 3000.0);
  EXPECT_EQ(rep.saturated_count, 0);
  // Different seeds must actually differ (non-degenerate ensemble).
  EXPECT_GT(rep.latency_ns.stddev(), 0.0);
  // CI is positive and small relative to the mean at this easy load.
  EXPECT_GT(rep.accepted_ci95(), 0.0);
  EXPECT_LT(rep.accepted_ci95(), 0.2 * rep.accepted.mean());
}

TEST(Replicate, SingleReplicationHasZeroCi) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const auto rep = run_replicated(tb, RoutingScheme::kUpDown, pat,
                                  fast_cfg(0.01), 1);
  EXPECT_EQ(rep.runs.size(), 1u);
  EXPECT_EQ(rep.accepted_ci95(), 0.0);
}

TEST(Replicate, DetectsSaturationConsistently) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const auto rep = run_replicated(tb, RoutingScheme::kUpDown, pat,
                                  fast_cfg(0.3), 3);
  EXPECT_EQ(rep.saturated_count, 3);
}

TEST(Replicate, DeterministicGivenBaseSeed) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const auto a = run_replicated(tb, RoutingScheme::kItbSp, pat,
                                fast_cfg(0.01), 3);
  const auto b = run_replicated(tb, RoutingScheme::kItbSp, pat,
                                fast_cfg(0.01), 3);
  EXPECT_DOUBLE_EQ(a.accepted.mean(), b.accepted.mean());
  EXPECT_DOUBLE_EQ(a.latency_ns.mean(), b.latency_ns.mean());
}

}  // namespace
}  // namespace itb
